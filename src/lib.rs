//! DH-TRNG reproduction — umbrella crate.
//!
//! Re-exports the whole workspace behind one dependency, so downstream
//! users (and the examples and integration tests in this repository) can
//! write `use dh_trng::prelude::*;` and reach every layer:
//!
//! * [`core`] — the DH-TRNG architecture itself
//!   ([`DhTrng`](dhtrng_core::DhTrng));
//! * [`noise`] — the stochastic substrate (jitter, metastability, PVT);
//! * [`sim`] — the event-driven gate-level simulator;
//! * [`fpga`] — device, packing, placement, timing and power models;
//! * [`baselines`] — the Table 6 comparison architectures;
//! * [`stattests`] — NIST SP 800-22 / SP 800-90B / AIS-31 batteries;
//! * [`stream`] — the sharded streaming engine (parallel instances
//!   merged into one entropy stream), wrapped here by the
//!   `rand`-compatible [`StreamRng`] adapter.
//!
//! # Quickstart
//!
//! ```
//! use dh_trng::prelude::*;
//!
//! let mut trng = DhTrng::builder().seed(1).build();
//! let mut key = [0u8; 32];
//! trng.fill_bytes(&mut key);
//!
//! // Assess the stream the way the paper's Table 4 does.
//! let bits: BitBuffer = (0..100_000).map(|_| trng.next_bit()).collect();
//! let h = min_entropy_mcv(&bits);
//! assert!(h > 0.98, "h = {h}");
//! ```
//!
//! See `README.md` for the repository tour and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology and results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use dhtrng_baselines as baselines;
pub use dhtrng_core as core;
pub use dhtrng_fpga as fpga;
pub use dhtrng_noise as noise;
pub use dhtrng_sim as sim;
pub use dhtrng_stattests as stattests;
pub use dhtrng_stream as stream;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use dhtrng_baselines::{Architecture, RoXorTrng};
    pub use dhtrng_core::{
        DhTrng, DhTrngArray, DhTrngBuilder, HealthMonitor, HealthStatus, HybridUnitGroup, Trng,
    };
    pub use dhtrng_fpga::Device;
    pub use dhtrng_noise::{NoiseRng, PvtCorner};
    pub use dhtrng_stattests::sp800_90b::{min_entropy_mcv, non_iid_battery};
    pub use dhtrng_stattests::BitBuffer;
    pub use dhtrng_stream::{EntropyStream, EntropyStreamBuilder, StreamError};

    pub use crate::StreamRng;
}

/// `rand`-compatible adapter over the sharded streaming engine: plugs a
/// multi-instance DH-TRNG deployment into anything that consumes
/// [`rand::RngCore`] (distributions, shuffles, key generation, other
/// generators' seeds).
///
/// Byte order matches the single-instance
/// [`DhTrng`](dhtrng_core::DhTrng) `RngCore` impl: words are built from
/// the stream MSB-first.
///
/// # Panics
///
/// The infallible [`rand::RngCore`] methods panic if the underlying
/// stream fails terminally (a shard retired; see
/// [`StreamError`](dhtrng_stream::StreamError)). Use
/// [`try_fill_bytes`](rand::RngCore::try_fill_bytes) — or inspect
/// [`stream`](Self::stream) — for a non-panicking path.
///
/// # Example
///
/// ```
/// use dh_trng::prelude::*;
/// use rand::Rng;
///
/// let mut rng = StreamRng::with_shards(4, 42);
/// let die: u8 = rng.gen_range(1..=6);
/// assert!((1..=6).contains(&die));
/// ```
#[derive(Debug)]
pub struct StreamRng {
    stream: dhtrng_stream::EntropyStream,
}

impl StreamRng {
    /// Wraps an already-configured stream.
    pub fn new(stream: dhtrng_stream::EntropyStream) -> Self {
        Self { stream }
    }

    /// A stream of `shards` parallel instances at the default
    /// configuration (Artix-7, nominal corner, 64 KiB chunks).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is outside `1..=64`.
    pub fn with_shards(shards: usize, seed: u64) -> Self {
        Self::new(
            dhtrng_stream::EntropyStream::builder()
                .shards(shards)
                .seed(seed)
                .build(),
        )
    }

    /// The engine behind the adapter (shard count, restart statistics,
    /// modeled throughput, placements).
    pub fn stream(&self) -> &dhtrng_stream::EntropyStream {
        &self.stream
    }

    /// Unwraps the adapter.
    pub fn into_inner(self) -> dhtrng_stream::EntropyStream {
        self.stream
    }
}

impl rand::RngCore for StreamRng {
    fn next_u32(&mut self) -> u32 {
        let mut bytes = [0u8; 4];
        self.fill_bytes(&mut bytes);
        u32::from_be_bytes(bytes)
    }

    fn next_u64(&mut self) -> u64 {
        let mut bytes = [0u8; 8];
        self.fill_bytes(&mut bytes);
        u64::from_be_bytes(bytes)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.stream
            .read(dest)
            .expect("entropy stream failed terminally");
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.stream.read(dest).map_err(rand::Error::new)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_wires_the_stack_together() {
        let mut trng = DhTrng::builder().seed(3).build();
        let bits: BitBuffer = (0..10_000).map(|_| trng.next_bit()).collect();
        assert_eq!(bits.len(), 10_000);
        assert!(min_entropy_mcv(&bits) > 0.9);
    }

    #[test]
    fn stream_rng_adapter_drives_the_rand_ecosystem() {
        use rand::{Rng, RngCore};
        let mut rng = StreamRng::new(
            EntropyStream::builder()
                .shards(2)
                .seed(11)
                .chunk_bytes(1024)
                .build(),
        );
        let mut key = [0u8; 32];
        rng.fill_bytes(&mut key);
        assert!(key.iter().any(|&b| b != 0));
        let sample: u64 = rng.gen_range(0..1000);
        assert!(sample < 1000);
        assert!(rng.try_fill_bytes(&mut key).is_ok());
        assert_eq!(rng.stream().shards(), 2);
        assert_eq!(rng.stream().bytes_delivered(), 32 + 32 + 8);
    }

    #[test]
    fn stream_rng_words_match_raw_stream_bytes() {
        use rand::RngCore;
        let mut words = StreamRng::with_shards(2, 21);
        let mut raw = EntropyStream::builder().shards(2).seed(21).build();
        let mut bytes = [0u8; 12];
        raw.read(&mut bytes).unwrap();
        assert_eq!(
            words.next_u64(),
            u64::from_be_bytes(bytes[..8].try_into().unwrap())
        );
        assert_eq!(
            words.next_u32(),
            u32::from_be_bytes(bytes[8..].try_into().unwrap())
        );
    }
}
