//! DH-TRNG reproduction — umbrella crate.
//!
//! Re-exports the whole workspace behind one dependency, so downstream
//! users (and the examples and integration tests in this repository) can
//! write `use dh_trng::prelude::*;` and reach every layer:
//!
//! * [`core`] — the DH-TRNG architecture itself
//!   ([`DhTrng`](dhtrng_core::DhTrng));
//! * [`noise`] — the stochastic substrate (jitter, metastability, PVT);
//! * [`sim`] — the event-driven gate-level simulator;
//! * [`fpga`] — device, packing, placement, timing and power models;
//! * [`baselines`] — the Table 6 comparison architectures;
//! * [`stattests`] — NIST SP 800-22 / SP 800-90B / AIS-31 batteries.
//!
//! # Quickstart
//!
//! ```
//! use dh_trng::prelude::*;
//!
//! let mut trng = DhTrng::builder().seed(1).build();
//! let mut key = [0u8; 32];
//! trng.fill_bytes(&mut key);
//!
//! // Assess the stream the way the paper's Table 4 does.
//! let bits: BitBuffer = (0..100_000).map(|_| trng.next_bit()).collect();
//! let h = min_entropy_mcv(&bits);
//! assert!(h > 0.98, "h = {h}");
//! ```
//!
//! See `README.md` for the repository tour and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology and results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use dhtrng_baselines as baselines;
pub use dhtrng_core as core;
pub use dhtrng_fpga as fpga;
pub use dhtrng_noise as noise;
pub use dhtrng_sim as sim;
pub use dhtrng_stattests as stattests;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use dhtrng_baselines::{Architecture, RoXorTrng};
    pub use dhtrng_core::{
        DhTrng, DhTrngArray, DhTrngBuilder, HealthMonitor, HealthStatus, HybridUnitGroup, Trng,
    };
    pub use dhtrng_fpga::Device;
    pub use dhtrng_noise::{NoiseRng, PvtCorner};
    pub use dhtrng_stattests::sp800_90b::{min_entropy_mcv, non_iid_battery};
    pub use dhtrng_stattests::BitBuffer;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_wires_the_stack_together() {
        let mut trng = DhTrng::builder().seed(3).build();
        let bits: BitBuffer = (0..10_000).map(|_| trng.next_bit()).collect();
        assert_eq!(bits.len(), 10_000);
        assert!(min_entropy_mcv(&bits) > 0.9);
    }
}
