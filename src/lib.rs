//! DH-TRNG reproduction — umbrella crate.
//!
//! Re-exports the whole workspace behind one dependency, so downstream
//! users (and the examples and integration tests in this repository) can
//! write `use dh_trng::prelude::*;` and reach every layer:
//!
//! * [`core`] — the DH-TRNG architecture itself
//!   ([`DhTrng`](dhtrng_core::DhTrng)), plus the SP 800-90C output
//!   stages (health tests, composable conditioning, the DRBG);
//! * [`noise`] — the stochastic substrate (jitter, metastability, PVT);
//! * [`sim`] — the event-driven gate-level simulator;
//! * [`fpga`] — device, packing, placement, timing and power models;
//! * [`baselines`] — the Table 6 comparison architectures;
//! * [`stattests`] — NIST SP 800-22 / SP 800-90B / AIS-31 batteries;
//! * [`stream`] — the sharded streaming engine and the
//!   session-oriented entropy source ([`api`]): one shared
//!   [`EntropySource`](dhtrng_stream::EntropySource) minting
//!   independent per-consumer
//!   [`Session`](dhtrng_stream::Session)s at any quality tier
//!   (raw / conditioned / drbg), all driven by one stage-graph
//!   executor over recycled chunk buffers (zero-allocation
//!   steady-state raw reads; `DESIGN.md` §7–8), wrapped here by the
//!   `rand`-compatible [`StreamRng`] and [`PipelineRng`] adapters;
//! * [`serve`] — entropy as a service: the daemon front-end
//!   (TCP / unix socket, length-prefixed frames) that multiplexes
//!   many concurrent clients over one shared source, plus the load
//!   generator that drives thousands of simulated clients through
//!   the same connection state machine.
//!
//! **Library or service?** Link against [`api`] when the consumers
//! live in your process — sessions are cheap and draw from one shared
//! deployment. Run the [`serve`] daemon when consumers are separate
//! processes (or machines) and should share one hardware deployment
//! through a socket; the wire protocol and trade-offs are in
//! `README.md` § "Library vs service" and `DESIGN.md` §8.
//!
//! # Quickstart
//!
//! ```
//! use dh_trng::prelude::*;
//!
//! let mut trng = DhTrng::builder().seed(1).build();
//! let mut key = [0u8; 32];
//! trng.fill_bytes(&mut key);
//!
//! // Assess the stream the way the paper's Table 4 does.
//! let bits: BitBuffer = (0..100_000).map(|_| trng.next_bit()).collect();
//! let h = min_entropy_mcv(&bits);
//! assert!(h > 0.98, "h = {h}");
//! ```
//!
//! # Quality tiers
//!
//! A production deployment picks one of three output tiers from the
//! same builder — raw source bits, conditioned bits, or DRBG output
//! (see `README.md` § "Which tier do I want?"):
//!
//! ```
//! use dh_trng::prelude::*;
//!
//! let mut rng = PipelineRng::builder()
//!     .shards(2)
//!     .seed(1)
//!     .chunk_bytes(2048)
//!     .build(Tier::Drbg);
//! let mut key = [0u8; 32];
//! rand::RngCore::fill_bytes(&mut rng, &mut key);
//! assert_eq!(rng.stream().tier(), Tier::Drbg);
//! ```
//!
//! See `README.md` for the repository tour and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology and results.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use dhtrng_baselines as baselines;
pub use dhtrng_core as core;
pub use dhtrng_fpga as fpga;
pub use dhtrng_noise as noise;
pub use dhtrng_serve as serve;
pub use dhtrng_sim as sim;
pub use dhtrng_stattests as stattests;
pub use dhtrng_stream as stream;

/// The session-oriented public API: one shared
/// [`EntropySource`](dhtrng_stream::EntropySource), many independent
/// [`Session`](dhtrng_stream::Session)s (see `dhtrng_stream::api`).
///
/// The legacy single-consumer pipeline
/// ([`PipelineBuilder`](dhtrng_stream::PipelineBuilder) /
/// [`TierStream`](dhtrng_stream::TierStream) and the [`PipelineRng`]
/// adapter here) remains available as bit-identical sole-session
/// shims over this API.
pub use dhtrng_stream::api;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use dhtrng_baselines::{Architecture, RoXorTrng};
    pub use dhtrng_core::conditioning::{
        BitSink, BlockConditioner, Conditioned, Conditioner, CrcWhitener, LfsrConditioner,
        VonNeumannConditioner, XorFold,
    };
    pub use dhtrng_core::drbg::{Drbg, DrbgConfig, HashDrbg};
    pub use dhtrng_core::kernel::{BitBlock, BlockSource, ConditionerStage, Stage};
    pub use dhtrng_core::telemetry::{
        MetricsHandle, NoopRecorder, Recorder, ShardSnapshot, Snapshot, StageEvent, TraceEvent,
        Tracer,
    };
    pub use dhtrng_core::{
        DhTrng, DhTrngArray, DhTrngBuilder, HealthMonitor, HealthStatus, HybridUnitGroup,
        KernelError, SliceError, SlicedDhTrng, SlicedKernel, Trng,
    };
    pub use dhtrng_fpga::Device;
    pub use dhtrng_noise::{NoiseRng, PvtCorner};
    pub use dhtrng_serve::{Client, Service, ServiceConfig};
    pub use dhtrng_stattests::sp800_90b::{min_entropy_mcv, non_iid_battery};
    pub use dhtrng_stattests::BitBuffer;
    pub use dhtrng_stream::{
        AffinityPolicy, ConditionedStream, ConditionerSpec, DrbgPool, EntropySource, EntropyStream,
        EntropyStreamBuilder, HealthConfig, KernelKind, PipelineBuilder, Session, SessionConfig,
        SourceBuilder, StreamError, Tier, TierStream,
    };

    pub use crate::{PipelineRng, StreamRng};
}

/// `rand`-compatible adapter over the sharded streaming engine: plugs a
/// multi-instance DH-TRNG deployment into anything that consumes
/// [`rand::RngCore`] (distributions, shuffles, key generation, other
/// generators' seeds).
///
/// Byte order matches the single-instance
/// [`DhTrng`](dhtrng_core::DhTrng) `RngCore` impl: words are built from
/// the stream MSB-first.
///
/// This adapter serves the **raw tier**; [`PipelineRng`] serves any
/// tier of the conditioning/DRBG pipeline behind the same `RngCore`
/// surface.
///
/// # Panics
///
/// The infallible [`rand::RngCore`] methods panic if the underlying
/// stream fails terminally (a shard retired; see
/// [`StreamError`](dhtrng_stream::StreamError)). Use
/// [`try_fill_bytes`](rand::RngCore::try_fill_bytes) — or inspect
/// [`stream`](Self::stream) — for a non-panicking path.
///
/// # Example
///
/// ```
/// use dh_trng::prelude::*;
/// use rand::Rng;
///
/// let mut rng = StreamRng::with_shards(4, 42);
/// let die: u8 = rng.gen_range(1..=6);
/// assert!((1..=6).contains(&die));
/// ```
#[derive(Debug)]
pub struct StreamRng {
    stream: dhtrng_stream::EntropyStream,
}

impl StreamRng {
    /// Wraps an already-configured stream.
    pub fn new(stream: dhtrng_stream::EntropyStream) -> Self {
        Self { stream }
    }

    /// A stream of `shards` parallel instances at the default
    /// configuration (Artix-7, nominal corner, 64 KiB chunks).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is outside `1..=64`.
    pub fn with_shards(shards: usize, seed: u64) -> Self {
        Self::new(
            dhtrng_stream::EntropyStream::builder()
                .shards(shards)
                .seed(seed)
                .build(),
        )
    }

    /// The engine behind the adapter (shard count, restart statistics,
    /// modeled throughput, placements).
    pub fn stream(&self) -> &dhtrng_stream::EntropyStream {
        &self.stream
    }

    /// Unwraps the adapter.
    pub fn into_inner(self) -> dhtrng_stream::EntropyStream {
        self.stream
    }
}

impl rand::RngCore for StreamRng {
    fn next_u32(&mut self) -> u32 {
        let mut bytes = [0u8; 4];
        self.fill_bytes(&mut bytes);
        u32::from_be_bytes(bytes)
    }

    fn next_u64(&mut self) -> u64 {
        let mut bytes = [0u8; 8];
        self.fill_bytes(&mut bytes);
        u64::from_be_bytes(bytes)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.stream
            .read(dest)
            .expect("entropy stream failed terminally");
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.stream.read(dest).map_err(rand::Error::new)
    }
}

/// `rand`-compatible adapter over the typed output pipeline: one
/// `RngCore` surface for all three quality tiers
/// ([`Tier`](dhtrng_stream::Tier)) of a sharded DH-TRNG deployment —
/// `raw` source bits, `conditioned` bits, or SP 800-90C-style `drbg`
/// output.
///
/// Byte and word order match [`StreamRng`] (words built MSB-first from
/// the tier's byte stream).
///
/// **Legacy shim.** The pipeline underneath is now a bit-identical
/// sole-session view over the session-oriented [`api`]
/// ([`EntropySource`](dhtrng_stream::EntropySource) /
/// [`Session`](dhtrng_stream::Session)); new code that wants multiple
/// consumers, quotas, or graceful degradation should open sessions
/// directly and wrap them as needed.
///
/// # Panics
///
/// As [`StreamRng`]: the infallible [`rand::RngCore`] methods panic if
/// the underlying engine fails terminally (every tier propagates the
/// same typed [`StreamError`](dhtrng_stream::StreamError)); use
/// [`try_fill_bytes`](rand::RngCore::try_fill_bytes) for a
/// non-panicking path.
///
/// # Example
///
/// ```
/// use dh_trng::prelude::*;
/// use rand::Rng;
///
/// let mut rng = PipelineRng::builder()
///     .shards(2)
///     .seed(7)
///     .chunk_bytes(2048)
///     .build(Tier::Conditioned);
/// let die: u8 = rng.gen_range(1..=6);
/// assert!((1..=6).contains(&die));
/// ```
#[derive(Debug)]
pub struct PipelineRng {
    stream: dhtrng_stream::TierStream,
}

impl PipelineRng {
    /// Wraps an already-built tier stream.
    pub fn new(stream: dhtrng_stream::TierStream) -> Self {
        Self { stream }
    }

    /// Starts configuring a pipeline; finish with
    /// [`PipelineBuilder::build`](dhtrng_stream::PipelineBuilder::build)
    /// and wrap the result via [`new`](Self::new) — or use
    /// [`with_tier`](Self::with_tier) for the defaults.
    pub fn builder() -> PipelineRngBuilder {
        PipelineRngBuilder {
            inner: dhtrng_stream::PipelineBuilder::new(),
        }
    }

    /// A `shards`-wide pipeline at the stage defaults, serving `tier`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is outside `1..=64`.
    pub fn with_tier(shards: usize, seed: u64, tier: dhtrng_stream::Tier) -> Self {
        Self::new(
            dhtrng_stream::PipelineBuilder::new()
                .shards(shards)
                .seed(seed)
                .build(tier),
        )
    }

    /// The tier stream behind the adapter (tier, modeled throughput,
    /// stage statistics, the raw engine).
    pub fn stream(&self) -> &dhtrng_stream::TierStream {
        &self.stream
    }

    /// Unwraps the adapter.
    pub fn into_inner(self) -> dhtrng_stream::TierStream {
        self.stream
    }
}

/// Builder returned by [`PipelineRng::builder`]: the pipeline builder
/// with a [`build`](Self::build) that wraps the chosen tier in the
/// `rand` adapter directly.
#[derive(Debug, Clone, Default)]
pub struct PipelineRngBuilder {
    inner: dhtrng_stream::PipelineBuilder,
}

impl PipelineRngBuilder {
    /// Number of parallel DH-TRNG instances (1..=64).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.inner = self.inner.shards(shards);
        self
    }

    /// Master seed for the shard seed schedule.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner = self.inner.seed(seed);
        self
    }

    /// Bytes per produced chunk (the engine's merge granularity).
    #[must_use]
    pub fn chunk_bytes(mut self, bytes: usize) -> Self {
        self.inner = self.inner.chunk_bytes(bytes);
        self
    }

    /// Conditioner for the conditioned and drbg tiers.
    #[must_use]
    pub fn conditioner(mut self, spec: dhtrng_stream::ConditionerSpec) -> Self {
        self.inner = self.inner.conditioner(spec);
        self
    }

    /// DRBG policy for the drbg tier.
    #[must_use]
    pub fn drbg_config(mut self, config: dhtrng_core::drbg::DrbgConfig) -> Self {
        self.inner = self.inner.drbg_config(config);
        self
    }

    /// Every other engine knob (shard seed schedules, health cutoffs,
    /// restart budgets, device config): the underlying
    /// [`PipelineBuilder`](dhtrng_stream::PipelineBuilder).
    #[must_use]
    pub fn pipeline(self) -> dhtrng_stream::PipelineBuilder {
        self.inner
    }

    /// Builds the chosen tier behind the `rand` adapter.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration (see
    /// [`PipelineBuilder::build`](dhtrng_stream::PipelineBuilder::build)).
    pub fn build(self, tier: dhtrng_stream::Tier) -> PipelineRng {
        PipelineRng::new(self.inner.build(tier))
    }
}

impl rand::RngCore for PipelineRng {
    fn next_u32(&mut self) -> u32 {
        let mut bytes = [0u8; 4];
        self.fill_bytes(&mut bytes);
        u32::from_be_bytes(bytes)
    }

    fn next_u64(&mut self) -> u64 {
        let mut bytes = [0u8; 8];
        self.fill_bytes(&mut bytes);
        u64::from_be_bytes(bytes)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.stream
            .read(dest)
            .expect("entropy pipeline failed terminally");
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.stream.read(dest).map_err(rand::Error::new)
    }
}

/// The README's code blocks, compiled and run as doctests so the
/// quickstart can never drift from the real API (CI's doc job runs
/// `cargo test --doc --workspace`).
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
mod readme_doctests {}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_wires_the_stack_together() {
        let mut trng = DhTrng::builder().seed(3).build();
        let bits: BitBuffer = (0..10_000).map(|_| trng.next_bit()).collect();
        assert_eq!(bits.len(), 10_000);
        assert!(min_entropy_mcv(&bits) > 0.9);
    }

    #[test]
    fn stream_rng_adapter_drives_the_rand_ecosystem() {
        use rand::{Rng, RngCore};
        let mut rng = StreamRng::new(
            EntropyStream::builder()
                .shards(2)
                .seed(11)
                .chunk_bytes(1024)
                .build(),
        );
        let mut key = [0u8; 32];
        rng.fill_bytes(&mut key);
        assert!(key.iter().any(|&b| b != 0));
        let sample: u64 = rng.gen_range(0..1000);
        assert!(sample < 1000);
        assert!(rng.try_fill_bytes(&mut key).is_ok());
        assert_eq!(rng.stream().shards(), 2);
        assert_eq!(rng.stream().bytes_delivered(), 32 + 32 + 8);
    }

    #[test]
    fn stream_rng_words_match_raw_stream_bytes() {
        use rand::RngCore;
        let mut words = StreamRng::with_shards(2, 21);
        let mut raw = EntropyStream::builder().shards(2).seed(21).build();
        let mut bytes = [0u8; 12];
        raw.read(&mut bytes).unwrap();
        assert_eq!(
            words.next_u64(),
            u64::from_be_bytes(bytes[..8].try_into().unwrap())
        );
        assert_eq!(
            words.next_u32(),
            u32::from_be_bytes(bytes[8..].try_into().unwrap())
        );
    }

    #[test]
    fn pipeline_rng_serves_all_three_tiers() {
        use rand::{Rng, RngCore};
        for tier in [Tier::Raw, Tier::Conditioned, Tier::Drbg] {
            let mut rng = PipelineRng::builder()
                .shards(2)
                .seed(13)
                .chunk_bytes(1024)
                .build(tier);
            assert_eq!(rng.stream().tier(), tier);
            let mut key = [0u8; 32];
            rng.fill_bytes(&mut key);
            assert!(key.iter().any(|&b| b != 0), "{tier:?}");
            let die: u8 = rng.gen_range(1..=6);
            assert!((1..=6).contains(&die));
        }
    }

    #[test]
    fn pipeline_raw_tier_matches_stream_rng() {
        use rand::RngCore;
        let mut pipeline = PipelineRng::with_tier(2, 21, Tier::Raw);
        let mut direct = StreamRng::with_shards(2, 21);
        let mut a = [0u8; 64];
        let mut b = [0u8; 64];
        pipeline.fill_bytes(&mut a);
        direct.fill_bytes(&mut b);
        assert_eq!(a, b, "raw tier is the engine stream itself");
    }

    #[test]
    fn pipeline_rng_surfaces_tier_errors_through_try_fill() {
        use rand::RngCore;
        let mut rng = PipelineRng::new(
            PipelineBuilder::new()
                .shards(1)
                .seed(3)
                .chunk_bytes(256)
                .health(crate::stream::HealthConfig {
                    rct_cutoff: 2,
                    apt_window: 64,
                    apt_cutoff: 64,
                })
                .max_consecutive_restarts(2)
                .build(Tier::Drbg),
        );
        let mut buf = [0u8; 16];
        assert!(rng.try_fill_bytes(&mut buf).is_err());
    }
}
