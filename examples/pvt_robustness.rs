//! PVT robustness scenario: an integrator qualifying the TRNG across an
//! industrial temperature/voltage envelope, as the paper does in §4.5
//! (Figure 9) with a temperature chamber and programmable supply.
//!
//! For each corner the example reports min-entropy, the derated
//! throughput, and power — the three quantities a datasheet would carry.
//!
//! Run with: `cargo run --release --example pvt_robustness`

use dh_trng::prelude::*;

const BITS: usize = 1 << 19;

fn main() {
    let device = Device::artix7();
    println!(
        "PVT qualification of DH-TRNG on {} ({} bits per corner)\n",
        device.display_name(),
        BITS
    );
    println!(
        "{:>6} {:>7} | {:>10} {:>12} {:>9}",
        "T (C)", "V (V)", "h (MCV)", "Mbps", "power (W)"
    );

    let mut worst = (1.0f64, String::new());
    for &t in &[-20.0, 20.0, 80.0] {
        for &v in &[0.8, 1.0, 1.2] {
            let corner = PvtCorner::new(t, v);
            let mut trng = DhTrng::builder()
                .device(device.clone())
                .corner(corner)
                .seed(0x9f7)
                .build();
            let bits: BitBuffer = (0..BITS).map(|_| trng.next_bit()).collect();
            let h = min_entropy_mcv(&bits);
            if h < worst.0 {
                worst = (h, corner.to_string());
            }
            println!(
                "{t:>6.0} {v:>7.1} | {h:>10.4} {:>12.1} {:>9.3}",
                trng.throughput_mbps(),
                trng.power().total_w()
            );
        }
    }
    println!(
        "\nworst corner: h = {:.4} at {} — the paper's Figure 9 floor is ~0.97,\n\
         comfortably above the 0.91 min-entropy bound AIS-31 PTG.2 requires.",
        worst.0, worst.1
    );
}
