//! Entropy as a service: one shared sharded source, a thousand
//! concurrent clients, a shard retirement mid-run — and zero protocol
//! errors.
//!
//! The drill stacks every serving guarantee in one pass:
//!
//! * **scale** — the load generator opens 1,000 simultaneous drbg
//!   sessions (full wire round-trips through the daemon's connection
//!   state machine) while 16 real TCP clients speak the same frames
//!   through sockets;
//! * **exactly-once** — every client checks each `Data.offset`
//!   extends its stream contiguously; a duplicated or dropped byte
//!   anywhere would show up as a delivery violation;
//! * **graceful degradation** — shard 2 of 4 is scheduled to retire
//!   *deterministically* in the middle of the read phase. A
//!   reseed-hungry DRBG policy (one harvest per 64 bytes served)
//!   drives the source into the failure fast; every session was
//!   primed at `Hello`, so reseeds stall, `Stat` turns degraded, and
//!   not a single read fails.
//!
//! The printed p50/p99 read latencies are the numbers CI's bench job
//! records in `BENCH_5.json` (`serve.latency_p50_us` / `p99_us`).
//!
//! Run with: `cargo run --release --example entropy_service`

use dh_trng::prelude::*;
use dh_trng::serve::{serve_tcp, LoadConfig};

const CLIENTS: usize = 1000;
const READS_PER_CLIENT: usize = 16;
const READ_BYTES: u32 = 64;
const TCP_CLIENTS: usize = 16;
const TCP_READS: usize = 32;

fn main() {
    println!("DH-TRNG entropy-as-a-service drill");

    // One shared deployment: 4 shards, with shard 2 wired to retire
    // after its 64th chunk — ~256 KiB of conditioned output, well
    // past every handshake but far short of the read phase's demand.
    let source = EntropySource::builder()
        .shards(4)
        .seed(0x5E4E)
        .chunk_bytes(2048)
        .inject_shard_failure(2, 64)
        .drbg_config(DrbgConfig {
            reseed_interval_bits: 512,
            ..Default::default()
        })
        .build()
        .expect("valid deployment");
    let service = Service::new(source);

    // Real sockets on the side: a TCP front-end and a handful of
    // out-of-process-style clients that handshake while the source is
    // healthy, read while the fleet hammers it, and read again after
    // the retirement.
    let handle = serve_tcp(service.clone(), "127.0.0.1:0").expect("bind");
    let mut tcp_clients: Vec<_> = (0..TCP_CLIENTS)
        .map(|_| {
            let mut client = Client::connect_tcp(handle.addr()).expect("connect");
            client.hello(Tier::Drbg, None).expect("handshake");
            client
        })
        .collect();

    let report = std::thread::scope(|scope| {
        let fleet = scope.spawn(|| {
            dh_trng::serve::loadgen::run(
                &service,
                &LoadConfig {
                    clients: CLIENTS,
                    reads_per_client: READS_PER_CLIENT,
                    read_bytes: READ_BYTES,
                    tier: Tier::Drbg,
                    threads: 8,
                },
            )
        });
        let sockets: Vec<_> = tcp_clients
            .iter_mut()
            .map(|client| {
                scope.spawn(move || {
                    for _ in 0..TCP_READS {
                        // Client::read verifies offset contiguity.
                        client.read(READ_BYTES).expect("tcp read");
                    }
                })
            })
            .collect();
        for socket in sockets {
            socket.join().expect("tcp clients never fail");
        }
        fleet.join().expect("load generator never panics")
    });

    println!(
        "  fleet: {} sessions x {} reads of {} B in {:.2} s",
        report.clients, READS_PER_CLIENT, READ_BYTES, report.elapsed_secs
    );
    println!(
        "  read latency: p50 {:.1} us, p99 {:.1} us, max {:.1} us",
        report.p50_us, report.p99_us, report.max_us
    );
    println!(
        "  protocol errors: {}, delivery violations: {}",
        report.protocol_errors, report.delivery_violations
    );

    // The hard acceptance gates: full scale, clean protocol,
    // exactly-once delivery.
    assert_eq!(report.clients, CLIENTS);
    assert_eq!(report.protocol_errors, 0, "protocol must stay clean");
    assert_eq!(
        report.delivery_violations, 0,
        "delivery must be exactly-once"
    );
    assert_eq!(report.reads, (CLIENTS * READS_PER_CLIENT) as u64);
    assert_eq!(report.bytes, report.reads * u64::from(READ_BYTES));

    // The retirement really happened mid-run, and the service
    // degraded instead of dying: reseeds stalled, reads kept flowing.
    let stats = service.source().stats();
    let degraded = stats.degraded.expect("the injected retirement must latch");
    println!(
        "  source: degraded ({degraded}), {} stalled reseeds",
        stats.stalled_reseeds
    );
    assert!(
        stats.stalled_reseeds > 0,
        "degradation must stall reseeds, not kill reads"
    );

    // Sessions primed before the failure keep serving after it — over
    // real sockets too — and Stat tells the truth about the outage.
    let mut survivor = tcp_clients.remove(0);
    let key = survivor
        .read(READ_BYTES)
        .expect("primed sessions outlive the shard");
    assert_eq!(key.len(), READ_BYTES as usize);
    let stat = survivor.stat().expect("stat");
    assert!(stat.degraded, "Stat must report the degradation");
    assert!(stat.live_sessions >= 1 + TCP_CLIENTS as u64 - 1);

    handle.shutdown();
    println!(
        "  {} tcp clients over real sockets, all offsets contiguous; daemon drained cleanly",
        TCP_CLIENTS
    );
}
