//! Quickstart: build a DH-TRNG, draw random material, and check it the
//! way the paper's evaluation does.
//!
//! Run with: `cargo run --release --example quickstart`

use dh_trng::prelude::*;

fn main() {
    // The default configuration is the paper's Artix-7 operating point:
    // 620 Mbps, 8 slices, ~0.068 W, nominal 20 C / 1.0 V corner.
    let mut trng = DhTrng::builder().seed(0x5eed).build();

    println!("DH-TRNG quickstart");
    println!("  device:      {}", trng.config().device);
    println!("  throughput:  {:.1} Mbps", trng.throughput_mbps());
    println!(
        "  resources:   {} -> {} slices",
        trng.resources(),
        trng.slices()
    );
    println!("  power:       {}", trng.power());
    println!("  efficiency:  {:.1} Mbps/(slice*W)", trng.efficiency());
    println!(
        "  Eq.5 P_rand: {:.3} (per-sample randomness coverage)",
        trng.randomness_coverage()
    );

    // Draw a 256-bit key.
    let mut key = [0u8; 32];
    trng.fill_bytes(&mut key);
    print!("\n  256-bit key: ");
    for b in key {
        print!("{b:02x}");
    }
    println!();

    // Health-check a longer stream (SP 800-90B §4.4 continuous tests).
    let mut monitor = HealthMonitor::new();
    let mut failures = 0u32;
    for _ in 0..1_000_000 {
        if monitor.feed(trng.next_bit()) != HealthStatus::Ok {
            failures += 1;
        }
    }
    println!("  health:      {failures} failures in 1 Mbit (expect 0)");

    // Quick entropy assessment (the paper's Table 1/2/4 metric).
    let bits: BitBuffer = (0..1_000_000).map(|_| trng.next_bit()).collect();
    println!(
        "  min-entropy: {:.4} bits/bit (MCV; paper: ~0.996)",
        min_entropy_mcv(&bits)
    );
}
