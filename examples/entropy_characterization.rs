//! Entropy-source characterisation: walks the paper's §3.1 design-space
//! exploration — ring order (Table 1), hybrid units vs plain ROs
//! (Table 2), and the Eq. 3/4/5 theory that predicts them.
//!
//! Run with: `cargo run --release --example entropy_characterization`

use dh_trng::core::model::{
    eq3_xor_expectation, eq4_xor_expectation_n, eq5_randomness_coverage, RingCoverage,
};
use dh_trng::prelude::*;

const BITS: usize = 1 << 19;

fn measure<T: Trng>(mut t: T) -> f64 {
    let bits: BitBuffer = (0..BITS).map(|_| t.next_bit()).collect();
    min_entropy_mcv(&bits)
}

fn main() {
    println!("== Ring-order sweep (paper Table 1, 100 MHz sampling) ==");
    let mut best = (0u32, 0.0f64);
    for stages in 2..=13 {
        let h = measure(RoXorTrng::table1(stages, 7));
        if h > best.1 {
            best = (stages, h);
        }
        println!("  {stages:>2}-stage ROs: h = {h:.4}");
    }
    println!("  best order: {} (paper: 9)\n", best.0);

    println!("== Hybrid units vs 9-stage ROs (paper Table 2) ==");
    for n in [9u32, 12, 15, 18] {
        let h_dh = measure(HybridUnitGroup::hybrid(n, 7));
        let h_ro = measure(HybridUnitGroup::nine_stage_ro(n, 7));
        println!(
            "  XOR {n:>2}: hybrid {h_dh:.4} vs RO {h_ro:.4}  ({})",
            if h_dh > h_ro {
                "hybrid wins"
            } else {
                "RO wins"
            }
        );
    }

    println!("\n== The theory behind it (Eqs. 3-5) ==");
    // Eq. 3: one XOR stage pulls biased inputs toward fair.
    let (mu1, mu2) = (0.55, 0.58);
    println!(
        "  Eq.3: E[{mu1} xor {mu2}] = {:.4} (closer to 1/2 than either input)",
        eq3_xor_expectation(mu1, mu2)
    );
    // Eq. 4: n-order XOR converges geometrically.
    for n in [1u32, 4, 16] {
        println!(
            "  Eq.4: n = {n:>2} -> E = {:.6}",
            eq4_xor_expectation_n(mu1, mu2, n)
        );
    }
    // Eq. 5: coverage of the full 12-ring architecture at 620 MHz.
    let trng = DhTrng::builder().build();
    println!(
        "  Eq.5: DH-TRNG P_rand at 620 MHz = {:.3}",
        trng.randomness_coverage()
    );
    // And a hand-built Eq. 5 evaluation for one hybrid ring.
    let ring = RingCoverage {
        a: 2.0,
        w: 30.0e-12,
        t_ro: 3.4e-9,
        tau: 0.27,
        eps: 100.0e-12,
        f: 294.0e6,
    };
    println!(
        "  Eq.5: a single hybrid ring covers {:.3}; twelve such rings {:.3}",
        eq5_randomness_coverage(&[ring]),
        eq5_randomness_coverage(&vec![ring; 12]),
    );
}
