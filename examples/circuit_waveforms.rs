//! Gate-level deep dive: runs the full DH-TRNG netlist (23 LUTs, 4
//! MUXes, 14 DFFs — the paper's Figure 5a) on the event-driven simulator
//! and inspects the circuit dynamics the fast behavioural model
//! abstracts: ring frequencies, the central rings' disorderly mode
//! switching, metastable capture rates, and the output bit stream.
//!
//! Run with: `cargo run --release --example circuit_waveforms`

use dh_trng::core::architecture::dh_trng_netlist;
use dh_trng::prelude::*;
use dh_trng::sim::{vcd, Engine, Femtos, Level};

fn main() {
    let device = Device::artix7();
    let (netlist, ports) = dh_trng_netlist(&device);
    let r = netlist.resources();
    println!(
        "netlist: {} LUTs, {} MUXes, {} DFFs ({} nets) — paper: 23/4/14",
        r.luts,
        r.muxes,
        r.dffs,
        netlist.net_count()
    );

    let mut engine = Engine::new(netlist, NoiseRng::seed_from_u64(0xc1c)).expect("valid netlist");
    engine.drive(ports.en, Femtos::ZERO, Level::Low);
    engine.drive(ports.en, Femtos::from_ns(20.0), Level::High);
    let clk_period = Femtos::from_seconds(1.0 / 620.0e6);
    engine.add_clock_50(ports.clk, Femtos::from_ns(40.0), clk_period);

    let tap_probes: Vec<_> = ports.taps.iter().map(|&t| engine.attach_probe(t)).collect();
    let out_probe = engine.attach_probe(ports.out);

    let cycles = 2000u64;
    let t_end = Femtos::from_ns(40.0) + clk_period.mul_u64(cycles);
    engine.run_until(t_end);

    println!("\nring taps after {cycles} sampling cycles:");
    let kinds = ["RO1-a", "RO2-a", "RO1-b", "RO2-b", "central-1", "central-2"];
    for (i, probe) in tap_probes.iter().enumerate() {
        let wave = engine.waveform(*probe).expect("probe");
        let freq = wave
            .mean_period()
            .map(|p| 1.0 / p.as_seconds() / 1e6)
            .unwrap_or(0.0);
        println!(
            "  cell {} {:<10} ~{:>6.0} MHz  ({} transitions, duty {:.2})",
            i / 6,
            kinds[i % 6],
            freq,
            wave.transition_count(),
            wave.duty_cycle(t_end)
        );
    }

    let stats = engine.stats();
    println!(
        "\nengine: {} events, {} net transitions, {} DFF samples, {} metastable ({:.2}%)",
        stats.events,
        stats.net_transitions,
        stats.dff_samples,
        stats.metastable_samples,
        100.0 * stats.metastable_samples as f64 / stats.dff_samples.max(1) as f64
    );

    // Collect the sampled output bits and sanity-check their balance.
    let out_wave = engine.waveform(out_probe).expect("probe");
    let mut ones = 0u64;
    for c in 0..cycles {
        let t = Femtos::from_ns(40.0) + clk_period.mul_u64(c) + clk_period;
        if out_wave.value_at(t) == Level::High {
            ones += 1;
        }
    }
    println!(
        "\ngate-level output: {} of {cycles} sampled bits are 1 ({:.1}%) — \
         the fast model and the gate-level circuit agree on a balanced, \
         toggling output",
        ones,
        100.0 * ones as f64 / cycles as f64
    );

    // Dump the run as a VCD for GTKWave (software oscilloscope).
    let signals: Vec<vcd::VcdSignal> = tap_probes
        .iter()
        .enumerate()
        .map(|(i, p)| vcd::VcdSignal {
            name: format!("tap{}_{}", i / 6, kinds[i % 6].replace('-', "_")),
            wave: engine.waveform(*p).expect("probe"),
        })
        .chain(std::iter::once(vcd::VcdSignal {
            name: "out".into(),
            wave: engine.waveform(out_probe).expect("probe"),
        }))
        .collect();
    let dir = std::path::Path::new("target/paper-figures");
    std::fs::create_dir_all(dir).expect("create output dir");
    let path = dir.join("dh_trng.vcd");
    std::fs::write(&path, vcd::render(&signals)).expect("write VCD");
    println!("VCD waveform dump written to {}", path.display());
}
