//! Post-processing trade-off study: why the paper's "passes NIST and
//! AIS-31 *without any post-processing*" headline matters.
//!
//! A weak source needs a corrector, and correctors eat throughput. This
//! example pits a deliberately biased source against the DH-TRNG, with
//! and without the three classic post-processing stages, and prints the
//! quality/throughput ledger.
//!
//! Run with: `cargo run --release --example postprocessing_tradeoff`

use dh_trng::core::{LfsrWhitener, VonNeumann, XorDecimator};
use dh_trng::prelude::*;

const BITS: usize = 1 << 19;

/// A weak jittery source: 56% ones (a badly skewed latch).
struct WeakSource(NoiseRng);
impl Trng for WeakSource {
    fn next_bit(&mut self) -> bool {
        self.0.bernoulli(0.56)
    }
}

fn assess<T: Trng>(t: &mut T, n: usize) -> (f64, f64) {
    let bits: BitBuffer = (0..n).map(|_| t.next_bit()).collect();
    let ones = bits.ones() as f64 / bits.len() as f64;
    (min_entropy_mcv(&bits), (ones - 0.5).abs())
}

fn main() {
    println!("post-processing trade-off (quality vs throughput)\n");
    println!(
        "{:<38} {:>8} {:>9} {:>14}",
        "configuration", "h (MCV)", "|bias|", "rate multiplier"
    );

    // The weak source family.
    let weak = || WeakSource(NoiseRng::seed_from_u64(0xbad));
    let (h, b) = assess(&mut weak(), BITS);
    println!(
        "{:<38} {h:>8.4} {b:>9.4} {:>14}",
        "weak source, raw", "1.00x"
    );

    let mut vn = VonNeumann::new(weak());
    let (h, b) = assess(&mut vn, BITS / 4);
    println!(
        "{:<38} {h:>8.4} {b:>9.4} {:>13.2}x",
        "weak + Von Neumann",
        1.0 / vn.cost()
    );

    let mut x8 = XorDecimator::new(weak(), 8);
    let (h, b) = assess(&mut x8, BITS / 8);
    println!(
        "{:<38} {h:>8.4} {b:>9.4} {:>13.2}x",
        "weak + XOR-8 decimation",
        1.0 / f64::from(x8.factor())
    );

    let mut lfsr = LfsrWhitener::new(weak());
    let (h, b) = assess(&mut lfsr, BITS);
    println!(
        "{:<38} {h:>8.4} {b:>9.4} {:>14}",
        "weak + LFSR whitener (cosmetic!)", "1.00x"
    );

    // DH-TRNG raw vs post-processed.
    let dh = || DhTrng::builder().seed(0xd4).build();
    let (h, b) = assess(&mut dh(), BITS);
    println!("{:<38} {h:>8.4} {b:>9.4} {:>14}", "DH-TRNG, raw", "1.00x");

    let mut vn = VonNeumann::new(dh());
    let (h, b) = assess(&mut vn, BITS / 4);
    println!(
        "{:<38} {h:>8.4} {b:>9.4} {:>13.2}x",
        "DH-TRNG + Von Neumann",
        1.0 / vn.cost()
    );

    println!(
        "\ntakeaways:\n\
         * the weak source needs Von Neumann / XOR-8 to look healthy, \
           paying a 4-8x rate cut —\n   at DH-TRNG's 620 Mbps line rate \
           that would mean dropping to ~80-150 Mbps;\n\
         * the LFSR whitener hides the bias from the MCV statistic but \
           adds no entropy (cosmetic);\n\
         * DH-TRNG is already at the estimator ceiling raw, so the \
           corrector only burns throughput —\n   the paper's \"no \
           post-processing\" design point."
    );
}
