//! Online health monitoring scenario: a deployed TRNG must detect
//! entropy-source failure at runtime (SP 800-90B §4.4). This example
//! streams from a healthy DH-TRNG, then injects two classic failures —
//! a stuck-at source and a strong bias — and shows the monitor tripping
//! within the expected bit counts.
//!
//! Run with: `cargo run --release --example online_health`

use dh_trng::prelude::*;

/// A failing wrapper: passes its inner TRNG through until `fail_after`,
/// then emits a constant (stuck-at fault, e.g. a died ring oscillator).
struct StuckAfter<T: Trng> {
    inner: T,
    produced: usize,
    fail_after: usize,
}

impl<T: Trng> Trng for StuckAfter<T> {
    fn next_bit(&mut self) -> bool {
        self.produced += 1;
        if self.produced > self.fail_after {
            true
        } else {
            self.inner.next_bit()
        }
    }
}

fn main() {
    // Healthy stream: no trips over 2 Mbit.
    let mut trng = DhTrng::builder().seed(0x4ea1).build();
    let mut monitor = HealthMonitor::new();
    let mut failures = 0u64;
    for _ in 0..2_000_000 {
        if monitor.feed(trng.next_bit()) != HealthStatus::Ok {
            failures += 1;
        }
    }
    println!("healthy DH-TRNG: {failures} health failures in 2 Mbit (expect 0)");

    // Stuck-at failure: the repetition-count test must fire within ~32
    // bits of the fault.
    let mut stuck = StuckAfter {
        inner: DhTrng::builder().seed(0x4ea2).build(),
        produced: 0,
        fail_after: 10_000,
    };
    let mut monitor = HealthMonitor::new();
    let mut tripped_at = None;
    for i in 0..20_000 {
        if monitor.feed(stuck.next_bit()) == HealthStatus::RepetitionFailure {
            tripped_at = Some(i);
            break;
        }
    }
    match tripped_at {
        Some(i) => println!(
            "stuck-at fault injected at bit 10000: RCT tripped at bit {i} \
             ({} bits after the fault)",
            i - 10_000 + 1
        ),
        None => println!("stuck-at fault NOT detected — monitor broken!"),
    }

    // Bias failure: 70% ones trips the adaptive proportion test within a
    // few windows.
    let mut rng = NoiseRng::seed_from_u64(0x4ea3);
    let mut monitor = HealthMonitor::new();
    let mut tripped_at = None;
    for i in 0..100_000 {
        let biased_bit = rng.bernoulli(0.70);
        if monitor.feed(biased_bit) == HealthStatus::ProportionFailure {
            tripped_at = Some(i);
            break;
        }
    }
    match tripped_at {
        Some(i) => println!("70%-biased source: APT tripped at bit {i} (window = 1024)"),
        None => println!("bias NOT detected — monitor broken!"),
    }
}
