//! Key-generation scenario: the paper motivates DH-TRNG with "blockchain
//! digital signatures, trusted execution environments, confidential
//! computing" — workloads that consume keys and nonces at high rates.
//!
//! This example provisions a batch of AES-256 keys + 96-bit nonces,
//! verifies batch-level uniqueness, shows the restart behaviour (§4.2)
//! that makes power-cycled devices safe, and estimates how many keys per
//! second the architecture sustains at its native throughput.
//!
//! Run with: `cargo run --release --example key_generation`

use dh_trng::prelude::*;
use std::collections::HashSet;

const KEYS: usize = 1000;

fn main() {
    let mut trng = DhTrng::builder().seed(0xc0ffee).build();

    // Provision a batch.
    let mut keys: Vec<[u8; 32]> = Vec::with_capacity(KEYS);
    let mut nonces: Vec<[u8; 12]> = Vec::with_capacity(KEYS);
    for _ in 0..KEYS {
        let mut key = [0u8; 32];
        let mut nonce = [0u8; 12];
        trng.fill_bytes(&mut key);
        trng.fill_bytes(&mut nonce);
        keys.push(key);
        nonces.push(nonce);
    }

    let unique_keys: HashSet<_> = keys.iter().collect();
    let unique_nonces: HashSet<_> = nonces.iter().collect();
    println!("provisioned {KEYS} AES-256 keys + 96-bit nonces");
    println!("  unique keys:   {}/{KEYS}", unique_keys.len());
    println!("  unique nonces: {}/{KEYS}", unique_nonces.len());

    // Keys-per-second at the architecture's native rate: 256 + 96 bits
    // per (key, nonce) pair at 620 Mbps.
    let bits_per_pair = 256.0 + 96.0;
    let pairs_per_s = trng.throughput_mbps() * 1e6 / bits_per_pair;
    println!(
        "  at {:.0} Mbps the hardware sustains {:.2} M key+nonce pairs/s",
        trng.throughput_mbps(),
        pairs_per_s / 1e6
    );

    // Power-cycle safety: a device that reboots must not replay key
    // material. Six restarts, first 32 bits each (the paper's §4.2 test).
    let mut first_words = Vec::new();
    for _ in 0..6 {
        trng.restart();
        let bits = trng.collect_bits(32);
        first_words.push(bits.iter().fold(0u32, |w, &b| (w << 1) | u32::from(b)));
    }
    let distinct: HashSet<_> = first_words.iter().collect();
    println!("\nrestart words: {first_words:08X?}");
    println!(
        "  all distinct after power cycles: {} (paper §4.2: unrepeatable)",
        distinct.len() == first_words.len()
    );

    // Batch-level statistical sanity: pool the keys into one bitstream
    // and check bias + min-entropy.
    let pooled: BitBuffer = keys
        .iter()
        .flat_map(|k| k.iter())
        .flat_map(|&byte| (0..8).rev().map(move |i| (byte >> i) & 1 == 1))
        .collect();
    println!(
        "\npooled key material: {} bits, min-entropy {:.4} bits/bit",
        pooled.len(),
        min_entropy_mcv(&pooled)
    );
}
