//! Graceful fail-over: a shard retires mid-stream and the service
//! keeps serving from a healthy deployment instead of panicking.
//!
//! The failure is *injected deterministically* — shard 1 of 3 retires
//! after exactly two chunks — so the drill reproduces bit-for-bit:
//! the engine's retirement contract guarantees every chunk merged
//! before the failed shard's round-robin slot is still delivered into
//! the caller's buffer, and the typed `StreamError::ShardFailed`
//! surfaces at any pipeline tier (here: the DRBG tier a key-serving
//! service would expose).
//!
//! The drill also captures the retirement through the telemetry layer:
//! a deterministic [`Tracer`] records every stage event the doomed
//! deployment emits and dumps the Perfetto-compatible trace to
//! `failover.trace.json` — open it at <https://ui.perfetto.dev> to see
//! the per-shard tracks and the `retired` instant on shard 1's track.
//!
//! Run with: `cargo run --release --example failover`

use std::sync::Arc;

use dh_trng::prelude::*;
use rand::RngCore;

const CHUNK: usize = 4 * 1024;
const TRACE_PATH: &str = "failover.trace.json";

fn main() {
    println!("DH-TRNG graceful shard fail-over drill");

    // --- The raw-tier contract: deterministic prefix, then the error.
    // The injected-timestamp tracer makes the dump reproducible: ts is
    // the capture sequence number, not wall time.
    let tracer = Arc::new(Tracer::deterministic(4096));
    let mut doomed = EntropyStream::builder()
        .shards(3)
        .seed(0xFA11)
        .chunk_bytes(CHUNK)
        .inject_shard_failure(1, 2)
        .recorder(Arc::clone(&tracer) as Arc<dyn Recorder>)
        .build();
    // Shard 1 contributes its two chunks to rounds 0 and 1; round 2
    // delivers shard 0's chunk and then hits the obituary in shard 1's
    // slot: exactly 7 healthy chunks precede the typed error.
    let mut payload = vec![0u8; 16 * CHUNK];
    let err = doomed
        .read(&mut payload)
        .expect_err("the injected retirement must surface");
    println!(
        "  raw tier: delivered {} KiB ({} chunks), then: {err}",
        doomed.bytes_delivered() / 1024,
        doomed.bytes_delivered() as usize / CHUNK,
    );
    assert_eq!(doomed.bytes_delivered(), 7 * CHUNK as u64);
    assert!(matches!(err, StreamError::ShardFailed { shard: 1, .. }));

    // Dump the captured retirement as a Chrome/Perfetto trace. The
    // counters corroborate what the trace shows: exactly one retirement,
    // and 7 chunks merged before the obituary slot.
    let snapshot = doomed.metrics().snapshot();
    assert_eq!(snapshot.retirements, 1);
    assert_eq!(snapshot.chunks_merged, 7);
    drop(doomed);
    let trace = tracer.to_chrome_json();
    assert!(!trace.is_empty(), "the drill must have produced a trace");
    assert!(
        trace.contains("\"retired\""),
        "the injected retirement must appear in the trace"
    );
    std::fs::write(TRACE_PATH, &trace).expect("trace dump is writable");
    println!(
        "  trace: {} events ({} bytes) -> {TRACE_PATH}",
        tracer.recorded(),
        trace.len(),
    );

    // --- The same failure through the full pipeline, handled. A
    // reseed-heavy policy keeps the drill short: every 512-bit block
    // harvests fresh seed material, so the dead shard surfaces after a
    // handful of keys instead of after the default policy's ~2700x
    // expansion of the buffered conditioned bytes.
    let mut service = PipelineBuilder::new()
        .shards(2)
        .seed(0xFA11)
        .chunk_bytes(CHUNK)
        .drbg_config(DrbgConfig {
            reseed_interval_bits: 512,
            seed_bytes: 48,
            prediction_resistance: false,
        })
        .inject_shard_failure(0, 2)
        .build(Tier::Drbg);
    // Healthy fallback deployment (in production: the standby replica).
    let mut fallback = StreamRng::with_shards(2, 0x600D);

    let mut key = [0u8; 32];
    let mut served = 0u64;
    loop {
        match service.read(&mut key) {
            Ok(()) => {
                served += 1;
                if served <= 3 {
                    println!(
                        "  drbg tier: served key {served} ({:02x}{:02x}..)",
                        key[0], key[1]
                    );
                }
            }
            Err(StreamError::ShardFailed {
                shard,
                consecutive_restarts,
            }) => {
                println!(
                    "  drbg tier: shard {shard} retired ({consecutive_restarts} restarts) \
                     after {served} keys — failing over to the healthy deployment"
                );
                fallback
                    .try_fill_bytes(&mut key)
                    .expect("healthy deployment still serves");
                println!("  fail-over key head: {:02x}{:02x}..", key[0], key[1]);
                break;
            }
            Err(e) => {
                eprintln!("  unexpected stream error: {e}");
                std::process::exit(1);
            }
        }
    }
}
