//! Graceful fail-over: a shard retires mid-stream and the service
//! keeps serving from a healthy deployment instead of panicking.
//!
//! The failure is *injected deterministically* — shard 1 of 3 retires
//! after exactly two chunks — so the drill reproduces bit-for-bit:
//! the engine's retirement contract guarantees every chunk merged
//! before the failed shard's round-robin slot is still delivered into
//! the caller's buffer, and the typed `StreamError::ShardFailed`
//! surfaces at any pipeline tier (here: the DRBG tier a key-serving
//! service would expose).
//!
//! Run with: `cargo run --release --example failover`

use dh_trng::prelude::*;
use rand::RngCore;

const CHUNK: usize = 4 * 1024;

fn main() {
    println!("DH-TRNG graceful shard fail-over drill");

    // --- The raw-tier contract: deterministic prefix, then the error.
    let mut doomed = EntropyStream::builder()
        .shards(3)
        .seed(0xFA11)
        .chunk_bytes(CHUNK)
        .inject_shard_failure(1, 2)
        .build();
    // Shard 1 contributes its two chunks to rounds 0 and 1; round 2
    // delivers shard 0's chunk and then hits the obituary in shard 1's
    // slot: exactly 7 healthy chunks precede the typed error.
    let mut payload = vec![0u8; 16 * CHUNK];
    let err = doomed
        .read(&mut payload)
        .expect_err("the injected retirement must surface");
    println!(
        "  raw tier: delivered {} KiB ({} chunks), then: {err}",
        doomed.bytes_delivered() / 1024,
        doomed.bytes_delivered() as usize / CHUNK,
    );
    assert_eq!(doomed.bytes_delivered(), 7 * CHUNK as u64);
    assert!(matches!(err, StreamError::ShardFailed { shard: 1, .. }));

    // --- The same failure through the full pipeline, handled. A
    // reseed-heavy policy keeps the drill short: every 512-bit block
    // harvests fresh seed material, so the dead shard surfaces after a
    // handful of keys instead of after the default policy's ~2700x
    // expansion of the buffered conditioned bytes.
    let mut service = PipelineBuilder::new()
        .shards(2)
        .seed(0xFA11)
        .chunk_bytes(CHUNK)
        .drbg_config(DrbgConfig {
            reseed_interval_bits: 512,
            seed_bytes: 48,
            prediction_resistance: false,
        })
        .inject_shard_failure(0, 2)
        .build(Tier::Drbg);
    // Healthy fallback deployment (in production: the standby replica).
    let mut fallback = StreamRng::with_shards(2, 0x600D);

    let mut key = [0u8; 32];
    let mut served = 0u64;
    loop {
        match service.read(&mut key) {
            Ok(()) => {
                served += 1;
                if served <= 3 {
                    println!(
                        "  drbg tier: served key {served} ({:02x}{:02x}..)",
                        key[0], key[1]
                    );
                }
            }
            Err(StreamError::ShardFailed {
                shard,
                consecutive_restarts,
            }) => {
                println!(
                    "  drbg tier: shard {shard} retired ({consecutive_restarts} restarts) \
                     after {served} keys — failing over to the healthy deployment"
                );
                fallback
                    .try_fill_bytes(&mut key)
                    .expect("healthy deployment still serves");
                println!("  fail-over key head: {:02x}{:02x}..", key[0], key[1]);
                break;
            }
            Err(e) => {
                eprintln!("  unexpected stream error: {e}");
                std::process::exit(1);
            }
        }
    }
}
