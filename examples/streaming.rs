//! Streaming: serve entropy from four parallel DH-TRNG shards through
//! the pooled zero-copy read path — the paper's multi-instance
//! deployment as a consumer API.
//!
//! Shard workers generate into a fixed set of recycled chunk buffers;
//! `read` moves bytes pool chunk → caller buffer with nothing in
//! between, so the steady-state path never touches the heap (the
//! `BENCH_4.json` allocation metric and `tests/zero_alloc.rs` pin
//! exactly this). See `examples/failover.rs` for handling a terminal
//! shard failure gracefully.
//!
//! Run with: `cargo run --release --example streaming`

use dh_trng::prelude::*;
use rand::{Rng, RngCore};

const SHARDS: usize = 4;
const PAYLOAD: usize = 1 << 20; // 1 MiB

fn main() {
    // Four independently-seeded instances, each on its own worker
    // thread and its own placement region, merged deterministically
    // through the stage-graph executor's buffer pool.
    let mut rng = StreamRng::new(
        EntropyStream::builder()
            .shards(SHARDS)
            .seed(0x5eed)
            .chunk_bytes(64 * 1024)
            .build(),
    );

    println!("DH-TRNG streaming engine");
    println!("  shards:            {}", rng.stream().shards());
    println!(
        "  pool buffers:      {} (created once at build; recycled forever)",
        rng.stream().pool_buffers()
    );
    println!(
        "  modeled throughput: {:.1} Mbps ({}x the single instance)",
        rng.stream().throughput_mbps(),
        SHARDS
    );
    for (shard, placement) in rng.stream().placements().iter().enumerate() {
        let (w, h) = placement.bounding_box();
        println!(
            "  shard {shard} placement: origin {} ({w}x{h} slices)",
            placement.origin()
        );
    }

    // The pooled zero-copy read path: 1 MiB straight into a caller
    // buffer. A production consumer uses the fallible path — a stream
    // whose shards keep failing health tests retires with a typed
    // error instead of silently serving suspect bits.
    let start = std::time::Instant::now();
    let mut payload = vec![0u8; PAYLOAD];
    if let Err(e) = rng.try_fill_bytes(&mut payload) {
        eprintln!("entropy stream failed terminally: {e}");
        std::process::exit(1);
    }
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "\n  filled {} KiB in {:.1} ms ({:.1} simulated Mbps, zero allocations steady-state)",
        PAYLOAD / 1024,
        elapsed * 1e3,
        PAYLOAD as f64 * 8.0 / elapsed / 1e6
    );

    // Downstream stages can go one step further and borrow each pooled
    // chunk in place — this is what the conditioned tier runs on.
    let mut stream = rng.into_inner();
    let chunk_head = stream
        .with_next_chunk(|chunk| (chunk.len(), [chunk[0], chunk[1]]))
        .expect("healthy stream");
    println!(
        "  borrowed a {}-byte pool chunk in place (head {:02x}{:02x}..)",
        chunk_head.0, chunk_head.1[0], chunk_head.1[1]
    );
    let mut rng = StreamRng::new(stream);

    // The stream drives the whole rand ecosystem.
    let die: u8 = rng.gen_range(1..=6);
    println!("  a die roll:        {die}");

    // Sanity: the merged stream is balanced, and no shard restarted.
    let ones: u32 = payload.iter().map(|b| b.count_ones()).sum();
    println!(
        "  ones fraction:     {:.5} (expect ~0.5)",
        f64::from(ones) / (PAYLOAD as f64 * 8.0)
    );
    println!(
        "  health restarts:   {} (expect 0 on a healthy source)",
        rng.stream().restarts()
    );
    // 1 MiB payload + one 64 KiB chunk borrowed in place + the 8 bytes
    // behind the die roll's u64 draw.
    assert_eq!(
        rng.stream().bytes_delivered(),
        PAYLOAD as u64 + 64 * 1024 + 8
    );
}
