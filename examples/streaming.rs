//! Streaming: serve entropy from four parallel DH-TRNG shards through
//! the `rand`-compatible adapter — the paper's multi-instance
//! deployment as a consumer API — and handle a terminal shard failure
//! gracefully instead of unwrapping.
//!
//! Run with: `cargo run --release --example streaming`

use dh_trng::prelude::*;
use rand::{Rng, RngCore};

const SHARDS: usize = 4;
const PAYLOAD: usize = 1 << 20; // 1 MiB

fn main() {
    // Four independently-seeded instances, each on its own worker
    // thread and its own placement region, merged deterministically.
    let mut rng = StreamRng::new(
        EntropyStream::builder()
            .shards(SHARDS)
            .seed(0x5eed)
            .chunk_bytes(64 * 1024)
            .build(),
    );

    println!("DH-TRNG streaming engine");
    println!("  shards:            {}", rng.stream().shards());
    println!(
        "  modeled throughput: {:.1} Mbps ({}x the single instance)",
        rng.stream().throughput_mbps(),
        SHARDS
    );
    for (shard, placement) in rng.stream().placements().iter().enumerate() {
        let (w, h) = placement.bounding_box();
        println!(
            "  shard {shard} placement: origin {} ({w}x{h} slices)",
            placement.origin()
        );
    }

    // Fill 1 MiB through the rand::RngCore adapter. A production
    // consumer uses the fallible path: a stream whose shards keep
    // failing health tests retires with a typed error instead of
    // silently serving suspect bits — handle it, don't unwrap it.
    let start = std::time::Instant::now();
    let mut payload = vec![0u8; PAYLOAD];
    if let Err(e) = rng.try_fill_bytes(&mut payload) {
        eprintln!("entropy stream failed terminally: {e}");
        std::process::exit(1);
    }
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "\n  filled {} KiB in {:.1} ms ({:.1} simulated Mbps)",
        PAYLOAD / 1024,
        elapsed * 1e3,
        PAYLOAD as f64 * 8.0 / elapsed / 1e6
    );

    // The stream drives the whole rand ecosystem.
    let die: u8 = rng.gen_range(1..=6);
    println!("  a die roll:        {die}");

    // Sanity: the merged stream is balanced, and no shard restarted.
    let ones: u32 = payload.iter().map(|b| b.count_ones()).sum();
    println!(
        "  ones fraction:     {:.5} (expect ~0.5)",
        f64::from(ones) / (PAYLOAD as f64 * 8.0)
    );
    println!(
        "  health restarts:   {} (expect 0 on a healthy source)",
        rng.stream().restarts()
    );
    // 1 MiB payload + the 8 bytes behind the die roll's u64 draw.
    assert_eq!(rng.stream().bytes_delivered(), PAYLOAD as u64 + 8);

    // --- Graceful degradation under shard failure -------------------
    //
    // Force the failure path: health cutoffs no real source can
    // satisfy (a repetition-count cutoff of 2 trips on any repeated
    // bit) retire shard 0 after its restart budget. The consumer sees
    // a typed `StreamError::ShardFailed` — at any pipeline tier — and
    // can fail over instead of panicking.
    println!("\nInduced shard failure (impossible health cutoffs):");
    let mut doomed = PipelineBuilder::new()
        .shards(2)
        .seed(0x5eed)
        .chunk_bytes(4 * 1024)
        .health(HealthConfig {
            rct_cutoff: 2,
            apt_window: 64,
            apt_cutoff: 64,
        })
        .max_consecutive_restarts(2)
        .build(Tier::Drbg);
    let mut key = [0u8; 32];
    match doomed.read(&mut key) {
        Ok(()) => unreachable!("cutoffs above cannot be satisfied"),
        Err(StreamError::ShardFailed {
            shard,
            consecutive_restarts,
        }) => {
            println!(
                "  shard {shard} retired after {consecutive_restarts} consecutive restarts \
                 — failing over to the healthy deployment"
            );
            // Graceful recovery: serve the request from the healthy
            // stream instead of crashing the service.
            rng.try_fill_bytes(&mut key)
                .expect("healthy deployment still serves");
            println!("  fail-over key head: {:02x}{:02x}..", key[0], key[1]);
        }
        Err(e) => {
            eprintln!("  unexpected stream error: {e}");
            std::process::exit(1);
        }
    }
}
