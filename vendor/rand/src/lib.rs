//! Offline stand-in for the `rand` crate (API subset of `rand 0.8`).
//!
//! The DH-TRNG workspace builds in environments with no network access,
//! so the handful of `rand` items it uses are reimplemented here:
//! [`RngCore`], [`SeedableRng`], [`Rng`] (with `gen`, `gen_range`,
//! `gen_bool`), and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 generator of the real crate — so absolute bit streams differ
//! from upstream `rand`, but every property the workspace relies on
//! (determinism under a fixed seed, uniformity, cheap forking) holds.
//! Swap the workspace `path` dependency for a crates.io `version` to get
//! the real thing; no source changes are required.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Error type for fallible RNG operations (never produced by [`rngs::StdRng`]).
#[derive(Debug)]
pub struct Error {
    inner: Box<dyn std::error::Error + Send + Sync>,
}

impl Error {
    /// Wraps a source error — the real crate's `Error::new` (std builds).
    pub fn new<E>(err: E) -> Self
    where
        E: Into<Box<dyn std::error::Error + Send + Sync>>,
    {
        Self { inner: err.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "random number generator failure: {}", self.inner)
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(self.inner.as_ref())
    }
}

/// The core of a random number generator: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure (infallible here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded via SplitMix64 the way
    /// `rand_core` does it.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draws one uniform value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 16) as u16
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1), as in rand's `Standard`.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer/float ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift bounded draw; bias is < 2^-64, irrelevant
                // for the simulation workloads this crate serves.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return <$t>::sample_standard(rng);
                }
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws one uniform value from `range`.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256++ in this offline
    /// subset; ChaCha12 in the real `rand`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        /// Snapshots the raw xoshiro256++ state words.
        ///
        /// Together with [`from_state`](Self::from_state) this lets a
        /// caller suspend a generator and resume it elsewhere (the
        /// bit-sliced kernel keeps per-lane copies of this state and
        /// advances them with the same update rule). Not part of the
        /// real `rand` API — offline-shim extension.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Restores a generator from a [`state`](Self::state) snapshot.
        ///
        /// An all-zero state (a fixed point of xoshiro, never produced
        /// by a seeded generator) is perturbed exactly as
        /// [`from_seed`](super::SeedableRng::from_seed) perturbs it.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return <Self as super::SeedableRng>::from_seed([0u8; 32]);
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2019).
            let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; perturb it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0usize..1000 {
            let x = rng.gen_range(0..=i);
            assert!(x <= i);
            let y = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&y));
        }
    }

    #[test]
    fn f64_samples_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
