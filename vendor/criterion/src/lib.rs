//! Offline stand-in for the `criterion` crate (API subset of
//! `criterion 0.5`).
//!
//! The DH-TRNG workspace builds in environments with no network access,
//! so the benchmarking surface its benches use is reimplemented here:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] with
//! [`throughput`](BenchmarkGroup::throughput) /
//! [`bench_function`](BenchmarkGroup::bench_function) /
//! [`finish`](BenchmarkGroup::finish), [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! The measurement loop is a plain warm-up + timed batch with a mean
//! ns/iter report — no outlier rejection, no HTML reports, no saved
//! baselines. That is enough to compare hot paths across commits from
//! the terminal; swap the workspace `path` dependency for a crates.io
//! `version` to get the real statistics machinery.
//!
//! Like the real crate, `--quick` (as a bench argument:
//! `cargo bench -- --quick`) or the `CRITERION_QUICK` environment
//! variable shrinks the warm-up and measurement budgets — CI smoke jobs
//! use it to keep bench runs to a few seconds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub mod measurement {
    //! Measurement types (wall-clock only, in this subset).

    /// Wall-clock time measurement — the only measurement supported here.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// How many "items" one iteration of a benchmark processes, for
/// throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many bytes each.
    Bytes(u64),
    /// Iterations process this many abstract elements each.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    mean_ns: f64,
}

/// Whether quick mode is active (`--quick` bench argument or
/// `CRITERION_QUICK` in the environment).
fn quick_mode() -> bool {
    static QUICK: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *QUICK.get_or_init(|| {
        std::env::args().any(|a| a == "--quick") || std::env::var_os("CRITERION_QUICK").is_some()
    })
}

impl Bencher {
    /// Calls `routine` repeatedly and records its mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also sizes the timed batch so one run costs ~100 ms
        // (~10 ms in quick mode).
        let (warmup_ms, measure_s) = if quick_mode() { (5, 0.01) } else { (30, 0.1) };
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < Duration::from_millis(warmup_ms) {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let timed_iters = ((measure_s / per_iter) as u64).clamp(1, 1_000_000);

        let start = Instant::now();
        for _ in 0..timed_iters {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_secs_f64() * 1e9 / timed_iters as f64;
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    criterion: &'a mut Criterion<M>,
    name: String,
    throughput: Option<Throughput>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark and prints its mean time (and throughput).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let mut bencher = Bencher { mean_ns: f64::NAN };
        f(&mut bencher);
        let rate = self.throughput.map(|t| match t {
            Throughput::Bytes(n) => format!(
                " ({:.1} MiB/s)",
                n as f64 / (bencher.mean_ns * 1e-9) / (1024.0 * 1024.0)
            ),
            Throughput::Elements(n) => {
                format!(
                    " ({:.1} Melem/s)",
                    n as f64 / (bencher.mean_ns * 1e-9) / 1e6
                )
            }
        });
        println!(
            "{}/{:<40} time: {:>12.1} ns/iter{}",
            self.name,
            id.to_string(),
            bencher.mean_ns,
            rate.unwrap_or_default()
        );
        self.criterion.completed += 1;
    }

    /// Ends the group (kept for API compatibility; reporting is eager).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion<M = measurement::WallTime> {
    completed: usize,
    _measurement: M,
}

impl Default for Criterion<measurement::WallTime> {
    fn default() -> Self {
        Criterion {
            completed: 0,
            _measurement: measurement::WallTime,
        }
    }
}

impl<M> Criterion<M> {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_, M> {
        let name = name.into();
        println!("== {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
    }
}

/// Bundles benchmark functions into a runnable group, as in the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
