//! The [`Strategy`] trait and the primitive strategies of this subset.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real crate there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the test RNG stream.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (the real crate's `prop_map`).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Types with a canonical "generate anything" strategy ([`crate::any`]).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`crate::any`].
#[derive(Debug)]
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> Any<T> {
    pub(crate) fn new() -> Self {
        Any {
            _marker: PhantomData,
        }
    }
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any::new()
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy: empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy: empty float range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_tuple {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.new_value(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A / a);
impl_strategy_tuple!(A / a, B / b);
impl_strategy_tuple!(A / a, B / b, C / c);
impl_strategy_tuple!(A / a, B / b, C / c, D / d);
impl_strategy_tuple!(A / a, B / b, C / c, D / d, E / e);
impl_strategy_tuple!(A / a, B / b, C / c, D / d, E / e, F / f);

/// `Strategy` for constants via `Just` (kept for API familiarity).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(
    /// The constant value every case receives.
    pub T,
);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
