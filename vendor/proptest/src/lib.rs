//! Offline stand-in for the `proptest` crate (API subset of `proptest 1`).
//!
//! The DH-TRNG workspace builds in environments with no network access,
//! so the slice of proptest it uses is reimplemented here: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), the
//! [`strategy::Strategy`] trait with `prop_map`, [`any`], range and tuple
//! strategies, [`collection::vec`], and the `prop_assert*` / [`prop_assume!`]
//! macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **no shrinking** — a failing case panics with the generated inputs
//!   in scope, but is not minimised;
//! * **fixed RNG** — cases derive from a deterministic per-test stream,
//!   so CI failures always reproduce locally;
//! * `prop_assert*` panic immediately instead of recording a
//!   `TestCaseError`.
//!
//! Swap the workspace `path` dependency for a crates.io `version` to get
//! the real crate; no source changes are required.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections (`vec` only, in this subset).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of values from `element`, with lengths uniform in
    /// `size` (half-open, like the real crate's `SizeRange`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.uniform_usize(self.size.start, self.size.end);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Strategy generating any value of `T` (via [`strategy::Arbitrary`]).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::{any, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property (panics on failure in this subset).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property (panics on failure in this subset).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property (panics on failure in this subset).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::ops::ControlFlow::Break(());
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);
                    )+
                    let _flow: ::core::ops::ControlFlow<()> = (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::core::ops::ControlFlow::Continue(())
                    })();
                }
            }
        )*
    };
}
