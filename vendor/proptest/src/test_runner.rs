//! The deterministic RNG behind every generated case.

/// Deterministic per-test random stream (SplitMix64).
///
/// Seeded from the test's name, so each property gets an independent but
/// stable stream: a CI failure reproduces locally with no extra flags.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Stream seeded from a test name.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi);
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_f64_stays_in_range() {
        let mut rng = TestRng::for_test("unit");
        for _ in 0..10_000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
