//! Property and stress tests for the lock-free SPSC ring behind the
//! worker→merger hand-off (`dh_trng::stream::ring`).
//!
//! The engine-level consequences of the ring invariants (no starved
//! worker, no corrupted merge) are pinned by `tests/pool_props.rs`,
//! which now runs entirely over rings; this suite drives the ring
//! itself:
//!
//! * **model equivalence** — under arbitrary push/pop interleavings
//!   the ring behaves exactly like a bounded FIFO queue: every push
//!   outcome and every popped value matches a `VecDeque` model, so
//!   nothing is ever lost, duplicated, or reordered;
//! * **retirement stays in-band** — a producer that pushes a tagged
//!   terminal message (the shard-obituary pattern) and hangs up
//!   delivers every prior value, then the tag, then the disconnect —
//!   in that order, under any capacity;
//! * **restart-storm interleavings** — pushes and pops arriving in
//!   bursts (the shape a restarting shard produces) preserve the
//!   model equivalence across ring wrap-arounds;
//! * **two-thread stress** — a real producer thread and the test
//!   thread hammer a capacity-2 ring pair (data + return, exactly the
//!   engine topology) for 10^6 hand-offs: every sequence number
//!   arrives exactly once in order, and every buffer is accounted for
//!   at the end.

use dh_trng::stream::ring::{spsc, spsc_with_wait_counters, TryPopError, TryPushError};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ring_matches_a_bounded_fifo_model_under_arbitrary_interleavings(
        capacity in 1usize..9,
        ops in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let (mut tx, mut rx) = spsc::<u64>(capacity);
        let rounded = tx.capacity();
        prop_assert!(rounded.is_power_of_two() && rounded >= capacity);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        for push in ops {
            if push {
                match tx.try_push(next) {
                    Ok(()) => {
                        prop_assert!(model.len() < rounded, "push succeeded past capacity");
                        model.push_back(next);
                    }
                    Err(TryPushError::Full(v)) => {
                        prop_assert_eq!(v, next, "a refused push must hand the value back");
                        prop_assert_eq!(model.len(), rounded, "push refused below capacity");
                    }
                    Err(TryPushError::Disconnected(_)) => {
                        prop_assert!(false, "consumer is alive");
                    }
                }
                next += 1;
            } else {
                match rx.try_pop() {
                    Ok(v) => prop_assert_eq!(Some(v), model.pop_front()),
                    Err(TryPopError::Empty) => prop_assert!(model.is_empty()),
                    Err(TryPopError::Disconnected) => prop_assert!(false, "producer is alive"),
                }
            }
        }
        // Drain: exactly the model's residue, in order, then Empty.
        while let Ok(v) = rx.try_pop() {
            prop_assert_eq!(Some(v), model.pop_front());
        }
        prop_assert!(model.is_empty());
    }

    #[test]
    fn retirement_tag_arrives_after_every_chunk_then_the_disconnect(
        capacity in 1usize..9,
        healthy in 0usize..8,
    ) {
        // The shard pattern: some healthy chunks, one terminal tag,
        // hang up. The consumer must see all of it, in order.
        let (mut tx, mut rx) = spsc::<Result<u64, &'static str>>(capacity.max(healthy + 1));
        for i in 0..healthy {
            tx.try_push(Ok(i as u64)).expect("sized for the whole burst");
        }
        tx.try_push(Err("retired")).expect("sized for the tag");
        drop(tx);
        for i in 0..healthy {
            prop_assert_eq!(rx.pop(), Ok(Ok(i as u64)));
        }
        prop_assert_eq!(rx.pop(), Ok(Err("retired")));
        prop_assert_eq!(rx.pop(), Err(TryPopError::Disconnected));
        prop_assert_eq!(rx.try_pop(), Err(TryPopError::Disconnected));
    }

    #[test]
    fn bursty_restart_storm_interleavings_preserve_fifo_across_wraparound(
        capacity in 1usize..5,
        bursts in proptest::collection::vec((1usize..6, 1usize..6), 1..40),
    ) {
        // Bursts of pushes then bursts of pops — the traffic shape of a
        // shard that stalls to regenerate (restart storm) and then
        // catches up — cycling the cursors far past the slot count.
        let (mut tx, mut rx) = spsc::<u64>(capacity);
        let rounded = tx.capacity();
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        for (pushes, pops) in bursts {
            for _ in 0..pushes {
                match tx.try_push(next) {
                    Ok(()) => {
                        prop_assert!(model.len() < rounded);
                        model.push_back(next);
                        next += 1;
                    }
                    Err(TryPushError::Full(_)) => {
                        prop_assert_eq!(model.len(), rounded);
                        break;
                    }
                    Err(TryPushError::Disconnected(_)) => prop_assert!(false, "consumer alive"),
                }
            }
            for _ in 0..pops {
                match rx.try_pop() {
                    Ok(v) => prop_assert_eq!(Some(v), model.pop_front()),
                    Err(TryPopError::Empty) => {
                        prop_assert!(model.is_empty());
                        break;
                    }
                    Err(TryPopError::Disconnected) => prop_assert!(false, "producer alive"),
                }
            }
        }
        while let Ok(v) = rx.try_pop() {
            prop_assert_eq!(Some(v), model.pop_front());
        }
        prop_assert!(model.is_empty());
    }

    #[test]
    fn wait_counters_stay_zero_under_try_only_interleaved_storms(
        capacity in 1usize..9,
        ops in proptest::collection::vec(any::<bool>(), 1..300),
    ) {
        // The telemetry invariant behind `Snapshot::ring_parks` /
        // `ring_wakes`: the counters tally *actual* thread parks and
        // claimed notifies, never speculative ones. A storm of
        // non-blocking try_push/try_pop — however it interleaves, full
        // or empty — must leave both at exactly zero: refusals are not
        // parks, and publishes with no registered waiter are not wakes.
        let parks = Arc::new(AtomicU64::new(0));
        let wakes = Arc::new(AtomicU64::new(0));
        let (mut tx, mut rx) =
            spsc_with_wait_counters::<u64>(capacity, Arc::clone(&parks), Arc::clone(&wakes));
        let mut model: VecDeque<u64> = VecDeque::new();
        let rounded = tx.capacity();
        let mut next = 0u64;
        for push in ops {
            if push {
                match tx.try_push(next) {
                    Ok(()) => model.push_back(next),
                    Err(TryPushError::Full(_)) => prop_assert_eq!(model.len(), rounded),
                    Err(TryPushError::Disconnected(_)) => prop_assert!(false, "consumer alive"),
                }
                next += 1;
            } else {
                match rx.try_pop() {
                    Ok(v) => prop_assert_eq!(Some(v), model.pop_front()),
                    Err(TryPopError::Empty) => prop_assert!(model.is_empty()),
                    Err(TryPopError::Disconnected) => prop_assert!(false, "producer alive"),
                }
            }
            // Never negative (u64 by construction) and never phantom:
            // a try-only schedule parks nobody and wakes nobody.
            prop_assert_eq!(tx.parks(), 0);
            prop_assert_eq!(tx.wakes(), 0);
            prop_assert_eq!(rx.parks(), 0);
            prop_assert_eq!(rx.wakes(), 0);
        }
        prop_assert_eq!(parks.load(Ordering::Relaxed), 0);
        prop_assert_eq!(wakes.load(Ordering::Relaxed), 0);
    }
}

/// Forces the blocking path the proptest above excludes: a consumer
/// that `pop()`s an empty ring must actually park, and the producer's
/// eventual push must claim that waiter — so after the hand-off both
/// counters are at least 1 and both ends read the same shared tallies.
/// (No `wakes <= parks` assertion: a notify can legitimately claim a
/// waiter between its wakeup-prepare and its park, so wakes may lead.)
#[test]
fn blocking_pop_on_an_empty_ring_records_a_park_and_its_wake() {
    let parks = Arc::new(AtomicU64::new(0));
    let wakes = Arc::new(AtomicU64::new(0));
    let (mut tx, mut rx) =
        spsc_with_wait_counters::<u64>(2, Arc::clone(&parks), Arc::clone(&wakes));
    let consumer = std::thread::spawn(move || {
        let value = rx.pop().expect("producer pushes before hanging up");
        (value, rx.parks(), rx.wakes())
    });
    // Give the consumer time to find the ring empty and park. A scheduling
    // hiccup makes the test weaker (the pop might not park), never flaky,
    // so sleep generously once.
    std::thread::sleep(std::time::Duration::from_millis(50));
    tx.push(7).expect("consumer alive");
    let (value, consumer_parks, consumer_wakes) = consumer.join().expect("consumer exits");
    assert_eq!(value, 7);
    assert!(
        consumer_parks >= 1,
        "a pop that found the ring empty for 50ms must have parked"
    );
    assert!(
        consumer_wakes >= 1,
        "the push that ended the park must have claimed the waiter"
    );
    // Both ends (and the injected handles) observe the same shared tallies.
    assert_eq!(tx.parks(), parks.load(Ordering::Relaxed));
    assert_eq!(tx.wakes(), wakes.load(Ordering::Relaxed));
    assert_eq!(consumer_parks, parks.load(Ordering::Relaxed));
    assert_eq!(consumer_wakes, wakes.load(Ordering::Relaxed));
}

/// Two real threads, the engine's exact two-ring topology (data +
/// return) at the tightest interesting capacity, a million hand-offs:
/// every sequence number arrives exactly once in order (nothing lost,
/// duplicated, or reordered under contention) and every buffer is
/// accounted for at the end.
#[test]
fn two_thread_stress_accounts_for_every_buffer_across_a_million_handoffs() {
    const HANDOFFS: u64 = 1_000_000;
    const BUFFERS: usize = 4;
    let (mut data_tx, mut data_rx) = spsc::<Vec<u8>>(2);
    let (mut pool_tx, mut pool_rx) = spsc::<Vec<u8>>(BUFFERS);
    // Each buffer carries a persistent identity byte + an 8-byte
    // sequence slot.
    for id in 0..BUFFERS as u8 {
        pool_tx
            .push(vec![id, 0, 0, 0, 0, 0, 0, 0, 0])
            .expect("pool sized");
    }
    let producer = std::thread::spawn(move || {
        let mut seq = 0u64;
        while let Ok(mut buffer) = pool_rx.pop() {
            buffer[1..9].copy_from_slice(&seq.to_le_bytes());
            if data_tx.push(buffer).is_err() {
                break;
            }
            seq += 1;
        }
        // Hand back what the pool still holds so the consumer can
        // account for every buffer. (Dropping data_tx first would lose
        // nothing either — the consumer drains residue — but returning
        // them makes the accounting exact.)
        seq
    });
    let mut id_counts = [0u64; BUFFERS];
    for expect in 0..HANDOFFS {
        let buffer = data_rx.pop().expect("producer alive");
        let id = buffer[0] as usize;
        assert!(id < BUFFERS, "unknown buffer identity");
        id_counts[id] += 1;
        let seq = u64::from_le_bytes(buffer[1..9].try_into().unwrap());
        assert_eq!(seq, expect, "hand-off lost, duplicated, or reordered");
        pool_tx.push(buffer).expect("producer alive");
    }
    // Stop the producer, then account for every buffer: the ones still
    // in the data ring plus the ones the producer never picked up from
    // the pool must together carry all four identities exactly once.
    drop(pool_tx);
    let mut residue = Vec::new();
    loop {
        match data_rx.pop() {
            Ok(buffer) => residue.push(buffer[0]),
            Err(TryPopError::Disconnected) => break,
            Err(TryPopError::Empty) => unreachable!("pop blocks until data or disconnect"),
        }
    }
    let sent = producer.join().expect("producer exits");
    assert!(sent >= HANDOFFS, "producer sent every observed hand-off");
    // Every buffer identity was in circulation (with only 4 buffers and
    // 10^6 hand-offs, each must have cycled many times).
    for (id, &count) in id_counts.iter().enumerate() {
        assert!(count > 0, "buffer {id} never circulated");
    }
    assert_eq!(
        id_counts.iter().sum::<u64>(),
        HANDOFFS,
        "hand-off count mismatch"
    );
    // The residue drained after shutdown holds distinct identities —
    // no buffer was duplicated by the hang-up path.
    residue.sort_unstable();
    let before = residue.len();
    residue.dedup();
    assert_eq!(residue.len(), before, "a buffer identity was duplicated");
}
