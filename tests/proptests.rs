//! Property-based tests over the workspace's core invariants.

use dh_trng::core::model::{eq3_xor_expectation, eq4_xor_expectation_n};
use dh_trng::noise::jitter::JitterModel;
use dh_trng::noise::pvt::ProcessParams;
use dh_trng::prelude::*;
use dh_trng::sim::Femtos;
use dh_trng::stattests::basic::bias_percent;
use dh_trng::stattests::sp800_90b::{mcv_estimate, non_iid_battery};
use dh_trng::stattests::special::fft::{dft, dft_naive};
use dh_trng::stattests::special::gf2::{berlekamp_massey, binary_rank};
use dh_trng::stattests::special::{erfc, igam, igamc};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitbuffer_roundtrips_through_bytes(bytes in proptest::collection::vec(any::<u8>(), 1..256)) {
        let buf = BitBuffer::from_bytes(&bytes);
        prop_assert_eq!(buf.len(), bytes.len() * 8);
        prop_assert_eq!(buf.to_bytes(), bytes);
    }

    #[test]
    fn bitbuffer_matches_reference_bits(bits in proptest::collection::vec(any::<bool>(), 1..512)) {
        let buf: BitBuffer = bits.iter().copied().collect();
        prop_assert_eq!(buf.len(), bits.len());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(buf.bit(i), b);
        }
        prop_assert_eq!(buf.ones(), bits.iter().filter(|&&b| b).count());
    }

    #[test]
    fn extract_words_agrees_with_bit_reads(
        bits in proptest::collection::vec(any::<bool>(), 65..300),
        start in 0usize..64,
        len in 1usize..128,
    ) {
        let buf: BitBuffer = bits.iter().copied().collect();
        prop_assume!(start + len <= buf.len());
        let words = buf.extract_words(start, len);
        for k in 0..len {
            let expect = buf.bit(start + k);
            let got = (words[k / 64] >> (k % 64)) & 1 == 1;
            prop_assert_eq!(got, expect, "bit {}", k);
        }
    }

    #[test]
    fn fft_matches_naive_dft(values in proptest::collection::vec(-10.0f64..10.0, 2..64)) {
        let input: Vec<(f64, f64)> = values.iter().map(|&v| (v, 0.0)).collect();
        let fast = dft(&input);
        let slow = dft_naive(&input);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a.0 - b.0).abs() < 1e-6 && (a.1 - b.1).abs() < 1e-6);
        }
    }

    #[test]
    fn berlekamp_massey_is_bounded_and_shift_consistent(
        bits in proptest::collection::vec(any::<bool>(), 1..200)
    ) {
        let l = berlekamp_massey(&bits);
        prop_assert!(l <= bits.len());
        // Prepending zeros never decreases complexity by more than the
        // prefix length... simpler invariant: appending a copy of the
        // sequence cannot *reduce* the complexity.
        let mut doubled = bits.clone();
        doubled.extend_from_slice(&bits);
        prop_assert!(berlekamp_massey(&doubled) >= l.min(bits.len() / 2));
    }

    #[test]
    fn rank_never_exceeds_dimensions(rows in proptest::collection::vec(any::<u64>(), 1..40)) {
        let r = binary_rank(&rows, 32);
        prop_assert!(r as usize <= rows.len().min(32));
    }

    #[test]
    fn gamma_functions_complement(a in 0.1f64..50.0, x in 0.0f64..100.0) {
        prop_assert!((igam(a, x) + igamc(a, x) - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&igam(a, x)));
    }

    #[test]
    fn erfc_symmetry_holds(x in -6.0f64..6.0) {
        prop_assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-10);
        prop_assert!((0.0..=2.0).contains(&erfc(x)));
    }

    #[test]
    fn eq3_eq4_stay_in_unit_interval(mu1 in 0.0f64..1.0, mu2 in 0.0f64..1.0, n in 1u32..32) {
        let e3 = eq3_xor_expectation(mu1, mu2);
        prop_assert!((0.0..=1.0).contains(&e3));
        let e4 = eq4_xor_expectation_n(mu1, mu2, n);
        prop_assert!((0.0..=1.0).contains(&e4));
        // Convergence: more XOR stages never move the expectation
        // further from 1/2.
        let e4_next = eq4_xor_expectation_n(mu1, mu2, n + 1);
        prop_assert!((e4_next - 0.5).abs() <= (e4 - 0.5).abs() + 1e-12);
    }

    #[test]
    fn jitter_accumulation_is_monotone(tau1 in 1e-12f64..1e-6, factor in 1.0f64..100.0) {
        let j = JitterModel::fpga_ring_oscillator(2.0e-9);
        prop_assert!(j.accumulated_sigma(tau1 * factor) >= j.accumulated_sigma(tau1));
    }

    #[test]
    fn pvt_factors_are_physical(temp in -40.0f64..100.0, vdd in 0.8f64..1.2) {
        for p in [ProcessParams::nm45(), ProcessParams::nm28()] {
            let f = p.factors(PvtCorner::new(temp, vdd));
            prop_assert!(f.delay > 0.3 && f.delay < 5.0, "delay {}", f.delay);
            prop_assert!(f.jitter > 0.5 && f.jitter < 2.0, "jitter {}", f.jitter);
            prop_assert!(f.asymmetry >= 0.0 && f.asymmetry < 0.1);
            prop_assert!(f.leakage > 0.0);
        }
    }

    #[test]
    fn femtos_arithmetic_is_consistent(a in 0u64..1_000_000_000, b in 0u64..1_000_000_000) {
        let fa = Femtos::from_fs(a);
        let fb = Femtos::from_fs(b);
        prop_assert_eq!((fa + fb).as_fs(), a + b);
        prop_assert_eq!(fa.saturating_sub(fb).as_fs(), a.saturating_sub(b));
        prop_assert_eq!(fa.signed_delta_seconds(fb), -(fb.signed_delta_seconds(fa)));
    }

    #[test]
    fn estimates_are_valid_on_arbitrary_bits(bytes in proptest::collection::vec(any::<u8>(), 16..64)) {
        // Any input (even tiny, hostile ones) must produce estimates in
        // [0, 1] without panicking.
        let bits = BitBuffer::from_bytes(&bytes);
        let e = mcv_estimate(&bits);
        prop_assert!((0.0..=1.0).contains(&e.h_min));
        prop_assert!((0.0..=1.0).contains(&e.p_max));
    }

    #[test]
    fn bias_is_bounded(bytes in proptest::collection::vec(any::<u8>(), 1..64)) {
        let bits = BitBuffer::from_bytes(&bytes);
        let b = bias_percent(&bits);
        prop_assert!((0.0..=100.0).contains(&b));
    }

    #[test]
    fn trng_seeds_are_reproducible(seed in any::<u64>()) {
        let mut a = DhTrng::builder().seed(seed).build();
        let mut b = DhTrng::builder().seed(seed).build();
        prop_assert_eq!(a.collect_bits(128), b.collect_bits(128));
    }
}

#[test]
fn full_battery_is_valid_on_structured_input() {
    // Deterministic (worst-case) input through every estimator: all
    // outputs must be in range; no panics, no NaNs.
    let bits: BitBuffer = (0..60_000).map(|i| (i / 7) % 3 == 0).collect();
    for est in non_iid_battery(&bits) {
        assert!(est.h_min.is_finite());
        assert!((0.0..=1.0).contains(&est.h_min), "{est}");
    }
}
