//! Integration tests for the sharded streaming engine through the
//! facade: determinism under a fixed shard-seed schedule, equivalence
//! with the underlying single-instance streams, health-driven restarts,
//! and the `rand` adapter.

use dh_trng::prelude::*;
use dh_trng::stream::HealthConfig;
use rand::RngCore;

const CHUNK: usize = 1024;

fn fixed_schedule_stream() -> EntropyStream {
    EntropyStream::builder()
        .shards(4)
        .shard_seeds(vec![0xA1, 0xB2, 0xC3, 0xD4])
        .chunk_bytes(CHUNK)
        .build()
}

#[test]
fn n_shard_stream_is_deterministic_under_fixed_seed_schedule() {
    let mut runs = Vec::new();
    for _ in 0..3 {
        let mut stream = fixed_schedule_stream();
        let mut buf = vec![0u8; 64 * 1024];
        stream.read(&mut buf).expect("healthy stream");
        runs.push(buf);
    }
    assert_eq!(runs[0], runs[1], "thread scheduling must not leak in");
    assert_eq!(runs[1], runs[2]);
}

#[test]
fn merged_stream_is_the_round_robin_of_the_shard_streams() {
    let seeds = [0xA1u64, 0xB2, 0xC3, 0xD4];
    let mut stream = fixed_schedule_stream();
    let chunks = 12; // three full rounds of the 4 shards
    let mut merged = vec![0u8; CHUNK * chunks];
    stream.read(&mut merged).expect("healthy stream");

    // Chunk k of the merge is the next chunk of shard k % 4, where each
    // shard is just a DH-TRNG on its schedule seed.
    let mut shard_trngs: Vec<DhTrng> = seeds
        .iter()
        .map(|&s| DhTrng::builder().seed(s).build())
        .collect();
    let mut reference = Vec::with_capacity(merged.len());
    for k in 0..chunks {
        let mut chunk = vec![0u8; CHUNK];
        // Disambiguated: `rand::RngCore` is in scope and also has a
        // `fill_bytes` (which routes here anyway).
        Trng::fill_bytes(&mut shard_trngs[k % 4], &mut chunk);
        reference.extend_from_slice(&chunk);
    }
    assert_eq!(merged, reference);
    assert_eq!(stream.restarts(), 0, "healthy shards never restart");
}

#[test]
fn stream_rng_fills_a_mebibyte_across_four_shards() {
    let mut rng = StreamRng::with_shards(4, 0xFEED);
    let mut payload = vec![0u8; 1 << 20];
    rng.fill_bytes(&mut payload);
    let ones: u64 = payload.iter().map(|b| u64::from(b.count_ones())).sum();
    let frac = ones as f64 / (payload.len() as f64 * 8.0);
    assert!((frac - 0.5).abs() < 0.001, "ones fraction = {frac}");
    assert_eq!(rng.stream().bytes_delivered(), 1 << 20);
    assert_eq!(rng.stream().shards(), 4);
}

#[test]
fn strict_health_cutoffs_trigger_restarts_then_recovery() {
    // An RCT cutoff of 12 trips on any 12-bit run; a 1 KiB chunk (8192
    // bits) contains one with probability ~1 - (1 - 2^-11)^8192 ~ 98%,
    // so shards restart frequently — but each retry passes with ~2%
    // probability, so with a generous budget the stream still delivers.
    let mut stream = EntropyStream::builder()
        .shards(2)
        .shard_seeds(vec![0x11, 0x22])
        .chunk_bytes(CHUNK)
        .health(HealthConfig {
            rct_cutoff: 12,
            apt_window: 1024,
            apt_cutoff: 624,
        })
        .max_consecutive_restarts(1024)
        .build();
    let mut buf = vec![0u8; 8 * CHUNK];
    stream.read(&mut buf).expect("stream recovers via restarts");
    assert!(
        stream.restarts() > 0,
        "strict cutoffs must have caused restarts"
    );
    // Determinism holds even through the restart machinery.
    let mut replay = EntropyStream::builder()
        .shards(2)
        .shard_seeds(vec![0x11, 0x22])
        .chunk_bytes(CHUNK)
        .health(HealthConfig {
            rct_cutoff: 12,
            apt_window: 1024,
            apt_cutoff: 624,
        })
        .max_consecutive_restarts(1024)
        .build();
    let mut buf2 = vec![0u8; 8 * CHUNK];
    replay
        .read(&mut buf2)
        .expect("same schedule, same recovery");
    assert_eq!(buf, buf2);
    // The *delivered bytes* are deterministic; the restart counters are
    // live worker statistics (workers generate ahead into their queues),
    // so only their sign is portable across runs.
    assert!(replay.restarts() > 0);
}

#[test]
fn shard_retirement_keeps_the_merge_order_deterministic() {
    // The retirement contract (see `EntropyStream::read`): a retired
    // shard's error surfaces exactly when the round-robin cursor
    // reaches its slot — every chunk merged before that slot is
    // delivered, and the delivered prefix is a pure function of the
    // seed schedule and the failing shard's chunk count. Retire shard
    // 1 of 3 after 2 chunks, partway through a single large read.
    const RETIRE_AFTER: u64 = 2;
    let seeds = vec![0xE1u64, 0xE2, 0xE3];
    let mut doomed = EntropyStream::builder()
        .shards(3)
        .shard_seeds(seeds.clone())
        .chunk_bytes(CHUNK)
        .inject_shard_failure(1, RETIRE_AFTER)
        .build();

    // Rounds 0 and 1 are complete (shard 1 contributes its 2 chunks);
    // round 2 delivers shard 0's chunk, then shard 1's slot holds the
    // obituary: exactly 7 chunks precede the error.
    let mut oversized = vec![0u8; 16 * CHUNK];
    let err = doomed.read(&mut oversized).unwrap_err();
    assert_eq!(
        err,
        StreamError::ShardFailed {
            shard: 1,
            consecutive_restarts: 0
        }
    );
    assert_eq!(
        doomed.bytes_delivered(),
        7 * CHUNK as u64,
        "error surfaces at the retired shard's round-robin slot"
    );

    // The delivered prefix matches the all-healthy merge bit for bit.
    let mut healthy = EntropyStream::builder()
        .shards(3)
        .shard_seeds(seeds)
        .chunk_bytes(CHUNK)
        .build();
    let mut reference = vec![0u8; 7 * CHUNK];
    healthy.read(&mut reference).unwrap();
    assert_eq!(&oversized[..7 * CHUNK], &reference[..]);

    // The failure is sticky, and so is the reported cause.
    assert_eq!(doomed.read(&mut [0u8; 1]).unwrap_err(), err);
    assert_eq!(doomed.failed(), Some(err));
}

#[test]
fn dead_stream_reports_typed_error_through_try_fill_bytes() {
    // Impossible cutoffs: every chunk fails, the budget burns out, and
    // the adapter's fallible path surfaces it instead of hanging.
    let stream = EntropyStream::builder()
        .shards(2)
        .seed(3)
        .chunk_bytes(256)
        .health(HealthConfig {
            rct_cutoff: 2,
            apt_window: 64,
            apt_cutoff: 64,
        })
        .max_consecutive_restarts(2)
        .build();
    let mut rng = StreamRng::new(stream);
    let mut buf = [0u8; 64];
    assert!(rng.try_fill_bytes(&mut buf).is_err());
    assert!(matches!(
        rng.stream().failed(),
        Some(StreamError::ShardFailed { shard: 0, .. })
    ));
}
