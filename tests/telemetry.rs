//! The observability test battery (ISSUE 9's headline deliverable).
//!
//! Three pillars, all deterministic:
//!
//! 1. **Event sequences** — an injected shard failure and a
//!    health-exhaustion retirement each produce *exactly* the expected
//!    per-shard event sequence through the [`Tracer`], under either
//!    generation kernel (CI re-runs this file under all three
//!    `DHTRNG_KERNEL` forcings; the builders here leave the kernel at
//!    `Auto` so the forcing applies).
//! 2. **Counter reconciliation** — the always-on counters agree
//!    exactly with ground truth (delivered bytes) under arbitrary read
//!    slicing, and per-shard blocks sum to the aggregate.
//! 3. **Perfetto export** — the Chrome-JSON trace parses as valid
//!    JSON (hand-rolled parser below; the workspace vendors no serde),
//!    names every track, and keeps injected timestamps monotonic.

use std::sync::Arc;

use dh_trng::prelude::*;

const CHUNK: usize = 256;

/// Scenario A: two shards, shard 1 retires after 3 healthy chunks.
/// Returns the tracer and the terminal error the stream surfaced.
fn run_injected_retirement(tracer: &Arc<Tracer>, kernel: Option<KernelKind>) -> StreamError {
    let mut builder = EntropyStream::builder()
        .shards(2)
        .seed(4)
        .chunk_bytes(CHUNK)
        .inject_shard_failure(1, 3)
        .recorder(Arc::clone(tracer) as Arc<dyn Recorder>);
    if let Some(kernel) = kernel {
        builder = builder.kernel(kernel);
    }
    let mut stream = builder.build();
    // Deterministic merge prefix: rounds 0..2 deliver both shards'
    // chunks, round 3 delivers shard 0's before the cursor reaches
    // shard 1's obituary — exactly 7 chunks.
    let mut prefix = vec![0u8; 7 * CHUNK];
    stream
        .read(&mut prefix)
        .expect("prefix precedes retirement");
    stream.read(&mut [0u8; 1]).expect_err("obituary at slot 1")
}

/// The shard-`shard` production-track events, in capture order.
fn producer_track(tracer: &Tracer, shard: usize) -> Vec<StageEvent> {
    tracer
        .events()
        .iter()
        .map(|e| e.event)
        .filter(|event| match *event {
            StageEvent::ChunkProduced { shard: s, .. }
            | StageEvent::HealthVerdict { shard: s, .. }
            | StageEvent::Restart { shard: s, .. }
            | StageEvent::Retired { shard: s, .. } => s == shard,
            _ => false,
        })
        .collect()
}

#[test]
fn injected_failure_emits_exactly_the_expected_event_sequence() {
    let tracer = Arc::new(Tracer::deterministic(4096));
    let error = run_injected_retirement(&tracer, None);
    assert_eq!(
        error,
        StreamError::ShardFailed {
            shard: 1,
            consecutive_restarts: 0
        }
    );
    assert_eq!(tracer.dropped(), 0, "capacity must cover the scenario");

    // Shard 1's life story, event for event: three healthy chunks
    // (verdict then push), then the injected obituary. No restarts, no
    // failures, nothing after retirement.
    let mut expected = Vec::new();
    for _ in 0..3 {
        expected.push(StageEvent::HealthVerdict {
            shard: 1,
            passed: true,
        });
        expected.push(StageEvent::ChunkProduced {
            shard: 1,
            bytes: CHUNK,
        });
    }
    expected.push(StageEvent::Retired {
        shard: 1,
        consecutive_restarts: 0,
    });
    assert_eq!(producer_track(&tracer, 1), expected);

    // The merge track popped shard 1 exactly three times, 256 bytes
    // each, and never again after the obituary.
    let merged_from_1: Vec<StageEvent> = tracer
        .events()
        .iter()
        .map(|e| e.event)
        .filter(|event| matches!(event, StageEvent::ChunkMerged { shard: 1, .. }))
        .collect();
    assert_eq!(
        merged_from_1,
        vec![
            StageEvent::ChunkMerged {
                shard: 1,
                bytes: CHUNK
            };
            3
        ]
    );
}

#[test]
fn health_exhaustion_emits_the_full_restart_ladder() {
    // Impossible cutoffs: every candidate chunk fails, the worker burns
    // its whole restart budget on chunk 0, then retires.
    let tracer = Arc::new(Tracer::deterministic(256));
    let mut stream = EntropyStream::builder()
        .shards(1)
        .seed(4)
        .chunk_bytes(CHUNK)
        .health(HealthConfig {
            rct_cutoff: 2,
            apt_window: 64,
            apt_cutoff: 64,
        })
        .max_consecutive_restarts(3)
        .recorder(Arc::clone(&tracer) as Arc<dyn Recorder>)
        .build();
    let error = stream.read(&mut [0u8; 1]).expect_err("nothing can pass");
    assert_eq!(
        error,
        StreamError::ShardFailed {
            shard: 0,
            consecutive_restarts: 3
        }
    );

    let fail = StageEvent::HealthVerdict {
        shard: 0,
        passed: false,
    };
    let expected = vec![
        fail,
        StageEvent::Restart {
            shard: 0,
            consecutive: 1,
        },
        fail,
        StageEvent::Restart {
            shard: 0,
            consecutive: 2,
        },
        fail,
        StageEvent::Restart {
            shard: 0,
            consecutive: 3,
        },
        fail,
        StageEvent::Retired {
            shard: 0,
            consecutive_restarts: 3,
        },
    ];
    assert_eq!(producer_track(&tracer, 0), expected);

    // The counters tell the same story.
    let snap = stream.metrics().snapshot();
    assert_eq!(snap.health_failures, 4);
    assert_eq!(snap.health_passes, 0);
    assert_eq!(snap.restarts, 3);
    assert_eq!(snap.retirements, 1);
    assert_eq!(snap.chunks_produced, 0);
}

#[test]
fn kernels_emit_identical_per_shard_event_sequences() {
    // The scalar worker threads and the sliced lockstep bank interleave
    // differently in *global* capture order, but each shard's own track
    // must be event-identical — the observability face of the kernels'
    // bit-identity contract.
    let scalar = Arc::new(Tracer::deterministic(4096));
    let sliced = Arc::new(Tracer::deterministic(4096));
    let scalar_err = run_injected_retirement(&scalar, Some(KernelKind::Scalar));
    let sliced_err = run_injected_retirement(&sliced, Some(KernelKind::Sliced));
    assert_eq!(scalar_err, sliced_err);
    // The retired shard's whole life is deterministic.
    assert_eq!(
        producer_track(&scalar, 1),
        producer_track(&sliced, 1),
        "shard 1's event sequence must not depend on the kernel"
    );
    // The surviving shard runs ahead of the merge by a timing-dependent
    // amount before shutdown, but its *merged* prefix — the 4 chunks
    // delivered before the obituary slot — is deterministic.
    let healthy_pair = [
        StageEvent::HealthVerdict {
            shard: 0,
            passed: true,
        },
        StageEvent::ChunkProduced {
            shard: 0,
            bytes: CHUNK,
        },
    ];
    let expected_prefix: Vec<StageEvent> = healthy_pair.iter().copied().cycle().take(8).collect();
    for (name, tracer) in [("scalar", &scalar), ("sliced", &sliced)] {
        let track = producer_track(tracer, 0);
        assert!(
            track.len() >= 8 && track[..8] == expected_prefix[..],
            "{name}: shard 0 must produce its 4 merged chunks first, got {track:?}"
        );
    }
}

mod reconciliation {
    use super::CHUNK;
    use dh_trng::prelude::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        // Arbitrary read slicing: whatever the sizes, bytes_delivered
        // is exact and the merged-chunk tally leads it by less than
        // one chunk.
        #[test]
        fn counters_reconcile_exactly_with_delivered_bytes(
            reads in proptest::collection::vec(1usize..614, 0..12),
            seed in 0u64..1000,
        ) {
            let mut stream = EntropyStream::builder()
                .shards(2)
                .seed(seed)
                .chunk_bytes(CHUNK)
                .build();
            let metrics = stream.metrics();
            let mut total = 0u64;
            let mut buf = vec![0u8; 613];
            for n in reads {
                stream.read(&mut buf[..n]).expect("healthy");
                total += n as u64;
            }
            let snap = metrics.snapshot();
            prop_assert_eq!(snap.bytes_delivered, total);
            prop_assert_eq!(snap.bytes_delivered, stream.bytes_delivered());
            let buffered = snap.chunks_merged * CHUNK as u64;
            prop_assert!(buffered >= total, "merged chunks cover delivery");
            prop_assert!(
                buffered - total < CHUNK as u64,
                "at most one partial chunk in flight: merged {} delivered {}",
                buffered,
                total
            );
            // The handle outlives the stream; quiesced counters are
            // mutually consistent, so the shard blocks sum exactly.
            drop(stream);
            let final_snap = metrics.snapshot();
            let summed: u64 = (0..metrics.shards())
                .map(|s| metrics.shard_snapshot(s).chunks_produced)
                .sum();
            prop_assert_eq!(summed, final_snap.chunks_produced);
            prop_assert_eq!(
                final_snap.bits_emitted,
                final_snap.chunks_produced * (CHUNK as u64) * 8
            );
            // Every produced chunk passed a verdict; at hang-up each
            // worker may hold one verdict-passed chunk whose push the
            // departed consumer refused, so passes lead production by
            // at most one per shard.
            prop_assert!(final_snap.health_passes >= final_snap.chunks_produced);
            prop_assert!(
                final_snap.health_passes - final_snap.chunks_produced <= final_snap.shards
            );
        }
    }
}

#[test]
fn session_layer_counters_and_events_flow_through_the_source() {
    let tracer = Arc::new(Tracer::deterministic(4096));
    let source = EntropySource::builder()
        .shards(2)
        .seed(17)
        .chunk_bytes(CHUNK)
        .recorder(Arc::clone(&tracer) as Arc<dyn Recorder>)
        .build()
        .expect("valid configuration");
    let mut session = source.session(Tier::Drbg);
    session.prime().expect("healthy source");
    let mut buf = [0u8; 96];
    session.read(&mut buf).expect("healthy source");

    let snap = source.metrics().snapshot();
    assert_eq!(snap.reseeds_granted, 1, "the instantiate harvest");
    assert_eq!(snap.reseeds_stalled, 0);
    assert_eq!(snap.session_bytes, 96);
    assert_eq!(snap.session_bytes, source.stats().telemetry.session_bytes);
    assert!(
        tracer
            .events()
            .iter()
            .any(|e| matches!(e.event, StageEvent::ReseedGranted { session: 0 })),
        "the grant must reach the recorder"
    );
}

#[test]
fn conditioned_rollback_is_counted_and_traced() {
    let tracer = Arc::new(Tracer::deterministic(4096));
    let source = EntropySource::builder()
        .shards(1)
        .seed(6)
        .chunk_bytes(CHUNK)
        .inject_shard_failure(0, 1)
        .recorder(Arc::clone(&tracer) as Arc<dyn Recorder>)
        .build()
        .expect("valid configuration");
    // One healthy 256-byte chunk conditions (2:1 CRC) to 128 bytes; a
    // 200-byte read copies them, hits the obituary, and rolls back.
    let mut session = source.session(Tier::Conditioned);
    session.read(&mut [0u8; 200]).expect_err("source died");
    let snap = source.metrics().snapshot();
    assert_eq!(snap.rollbacks, 1);
    assert_eq!(snap.rollback_bytes, 128);
    assert!(tracer
        .events()
        .iter()
        .any(|e| matches!(e.event, StageEvent::Rollback { bytes: 128 })));
    // The rolled-back bytes are still deliverable exactly once.
    session.read(&mut [0u8; 128]).expect("carry drains");
    session.read(&mut [0u8; 1]).expect_err("then terminal");
    assert_eq!(source.metrics().snapshot().rollbacks, 2);
}

#[test]
fn metrics_handle_derives_per_shard_mbps_over_a_caller_window() {
    let mut stream = EntropyStream::builder()
        .shards(2)
        .seed(9)
        .chunk_bytes(CHUNK)
        .build();
    let metrics = stream.metrics();
    let baseline = metrics.per_shard_baseline();
    assert_eq!(baseline.len(), 2);

    // Drain a known number of chunks; every chunk was produced by some
    // shard, so total emitted growth is exactly reads * CHUNK * 8 bits.
    let reads = 16u64;
    let mut buf = [0u8; CHUNK];
    for _ in 0..reads {
        stream.read(&mut buf).expect("healthy stream");
    }
    // Freeze the counters before deriving rates: a live worker's
    // relaxed bits_emitted bump can lag the chunk push it accounts
    // for, so reading the counters mid-flight would race. The handle
    // outlives the stream, and post-drop snapshots are exact.
    drop(stream);
    // Workers may have produced (queued) more than we consumed; the
    // derived rate uses bits_emitted, which counts production. Use a
    // deterministic 2-second window: rate must equal growth / window.
    let window = std::time::Duration::from_secs(2);
    let rates = metrics.per_shard_mbps(&baseline, window);
    assert_eq!(rates.len(), 2);
    for (shard, rate) in rates.iter().enumerate() {
        let grown = metrics.shard_snapshot(shard).bits_emitted - baseline[shard].bits_emitted;
        let expect = grown as f64 / 2.0 / 1e6;
        assert!(
            (rate - expect).abs() < 1e-9,
            "shard {shard}: {rate} vs {expect}"
        );
        assert_eq!(metrics.shard_mbps(&baseline[shard], window), *rate);
    }
    // Absolute production (not growth: workers produce between build
    // and the baseline, and those queued chunks were consumed too)
    // must cover every bit the reads drained.
    let produced: u64 = (0..2).map(|s| metrics.shard_snapshot(s).bits_emitted).sum();
    assert!(
        produced >= reads * CHUNK as u64 * 8,
        "production covers at least what was consumed"
    );

    // Degenerate window: infinity on growth, 0.0 flat.
    let zero = std::time::Duration::ZERO;
    assert_eq!(
        metrics.shard_mbps(&metrics.shard_snapshot(0), zero),
        0.0,
        "no growth, zero window"
    );
    let stale = &baseline[0];
    if metrics.shard_snapshot(0).bits_emitted > stale.bits_emitted {
        assert!(metrics.shard_mbps(stale, zero).is_infinite());
    }
}

#[test]
fn chrome_export_is_valid_json_with_monotonic_timestamps() {
    let tracer = Arc::new(Tracer::deterministic(4096));
    let _ = run_injected_retirement(&tracer, None);
    let exported = tracer.to_chrome_json();

    let root = json::parse(&exported).expect("export must be valid JSON");
    let events = match &root {
        json::Value::Object(fields) => match fields.iter().find(|(k, _)| k == "traceEvents") {
            Some((_, json::Value::Array(events))) => events,
            other => panic!("traceEvents must be an array, got {other:?}"),
        },
        other => panic!("root must be an object, got {other:?}"),
    };
    assert!(!events.is_empty());

    const NAMES: &[&str] = &[
        "chunk_produced",
        "chunk_merged",
        "health_pass",
        "health_fail",
        "restart",
        "retired",
        "rollback",
        "reseed_granted",
        "reseed_stalled",
    ];
    let mut last_ts = None;
    let mut metadata_done = false;
    let mut saw_retirement = false;
    for event in events {
        let json::Value::Object(fields) = event else {
            panic!("every trace row must be an object, got {event:?}");
        };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let Some(json::Value::String(ph)) = get("ph") else {
            panic!("every row carries a phase");
        };
        assert_eq!(
            get("pid"),
            Some(&json::Value::Number(1.0)),
            "single-process trace"
        );
        if ph == "M" {
            // Thread-name metadata rows lead the file.
            assert!(!metadata_done, "metadata rows must precede data rows");
            continue;
        }
        metadata_done = true;
        let Some(json::Value::String(name)) = get("name") else {
            panic!("data rows are named");
        };
        assert!(NAMES.contains(&name.as_str()), "unknown event {name}");
        let Some(json::Value::Number(ts)) = get("ts") else {
            panic!("data rows are timestamped");
        };
        if let Some(last) = last_ts {
            assert!(
                *ts >= last,
                "injected timestamps must be monotonic: {ts} after {last}"
            );
        }
        last_ts = Some(*ts);
        if name == "retired" {
            saw_retirement = true;
            let Some(json::Value::Object(args)) = get("args") else {
                panic!("retired rows carry args");
            };
            assert!(
                args.iter()
                    .any(|(k, v)| k == "shard" && *v == json::Value::Number(1.0)),
                "the injected retirement is on shard 1"
            );
        }
    }
    assert!(saw_retirement, "the obituary must appear in the export");

    // Determinism: the same workload re-traced exports byte-identical
    // per-shard stories (compare the filtered track, not raw JSON — the
    // two producer threads may interleave differently).
    let again = Arc::new(Tracer::deterministic(4096));
    let _ = run_injected_retirement(&again, None);
    assert_eq!(producer_track(&tracer, 1), producer_track(&again, 1));
}

#[test]
fn tracer_ring_is_bounded_and_drop_oldest_under_overflow() {
    // A capacity-8 tracer on a workload with far more events: the ring
    // never grows, the eviction count reconciles, and what remains is
    // the newest suffix (it ends with the retirement).
    let tracer = Arc::new(Tracer::deterministic(8));
    let _ = run_injected_retirement(&tracer, None);
    let events = tracer.events();
    assert_eq!(events.len(), 8);
    assert_eq!(tracer.recorded() - tracer.dropped(), 8);
    assert!(tracer.dropped() > 0, "the scenario overflows 8 slots");
    for pair in events.windows(2) {
        assert!(pair[0].ts <= pair[1].ts);
    }
}

/// A minimal recursive-descent JSON parser — just enough to validate
/// the Chrome export without pulling a serde dependency into the
/// workspace. Numbers parse as `f64` (every field the export writes is
/// a small integer).
mod json {
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    pub fn parse(input: &str) -> Result<Value, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while bytes
            .get(*pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
        if bytes.get(*pos) == Some(&byte) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at {}", byte as char, *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
            Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
            Some(_) => parse_number(bytes, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_literal(
        bytes: &[u8],
        pos: &mut usize,
        literal: &str,
        value: Value,
    ) -> Result<Value, String> {
        if bytes[*pos..].starts_with(literal.as_bytes()) {
            *pos += literal.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at {}", *pos))
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            expect(bytes, pos, b':')?;
            fields.push((key, parse_value(bytes, pos)?));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    *pos += 1;
                }
                Some(&byte) if byte < 0x80 => {
                    out.push(byte as char);
                    *pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: take the whole scalar.
                    let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    *pos += ch.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while bytes
            .get(*pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Value::Number)
            .map_err(|e| format!("bad number at {start}: {e}"))
    }
}
