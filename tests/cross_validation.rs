//! Cross-validation between the two implementation levels: the
//! event-driven gate-level netlist and the fast behavioural model must
//! tell the same story about the circuit.

use dh_trng::core::architecture::{dh_trng_netlist, entropy_unit_netlist};
use dh_trng::prelude::*;
use dh_trng::sim::{Engine, Femtos, Level};

#[test]
fn gate_level_output_is_balanced_and_busy() {
    let device = Device::artix7();
    let (nl, ports) = dh_trng_netlist(&device);
    let mut e = Engine::new(nl, NoiseRng::seed_from_u64(0xcafe)).unwrap();
    e.drive(ports.en, Femtos::ZERO, Level::Low);
    e.drive(ports.en, Femtos::from_ns(20.0), Level::High);
    let period = Femtos::from_seconds(1.0 / 620.0e6);
    e.add_clock_50(ports.clk, Femtos::from_ns(40.0), period);
    let probe = e.attach_probe(ports.out);
    let cycles = 4000u64;
    e.run_until(Femtos::from_ns(40.0) + period.mul_u64(cycles));

    let wave = e.waveform(probe).unwrap();
    let mut ones = 0u64;
    for c in 0..cycles {
        let t = Femtos::from_ns(40.0) + period.mul_u64(c) + period;
        if wave.value_at(t) == Level::High {
            ones += 1;
        }
    }
    let frac = ones as f64 / cycles as f64;
    assert!(
        (frac - 0.5).abs() < 0.08,
        "gate-level ones fraction = {frac}"
    );
    // The output must toggle on a large fraction of cycles (a healthy
    // XOR of 12 live rings), not idle.
    assert!(
        wave.transition_count() as u64 > cycles / 4,
        "only {} transitions in {cycles} cycles",
        wave.transition_count()
    );
}

#[test]
fn gate_level_metastability_rate_matches_model_assumptions() {
    // The behavioural model assumes a few percent of DFF captures
    // resolve metastably at 620 MHz; the gate-level simulation should
    // land in the same band.
    let device = Device::artix7();
    let (nl, ports) = dh_trng_netlist(&device);
    let mut e = Engine::new(nl, NoiseRng::seed_from_u64(0xbeef)).unwrap();
    e.drive(ports.en, Femtos::ZERO, Level::Low);
    e.drive(ports.en, Femtos::from_ns(20.0), Level::High);
    let period = Femtos::from_seconds(1.0 / 620.0e6);
    e.add_clock_50(ports.clk, Femtos::from_ns(40.0), period);
    e.run_until(Femtos::from_ns(40.0) + period.mul_u64(3000));
    let stats = e.stats();
    let rate = stats.metastable_samples as f64 / stats.dff_samples as f64;
    assert!(
        rate > 0.002 && rate < 0.2,
        "metastable capture rate = {rate} (expect a few percent)"
    );
}

#[test]
fn ro2_dual_mode_matches_the_papers_figure_3b() {
    // In the unit netlist, RO2 must hold while R1 = 1 and oscillate
    // while R1 = 0 — the dynamic switching the fast model's coverage
    // term assumes.
    let device = Device::artix7();
    let (nl, ports) = entropy_unit_netlist(&device);
    let mut e = Engine::new(nl, NoiseRng::seed_from_u64(0xd00d)).unwrap();
    e.drive(ports.en, Femtos::ZERO, Level::Low);
    e.drive(ports.en, Femtos::from_ns(5.0), Level::High);
    let p1 = e.attach_probe(ports.r1);
    let p2 = e.attach_probe(ports.r2);
    e.run_until(Femtos::from_ns(300.0));
    let w1 = e.waveform(p1).unwrap();
    let w2 = e.waveform(p2).unwrap();

    // Count r2 transitions inside r1-high and r1-low stretches.
    let mut in_high = 0u64;
    let mut in_low = 0u64;
    for &(t, _) in w2.samples().iter().skip(1) {
        match w1.value_at(t) {
            Level::High => in_high += 1,
            Level::Low => in_low += 1,
            Level::Unknown => {}
        }
    }
    // The MUX switches r2's transitions predominantly into the r1-low
    // (oscillation) phase; transitions landing while r1 is high are the
    // switch edges themselves.
    assert!(
        in_low > in_high,
        "r2 must transition mostly in oscillation mode: low {in_low} vs high {in_high}"
    );
    assert!(w2.transition_count() > 10, "RO2 must run at all");
}

#[test]
fn fast_model_tracks_gate_level_toggle_activity() {
    // Both levels should report the output toggling at a comparable
    // rate (XOR of 12 rings: toggle probability ~0.5 per cycle).
    let device = Device::artix7();
    let (nl, ports) = dh_trng_netlist(&device);
    let mut e = Engine::new(nl, NoiseRng::seed_from_u64(0xf00d)).unwrap();
    e.drive(ports.en, Femtos::ZERO, Level::Low);
    e.drive(ports.en, Femtos::from_ns(20.0), Level::High);
    let period = Femtos::from_seconds(1.0 / 620.0e6);
    e.add_clock_50(ports.clk, Femtos::from_ns(40.0), period);
    let probe = e.attach_probe(ports.out);
    let cycles = 3000u64;
    e.run_until(Femtos::from_ns(40.0) + period.mul_u64(cycles));
    let gate_toggle = e.waveform(probe).unwrap().transition_count() as f64 / cycles as f64;

    let mut fast = DhTrng::builder().seed(0xf00d).build();
    let bits = fast.collect_bits(cycles as usize);
    let fast_toggle = bits.windows(2).filter(|w| w[0] != w[1]).count() as f64 / cycles as f64;

    assert!(
        (gate_toggle - fast_toggle).abs() < 0.15,
        "toggle rates diverge: gate {gate_toggle:.3} vs fast {fast_toggle:.3}"
    );
}

#[test]
fn netlist_resources_equal_model_resources() {
    for device in Device::paper_devices() {
        let trng = DhTrng::builder().device(device.clone()).build();
        let (nl, _) = dh_trng_netlist(&device);
        let r = nl.resources();
        let m = trng.resources();
        assert_eq!((r.luts, r.muxes, r.dffs), (m.luts, m.muxes, m.dffs));
    }
}
