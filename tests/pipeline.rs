//! End-to-end pipeline: the DH-TRNG behavioural generator must satisfy
//! the same acceptance criteria the paper's evaluation section applies.

use dh_trng::prelude::*;
use dh_trng::stattests::ais31;
use dh_trng::stattests::basic::{bias_percent, passes_pearson_criterion};
use dh_trng::stattests::sp800_22::{run_suite_subset, TestId};
use dh_trng::stattests::sp800_90b::iid_permutation_test;

fn stream(seed: u64, nbits: usize) -> BitBuffer {
    let mut trng = DhTrng::builder().seed(seed).build();
    (0..nbits).map(|_| trng.next_bit()).collect()
}

/// `nbits` of drbg-tier output from the full sharded pipeline
/// (source → health tests → conditioner → DRBG) at master seed `seed`.
fn drbg_tier_stream(seed: u64, nbits: usize) -> BitBuffer {
    let mut pool = PipelineBuilder::new()
        .shards(2)
        .seed(seed)
        .chunk_bytes(4096)
        .build_drbg();
    let mut bytes = vec![0u8; nbits / 8];
    pool.read(&mut bytes).expect("healthy pipeline");
    bytes
        .iter()
        .flat_map(|&b| (0..8).rev().map(move |i| (b >> i) & 1 == 1))
        .collect()
}

#[test]
fn sp800_22_core_tests_pass_on_multiple_sequences() {
    // Fixed seeds make this deterministic; the base is chosen so the
    // batch is not in the ~1.5%-per-test tail a well-calibrated battery
    // rejects by design (verified: the per-test failure rate over 200
    // seeds matches the control PRNG's, so misses here are seed luck,
    // not generator structure).
    let seqs: Vec<BitBuffer> = (0..8).map(|i| stream(300 + i, 1 << 19)).collect();
    let quick = [
        TestId::Frequency,
        TestId::BlockFrequency,
        TestId::CumulativeSums,
        TestId::Runs,
        TestId::LongestRun,
        TestId::Rank,
        TestId::Fft,
        TestId::OverlappingTemplate,
        TestId::ApproximateEntropy,
        TestId::Serial,
        TestId::LinearComplexity,
    ];
    let report = run_suite_subset(&seqs, &quick);
    for row in &report.rows {
        // At 8 sequences the strict NIST minimum-rate criterion is
        // noisier than the suite itself (one expected failure per ~12
        // test-sequences at alpha = 0.01), so allow a single miss while
        // requiring cross-sequence uniformity.
        assert!(
            row.uniformity_p > 1e-4 && row.passed + 1 >= row.applicable,
            "{}: P = {:.4}, prop {}",
            row.test,
            row.uniformity_p,
            row.proportion()
        );
    }
}

#[test]
fn sp800_22_core_tests_pass_on_drbg_tier_output() {
    // The pipeline-level acceptance run: the same seed bases and test
    // subset as the raw-path run above, but on the full SP 800-90C
    // chain's drbg tier — the stream a production consumer would see.
    // Whatever the conditioning/DRBG stages do, they must not introduce
    // structure the battery can detect.
    let seqs: Vec<BitBuffer> = (0..8).map(|i| drbg_tier_stream(300 + i, 1 << 19)).collect();
    let quick = [
        TestId::Frequency,
        TestId::BlockFrequency,
        TestId::CumulativeSums,
        TestId::Runs,
        TestId::LongestRun,
        TestId::Rank,
        TestId::Fft,
        TestId::OverlappingTemplate,
        TestId::ApproximateEntropy,
        TestId::Serial,
        TestId::LinearComplexity,
    ];
    let report = run_suite_subset(&seqs, &quick);
    for row in &report.rows {
        // Same acceptance shape as the raw-path run: cross-sequence
        // uniformity plus at most one proportion miss per test.
        assert!(
            row.uniformity_p > 1e-4 && row.passed + 1 >= row.applicable,
            "{}: P = {:.4}, prop {}",
            row.test,
            row.uniformity_p,
            row.proportion()
        );
    }
}

#[test]
fn sp800_22_core_tests_pass_on_block_conditioned_tier_output() {
    // The conditioned tier now runs the table-driven block
    // conditioning kernels end to end; the battery run at the same
    // pinned seed bases as the raw/drbg acceptance runs must still
    // pass — the block path is required to be bit-identical to the
    // serial machines, so any structure here would mean a kernel bug,
    // not seed luck.
    let conditioned_stream = |seed: u64, nbits: usize| -> BitBuffer {
        let mut tier = PipelineBuilder::new()
            .shards(3)
            .seed(seed)
            .chunk_bytes(4096)
            .conditioner(ConditionerSpec::Crc { ratio: 2 })
            .build_conditioned();
        let mut bytes = vec![0u8; nbits / 8];
        tier.read(&mut bytes).expect("healthy pipeline");
        bytes
            .iter()
            .flat_map(|&b| (0..8).rev().map(move |i| (b >> i) & 1 == 1))
            .collect()
    };
    let seqs: Vec<BitBuffer> = (0..8)
        .map(|i| conditioned_stream(300 + i, 1 << 19))
        .collect();
    let quick = [
        TestId::Frequency,
        TestId::BlockFrequency,
        TestId::CumulativeSums,
        TestId::Runs,
        TestId::LongestRun,
        TestId::Rank,
        TestId::Fft,
        TestId::OverlappingTemplate,
        TestId::ApproximateEntropy,
        TestId::Serial,
        TestId::LinearComplexity,
    ];
    let report = run_suite_subset(&seqs, &quick);
    for row in &report.rows {
        assert!(
            row.uniformity_p > 1e-4 && row.passed + 1 >= row.applicable,
            "{}: P = {:.4}, prop {}",
            row.test,
            row.uniformity_p,
            row.proportion()
        );
    }
}

#[test]
fn sp800_90b_battery_is_high_entropy() {
    let bits = stream(7, 1 << 20);
    for est in non_iid_battery(&bits) {
        assert!(
            est.h_min > 0.80,
            "{}: h = {} — every estimator should be near 1 on DH-TRNG output",
            est.name,
            est.h_min
        );
    }
    assert!(min_entropy_mcv(&bits) > 0.99);
}

#[test]
fn ais31_procedure_passes_end_to_end() {
    let bits = stream(8, 7_200_000);
    let report = ais31::evaluate(&bits);
    assert!(report.all_pass(), "{report:?}");
    assert!(report.t8_statistic > ais31::T8_THRESHOLD);
}

#[test]
fn basic_diagnostics_match_paper_sections() {
    let bits = stream(9, 1 << 20);
    // §4.3: bias at the sampling floor (sub-0.2% at 1 Mbit).
    assert!(bias_percent(&bits) < 0.3, "bias = {}%", bias_percent(&bits));
    // §4.4: Pearson criterion over lags 1..=100.
    assert!(passes_pearson_criterion(&bits, 100));
}

#[test]
fn iid_track_consistency() {
    // 64 kbit slice, 1000 permutations (spec-shaped, scaled for runtime).
    let bits = stream(10, 1 << 16);
    let report = iid_permutation_test(&bits, 1000, 42);
    let failures = report.failures().len();
    assert!(
        failures <= 1,
        "at most one marginal statistic may trip at this scale: {:?}",
        report
            .failures()
            .iter()
            .map(|o| o.statistic.to_string())
            .collect::<Vec<_>>()
    );
}

#[test]
fn bytes_and_bits_are_consistent() {
    let mut a = DhTrng::builder().seed(11).build();
    let mut b = DhTrng::builder().seed(11).build();
    let bits = a.collect_bits(64);
    let mut bytes = [0u8; 8];
    b.fill_bytes(&mut bytes);
    let rebuilt: Vec<bool> = bytes
        .iter()
        .flat_map(|&byte| (0..8).rev().map(move |i| (byte >> i) & 1 == 1))
        .collect();
    assert_eq!(bits, rebuilt, "byte path must be the bit path, MSB first");
}
