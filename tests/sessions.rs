//! Contract tests for the session-oriented API: many concurrent
//! [`Session`]s over one shared [`EntropySource`].
//!
//! Two properties the daemon's correctness stands on:
//!
//! * **partition, not broadcast** — concurrent conditioned sessions
//!   split the shared conditioned stream; no byte is ever delivered
//!   to two sessions, and everything delivered comes verbatim from
//!   the sole-session reference stream (exactly-once at the source);
//! * **degrade, not die** — a shard retiring mid-run stalls drbg
//!   reseeds and latches the source degraded, while every live drbg
//!   session keeps serving reads; only consumers that *need* fresh
//!   source bytes (conditioned sessions) see the terminal error.
//!
//! The partition check exploits the draw granularity: a conditioned
//! draw hands whole conditioner output units (chunk_bytes /
//! compression ratio bytes each) to one session, with the tail kept
//! in that session's private carry — so every session's delivered
//! stream is a unit-aligned concatenation of units from the global
//! stream, and units can be matched exactly against a sole-session
//! reference run.

use std::collections::{HashMap, HashSet};

use dh_trng::prelude::*;
use proptest::prelude::*;

const CHUNK_BYTES: usize = 512;
/// Conditioner output per engine chunk at the 2:1 CRC whitener.
const UNIT_LEN: usize = CHUNK_BYTES / 2;

fn source(seed: u64) -> EntropySource {
    EntropySource::builder()
        .shards(2)
        .seed(seed)
        .chunk_bytes(CHUNK_BYTES)
        .conditioner(ConditionerSpec::Crc { ratio: 2 })
        .build()
        .expect("valid source")
}

/// The deterministic global conditioned stream, from a sole session
/// on an identically-configured source.
fn reference_stream(seed: u64, len: usize) -> Vec<u8> {
    let mut session = source(seed).session(Tier::Conditioned);
    let mut reference = vec![0u8; len];
    session.read(&mut reference).expect("healthy reference run");
    reference
}

/// Asserts `stream` is a unit-aligned concatenation of units from
/// `units`, each unit claimed at most once across calls (shared
/// `used` set). Returns how many whole units the stream claimed.
fn claim_units(
    stream: &[u8],
    units: &HashMap<&[u8], usize>,
    used: &mut HashSet<usize>,
    session: usize,
) {
    for piece in stream.chunks(UNIT_LEN) {
        if piece.len() == UNIT_LEN {
            let &index = units
                .get(piece)
                .unwrap_or_else(|| panic!("session {session}: unit not in the reference stream"));
            assert!(
                used.insert(index),
                "session {session}: unit {index} delivered twice — overlapping sessions"
            );
        } else {
            // The final partial unit: must be the prefix of some unit
            // nobody has claimed (its tail is still in this session's
            // private carry).
            let matches: Vec<usize> = units
                .iter()
                .filter(|(unit, index)| unit.starts_with(piece) && !used.contains(index))
                .map(|(_, &index)| index)
                .collect();
            assert!(
                !matches.is_empty(),
                "session {session}: trailing fragment not in the reference stream"
            );
            if let [index] = matches[..] {
                used.insert(index);
            }
        }
    }
}

proptest! {
    // Thread-heavy cases; a handful of generated schedules is plenty.
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// However concurrent reads interleave, the sessions partition
    /// the conditioned stream: every delivered unit comes from the
    /// reference stream and lands in exactly one session.
    #[test]
    fn concurrent_sessions_partition_the_conditioned_stream(
        seed in 1u64..1 << 48,
        schedules in proptest::collection::vec(
            proptest::collection::vec(16usize..301, 2..6),
            2..5,
        ),
    ) {
        let source = source(seed);
        let streams: Vec<Vec<u8>> = std::thread::scope(|scope| {
            let workers: Vec<_> = schedules
                .iter()
                .map(|schedule| {
                    let mut session = source.session(Tier::Conditioned);
                    scope.spawn(move || {
                        let mut delivered = Vec::new();
                        for &len in schedule {
                            let mut buf = vec![0u8; len];
                            session.read(&mut buf).expect("healthy source");
                            delivered.extend_from_slice(&buf);
                        }
                        delivered
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().expect("no panics")).collect()
        });

        let total: usize = streams.iter().map(Vec::len).sum();
        // Long enough to cover every unit any session drew, including
        // tails parked in carries.
        let reference = reference_stream(seed, total + (schedules.len() + 2) * UNIT_LEN);
        let units: HashMap<&[u8], usize> = reference
            .chunks_exact(UNIT_LEN)
            .enumerate()
            .map(|(index, unit)| (unit, index))
            .collect();
        prop_assert_eq!(units.len(), reference.len() / UNIT_LEN, "reference units collide");

        let mut used = HashSet::new();
        for (session, stream) in streams.iter().enumerate() {
            claim_units(stream, &units, &mut used, session);
        }
    }
}

#[test]
fn retirement_mid_run_degrades_drbg_sessions_without_killing_them() {
    const SESSIONS: usize = 4;
    const READS: usize = 48;
    let source = EntropySource::builder()
        .shards(2)
        .seed(97)
        .chunk_bytes(CHUNK_BYTES)
        .conditioner(ConditionerSpec::Crc { ratio: 2 })
        .inject_shard_failure(0, 2)
        .max_consecutive_restarts(0)
        .drbg_config(DrbgConfig {
            reseed_interval_bits: 512,
            ..Default::default()
        })
        .build()
        .expect("valid source");

    // Prime every session while the doomed shard is still alive, the
    // way the daemon primes at Hello time: post-handshake retirement
    // must never kill a live session.
    let mut sessions: Vec<_> = (0..SESSIONS)
        .map(|_| {
            let mut session = source.session(Tier::Drbg);
            session.prime().expect("shard still alive at handshake");
            session
        })
        .collect();

    let outputs: Vec<Vec<[u8; 64]>> = std::thread::scope(|scope| {
        let workers: Vec<_> = sessions
            .drain(..)
            .map(|mut session| {
                scope.spawn(move || {
                    let mut reads = Vec::with_capacity(READS);
                    for _ in 0..READS {
                        let mut buf = [0u8; 64];
                        session
                            .read(&mut buf)
                            .expect("drbg sessions must survive shard retirement");
                        reads.push(buf);
                    }
                    assert!(session.is_degraded(), "retirement must reach every session");
                    assert!(session.stalled_reseeds() > 0);
                    reads
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("no panics"))
            .collect()
    });

    // The shared source has latched the failure...
    let stats = source.stats();
    assert!(
        stats.degraded.is_some(),
        "retirement must latch on the source"
    );
    assert!(stats.stalled_reseeds > 0);
    assert!(!stats.degraded.expect("latched").is_retriable());

    // ...every delivered block is still unique across all sessions...
    let mut seen = HashSet::new();
    for block in outputs.iter().flatten() {
        assert!(
            seen.insert(*block),
            "duplicated drbg output across sessions"
        );
    }
    assert_eq!(seen.len(), SESSIONS * READS);

    // ...and a consumer that needs fresh source bytes sees the
    // terminal error instead of silently re-used entropy.
    let mut conditioned = source.session(Tier::Conditioned);
    let mut buf = [0u8; 64];
    let error = conditioned.read(&mut buf).expect_err("source is dead");
    assert!(!error.is_retriable());
}

/// The stage telemetry and the session bookkeeping are two independent
/// tallies of the same events — the arbiter counts stalls per session,
/// the `Telemetry` block counts them per stall event. After an injected
/// terminal failure they must agree exactly, and the snapshot must
/// carry the retirement and the session's delivered bytes.
#[test]
fn telemetry_agrees_with_session_bookkeeping_after_terminal_failure() {
    const READS: usize = 48;
    const READ_LEN: usize = 64;
    let source = EntropySource::builder()
        .shards(2)
        .seed(97)
        .chunk_bytes(CHUNK_BYTES)
        .conditioner(ConditionerSpec::Crc { ratio: 2 })
        .inject_shard_failure(0, 2)
        .max_consecutive_restarts(0)
        .drbg_config(DrbgConfig {
            reseed_interval_bits: 512,
            ..Default::default()
        })
        .build()
        .expect("valid source");

    let mut session = source.session(Tier::Drbg);
    session.prime().expect("shard still alive at handshake");
    let mut buf = [0u8; READ_LEN];
    for _ in 0..READS {
        session
            .read(&mut buf)
            .expect("drbg sessions must survive shard retirement");
    }
    assert!(session.is_degraded(), "retirement must reach the session");
    assert!(session.stalled_reseeds() > 0);

    let stats = source.stats();
    assert!(stats.degraded.is_some(), "retirement must latch in stats");
    // One session, so all three stall tallies see the same events:
    // the session's private count, the arbiter's shared count, and
    // the stage-telemetry counter.
    assert_eq!(stats.stalled_reseeds, session.stalled_reseeds());
    assert_eq!(stats.telemetry.reseeds_stalled, stats.stalled_reseeds);
    // Every granted reseed (including the prime-time instantiate
    // harvest) is mirrored one-for-one.
    assert_eq!(stats.telemetry.reseeds_granted, stats.reseeds_served);
    assert!(stats.reseeds_served >= 1, "prime harvests once");
    // Exactly the injected retirement, and every delivered session
    // byte accounted for.
    assert_eq!(stats.telemetry.retirements, 1);
    assert_eq!(stats.telemetry.session_bytes, (READS * READ_LEN) as u64);
    assert_eq!(stats.telemetry.session_bytes, session.bytes_delivered());
    // The live handle reads the same counters stats() snapshotted.
    // (Only the session-side fields: the surviving shard's worker may
    // still be filling its rings between the two snapshots.)
    let snapshot = source.metrics().snapshot();
    assert_eq!(snapshot.reseeds_stalled, stats.telemetry.reseeds_stalled);
    assert_eq!(snapshot.reseeds_granted, stats.telemetry.reseeds_granted);
    assert_eq!(snapshot.retirements, stats.telemetry.retirements);
    assert_eq!(snapshot.session_bytes, stats.telemetry.session_bytes);
}

#[test]
fn quotas_are_per_session_not_per_source() {
    let source = source(5);
    let mut metered = source.session_with(SessionConfig::new(Tier::Drbg).quota(64));
    let mut unmetered = source.session(Tier::Drbg);

    let mut buf = [0u8; 64];
    metered.read(&mut buf).expect("within quota");
    let error = metered.read(&mut [0u8; 1]).expect_err("quota spent");
    assert!(matches!(
        error,
        dh_trng::stream::Error::QuotaExceeded { .. }
    ));
    assert_eq!(metered.quota_remaining(), Some(0));

    // The sibling session is untouched by its neighbour's quota.
    unmetered.read(&mut buf).expect("unmetered");
    assert_eq!(unmetered.quota_remaining(), None);
}
