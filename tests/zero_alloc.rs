//! Pins the executor's zero-allocation guarantee: once the buffer pool
//! is primed, the raw-tier read path (consumer *and* shard workers)
//! performs no heap allocation at all.
//!
//! The whole test binary runs under a counting global allocator, so
//! the assertion covers every thread — a worker that silently
//! allocated per chunk (the pre-executor design) fails here. This is
//! the test-side twin of the `allocation` metric in `BENCH_4.json`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dh_trng::prelude::*;

/// `System`, plus a global count of allocation events (alloc,
/// alloc_zeroed, and realloc all count; frees don't).
///
/// Deliberately duplicated in `crates/bench/src/bin/bench_report.rs`
/// (which reports the same invariant as the `BENCH_4.json` allocation
/// metric): a `#[global_allocator]` must live in each final binary,
/// and the shared crates forbid unsafe code. Keep the counting rules
/// of the two copies in sync.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation verbatim to `System`; the counter
// bump has no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn raw_tier_steady_state_reads_do_not_allocate() {
    let shards = 2;
    let queue_chunks = 4;
    let chunk = 4096usize;
    let mut stream = EntropyStream::builder()
        .shards(shards)
        .seed(0xA110C)
        .chunk_bytes(chunk)
        .queue_chunks(queue_chunks)
        .build();
    let mut buf = vec![0u8; chunk];

    // Prime the pool: walk every buffer through the full recycle loop
    // (worker -> queue -> consumer -> return channel -> worker) a few
    // times so one-time costs (initial capacity commit, thread-local
    // lazy init, channel internals) are all paid.
    for _ in 0..shards * (queue_chunks + 2) * 3 {
        stream.read(&mut buf).expect("healthy stream");
    }

    // Steady state: N more full-chunk reads across every shard must
    // not allocate anywhere in the process.
    let reads = shards * (queue_chunks + 2) * 4;
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..reads {
        stream.read(&mut buf).expect("healthy stream");
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "steady-state raw-tier reads must be allocation-free \
         ({} allocations over {reads} chunk reads)",
        after - before
    );
    assert_eq!(stream.pool_buffers(), shards * (queue_chunks + 2));
    std::hint::black_box(&buf);
}

/// The same pin with the telemetry recorder **enabled**: a bounded
/// [`Tracer`] pre-allocates its ring at construction and evicts in
/// place at capacity, and the stage counters are plain relaxed
/// atomics, so turning observability on must not cost a single
/// allocation on the read path. This is the CI gate behind the
/// "always-on" claim — if instrumentation ever grows a heap
/// dependency (boxing events, formatting on record, growing a
/// buffer), this test fails, not a benchmark.
#[test]
fn raw_tier_steady_state_reads_do_not_allocate_with_recorder_enabled() {
    let shards = 2;
    let queue_chunks = 4;
    let chunk = 4096usize;
    let tracer = std::sync::Arc::new(Tracer::new(64));
    let mut stream = EntropyStream::builder()
        .shards(shards)
        .seed(0xA110C)
        .chunk_bytes(chunk)
        .queue_chunks(queue_chunks)
        .recorder(std::sync::Arc::clone(&tracer) as std::sync::Arc<dyn Recorder>)
        .build();
    let mut buf = vec![0u8; chunk];

    // Prime as above, and long enough that the tracer ring wraps —
    // steady state must include the eviction path, not just appends.
    for _ in 0..shards * (queue_chunks + 2) * 3 {
        stream.read(&mut buf).expect("healthy stream");
    }

    let reads = shards * (queue_chunks + 2) * 4;
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..reads {
        stream.read(&mut buf).expect("healthy stream");
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "recorder-on steady-state reads must stay allocation-free \
         ({} allocations over {reads} chunk reads)",
        after - before
    );
    let snapshot = stream.metrics().snapshot();
    assert!(
        snapshot.chunks_merged > 0,
        "the recorder-on run must actually have counted work"
    );
    assert!(tracer.recorded() > 0, "the tracer must have seen events");
    assert!(
        tracer.dropped() > 0,
        "the run must be long enough to exercise the eviction path"
    );
    std::hint::black_box(&buf);
}

/// Conditioned-tier twin of the raw-tier pin: the block conditioning
/// kernels (table lookups into construction-time tables, stack staging
/// buffers, in-place `BitSink` packing) must keep steady-state
/// conditioned reads allocation-free — the tables are built once in
/// `ConditionerSpec::build`, never on the read path.
#[test]
fn conditioned_tier_steady_state_reads_do_not_allocate() {
    let mut tier = PipelineBuilder::new()
        .shards(2)
        .seed(0xB10C)
        .chunk_bytes(4096)
        .queue_chunks(4)
        .conditioner(ConditionerSpec::Crc { ratio: 2 })
        .build_conditioned();
    let mut buf = vec![0u8; 4096];

    // Prime: pool commit, session carry growth, conditioner tables.
    for _ in 0..48 {
        tier.read(&mut buf).expect("healthy pipeline");
    }

    let reads = 64;
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..reads {
        tier.read(&mut buf).expect("healthy pipeline");
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "steady-state conditioned-tier reads must be allocation-free \
         ({} allocations over {reads} reads)",
        after - before
    );
    std::hint::black_box(&buf);
}

/// And the single-instance adaptor: `Conditioned::fill_bytes` now runs
/// the block path through a stack staging chunk — steady-state fills
/// must not allocate either.
#[test]
fn conditioned_adaptor_block_fill_does_not_allocate() {
    let raw = DhTrng::builder().seed(77).build();
    let mut conditioned = Conditioned::new(raw, CrcWhitener::new(2));
    let mut buf = [0u8; 1024];
    for _ in 0..4 {
        conditioned.fill_bytes(&mut buf);
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..32 {
        conditioned.fill_bytes(&mut buf);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "block-path fills must be allocation-free"
    );
    std::hint::black_box(&buf);
}
