//! Failure injection: the statistical batteries exist to catch broken
//! sources. These tests verify the *detectors* — pathological generators
//! must fail, loudly.

use dh_trng::prelude::*;
use dh_trng::stattests::ais31;
use dh_trng::stattests::sp800_22::{run_suite_subset, TestId};
use dh_trng::stattests::sp800_90b::non_iid_min_entropy;

/// A TRNG whose ring died: constant output.
struct StuckSource;
impl Trng for StuckSource {
    fn next_bit(&mut self) -> bool {
        true
    }
}

/// A TRNG with a catastrophic 65/35 bias.
struct BiasedSource(NoiseRng);
impl Trng for BiasedSource {
    fn next_bit(&mut self) -> bool {
        self.0.bernoulli(0.65)
    }
}

/// An oscillator sampled harmonically: short-period deterministic output.
struct PeriodicSource(u64);
impl Trng for PeriodicSource {
    fn next_bit(&mut self) -> bool {
        self.0 = self.0.wrapping_add(1);
        (self.0 / 3) % 2 == 0
    }
}

fn collect<T: Trng>(mut t: T, n: usize) -> BitBuffer {
    (0..n).map(|_| t.next_bit()).collect()
}

#[test]
fn biased_source_fails_sp800_22() {
    let seqs: Vec<BitBuffer> = (0..3)
        .map(|i| collect(BiasedSource(NoiseRng::seed_from_u64(i)), 100_000))
        .collect();
    let report = run_suite_subset(&seqs, &[TestId::Frequency, TestId::Runs]);
    assert!(!report.all_acceptable());
    assert_eq!(report.row(TestId::Frequency).unwrap().passed, 0);
}

#[test]
fn periodic_source_fails_structure_tests() {
    let seqs = vec![collect(PeriodicSource(0), 200_000)];
    let report = run_suite_subset(
        &seqs,
        &[
            TestId::Runs,
            TestId::Serial,
            TestId::ApproximateEntropy,
            TestId::Fft,
        ],
    );
    for row in &report.rows {
        assert_eq!(row.passed, 0, "{} must catch a period-6 source", row.test);
    }
}

#[test]
fn stuck_source_has_zero_min_entropy() {
    let bits = collect(StuckSource, 50_000);
    assert!(non_iid_min_entropy(&bits) < 0.01);
}

#[test]
fn biased_source_entropy_matches_theory() {
    // 65% ones: MCV h should be near -log2(0.65) = 0.621.
    let bits = collect(BiasedSource(NoiseRng::seed_from_u64(9)), 500_000);
    let h = min_entropy_mcv(&bits);
    assert!((h - 0.621).abs() < 0.02, "h = {h}");
}

#[test]
fn ais31_catches_each_failure_mode() {
    // Build a 7.2 Mbit stream that is healthy DH-TRNG output except the
    // failure under test, and check the relevant AIS-31 stage trips.
    let biased = collect(BiasedSource(NoiseRng::seed_from_u64(3)), 7_200_000);
    let report = ais31::evaluate(&biased);
    assert!(!report.t1.all(), "monobit must catch 65% bias");
    assert!(!report.t6, "uniform distribution must catch 65% bias");
    assert!(!report.t8, "Coron entropy must catch 65% bias");

    let periodic = collect(PeriodicSource(0), 7_200_000);
    let report = ais31::evaluate(&periodic);
    assert!(!report.t0, "disjointness must catch a period-6 source");
    assert!(!report.t2.all() || !report.t3.all() || !report.t5.all());
}

#[test]
fn health_monitor_catches_runtime_death() {
    // A healthy stream that degrades into a stuck ring at bit 5000.
    let mut trng = DhTrng::builder().seed(77).build();
    let mut monitor = HealthMonitor::new();
    let mut detected = false;
    for i in 0..20_000 {
        let bit = if i < 5000 { trng.next_bit() } else { false };
        if monitor.feed(bit) != HealthStatus::Ok {
            assert!(i >= 5000, "no false alarm before the fault (bit {i})");
            assert!(i < 5100, "detection must be prompt (bit {i})");
            detected = true;
            break;
        }
    }
    assert!(detected, "stuck fault never detected");
}

#[test]
fn gate_level_stuck_ring_degrades_the_output() {
    use dh_trng::core::architecture::dh_trng_netlist;
    use dh_trng::sim::{Engine, Femtos, Level};

    let device = Device::artix7();
    let (nl, ports) = dh_trng_netlist(&device);
    let mut e = Engine::new(nl, NoiseRng::seed_from_u64(0xdead)).unwrap();
    e.drive(ports.en, Femtos::ZERO, Level::Low);
    e.drive(ports.en, Femtos::from_ns(20.0), Level::High);
    let period = Femtos::from_seconds(1.0 / 620.0e6);
    e.add_clock_50(ports.clk, Femtos::from_ns(40.0), period);
    e.run_until(Femtos::from_ns(200.0));

    // Kill every ring tap: the sampled XOR collapses to a constant.
    for &tap in &ports.taps {
        e.inject_stuck(tap, Level::Low);
    }
    let probe = e.attach_probe(ports.out);
    e.run_until(Femtos::from_ns(200.0) + period.mul_u64(600));
    let transitions = e.waveform(probe).unwrap().transition_count();
    assert!(
        transitions <= 2,
        "with all rings dead the output must freeze: {transitions} transitions"
    );
}
