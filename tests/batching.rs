//! Batching equivalence: for a fixed seed, the batched `Trng` paths
//! (`next_word` / `next_bits` / `fill_bytes` / `collect_bits`) must
//! produce **bit-identical** streams to repeated `next_bit`, across the
//! DH-TRNG core model and the baseline architectures.
//!
//! These are the acceptance tests for ISSUE 2's layer-1 change: every
//! calibrated table in the repository depends on the exact stream, so
//! the fast path is only admissible if it is indistinguishable.

use dh_trng::baselines::{
    DualModePufTrng, JitterLatchTrng, LatchedRoTrng, MetastableCmTrng, MultiphaseTrng, RoXorTrng,
    TeroTrng, TerotTrng,
};
use dh_trng::prelude::*;

/// Bits through the per-bit reference path only.
fn per_bit<T: Trng>(trng: &mut T, n: usize) -> Vec<bool> {
    (0..n).map(|_| trng.next_bit()).collect()
}

/// Asserts every batched entry point reproduces the per-bit stream.
/// `make` must build identical generator states on every call.
fn assert_batching_equivalent<T: Trng>(name: &str, make: impl Fn() -> T) {
    const BITS: usize = 1000; // not a multiple of 64: tails run too
    let reference = per_bit(&mut make(), BITS);

    // collect_bits (words + tail).
    assert_eq!(make().collect_bits(BITS), reference, "{name}: collect_bits");

    // next_word, bit by bit.
    let mut by_word = Vec::new();
    let mut gen = make();
    for _ in 0..BITS / 64 {
        let word = gen.next_word();
        by_word.extend((0..64).rev().map(|i| (word >> i) & 1 == 1));
    }
    assert_eq!(
        by_word[..],
        reference[..BITS / 64 * 64],
        "{name}: next_word"
    );

    // next_bits at awkward sizes, consumed in sequence.
    let mut by_chunks = Vec::new();
    let mut gen = make();
    for &chunk in [1u32, 63, 64, 7, 33, 64, 64].iter().cycle() {
        if by_chunks.len() + chunk as usize > BITS {
            break;
        }
        let word = gen.next_bits(chunk);
        by_chunks.extend((0..chunk).rev().map(|i| (word >> i) & 1 == 1));
    }
    assert_eq!(
        by_chunks[..],
        reference[..by_chunks.len()],
        "{name}: next_bits chunks"
    );

    // fill_bytes (8-byte blocks + byte tail).
    let n_bytes = BITS / 8; // 125: 15 whole words + 5 tail bytes
    let mut buf = vec![0u8; n_bytes];
    make().fill_bytes(&mut buf);
    let reference_bytes: Vec<u8> = reference[..n_bytes * 8]
        .chunks(8)
        .map(|bits| bits.iter().fold(0u8, |b, &bit| (b << 1) | u8::from(bit)))
        .collect();
    assert_eq!(buf, reference_bytes, "{name}: fill_bytes");
}

#[test]
fn dh_trng_batched_paths_match_per_bit() {
    assert_batching_equivalent("DhTrng", || DhTrng::builder().seed(0xABCD).build());
}

#[test]
fn dh_trng_ablations_batched_paths_match_per_bit() {
    assert_batching_equivalent("DhTrng/no-feedback", || {
        DhTrng::builder().seed(7).feedback(false).build()
    });
    assert_batching_equivalent("DhTrng/no-coupling", || {
        DhTrng::builder().seed(7).coupling(false).build()
    });
}

#[test]
fn dh_trng_virtex6_batched_paths_match_per_bit() {
    assert_batching_equivalent("DhTrng/V6", || {
        DhTrng::builder().device(Device::virtex6()).seed(9).build()
    });
}

#[test]
fn hybrid_unit_group_batched_paths_match_per_bit() {
    assert_batching_equivalent("HybridUnitGroup/hybrid-12", || {
        HybridUnitGroup::hybrid(12, 3)
    });
    assert_batching_equivalent("HybridUnitGroup/9stage-18", || {
        HybridUnitGroup::nine_stage_ro(18, 4)
    });
}

#[test]
fn baseline_batched_paths_match_per_bit() {
    assert_batching_equivalent("RoXorTrng", || RoXorTrng::table1(9, 5));
    assert_batching_equivalent("MultiphaseTrng", || MultiphaseTrng::new(6));
    assert_batching_equivalent("JitterLatchTrng", || JitterLatchTrng::new(7));
    assert_batching_equivalent("TeroTrng", || TeroTrng::new(8));
    assert_batching_equivalent("LatchedRoTrng", || LatchedRoTrng::new(9));
    assert_batching_equivalent("TerotTrng", || TerotTrng::new(10));
    assert_batching_equivalent("MetastableCmTrng", || MetastableCmTrng::new(11));
    assert_batching_equivalent("DualModePufTrng", || DualModePufTrng::new(12));
}

#[test]
fn batched_and_per_bit_generators_stay_in_lockstep() {
    // Interleaving batched and per-bit calls on the same instance walks
    // the same stream: the kernel writes complete state back.
    let mut mixed = DhTrng::builder().seed(0x1DEA).build();
    let mut reference = DhTrng::builder().seed(0x1DEA).build();
    let mut mixed_bits = Vec::new();
    for round in 0..5 {
        if round % 2 == 0 {
            let word = mixed.next_word();
            mixed_bits.extend((0..64).rev().map(|i| (word >> i) & 1 == 1));
        } else {
            mixed_bits.extend(per_bit(&mut mixed, 64));
        }
    }
    assert_eq!(mixed_bits, per_bit(&mut reference, 5 * 64));
}
