//! Property tests for the stage-graph executor's buffer pool and the
//! rollback contracts of the conditioned/drbg tiers.
//!
//! The pool invariant — every chunk buffer is created at build time and
//! then only ever *recycled* (never lost, never lent twice) — is not
//! directly observable from outside, so these properties pin its two
//! observable consequences:
//!
//! * **no loss**: a stream whose shards restart heavily (tight health
//!   cutoffs) keeps delivering indefinitely — a lost buffer would
//!   starve its shard's worker and deadlock the round-robin merge;
//! * **no double-lend**: the merged stream stays a pure function of
//!   the seed schedule under any read slicing — a buffer lent to two
//!   owners at once would be overwritten mid-drain and corrupt the
//!   merge for one of them.
//!
//! The rollback properties drive the induced-retirement path
//! (`inject_shard_failure`) and assert that however reads are sliced,
//! the total byte sequence delivered across retries is identical —
//! every healthy byte exactly once, at the conditioned tier and at the
//! drbg tier (block-granularity reads).

use dh_trng::prelude::*;
use dh_trng::stream::HealthConfig;
use proptest::prelude::*;

/// Restart-heavy but recoverable cutoffs: an RCT cutoff of 12 trips on
/// any 12-bit run (frequent at 2048-bit chunks) while each retry still
/// passes often enough that a generous budget always recovers.
fn flaky_health() -> HealthConfig {
    HealthConfig {
        rct_cutoff: 12,
        apt_window: 1024,
        apt_cutoff: 624,
    }
}

/// Drains a conditioned stream until its terminal error, reading
/// `read_size` bytes at a time and falling back to byte-sized retries
/// after the first failure. Returns every byte delivered.
fn drain_conditioned(mut tier: ConditionedStream, mut read_size: usize) -> Vec<u8> {
    let mut delivered = Vec::new();
    loop {
        let mut buf = vec![0u8; read_size];
        match tier.read(&mut buf) {
            Ok(()) => delivered.extend_from_slice(&buf),
            Err(_) if read_size > 1 => read_size = 1,
            Err(_) => return delivered,
        }
    }
}

/// Drains a drbg pool until its terminal error with reads of at most
/// one block (the granularity the rewind contract covers).
fn drain_drbg(mut pool: DrbgPool, read_size: usize) -> Vec<u8> {
    assert!(read_size <= 64);
    let mut delivered = Vec::new();
    let mut size = read_size;
    loop {
        let mut buf = vec![0u8; size];
        match pool.read(&mut buf) {
            Ok(()) => delivered.extend_from_slice(&buf),
            Err(_) if size > 1 => size = 1,
            Err(_) => return delivered,
        }
    }
}

proptest! {
    // Each case spins up real worker threads; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn pool_survives_restart_storms_without_losing_or_corrupting_buffers(
        seed in any::<u64>(),
        shards in 1usize..4,
        queue_chunks in 1usize..4,
    ) {
        let chunk = 256usize;
        let build = || EntropyStream::builder()
            .shards(shards)
            .seed(seed)
            .chunk_bytes(chunk)
            .queue_chunks(queue_chunks)
            .health(flaky_health())
            .max_consecutive_restarts(4096)
            .build();
        // Enough rounds to cycle every pool buffer several times
        // through worker -> queue -> consumer -> return channel.
        let total = chunk * shards * (queue_chunks + 2) * 3;

        // No loss: the read completes (a starved worker would stall
        // its slot forever). No double-lend: a second stream with a
        // different slicing sees the identical merged bytes.
        let mut whole = build();
        let mut expect = vec![0u8; total];
        whole.read(&mut expect).expect("restart storm recovers");

        let mut sliced = build();
        let mut got = Vec::with_capacity(total);
        let size_pattern = [1usize, 7, chunk - 1, chunk + 3, 64];
        let mut sizes = size_pattern.iter().cycle();
        while got.len() < total {
            let size = (*sizes.next().unwrap()).min(total - got.len());
            let mut piece = vec![0u8; size];
            sliced.read(&mut piece).expect("restart storm recovers");
            got.extend_from_slice(&piece);
        }
        prop_assert_eq!(got, expect);

        // The pool is exactly its build-time size on both streams.
        prop_assert_eq!(whole.pool_buffers(), shards * (queue_chunks + 2));
        prop_assert_eq!(sliced.pool_buffers(), shards * (queue_chunks + 2));
    }

    #[test]
    fn conditioned_rollback_delivers_every_healthy_byte_exactly_once(
        seed in any::<u64>(),
        fail_after in 1u64..5,
        read_size in 2usize..96,
    ) {
        let build = || PipelineBuilder::new()
            .shards(2)
            .seed(seed)
            .chunk_bytes(256)
            .inject_shard_failure(0, fail_after)
            .build_conditioned();
        // However the reads are sliced, the bytes delivered across
        // retries before the terminal error must be identical: the
        // rollback contract restores everything a failed read copied.
        let by_slices = drain_conditioned(build(), read_size);
        let byte_at_a_time = drain_conditioned(build(), 1);
        prop_assert_eq!(by_slices, byte_at_a_time);
    }

    #[test]
    fn drbg_rollback_delivers_every_generated_byte_exactly_once(
        seed in any::<u64>(),
        fail_after in 1u64..4,
        read_size in 2usize..65,
    ) {
        let build = || PipelineBuilder::new()
            .shards(2)
            .seed(seed)
            .chunk_bytes(256)
            .drbg_config(DrbgConfig {
                // Reseed every block so the induced failure hits a
                // harvest quickly.
                reseed_interval_bits: 512,
                seed_bytes: 16,
                prediction_resistance: false,
            })
            .inject_shard_failure(0, fail_after)
            .build_drbg();
        let by_blocks = drain_drbg(build(), read_size);
        let byte_at_a_time = drain_drbg(build(), 1);
        prop_assert_eq!(by_blocks, byte_at_a_time);
    }
}
