//! The bit-sliced kernel's equivalence contract, end to end: every lane
//! of a `SlicedKernel` is bit-identical to a same-configured scalar
//! generator — over random configurations (property-tested across beat
//! counts, probability corners, feedback on/off), over degenerate lane
//! counts (< 64 instances, exercising the padding), and through the
//! full streaming engine under both forced `KernelKind`s.

use dh_trng::core::batch::MAX_BEATS;
use dh_trng::core::model::BeatOscillator;
use dh_trng::core::slice::{Lane, SlicedKernel, MAX_LANES};
use dh_trng::core::BlockKernel;
use dh_trng::prelude::*;
use proptest::prelude::*;

/// A randomly-drawn lane configuration: the proptest cases sweep bank
/// size, the Eq. 5 probability knobs (including their edges), and the
/// feedback line.
#[derive(Debug, Clone)]
struct LaneSpec {
    seed: u64,
    beats: usize,
    p_rand: f64,
    bias: f64,
    feedback: bool,
}

fn lane_spec() -> impl Strategy<Value = LaneSpec> {
    // Bias edges: disabled, denormal-small, the calibrated order of
    // magnitude, and large enough that bernoulli(2 * bias) saturates.
    const BIAS_EDGES: [f64; 5] = [0.0, 1e-18, 7.2e-5, 0.25, 0.5];
    (
        any::<u64>(),
        1..MAX_BEATS + 1,
        0..4usize,
        0..BIAS_EDGES.len(),
        any::<bool>(),
    )
        .prop_map(|(seed, beats, p_rand_pick, bias_pick, feedback)| LaneSpec {
            seed,
            beats,
            // Both saturation edges plus seed-derived interior points.
            p_rand: match p_rand_pick {
                0 => 0.0,
                1 => 1.0,
                _ => (seed >> 11) as f64 / (1u64 << 53) as f64,
            },
            bias: BIAS_EDGES[bias_pick],
            feedback,
        })
}

fn build_lane(spec: &LaneSpec) -> Lane {
    let mut rng = NoiseRng::seed_from_u64(spec.seed ^ 0x1AB0);
    let bank: Vec<BeatOscillator> = (0..spec.beats)
        .map(|_| BeatOscillator::new(rng.uniform(), rng.uniform(), 0.1 + 0.8 * rng.uniform()))
        .collect();
    let mults: Vec<f64> = (0..spec.beats).map(|_| rng.uniform()).collect();
    Lane::new(
        bank,
        spec.p_rand,
        spec.bias,
        spec.feedback.then_some((0.3, mults)),
        NoiseRng::seed_from_u64(spec.seed).state(),
    )
}

/// The scalar continuation of a lane snapshot: the `BlockKernel` (itself
/// pinned bit-for-bit against the per-bit `Trng` paths by the batching
/// suite) plus a resumed `NoiseRng`.
fn scalar_words(lane: &Lane, spec: &LaneSpec, words: usize) -> Vec<u64> {
    let mults: Vec<f64> = {
        let mut rng = NoiseRng::seed_from_u64(spec.seed ^ 0x1AB0);
        for _ in 0..spec.beats * 3 {
            rng.uniform(); // skip the bank draws to reach the multipliers
        }
        (0..spec.beats).map(|_| rng.uniform()).collect()
    };
    let feedback = spec.feedback.then_some((0.3, &mults[..]));
    let mut kernel = BlockKernel::new(lane.beats(), spec.p_rand, spec.bias, feedback)
        .expect("specs never exceed MAX_BEATS");
    let mut rng = NoiseRng::from_state(NoiseRng::seed_from_u64(spec.seed).state());
    (0..words).map(|_| kernel.next_bits(&mut rng, 64)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every lane of a randomly-configured kernel matches its scalar
    /// twin over 512 cycles — random beat counts 1..=MAX_BEATS, edge
    /// probabilities, mixed feedback, random lane counts.
    #[test]
    fn every_lane_matches_a_same_configured_scalar_kernel(
        specs in proptest::collection::vec(lane_spec(), 1..10)
    ) {
        let lanes: Vec<Lane> = specs.iter().map(build_lane).collect();
        let mut sliced = SlicedKernel::new(&lanes).expect("valid lane specs");
        let mut got: Vec<Vec<u64>> = vec![Vec::new(); lanes.len()];
        for _ in 0..8 {
            for (lane, word) in sliced.generate(64).iter().enumerate() {
                got[lane].push(*word);
            }
        }
        for (lane, spec) in specs.iter().enumerate() {
            prop_assert_eq!(
                &got[lane],
                &scalar_words(&lanes[lane], spec, 8),
                "lane {} of {:?}", lane, spec
            );
        }
    }
}

/// Degenerate lane counts: a bank of fewer than 64 (and fewer than the
/// internal lane stride) instances pads internally, and every real lane
/// still reproduces its scalar `DhTrng` twin exactly.
#[test]
fn under_populated_banks_pad_without_perturbing_real_lanes() {
    for lanes in [1usize, 2, 3, 5, 13] {
        let instances: Vec<DhTrng> = (0..lanes)
            .map(|i| DhTrng::builder().seed(7000 + i as u64).build())
            .collect();
        let mut bank = SlicedDhTrng::new(instances).unwrap();
        let mut chunks: Vec<Option<Vec<u8>>> = (0..lanes).map(|_| Some(vec![0u8; 256])).collect();
        bank.fill_lane_chunks(&mut chunks);
        for (lane, chunk) in chunks.iter().enumerate() {
            let mut scalar = DhTrng::builder().seed(7000 + lane as u64).build();
            let mut expect = vec![0u8; 256];
            scalar.fill_bytes(&mut expect);
            assert_eq!(
                chunk.as_deref(),
                Some(&expect[..]),
                "lane {lane} of a {lanes}-lane bank"
            );
        }
    }
}

/// The lane-capacity edge: exactly MAX_LANES instances slice fine; the
/// engine's shard ceiling (64) can therefore always ride the sliced
/// kernel.
#[test]
fn full_width_bank_is_accepted_and_lane_exact() {
    let instances: Vec<DhTrng> = (0..MAX_LANES)
        .map(|i| DhTrng::builder().seed(100 + i as u64).build())
        .collect();
    let mut bank = SlicedDhTrng::new(instances).unwrap();
    let mut chunks: Vec<Option<Vec<u8>>> = (0..MAX_LANES).map(|_| Some(vec![0u8; 16])).collect();
    bank.fill_lane_chunks(&mut chunks);
    for probe in [0usize, 31, 63] {
        let mut scalar = DhTrng::builder().seed(100 + probe as u64).build();
        let mut expect = vec![0u8; 16];
        scalar.fill_bytes(&mut expect);
        assert_eq!(chunks[probe].as_deref(), Some(&expect[..]), "lane {probe}");
    }
}

/// The engine-level contract the CI kernel-matrix enforces: both forced
/// kernels produce the identical merged stream, for every tier of the
/// pipeline.
#[test]
fn forced_kernels_agree_across_all_tiers() {
    for tier in [Tier::Raw, Tier::Conditioned, Tier::Drbg] {
        let make = |kernel: KernelKind| {
            PipelineBuilder::new()
                .shards(3)
                .seed(90)
                .chunk_bytes(512)
                .kernel(kernel)
                .build(tier)
        };
        let mut scalar = make(KernelKind::Scalar);
        let mut sliced = make(KernelKind::Sliced);
        let mut a = vec![0u8; 2048];
        let mut b = vec![0u8; 2048];
        scalar.read(&mut a).unwrap();
        sliced.read(&mut b).unwrap();
        assert_eq!(a, b, "{tier:?}");
    }
}

/// Sessions over a sliced source read the same bytes as sessions over a
/// scalar source — the sessions API gets the kernel for free.
#[test]
fn sessions_are_kernel_agnostic() {
    let make = |kernel: KernelKind| {
        SourceBuilder::new()
            .shards(2)
            .seed(41)
            .chunk_bytes(512)
            .kernel(kernel)
            .build()
            .expect("valid source config")
    };
    let scalar_source = make(KernelKind::Scalar);
    let sliced_source = make(KernelKind::Sliced);
    let mut a = scalar_source.session(Tier::Conditioned);
    let mut b = sliced_source.session(Tier::Conditioned);
    let mut buf_a = [0u8; 777];
    let mut buf_b = [0u8; 777];
    a.read(&mut buf_a).unwrap();
    b.read(&mut buf_b).unwrap();
    assert_eq!(buf_a, buf_b);
}
