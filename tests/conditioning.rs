//! Conditioning and DRBG acceptance: edge cases of the conditioner
//! machines, batching equivalence of the conditioned/drbg `Trng`
//! adaptors (mirroring `tests/batching.rs` for the raw path), and
//! fixed-seed pinned DRBG output streams so the post-processing stages
//! can never drift silently — the same discipline `calibration_smoke`
//! applies to the raw calibrated stream.

use dh_trng::prelude::*;

/// Bits through the per-bit reference path only.
fn per_bit<T: Trng>(trng: &mut T, n: usize) -> Vec<bool> {
    (0..n).map(|_| trng.next_bit()).collect()
}

/// Asserts every batched entry point reproduces the per-bit stream
/// (the `tests/batching.rs` harness, applied to the output stages).
fn assert_batching_equivalent<T: Trng>(name: &str, make: impl Fn() -> T) {
    const BITS: usize = 1000; // not a multiple of 64: tails run too
    let reference = per_bit(&mut make(), BITS);

    assert_eq!(make().collect_bits(BITS), reference, "{name}: collect_bits");

    let mut by_word = Vec::new();
    let mut gen = make();
    for _ in 0..BITS / 64 {
        let word = gen.next_word();
        by_word.extend((0..64).rev().map(|i| (word >> i) & 1 == 1));
    }
    assert_eq!(
        by_word[..],
        reference[..BITS / 64 * 64],
        "{name}: next_word"
    );

    let mut by_chunks = Vec::new();
    let mut gen = make();
    for &chunk in [1u32, 63, 64, 7, 33, 64, 64].iter().cycle() {
        if by_chunks.len() + chunk as usize > BITS {
            break;
        }
        let word = gen.next_bits(chunk);
        by_chunks.extend((0..chunk).rev().map(|i| (word >> i) & 1 == 1));
    }
    assert_eq!(
        by_chunks[..],
        reference[..by_chunks.len()],
        "{name}: next_bits chunks"
    );

    let n_bytes = BITS / 8;
    let mut buf = vec![0u8; n_bytes];
    make().fill_bytes(&mut buf);
    let reference_bytes: Vec<u8> = reference[..n_bytes * 8]
        .chunks(8)
        .map(|bits| bits.iter().fold(0u8, |b, &bit| (b << 1) | u8::from(bit)))
        .collect();
    assert_eq!(buf, reference_bytes, "{name}: fill_bytes");
}

#[test]
fn conditioned_adaptor_batched_paths_match_per_bit() {
    assert_batching_equivalent("Conditioned/crc-2", || {
        Conditioned::new(DhTrng::builder().seed(0xC0).build(), CrcWhitener::new(2))
    });
    assert_batching_equivalent("Conditioned/von-neumann", || {
        Conditioned::new(
            DhTrng::builder().seed(0xC1).build(),
            VonNeumannConditioner::new(),
        )
    });
    assert_batching_equivalent("Conditioned/xor-fold-3", || {
        Conditioned::new(DhTrng::builder().seed(0xC2).build(), XorFold::new(3))
    });
}

#[test]
fn drbg_adaptor_batched_paths_match_per_bit() {
    assert_batching_equivalent("Drbg/default", || {
        Drbg::new(DhTrng::builder().seed(0xD0).build(), DrbgConfig::default())
    });
    // A reseed-heavy policy: the equivalence must hold across reseed
    // boundaries too (1000 bits crosses the 512-bit interval).
    assert_batching_equivalent("Drbg/tight-interval", || {
        Drbg::new(
            DhTrng::builder().seed(0xD1).build(),
            DrbgConfig {
                reseed_interval_bits: 512,
                seed_bytes: 8,
                prediction_resistance: false,
            },
        )
    });
}

#[test]
fn drbg_stream_head_is_pinned_for_fixed_seed() {
    // The exact output stream of the default-policy DRBG over a seeded
    // DH-TRNG — any change to the derivation function, the block size,
    // the harvest order, or the underlying raw stream shows up here.
    let mut drbg = Drbg::new(
        DhTrng::builder().seed(0xD5EED).build(),
        DrbgConfig::default(),
    );
    let mut head = [0u8; 16];
    Trng::fill_bytes(&mut drbg, &mut head);
    assert_eq!(
        head,
        [
            0xD6, 0x7F, 0xAE, 0x21, 0x90, 0xB0, 0x82, 0xE6, 0xED, 0x6A, 0x49, 0x7D, 0x32, 0x12,
            0xB9, 0x2C
        ],
        "core Drbg stream head moved"
    );

    // And the stream-level pool over the sharded engine (2 shards,
    // default 2:1 CRC conditioning, default DRBG policy).
    let mut pool = PipelineBuilder::new()
        .shards(2)
        .seed(0xD5EED)
        .chunk_bytes(4096)
        .build_drbg();
    let mut head = [0u8; 16];
    pool.read(&mut head).expect("healthy pipeline");
    assert_eq!(
        head,
        [
            0x05, 0xD5, 0xBD, 0x7A, 0xC8, 0xEC, 0x40, 0x46, 0x10, 0x83, 0xBE, 0xC0, 0xE6, 0x9C,
            0xA0, 0x5E
        ],
        "DrbgPool stream head moved"
    );
}

#[test]
fn conditioners_handle_empty_input() {
    // Zero-length requests touch no state on any tier.
    let mut cond = Conditioned::new(
        DhTrng::builder().seed(1).build(),
        VonNeumannConditioner::new(),
    );
    cond.fill_bytes(&mut []);
    assert_eq!(cond.consumed(), 0);
    assert_eq!(cond.emitted(), 0);
    assert!(cond.measured_ratio().is_infinite());

    let mut pool = PipelineBuilder::new()
        .shards(1)
        .seed(1)
        .chunk_bytes(512)
        .build_drbg();
    pool.read(&mut []).expect("empty read is a no-op");
    assert_eq!(pool.bytes_delivered(), 0);
    assert_eq!(pool.reseeds(), 0);
}

/// A stuck source, for the all-zero / all-one block edge cases.
struct Constant(bool);
impl Trng for Constant {
    fn next_bit(&mut self) -> bool {
        self.0
    }
}

#[test]
fn constant_blocks_exercise_conditioner_edge_behaviour() {
    // Von Neumann on a constant source emits nothing, ever: every pair
    // is equal. (The adaptor would spin; push the machine directly.)
    let mut vn = VonNeumannConditioner::new();
    for bit in [false, true] {
        assert!((0..10_000).all(|_| vn.push(bit).is_none()), "bit = {bit}");
    }

    // XOR-fold on constant input is deterministic: all-zero blocks fold
    // to 0; all-one blocks fold to the factor's parity.
    for factor in [2u32, 3, 8] {
        let mut zeros = Conditioned::new(Constant(false), XorFold::new(factor));
        assert!(per_bit(&mut zeros, 64).iter().all(|&b| !b));
        let mut ones = Conditioned::new(Constant(true), XorFold::new(factor));
        let expect = factor % 2 == 1;
        assert!(per_bit(&mut ones, 64).iter().all(|&b| b == expect));
    }

    // The CRC whitener turns even a stuck source into a balanced-looking
    // (purely deterministic, zero-entropy) pattern — the reason health
    // tests run *before* conditioning in the pipeline.
    for bit in [false, true] {
        let mut crc = Conditioned::new(Constant(bit), CrcWhitener::new(2));
        let out = per_bit(&mut crc, 4096);
        let ones = out.iter().filter(|&&b| b).count() as f64 / out.len() as f64;
        assert!((ones - 0.5).abs() < 0.05, "bit = {bit}: ones = {ones}");
    }
}

#[test]
fn compression_ratio_boundaries() {
    // ratio = 1: rate-preserving (one output per input).
    let mut unity = Conditioned::new(DhTrng::builder().seed(2).build(), CrcWhitener::new(1));
    let _ = unity.collect_bits(1000);
    assert_eq!(unity.consumed(), 1000);
    assert_eq!(unity.emitted(), 1000);
    assert_eq!(unity.measured_ratio(), 1.0);

    // A large ratio compresses exactly as declared.
    let mut wide = Conditioned::new(DhTrng::builder().seed(2).build(), CrcWhitener::new(64));
    let _ = wide.collect_bits(100);
    assert_eq!(wide.consumed(), 6400);
    assert_eq!(wide.measured_ratio(), 64.0);

    // The stream-level stage agrees with the declared expectation.
    let mut tier = PipelineBuilder::new()
        .shards(1)
        .seed(2)
        .chunk_bytes(512)
        .conditioner(ConditionerSpec::XorFold(4))
        .build_conditioned();
    let mut buf = [0u8; 256];
    tier.read(&mut buf).expect("healthy");
    assert_eq!(tier.measured_ratio(), 4.0);
    assert_eq!(tier.spec().expected_ratio(), 4.0);
}

#[test]
fn conditioned_tier_determinism_across_runs_and_slicings() {
    let make = || {
        PipelineBuilder::new()
            .shards(3)
            .seed(0xAB)
            .chunk_bytes(1024)
            .conditioner(ConditionerSpec::Crc { ratio: 2 })
            .build_conditioned()
    };
    let mut whole = make();
    let mut expect = vec![0u8; 3000];
    whole.read(&mut expect).expect("healthy");
    let mut sliced = make();
    let mut got = Vec::new();
    for size in [1usize, 7, 300, 513, 2179] {
        let mut piece = vec![0u8; size];
        sliced.read(&mut piece).expect("healthy");
        got.extend_from_slice(&piece);
    }
    assert_eq!(got, expect);
    assert_eq!(sliced.bytes_delivered(), 3000);
}

#[test]
fn prediction_resistance_pulls_fresh_entropy_per_block() {
    let mut pool = PipelineBuilder::new()
        .shards(1)
        .seed(5)
        .chunk_bytes(512)
        .drbg_config(DrbgConfig {
            prediction_resistance: true,
            seed_bytes: 16,
            ..DrbgConfig::default()
        })
        .build_drbg();
    let mut buf = vec![0u8; 4 * 64]; // four DRBG blocks
    pool.read(&mut buf).expect("healthy");
    // Block 1 rides the instantiate material; blocks 2..4 each reseed.
    assert_eq!(pool.reseeds(), 3);
    // Conditioned consumption: (instantiate + 3 reseeds) x 16 bytes.
    assert_eq!(pool.conditioned().bytes_delivered(), 64);
}

// ---------------------------------------------------------------------
// Block-vs-serial bit-identity: the table-driven block conditioning
// kernels must reproduce the bit-serial machines exactly, for every
// conditioner and chains, under arbitrary input slicing and
// partial-byte carries. The serial reference goes through
// `Conditioner::push` one bit at a time; the block path goes through
// `ConditionerStage` (the production mount, staging-copy in-place).

use proptest::prelude::*;

/// A fresh conditioner by index — the full in-tree menu, including the
/// 1/64 ratio boundaries and `then`-chains.
fn machine(idx: usize) -> Box<dyn Conditioner> {
    match idx {
        0 => Box::new(CrcWhitener::new(1)),
        1 => Box::new(CrcWhitener::new(2)),
        2 => Box::new(CrcWhitener::new(64)),
        3 => Box::new(LfsrConditioner::new()),
        4 => Box::new(VonNeumannConditioner::new()),
        5 => Box::new(XorFold::new(1)),
        6 => Box::new(XorFold::new(64)),
        7 => Box::new(XorFold::new(2).then(CrcWhitener::new(2))),
        8 => Box::new(VonNeumannConditioner::new().then(LfsrConditioner::new())),
        _ => Box::new(CrcWhitener::new(3).then(XorFold::new(2))),
    }
}
const MACHINE_COUNT: usize = 10;

/// Serial reference: the pieces' valid bits pushed one at a time,
/// packed into whole output bytes.
fn serial_over_pieces(mut cond: Box<dyn Conditioner>, pieces: &[(Vec<u8>, usize)]) -> Vec<u8> {
    let mut out = Vec::new();
    let (mut acc, mut acc_len) = (0u8, 0u32);
    for (bytes, bits) in pieces {
        for i in 0..*bits {
            let raw = (bytes[i / 8] >> (7 - i % 8)) & 1 == 1;
            if let Some(bit) = cond.push(raw) {
                acc = (acc << 1) | u8::from(bit);
                acc_len += 1;
                if acc_len == 8 {
                    out.push(acc);
                    acc = 0;
                    acc_len = 0;
                }
            }
        }
    }
    out
}

/// Block path: the same pieces through `ConditionerStage::process`.
fn stage_over_pieces(cond: Box<dyn Conditioner>, pieces: &[(Vec<u8>, usize)]) -> Vec<u8> {
    let mut stage = ConditionerStage::new(cond);
    let mut out = Vec::new();
    for (bytes, bits) in pieces {
        let mut buf = bytes.clone();
        let mut block = BitBlock::full(&mut buf);
        block.set_valid_bits(*bits);
        stage.process(&mut block);
        out.extend_from_slice(block.as_bytes());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn block_path_is_bit_identical_under_arbitrary_slicing(
        idx in 0..MACHINE_COUNT,
        pieces in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 1..512), 0..8usize),
            1..8,
        ),
    ) {
        // Each piece drops 0..8 trailing bits so partial-byte carries
        // cross every block boundary.
        let pieces: Vec<(Vec<u8>, usize)> = pieces
            .into_iter()
            .map(|(bytes, drop)| {
                let bits = (bytes.len() * 8).saturating_sub(drop);
                (bytes, bits)
            })
            .collect();
        let want = serial_over_pieces(machine(idx), &pieces);
        let got = stage_over_pieces(machine(idx), &pieces);
        prop_assert_eq!(got, want);
    }
}

#[test]
fn block_path_is_bit_identical_on_64kib_blocks() {
    // The full 1..=64 KiB block-size envelope at the ratio boundaries,
    // deterministically: one 64 KiB block, then a shredded copy of the
    // same stream (1-byte and odd-sized blocks), must both match the
    // serial machines.
    let mut src = DhTrng::builder().seed(41).build();
    let mut raw = vec![0u8; 1 << 16];
    Trng::fill_bytes(&mut src, &mut raw);
    for idx in 0..MACHINE_COUNT {
        let whole = vec![(raw.clone(), raw.len() * 8)];
        let want = serial_over_pieces(machine(idx), &whole);
        assert_eq!(
            stage_over_pieces(machine(idx), &whole),
            want,
            "machine {idx} whole"
        );
        let mut shredded: Vec<(Vec<u8>, usize)> = Vec::new();
        let mut pos = 0usize;
        for &len in [1usize, 4095, 64, 1, 7, 1024, 65].iter().cycle() {
            if pos >= raw.len() {
                break;
            }
            let end = (pos + len).min(raw.len());
            shredded.push((raw[pos..end].to_vec(), (end - pos) * 8));
            pos = end;
        }
        assert_eq!(
            stage_over_pieces(machine(idx), &shredded),
            want,
            "machine {idx} shredded"
        );
    }
}
