//! The paper's headline comparisons (Table 6 / Figure 1(b)), verified
//! end-to-end against our platform models and the published rows.

use dh_trng::baselines::{paper_rows, Architecture, MultiphaseTrng, TeroTrng};
use dh_trng::fpga::packer::{pack_design, pack_unconstrained, Region};
use dh_trng::fpga::{efficiency_metric, Placement, ResourceReport, TimingModel};
use dh_trng::prelude::*;

#[test]
fn our_design_dominates_every_baseline() {
    let ours = DhTrng::builder().device(Device::artix7()).build();
    let our_eff = ours.efficiency();
    for row in &paper_rows()[..7] {
        assert!(
            our_eff > row.efficiency(),
            "{}: {our_eff} !> {}",
            row.design,
            row.efficiency()
        );
        assert!(
            ours.throughput_mbps() > row.throughput_mbps,
            "{}",
            row.design
        );
    }
}

#[test]
fn efficiency_gain_over_prior_sota_is_about_2_6x() {
    let ours = DhTrng::builder().device(Device::artix7()).build();
    let prior = MultiphaseTrng::new(1);
    let gain = ours.efficiency() / prior.efficiency();
    assert!(
        (gain - 2.63).abs() < 0.15,
        "paper claims 2.63x, models give {gain:.2}x"
    );
}

#[test]
fn operating_points_match_the_paper() {
    for (device, mbps, watts) in [
        (Device::virtex6(), 670.0, 0.126),
        (Device::artix7(), 620.0, 0.068),
    ] {
        let trng = DhTrng::builder().device(device.clone()).build();
        assert!(
            (trng.throughput_mbps() - mbps).abs() / mbps < 0.02,
            "{}: {} vs {}",
            device,
            trng.throughput_mbps(),
            mbps
        );
        assert!(
            (trng.power().total_w() - watts).abs() / watts < 0.05,
            "{}: {} vs {}",
            device,
            trng.power().total_w(),
            watts
        );
    }
}

#[test]
fn resource_footprint_matches_section_3_3() {
    let trng = DhTrng::builder().build();
    assert_eq!(trng.resources(), ResourceReport::new(23, 4, 14));
    assert_eq!(trng.slices(), 8);
    // The typed-placement packing costs 2 slices over the theoretical
    // unconstrained bound.
    let free = pack_unconstrained(trng.resources(), Device::artix7().slice_spec());
    assert_eq!(free, 6);
    let packed = pack_design(&Region::dh_trng_reference(), Device::artix7().slice_spec());
    assert_eq!(packed.total_slices, 8);
}

#[test]
fn placement_is_compact_and_contiguous() {
    let trng = DhTrng::builder().build();
    let placement: Placement = trng.placement((10, 20));
    assert_eq!(placement.slice_count(), 8);
    let (w, h) = placement.bounding_box();
    assert!(w * h <= 9, "8 slices must fit a 3x3 block: {w}x{h}");
    assert!(placement.is_contiguous());
}

#[test]
fn timing_model_derates_at_slow_corners() {
    let d = Device::artix7();
    let nominal = TimingModel::dh_trng_throughput_mbps(&d);
    let slow = TimingModel::throughput_mbps(&d, 2, 1.0, PvtCorner::new(80.0, 0.8));
    assert!(slow < nominal);
    assert!(slow > 0.5 * nominal, "derating should be graceful: {slow}");
}

#[test]
fn baselines_expose_consistent_architecture_data() {
    let tero = TeroTrng::new(1);
    assert_eq!(tero.name(), "FPL'20");
    assert_eq!(
        tero.efficiency(),
        efficiency_metric(tero.throughput_mbps(), tero.slices(), tero.power_w())
    );
}

#[test]
fn slowest_and_fastest_designs_bracket_the_field() {
    let rows = paper_rows();
    let min_tput = rows
        .iter()
        .map(|r| r.throughput_mbps)
        .fold(f64::MAX, f64::min);
    let max_tput = rows.iter().map(|r| r.throughput_mbps).fold(0.0, f64::max);
    assert_eq!(min_tput, 0.76); // TCASII'21
    assert_eq!(max_tput, 620.0); // this work
}
