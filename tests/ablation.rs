//! Ablation studies: removing the paper's reinforcement strategies must
//! degrade measured quality in the direction the paper's design
//! rationale predicts, and the architecture comparisons of Tables 1-2
//! must hold on generated bitstreams.

use dh_trng::prelude::*;
use dh_trng::stattests::sp800_90b::{lag_estimate, multi_mmc_estimate};

const BITS: usize = 1 << 20;

fn stream_of(trng: &mut DhTrng, n: usize) -> BitBuffer {
    (0..n).map(|_| trng.next_bit()).collect()
}

#[test]
fn disabling_strategies_degrades_mcv_entropy() {
    // Pool several seeds into one long stream per configuration:
    // single-sequence MCV at 1 Mbit carries ~5e-4 of estimator noise,
    // comparable to the ablation deltas.
    let mean_h = |coupling: bool, feedback: bool| -> f64 {
        let mut pooled = BitBuffer::with_capacity(4 * BITS);
        for seed in 0..4 {
            let mut t = DhTrng::builder()
                .seed(900 + seed)
                .coupling(coupling)
                .feedback(feedback)
                .build();
            for _ in 0..BITS {
                pooled.push(t.next_bit());
            }
        }
        min_entropy_mcv(&pooled)
    };
    let full = mean_h(true, true);
    let no_coupling = mean_h(false, true);
    let neither = mean_h(false, false);
    assert!(
        full > no_coupling,
        "coupling must help: full {full:.5} vs no-coupling {no_coupling:.5}"
    );
    assert!(
        full > neither,
        "both strategies must help: full {full:.5} vs neither {neither:.5}"
    );
}

#[test]
fn feedback_suppresses_predictable_structure() {
    // Without feedback the deterministic beat component repeats, which
    // the 90B predictors exploit; with feedback the phases re-randomise
    // every output cycle.
    let mut with_fb = DhTrng::builder().seed(41).feedback(true).build();
    let mut without_fb = DhTrng::builder().seed(41).feedback(false).build();
    let bits_with = stream_of(&mut with_fb, BITS / 2);
    let bits_without = stream_of(&mut without_fb, BITS / 2);
    let h_with = lag_estimate(&bits_with)
        .h_min
        .min(multi_mmc_estimate(&bits_with).h_min);
    let h_without = lag_estimate(&bits_without)
        .h_min
        .min(multi_mmc_estimate(&bits_without).h_min);
    // Both streams sit near the ideal 1.0; at 512 Kibit the lag/MMC
    // estimators carry a few millibits of sampling noise, so the margin
    // must cover estimator variance, not just the architectural effect.
    assert!(
        h_with >= h_without - 0.005,
        "feedback must not hurt predictor entropy: {h_with} vs {h_without}"
    );
}

#[test]
fn coupling_raises_eq5_coverage() {
    let full = DhTrng::builder().seed(1).build();
    let ablated = DhTrng::builder().seed(1).coupling(false).build();
    assert!(
        full.randomness_coverage() > ablated.randomness_coverage(),
        "chaotic central rings must add coverage: {} vs {}",
        full.randomness_coverage(),
        ablated.randomness_coverage()
    );
}

#[test]
fn hybrid_units_beat_nine_stage_ros_on_bitstreams() {
    // Table 2's headline, measured end-to-end: average over the XOR
    // sweep to dominate estimator noise.
    let mut dh_total = 0.0;
    let mut ro_total = 0.0;
    for n in [9u32, 12, 15, 18] {
        let mut dh = HybridUnitGroup::hybrid(n, 7 + u64::from(n));
        let mut ro = HybridUnitGroup::nine_stage_ro(n, 7 + u64::from(n));
        dh_total += min_entropy_mcv(&(0..BITS / 2).map(|_| dh.next_bit()).collect::<BitBuffer>());
        ro_total += min_entropy_mcv(&(0..BITS / 2).map(|_| ro.next_bit()).collect::<BitBuffer>());
    }
    assert!(
        dh_total > ro_total,
        "hybrid units must win on average: {dh_total} vs {ro_total}"
    );
}

#[test]
fn table1_sweep_peaks_in_the_upper_middle_orders() {
    // Measured on bitstreams, the 8/9/10-stage band must beat both
    // extremes (2-3 and 12-13), as in the paper's Table 1.
    let h = |stages: u32| -> f64 {
        let mut bank = RoXorTrng::table1(stages, 500 + u64::from(stages));
        min_entropy_mcv(&(0..BITS).map(|_| bank.next_bit()).collect::<BitBuffer>())
    };
    let low = (h(2) + h(3)) / 2.0;
    let mid = (h(8) + h(9) + h(10)) / 3.0;
    let high = (h(12) + h(13)) / 2.0;
    assert!(mid > low, "mid {mid:.4} !> low {low:.4}");
    assert!(mid > high, "mid {mid:.4} !> high {high:.4}");
}

#[test]
fn slower_sampling_raises_per_sample_entropy_coverage() {
    // The paper's throughput/randomness trade-off: more jitter
    // accumulates per sample at 100 MHz than at 620 MHz.
    let fast = DhTrng::builder().seed(2).build();
    let slow = DhTrng::builder().seed(2).sampling_hz(100.0e6).build();
    assert!(slow.randomness_coverage() > fast.randomness_coverage());
}
