//! Cost of the statistical test batteries on fixed-size inputs: these
//! dominate the runtime of the Table 3/4/5 experiments.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dhtrng_core::{DhTrng, Trng};
use dhtrng_stattests::sp800_22::{
    dft_test, frequency_test, linear_complexity_test, non_overlapping_template_test, serial_test,
};
use dhtrng_stattests::sp800_90b::{collision_estimate, lag_estimate, mcv_estimate};
use dhtrng_stattests::BitBuffer;
use std::hint::black_box;

const BITS: usize = 1 << 17; // 128 kbit keeps full-suite iterations snappy

fn fixture() -> BitBuffer {
    let mut trng = DhTrng::builder().seed(0xbec4).build();
    (0..BITS).map(|_| trng.next_bit()).collect()
}

fn battery_benches(c: &mut Criterion) {
    let bits = fixture();
    let mut group = c.benchmark_group("stattests");
    group.throughput(Throughput::Elements(BITS as u64));

    group.bench_function("sp22-frequency", |b| {
        b.iter(|| black_box(frequency_test(&bits).p_value()))
    });
    group.bench_function("sp22-dft", |b| {
        b.iter(|| black_box(dft_test(&bits).p_value()))
    });
    group.bench_function("sp22-nonoverlapping-148-templates", |b| {
        b.iter(|| black_box(non_overlapping_template_test(&bits).p_value()))
    });
    group.bench_function("sp22-serial-m16", |b| {
        b.iter(|| black_box(serial_test(&bits, 16).p_value()))
    });
    group.bench_function("sp22-linear-complexity", |b| {
        b.iter(|| black_box(linear_complexity_test(&bits, 500).p_value()))
    });
    group.bench_function("sp90b-mcv", |b| {
        b.iter(|| black_box(mcv_estimate(&bits).h_min))
    });
    group.bench_function("sp90b-collision", |b| {
        b.iter(|| black_box(collision_estimate(&bits).h_min))
    });
    group.bench_function("sp90b-lag-predictor", |b| {
        b.iter(|| black_box(lag_estimate(&bits).h_min))
    });
    group.finish();
}

criterion_group!(benches, battery_benches);
criterion_main!(benches);
