//! Conditioner microbenchmarks: bit-serial `push` loops vs the
//! table-driven block kernels, per machine — the Amdahl serial
//! fraction the block-parallel conditioning layer removes.
//!
//! `bench_report` measures the same two paths with its own adaptive
//! timer and publishes `conditioning.block_speedup` in BENCH_9.json
//! (acceptance: ≥ 4x for CRC-16 at ratio 2); this criterion group is
//! the interactive/quick-sweep view of the same comparison.

use criterion::measurement::WallTime;
use criterion::{
    criterion_group, criterion_main, BenchmarkGroup, BenchmarkId, Criterion, Throughput,
};
use dhtrng_core::conditioning::{
    BitSink, Conditioner, CrcWhitener, LfsrConditioner, VonNeumannConditioner, XorFold,
};
use std::hint::black_box;

const RAW_BYTES: usize = 1 << 16;

fn raw_input() -> Vec<u8> {
    // Deterministic mixed-content input; a fixed multiplicative hash
    // keeps both 0/1 balance and pair diversity (for Von Neumann).
    (0..RAW_BYTES)
        .map(|i| ((i.wrapping_mul(2654435761)) >> 7) as u8)
        .collect()
}

fn bench_serial<C: Conditioner>(group: &mut BenchmarkGroup<'_, WallTime>, name: &str, mut cond: C) {
    let raw = raw_input();
    let mut out = vec![0u8; RAW_BYTES + 1];
    group.bench_function(BenchmarkId::new("serial", name), |b| {
        b.iter(|| {
            let mut sink = BitSink::new(&mut out);
            for &byte in &raw {
                for i in (0..8).rev() {
                    if let Some(bit) = cond.push((byte >> i) & 1 == 1) {
                        sink.push_bit(bit);
                    }
                }
            }
            let pushed = sink.bits_pushed();
            black_box(&out);
            black_box(pushed)
        })
    });
}

fn bench_block<C: Conditioner>(group: &mut BenchmarkGroup<'_, WallTime>, name: &str, mut cond: C) {
    let raw = raw_input();
    let mut out = vec![0u8; RAW_BYTES + 1];
    group.bench_function(BenchmarkId::new("block", name), |b| {
        b.iter(|| {
            let mut sink = BitSink::new(&mut out);
            cond.condition_block(&raw, &mut sink);
            let pushed = sink.bits_pushed();
            black_box(&out);
            black_box(pushed)
        })
    });
}

fn conditioning_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("conditioning");
    group.throughput(Throughput::Elements((RAW_BYTES * 8) as u64));

    bench_serial(&mut group, "crc-ratio2", CrcWhitener::new(2));
    bench_block(&mut group, "crc-ratio2", CrcWhitener::new(2));
    bench_serial(&mut group, "crc-ratio1", CrcWhitener::new(1));
    bench_block(&mut group, "crc-ratio1", CrcWhitener::new(1));
    bench_serial(&mut group, "lfsr", LfsrConditioner::new());
    bench_block(&mut group, "lfsr", LfsrConditioner::new());
    bench_serial(&mut group, "xorfold4", XorFold::new(4));
    bench_block(&mut group, "xorfold4", XorFold::new(4));
    bench_serial(&mut group, "von-neumann", VonNeumannConditioner::new());
    bench_block(&mut group, "von-neumann", VonNeumannConditioner::new());
    bench_serial(
        &mut group,
        "chain-xf2-crc2",
        XorFold::new(2).then(CrcWhitener::new(2)),
    );
    bench_block(
        &mut group,
        "chain-xf2-crc2",
        XorFold::new(2).then(CrcWhitener::new(2)),
    );

    group.finish();
}

criterion_group!(benches, conditioning_benches);
criterion_main!(benches);
