//! Event-driven simulator engine benchmarks: events per second when
//! running the paper's circuits at the gate level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dhtrng_core::architecture::{dh_trng_netlist, entropy_unit_netlist};
use dhtrng_fpga::Device;
use dhtrng_noise::NoiseRng;
use dhtrng_sim::{Engine, Femtos, Level};
use std::hint::black_box;

fn run_unit(ns: f64) -> u64 {
    let (nl, ports) = entropy_unit_netlist(&Device::artix7());
    let mut e = Engine::new(nl, NoiseRng::seed_from_u64(1)).expect("valid");
    e.drive(ports.en, Femtos::ZERO, Level::Low);
    e.drive(ports.en, Femtos::from_ns(2.0), Level::High);
    e.add_clock_50(
        ports.clk,
        Femtos::from_ns(3.0),
        Femtos::from_seconds(1.0 / 100.0e6),
    );
    e.run_until(Femtos::from_ns(ns));
    e.stats().events
}

fn run_full(ns: f64) -> u64 {
    let (nl, ports) = dh_trng_netlist(&Device::artix7());
    let mut e = Engine::new(nl, NoiseRng::seed_from_u64(1)).expect("valid");
    e.drive(ports.en, Femtos::ZERO, Level::Low);
    e.drive(ports.en, Femtos::from_ns(2.0), Level::High);
    e.add_clock_50(
        ports.clk,
        Femtos::from_ns(3.0),
        Femtos::from_seconds(1.0 / 620.0e6),
    );
    e.run_until(Femtos::from_ns(ns));
    e.stats().events
}

fn simulator_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("event-driven-sim");
    for ns in [200.0f64, 1000.0] {
        group.bench_function(BenchmarkId::new("entropy-unit", format!("{ns}ns")), |b| {
            b.iter(|| black_box(run_unit(ns)))
        });
        group.bench_function(BenchmarkId::new("full-dh-trng", format!("{ns}ns")), |b| {
            b.iter(|| black_box(run_full(ns)))
        });
    }
    group.finish();
}

criterion_group!(benches, simulator_benches);
criterion_main!(benches);
