//! Streaming-engine microbenchmarks: simulated bytes per second of the
//! sharded [`EntropyStream`] at different shard counts, against the
//! single-instance batched path it is built from.
//!
//! Wall-clock scaling across shards depends on available cores (the
//! modeled hardware throughput always scales linearly — one sampling
//! clock per instance); `bench_report` records both views in
//! `BENCH_2.json`.

use criterion::measurement::WallTime;
use criterion::{
    black_box, criterion_group, criterion_main, BenchmarkGroup, BenchmarkId, Criterion, Throughput,
};
use dhtrng_core::{DhTrng, Trng};
use dhtrng_stream::EntropyStream;

const READ_BYTES: usize = 1 << 18; // 256 KiB per iteration

fn bench_stream(group: &mut BenchmarkGroup<'_, WallTime>, shards: usize) {
    let mut stream = EntropyStream::builder()
        .shards(shards)
        .seed(1)
        .chunk_bytes(64 * 1024)
        .build();
    let mut buf = vec![0u8; READ_BYTES];
    group.bench_function(BenchmarkId::new("stream", format!("{shards}-shard")), |b| {
        b.iter(|| {
            stream.read(&mut buf).expect("healthy stream");
            black_box(buf[0])
        })
    });
}

fn streaming_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming");
    group.throughput(Throughput::Bytes(READ_BYTES as u64));

    // Baseline: one instance, batched fill, no threads.
    let mut single = DhTrng::builder().seed(1).build();
    let mut buf = vec![0u8; READ_BYTES];
    group.bench_function(BenchmarkId::from_parameter("single-instance-fill"), |b| {
        b.iter(|| {
            single.fill_bytes(&mut buf);
            black_box(buf[0])
        })
    });

    for shards in [1, 2, 4] {
        bench_stream(&mut group, shards);
    }
    group.finish();
}

criterion_group!(benches, streaming_benches);
criterion_main!(benches);
