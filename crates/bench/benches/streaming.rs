//! Streaming-engine microbenchmarks: simulated bytes per second of the
//! sharded [`EntropyStream`] at different shard counts, against the
//! single-instance batched path it is built from, plus the three
//! output tiers (`raw` / `conditioned` / `drbg`) of the SP 800-90C
//! pipeline mounted on a 4-shard deployment.
//!
//! Wall-clock scaling across shards depends on available cores (the
//! modeled hardware throughput always scales linearly — one sampling
//! clock per instance); `bench_report` records both views in
//! `BENCH_4.json`, alongside the per-tier post-conditioning rates.

use criterion::measurement::WallTime;
use criterion::{
    black_box, criterion_group, criterion_main, BenchmarkGroup, BenchmarkId, Criterion, Throughput,
};
use dhtrng_core::{DhTrng, Trng};
use dhtrng_stream::{EntropyStream, PipelineBuilder, Tier};

const READ_BYTES: usize = 1 << 18; // 256 KiB per iteration

fn bench_stream(group: &mut BenchmarkGroup<'_, WallTime>, shards: usize) {
    let mut stream = EntropyStream::builder()
        .shards(shards)
        .seed(1)
        .chunk_bytes(64 * 1024)
        .build();
    let mut buf = vec![0u8; READ_BYTES];
    group.bench_function(BenchmarkId::new("stream", format!("{shards}-shard")), |b| {
        b.iter(|| {
            stream.read(&mut buf).expect("healthy stream");
            black_box(buf[0])
        })
    });
}

fn streaming_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming");
    group.throughput(Throughput::Bytes(READ_BYTES as u64));

    // Baseline: one instance, batched fill, no threads.
    let mut single = DhTrng::builder().seed(1).build();
    let mut buf = vec![0u8; READ_BYTES];
    group.bench_function(BenchmarkId::from_parameter("single-instance-fill"), |b| {
        b.iter(|| {
            single.fill_bytes(&mut buf);
            black_box(buf[0])
        })
    });

    for shards in [1, 2, 4] {
        bench_stream(&mut group, shards);
    }
    group.finish();
}

/// Post-conditioning throughput per output tier (4 shards, stage
/// defaults: 2:1 CRC conditioning, 1 Mbit DRBG reseed interval). The
/// conditioned tier consumes `ratio` raw bytes per output byte, so its
/// rate is expected to sit near half the raw tier's; the drbg tier
/// regenerates from DRBG state and is bounded by `NoiseRng` block
/// generation instead.
fn pipeline_tier_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    // A smaller read than the raw-stream bench: the conditioned tier
    // pays the compression ratio in wall-clock.
    const TIER_BYTES: usize = 1 << 16; // 64 KiB per iteration
    group.throughput(Throughput::Bytes(TIER_BYTES as u64));
    for (tier, name) in [
        (Tier::Raw, "raw"),
        (Tier::Conditioned, "conditioned"),
        (Tier::Drbg, "drbg"),
    ] {
        let mut stream = PipelineBuilder::new()
            .shards(4)
            .seed(1)
            .chunk_bytes(64 * 1024)
            .build(tier);
        let mut buf = vec![0u8; TIER_BYTES];
        group.bench_function(BenchmarkId::new("tier", name), |b| {
            b.iter(|| {
                stream.read(&mut buf).expect("healthy pipeline");
                black_box(buf[0])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, streaming_benches, pipeline_tier_benches);
criterion_main!(benches);
