//! Hand-off microbenchmarks: the lock-free SPSC ring against the
//! `std::sync::mpsc` bounded channel it replaced on the worker→merger
//! path.
//!
//! Three shapes, each measured for both transports:
//!
//! * **uncontended** — push + pop on one thread: the pure per-chunk
//!   hand-off cost in the throughput steady state (queue neither
//!   empty nor full, nobody blocks) — the cost the ring removes;
//! * **round-trip** — one buffer ping-ponged between the bench thread
//!   and an echo thread over a data/return pair (two hand-offs per
//!   element): the per-chunk hand-off latency, visible even on a
//!   1-CPU host because the cost being removed is synchronisation
//!   overhead, not parallelism;
//! * **sustained** — 1/2/4 producer threads each recycling buffers
//!   through their own pair while the bench thread drains round-robin,
//!   exactly the engine's merge topology: sustained chunks/sec under
//!   backpressure.
//!
//! `bench_report` re-measures the round-trip shape with the counting
//! allocator engaged and records `scaling.handoff_ns_per_chunk` (ring)
//! and `scaling.handoff_mpsc_ns_per_chunk` in BENCH_9.json.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dhtrng_stream::ring;
use std::sync::mpsc::sync_channel;
use std::thread::JoinHandle;

const QUEUE: usize = 4;
const BUFFER_BYTES: usize = 64;

/// An echo peer over mpsc channels: every buffer sent to it comes
/// straight back. Channels close → thread exits.
struct MpscEcho {
    to_peer: std::sync::mpsc::SyncSender<Vec<u8>>,
    from_peer: std::sync::mpsc::Receiver<Vec<u8>>,
    handle: Option<JoinHandle<()>>,
}

impl MpscEcho {
    fn spawn() -> Self {
        let (to_peer, peer_in) = sync_channel::<Vec<u8>>(QUEUE);
        let (peer_out, from_peer) = sync_channel::<Vec<u8>>(QUEUE);
        let handle = std::thread::spawn(move || {
            while let Ok(buffer) = peer_in.recv() {
                if peer_out.send(buffer).is_err() {
                    return;
                }
            }
        });
        Self {
            to_peer,
            from_peer,
            handle: Some(handle),
        }
    }

    fn round_trip(&mut self, buffer: Vec<u8>) -> Vec<u8> {
        self.to_peer.send(buffer).expect("echo thread alive");
        self.from_peer.recv().expect("echo thread alive")
    }
}

impl Drop for MpscEcho {
    fn drop(&mut self) {
        let (dead_tx, _) = sync_channel(1);
        self.to_peer = dead_tx; // hang up so the echo thread exits
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The same echo peer over a ring pair.
struct RingEcho {
    to_peer: Option<ring::Producer<Vec<u8>>>,
    from_peer: ring::Consumer<Vec<u8>>,
    handle: Option<JoinHandle<()>>,
}

impl RingEcho {
    fn spawn() -> Self {
        let (to_peer, mut peer_in) = ring::spsc::<Vec<u8>>(QUEUE);
        let (mut peer_out, from_peer) = ring::spsc::<Vec<u8>>(QUEUE);
        let handle = std::thread::spawn(move || {
            while let Ok(buffer) = peer_in.pop() {
                if peer_out.push(buffer).is_err() {
                    return;
                }
            }
        });
        Self {
            to_peer: Some(to_peer),
            from_peer,
            handle: Some(handle),
        }
    }

    fn round_trip(&mut self, buffer: Vec<u8>) -> Vec<u8> {
        self.to_peer
            .as_mut()
            .expect("present until drop")
            .push(buffer)
            .expect("echo thread alive");
        self.from_peer.pop().expect("echo thread alive")
    }
}

impl Drop for RingEcho {
    fn drop(&mut self) {
        self.to_peer.take(); // hang up so the echo thread exits
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The pure per-chunk hand-off cost: push + pop on one thread, so no
/// blocking, no parking, no context switch — exactly the cost each
/// chunk pays in the throughput steady state, where the queue is
/// neither empty nor full and nobody waits. This is the number the
/// ring exists to shrink (a pair of Acquire/Release atomics vs the
/// channel's internal machinery) and the one `bench_report` records
/// as `scaling.handoff_ns_per_chunk`.
fn uncontended_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("handoff-uncontended");
    // One element = one hand-off (one push + one pop).
    group.throughput(Throughput::Elements(1));

    let (tx, rx) = sync_channel::<Vec<u8>>(QUEUE);
    let mut buffer = Some(vec![0u8; BUFFER_BYTES]);
    group.bench_function(BenchmarkId::new("push-pop", "mpsc"), |b| {
        b.iter(|| {
            tx.send(buffer.take().expect("in hand"))
                .expect("receiver in scope");
            buffer = Some(black_box(rx.recv().expect("sender in scope")));
        })
    });
    drop((tx, rx));

    let (mut tx, mut rx) = ring::spsc::<Vec<u8>>(QUEUE);
    let mut buffer = Some(vec![0u8; BUFFER_BYTES]);
    group.bench_function(BenchmarkId::new("push-pop", "ring"), |b| {
        b.iter(|| {
            tx.push(buffer.take().expect("in hand"))
                .expect("consumer in scope");
            buffer = Some(black_box(rx.pop().expect("producer in scope")));
        })
    });
    group.finish();
}

fn round_trip_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("handoff");
    // One element = one full round trip = two hand-offs.
    group.throughput(Throughput::Elements(1));

    let mut mpsc_echo = MpscEcho::spawn();
    let mut buffer = Some(vec![0u8; BUFFER_BYTES]);
    group.bench_function(BenchmarkId::new("round-trip", "mpsc"), |b| {
        b.iter(|| {
            let back = mpsc_echo.round_trip(buffer.take().expect("in hand"));
            buffer = Some(black_box(back));
        })
    });
    drop(mpsc_echo);

    let mut ring_echo = RingEcho::spawn();
    let mut buffer = Some(vec![0u8; BUFFER_BYTES]);
    group.bench_function(BenchmarkId::new("round-trip", "ring"), |b| {
        b.iter(|| {
            let back = ring_echo.round_trip(buffer.take().expect("in hand"));
            buffer = Some(black_box(back));
        })
    });
    drop(ring_echo);
    group.finish();
}

fn sustained_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("handoff-sustained");
    for shards in [1usize, 2, 4] {
        // One element per drained chunk.
        group.throughput(Throughput::Elements(shards as u64));

        // mpsc: each shard echoes buffers through its own channel pair.
        let mut echoes: Vec<MpscEcho> = (0..shards).map(|_| MpscEcho::spawn()).collect();
        for echo in &mut echoes {
            for _ in 0..2 {
                echo.to_peer
                    .send(vec![0u8; BUFFER_BYTES])
                    .expect("echo thread alive");
            }
        }
        group.bench_function(BenchmarkId::new("mpsc", format!("{shards}-shard")), |b| {
            b.iter(|| {
                for echo in &mut echoes {
                    let buffer = echo.from_peer.recv().expect("echo thread alive");
                    echo.to_peer
                        .send(black_box(buffer))
                        .expect("echo thread alive");
                }
            })
        });
        drop(echoes);

        // ring: the same topology over ring pairs.
        let mut echoes: Vec<RingEcho> = (0..shards).map(|_| RingEcho::spawn()).collect();
        for echo in &mut echoes {
            for _ in 0..2 {
                echo.to_peer
                    .as_mut()
                    .expect("present until drop")
                    .push(vec![0u8; BUFFER_BYTES])
                    .expect("echo thread alive");
            }
        }
        group.bench_function(BenchmarkId::new("ring", format!("{shards}-shard")), |b| {
            b.iter(|| {
                for echo in &mut echoes {
                    let buffer = echo.from_peer.pop().expect("echo thread alive");
                    echo.to_peer
                        .as_mut()
                        .expect("present until drop")
                        .push(black_box(buffer))
                        .expect("echo thread alive");
                }
            })
        });
        drop(echoes);
    }
    group.finish();
}

criterion_group!(
    benches,
    uncontended_benches,
    round_trip_benches,
    sustained_benches
);
criterion_main!(benches);
