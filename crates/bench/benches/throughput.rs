//! Generation-rate microbenchmarks: simulated bits per second of the
//! DH-TRNG behavioural model and every baseline architecture.
//!
//! (The *architectural* throughput — the paper's 620/670 Mbps — comes
//! from the timing model; this bench measures how fast the behavioural
//! simulation itself runs, which bounds experiment runtimes.)

use criterion::measurement::WallTime;
use criterion::{
    criterion_group, criterion_main, BenchmarkGroup, BenchmarkId, Criterion, Throughput,
};
use dhtrng_baselines::{
    DualModePufTrng, JitterLatchTrng, LatchedRoTrng, MetastableCmTrng, MultiphaseTrng, TeroTrng,
    TerotTrng,
};
use dhtrng_core::{DhTrng, HybridUnitGroup, SlicedDhTrng, Trng, MAX_LANES};
use std::hint::black_box;

const BITS: usize = 1 << 16;

/// The seed's per-bit path: one virtual `next_bit` per cycle.
fn bench_generator<T: Trng>(group: &mut BenchmarkGroup<'_, WallTime>, name: &str, mut trng: T) {
    group.bench_function(BenchmarkId::from_parameter(name), |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for _ in 0..BITS {
                acc ^= u32::from(trng.next_bit());
            }
            black_box(acc)
        })
    });
}

/// The batched path: the same bit stream through `fill_bytes`.
fn bench_batched<T: Trng>(group: &mut BenchmarkGroup<'_, WallTime>, name: &str, mut trng: T) {
    let mut buf = vec![0u8; BITS / 8];
    group.bench_function(BenchmarkId::from_parameter(name), |b| {
        b.iter(|| {
            trng.fill_bytes(&mut buf);
            black_box(buf[0])
        })
    });
}

fn throughput_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation-rate");
    group.throughput(Throughput::Elements(BITS as u64));

    // Per-bit vs batched on the same generators: the ratio is the
    // acceptance number `bench_report` tracks in BENCH_4.json.
    bench_generator(&mut group, "DH-TRNG", DhTrng::builder().seed(1).build());
    bench_batched(
        &mut group,
        "DH-TRNG-batched",
        DhTrng::builder().seed(1).build(),
    );
    bench_batched(
        &mut group,
        "HybridUnits-x12-batched",
        HybridUnitGroup::hybrid(12, 1),
    );
    bench_generator(
        &mut group,
        "DH-TRNG-no-feedback",
        DhTrng::builder().seed(1).feedback(false).build(),
    );
    bench_generator(
        &mut group,
        "HybridUnits-x12",
        HybridUnitGroup::hybrid(12, 1),
    );
    bench_generator(&mut group, "TERO-FPL20", TeroTrng::new(1));
    bench_generator(&mut group, "LatchedRO-TCASII21", LatchedRoTrng::new(1));
    bench_generator(&mut group, "JitterLatch-TCASI21", JitterLatchTrng::new(1));
    bench_generator(&mut group, "TEROT-TCASI22", TerotTrng::new(1));
    bench_generator(
        &mut group,
        "MetastableCM-TCASII22",
        MetastableCmTrng::new(1),
    );
    bench_generator(&mut group, "DualModePUF-TC23", DualModePufTrng::new(1));
    bench_generator(&mut group, "Multiphase-DAC23", MultiphaseTrng::new(1));
    group.finish();
}

/// Scalar vs bit-sliced block kernel at equal lane counts: `lanes`
/// independently-seeded generators each producing `BITS` bits, either
/// as `lanes` sequential scalar `fill_bytes` calls or as one
/// lane-parallel `SlicedDhTrng` bank. Identical output bytes per lane,
/// so the ratio is pure kernel speed (the number BENCH_6.json gates).
fn kernel_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("block-kernel");
    for lanes in [4usize, 16, MAX_LANES] {
        group.throughput(Throughput::Elements((lanes * BITS) as u64));
        group.bench_function(BenchmarkId::new("scalar", lanes), |b| {
            let mut trngs: Vec<DhTrng> = (0..lanes)
                .map(|i| DhTrng::builder().seed(1 + i as u64).build())
                .collect();
            let mut buf = vec![0u8; BITS / 8];
            b.iter(|| {
                for trng in &mut trngs {
                    trng.fill_bytes(&mut buf);
                }
                black_box(buf[0])
            })
        });
        group.bench_function(BenchmarkId::new("sliced", lanes), |b| {
            let instances: Vec<DhTrng> = (0..lanes)
                .map(|i| DhTrng::builder().seed(1 + i as u64).build())
                .collect();
            let mut bank = SlicedDhTrng::new(instances).expect("lanes <= MAX_LANES");
            let mut chunks: Vec<Option<Vec<u8>>> =
                (0..lanes).map(|_| Some(vec![0u8; BITS / 8])).collect();
            b.iter(|| {
                bank.fill_lane_chunks(&mut chunks);
                black_box(chunks[0].as_deref().map(|c| c[0]))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, throughput_benches, kernel_benches);
criterion_main!(benches);
