//! Ablation benchmarks for the design choices DESIGN.md calls out: the
//! coupling and feedback strategies and the device/corner dependence.
//!
//! Criterion measures the behavioural-simulation cost of each variant;
//! the group also prints each variant's modelled Eq. 5 coverage and
//! residual bias once, so the run doubles as a quality-ablation record.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dhtrng_core::{DhTrng, Trng};
use dhtrng_fpga::Device;
use dhtrng_noise::PvtCorner;
use std::hint::black_box;

const BITS: usize = 1 << 15;

fn ablation_benches(c: &mut Criterion) {
    let variants: Vec<(&str, DhTrng)> = vec![
        ("full", DhTrng::builder().seed(1).build()),
        (
            "no-coupling",
            DhTrng::builder().seed(1).coupling(false).build(),
        ),
        (
            "no-feedback",
            DhTrng::builder().seed(1).feedback(false).build(),
        ),
        (
            "no-coupling-no-feedback",
            DhTrng::builder()
                .seed(1)
                .coupling(false)
                .feedback(false)
                .build(),
        ),
        (
            "virtex6",
            DhTrng::builder().seed(1).device(Device::virtex6()).build(),
        ),
        (
            "corner--20C-0.8V",
            DhTrng::builder()
                .seed(1)
                .corner(PvtCorner::new(-20.0, 0.8))
                .build(),
        ),
        (
            "slow-clock-100MHz",
            DhTrng::builder().seed(1).sampling_hz(100.0e6).build(),
        ),
    ];

    println!("variant quality (modelled): name, Eq.5 coverage, residual bias");
    for (name, trng) in &variants {
        println!(
            "  {name:<24} P_rand = {:.4}  bias = {:.2e}",
            trng.randomness_coverage(),
            trng.residual_bias()
        );
    }

    let mut group = c.benchmark_group("ablation-generation");
    group.throughput(Throughput::Elements(BITS as u64));
    for (name, trng) in variants {
        let mut trng = trng;
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for _ in 0..BITS {
                    acc ^= u32::from(trng.next_bit());
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ablation_benches);
criterion_main!(benches);
