//! Tiny command-line flag helpers shared by the experiment binaries.

/// Reads `--name value` from `std::env::args`, falling back to `default`.
///
/// # Panics
///
/// Panics (with a clear message) if the flag is present but its value is
/// missing or unparsable.
pub fn flag<T: std::str::FromStr>(name: &str, default: T) -> T
where
    T::Err: std::fmt::Debug,
{
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == name {
            let value = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("flag {name} needs a value"));
            return value
                .parse()
                .unwrap_or_else(|e| panic!("flag {name}: bad value {value:?}: {e:?}"));
        }
    }
    default
}

/// Whether a boolean switch (e.g. `--paper`) is present.
pub fn switch(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_apply_without_flags() {
        assert_eq!(flag("--definitely-not-passed", 42usize), 42);
        assert!(!switch("--definitely-not-passed"));
    }
}
