//! Minimal aligned-table printer for the experiment binaries.

/// A simple left-aligned text table.
///
/// # Example
///
/// ```
/// use dhtrng_bench::fmt::Table;
///
/// let mut t = Table::new(&["design", "Mbps"]);
/// t.row(&["DH-TRNG", "620"]);
/// let s = t.to_string();
/// assert!(s.contains("DH-TRNG"));
/// assert!(s.lines().count() >= 3); // header + rule + row
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let print_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_structure() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["xxxxx", "y"]);
        t.row(&["z", "w"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Column 2 starts at the same offset in every data line.
        let off = lines[0].find("bbbb").unwrap();
        assert_eq!(lines[2].find('y').unwrap(), off);
        assert_eq!(lines[3].find('w').unwrap(), off);
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one"]);
    }
}
