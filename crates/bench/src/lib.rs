//! Experiment harness for the DH-TRNG reproduction.
//!
//! One binary per table/figure of the paper (see `DESIGN.md` §3 for the
//! index):
//!
//! | binary      | regenerates                                   |
//! |-------------|-----------------------------------------------|
//! | `table1`    | Table 1 — min-entropy vs ring order           |
//! | `table2`    | Table 2 — hybrid units vs 9-stage ROs         |
//! | `table3`    | Table 3 — NIST SP 800-22 suite                |
//! | `table4`    | Table 4 — NIST SP 800-90B estimators          |
//! | `table5`    | Table 5 — AIS-31                              |
//! | `table6`    | Table 6 — SOTA comparison                     |
//! | `fig1b`     | Figure 1(b) — efficiency scatter              |
//! | `fig3b`     | Figure 3(b) — entropy-unit waveforms          |
//! | `fig7`      | Figure 7 — bitstream images (PBM)             |
//! | `fig8`      | Figure 8 — autocorrelation function           |
//! | `fig9`      | Figure 9 — PVT min-entropy sweep              |
//! | `restart`   | §4.2 — restart test                           |
//! | `deviation` | §4.3 — deviation (bias) test                  |
//!
//! Plus `bench_report`, which is not a paper artefact: it measures the
//! batched-generation speedup and the shard-scaling of the streaming
//! engine and emits the `BENCH_4.json` that CI uploads per-PR (with the steady-state allocation-count metric).
//!
//! Every binary prints paper-reported values next to the measured ones.
//! Dataset sizes default to the paper's where runtime allows and accept
//! `--sets N` / `--bits N` style flags to scale.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod fmt;
pub mod gen;
pub mod paper;
