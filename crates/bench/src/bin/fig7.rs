//! Regenerates Figure 7: 1 Mbit bitstream images (PBM) for both devices.
//!
//! Usage: `fig7 [--side N]` (default 1000x1000 pixels). Images land in
//! `target/paper-figures/`.

use dhtrng_bench::{args, gen};
use dhtrng_core::DhTrng;
use dhtrng_fpga::Device;
use dhtrng_stattests::basic::{bias_percent, bitmap_pbm};

fn main() {
    let side: usize = args::flag("--side", 1000usize);
    let out_dir = std::path::Path::new("target/paper-figures");
    std::fs::create_dir_all(out_dir).expect("create output directory");

    println!("Figure 7 — bitstream images ({side}x{side} bits per device)\n");
    for device in [Device::virtex6(), Device::artix7()] {
        let label = device.display_name();
        let file = out_dir.join(format!(
            "fig7-{}.pbm",
            label
                .split_whitespace()
                .next()
                .unwrap_or("device")
                .to_lowercase()
        ));
        let mut trng = DhTrng::builder().device(device).seed(0xf16).build();
        let bits = gen::bits_from(&mut trng, side * side);
        let pbm = bitmap_pbm(&bits, side, side);
        std::fs::write(&file, pbm).expect("write PBM");
        println!(
            "{label}: wrote {} ({} bits, bias {:.4}% — uniform black/white \
             speckle as in the paper)",
            file.display(),
            side * side,
            bias_percent(&bits)
        );
    }
}
