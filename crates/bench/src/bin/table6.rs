//! Regenerates Table 6: comparison with the state of the art in
//! throughput, area and power (Artix-7).
//!
//! Published rows are reproduced verbatim; the "This work" row is also
//! recomputed from our platform models (timing/packing/power) to show
//! the reproduction agrees with the silicon numbers.

use dhtrng_baselines::paper_rows;
use dhtrng_bench::fmt::Table;
use dhtrng_core::DhTrng;
use dhtrng_fpga::Device;

fn main() {
    println!("Table 6 — comparison in throughput, area, power (Artix-7)\n");
    let mut table = Table::new(&[
        "Design",
        "LUTs",
        "DFFs",
        "Slices",
        "Mbps",
        "Power (W)",
        "Tput/(Slices*Power)",
    ]);
    for row in paper_rows() {
        table.row(&[
            row.design.to_string(),
            row.luts.to_string(),
            row.dffs.to_string(),
            row.slices.to_string(),
            format!("{:.2}", row.throughput_mbps),
            format!("{:.3}", row.power_w),
            format!("{:.2}", row.efficiency()),
        ]);
    }
    println!("{table}");

    // Our computed row from the platform models.
    let trng = DhTrng::builder().device(Device::artix7()).build();
    let r = trng.resources();
    println!(
        "This work, recomputed from the reproduction's models: \
         {} LUTs + {} MUXes + {} DFFs, {} slices, {:.1} Mbps, {:.3} W, \
         efficiency {:.1} (paper: 620 Mbps, 0.068 W, 1139.7)",
        r.luts,
        r.muxes,
        r.dffs,
        trng.slices(),
        trng.throughput_mbps(),
        trng.power().total_w(),
        trng.efficiency(),
    );
    let rows = paper_rows();
    let prior_best = rows[..7].iter().map(|r| r.efficiency()).fold(0.0, f64::max);
    println!(
        "improvement over prior best (DAC'23): {:.2}x (paper: 2.63x)",
        trng.efficiency() / prior_best
    );
}
