//! Regenerates §4.2's restart test: enable the TRNG six times from
//! power-up and record the first 32 bits of each run — all words must
//! differ.
//!
//! Usage: `restart [--runs N]`.

use dhtrng_bench::{args, fmt::Table, paper};
use dhtrng_core::{DhTrng, Trng};
use dhtrng_stattests::sp800_90b::RestartMatrix;
use dhtrng_stattests::BitBuffer;

fn main() {
    let runs: usize = args::flag("--runs", 6usize);
    println!("Restart test (§4.2) — first 32 bits after {runs} power-ups\n");

    let mut trng = DhTrng::builder().seed(0x7e57a7).build();
    let mut words: Vec<u32> = Vec::with_capacity(runs);
    for _ in 0..runs {
        let bits = trng.collect_bits(32);
        words.push(bits.iter().fold(0u32, |w, &b| (w << 1) | u32::from(b)));
        trng.restart();
    }

    let mut table = Table::new(&["restart", "paper word", "measured word"]);
    for (i, &w) in words.iter().enumerate() {
        let paper_word = paper::RESTART_WORDS
            .get(i)
            .map(|p| format!("0X{p:08X}"))
            .unwrap_or_else(|| "-".into());
        table.row(&[format!("{}", i + 1), paper_word, format!("0X{w:08X}")]);
    }
    println!("{table}");

    let mut sorted = words.clone();
    sorted.sort_unstable();
    sorted.dedup();
    println!(
        "all words distinct: {} (paper: all six sequences differ — \
         unrepeatable, true-random startup)",
        if sorted.len() == words.len() {
            "yes"
        } else {
            "NO"
        }
    );

    // Beyond the paper: the SP 800-90B §3.1.4 restart-matrix validation
    // (100 restarts x 64 post-restart bits, row/column estimates).
    let mut matrix = RestartMatrix::new(64);
    let mut trng = DhTrng::builder().seed(0x7e57a8).build();
    for _ in 0..100 {
        trng.restart();
        let bits: BitBuffer = trng.collect_bits(64).into_iter().collect();
        matrix.record(&bits);
    }
    let a = matrix.assess(0.98);
    println!(
        "\nSP 800-90B restart matrix (100 x 64): row h = {:.4}, column h = {:.4}, \
         frequency test {} -> {}",
        a.row_estimate.h_min,
        a.column_estimate.h_min,
        if a.frequency_test_passed {
            "pass"
        } else {
            "FAIL"
        },
        if a.passed() { "validated" } else { "REJECTED" }
    );
}
