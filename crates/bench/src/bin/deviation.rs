//! Regenerates §4.3's deviation test: Eq. 6 bias over sets of 1 Mbit
//! sequences per device.
//!
//! Usage: `deviation [--sets N] [--bits N]` (paper: 10 sets of 1 Mbit).

use dhtrng_bench::{args, fmt::Table, gen, paper};
use dhtrng_core::DhTrng;
use dhtrng_fpga::Device;
use dhtrng_stattests::basic::bias_percent;

fn main() {
    let sets: usize = args::flag("--sets", 10usize);
    let nbits: usize = args::flag("--bits", 1usize << 20);
    println!("Deviation test (§4.3) — Eq. 6 bias over {sets} sets of {nbits} bits\n");

    let mut table = Table::new(&["device", "paper bias %", "measured bias % (mean)"]);
    for (device, (_, paper_bias)) in [Device::virtex6(), Device::artix7()]
        .into_iter()
        .zip(paper::DEVIATION)
    {
        let label = device.display_name();
        let dev = device.clone();
        let seqs = gen::sequences(
            move |i| {
                DhTrng::builder()
                    .device(dev.clone())
                    .seed(0xb1a5 + i)
                    .build()
            },
            sets,
            nbits,
        );
        let mean_bias = seqs.iter().map(bias_percent).sum::<f64>() / sets as f64;
        table.row(&[label, format!("{paper_bias:.4}"), format!("{mean_bias:.4}")]);
    }
    println!("{table}");
    println!(
        "at 1 Mbit the sampling floor of |N1-N0|/N is ~0.08%, so values of \
         that order indicate an unbiased source (the paper's sub-0.01% \
         figures average the same way over their sets)."
    );
}
