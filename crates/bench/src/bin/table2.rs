//! Regenerates Table 2: min-entropy of XORed dynamic hybrid entropy
//! units vs XORed 9-stage ring oscillators, XOR order 9–18.
//!
//! Usage: `table2 [--bits N]` (default 1 Mbit per point).

use dhtrng_bench::{args, fmt::Table, gen, paper};
use dhtrng_core::HybridUnitGroup;
use dhtrng_stattests::sp800_90b::min_entropy_mcv;

fn main() {
    let nbits: usize = args::flag("--bits", 1usize << 20);
    println!("Table 2 — dynamic hybrid entropy units vs 9-stage ROs");
    println!("({nbits} bits per point, SP 800-90B MCV min-entropy, 100 MHz sampling)\n");

    let mut table = Table::new(&[
        "XOR n",
        "paper units",
        "measured units",
        "paper 9-RO",
        "measured 9-RO",
    ]);
    let mut unit_wins = 0;
    for (n, h_units_paper, h_ros_paper) in paper::TABLE2 {
        let mut units = HybridUnitGroup::hybrid(n, 0xAB0 ^ u64::from(n));
        let mut ros = HybridUnitGroup::nine_stage_ro(n, 0xCD0 ^ u64::from(n));
        let h_units = min_entropy_mcv(&gen::bits_from(&mut units, nbits));
        let h_ros = min_entropy_mcv(&gen::bits_from(&mut ros, nbits));
        if h_units > h_ros {
            unit_wins += 1;
        }
        table.row(&[
            format!("{n}"),
            format!("{h_units_paper:.4}"),
            format!("{h_units:.4}"),
            format!("{h_ros_paper:.4}"),
            format!("{h_ros:.4}"),
        ]);
    }
    println!("{table}");
    println!(
        "hybrid units beat 9-stage ROs at {unit_wins}/10 XOR orders \
         (paper: 10/10)"
    );
}
