//! Regenerates Table 4: the NIST SP 800-90B non-IID estimator battery
//! (plus the IID-track result quoted in §4.1.2) on both devices.
//!
//! Usage: `table4 [--bits N] [--perms N]` (default 1 Mbit, 1000 IID
//! permutations; the spec's full IID run uses 10000).

use dhtrng_bench::{args, fmt::Table, gen, paper};
use dhtrng_core::DhTrng;
use dhtrng_fpga::Device;
use dhtrng_stattests::sp800_90b::{iid_permutation_test, min_entropy_mcv, non_iid_battery};

fn main() {
    let nbits: usize = args::flag("--bits", 1usize << 20);
    let perms: usize = args::flag("--perms", 1000usize);
    println!("Table 4 — NIST SP 800-90B ({nbits} bits per device)\n");

    for device in [Device::virtex6(), Device::artix7()] {
        let label = device.display_name();
        let mut trng = DhTrng::builder().device(device.clone()).seed(0x90b).build();
        let bits = gen::bits_from(&mut trng, nbits);
        let battery = non_iid_battery(&bits);

        println!("== {label} ==");
        let mut table = Table::new(&[
            "NIST SP 800-90B",
            "paper p-max",
            "paper h-min",
            "measured p-max",
            "measured h-min",
        ]);
        for (est, paper_row) in battery.iter().zip(paper::TABLE4) {
            let (p_paper, h_paper) = if device.process.nm == 45 {
                (paper_row.1, paper_row.2)
            } else {
                (paper_row.3, paper_row.4)
            };
            table.row(&[
                est.name.to_string(),
                format!("{p_paper:.6e}"),
                format!("{h_paper:.6}"),
                format!("{:.6e}", est.p_max),
                format!("{:.6}", est.h_min),
            ]);
        }
        println!("{table}");

        // §4.1.2 also quotes the IID-track min-entropy.
        let iid = iid_permutation_test(&bits.slice(0, nbits.min(65_536)), perms, 0x11d);
        let h_iid = min_entropy_mcv(&bits);
        let paper_iid = if device.process.nm == 45 {
            0.994698
        } else {
            0.995966
        };
        println!(
            "IID track: permutation test ({perms} perms on 64 kbit) {}; \
             min-entropy {h_iid:.6} (paper: {paper_iid})\n",
            if iid.is_iid() {
                "consistent with IID"
            } else {
                "REJECTED"
            }
        );
    }
}
