//! Regenerates Table 1: min-entropy of parallel XORed ring oscillators
//! vs ring order (2–13 stages) at 100 MHz sampling.
//!
//! Usage: `table1 [--bits N]` (default 1 Mbit per point, as the paper).

use dhtrng_baselines::RoXorTrng;
use dhtrng_bench::{args, fmt::Table, gen, paper};
use dhtrng_stattests::sp800_90b::min_entropy_mcv;

fn main() {
    let nbits: usize = args::flag("--bits", 1usize << 20);
    println!("Table 1 — randomness test of different-order oscillation rings");
    println!("({nbits} bits per point, SP 800-90B MCV min-entropy, 100 MHz sampling)\n");

    let mut table = Table::new(&["stages", "paper h-min", "measured h-min", "delta"]);
    let mut best = (0u32, 0.0f64);
    for (stages, h_paper) in paper::TABLE1 {
        let mut bank = RoXorTrng::table1(stages, 0x7AB1_E001 ^ u64::from(stages));
        let bits = gen::bits_from(&mut bank, nbits);
        let h = min_entropy_mcv(&bits);
        if h > best.1 {
            best = (stages, h);
        }
        table.row(&[
            format!("{stages}"),
            format!("{h_paper:.4}"),
            format!("{h:.4}"),
            format!("{:+.4}", h - h_paper),
        ]);
    }
    println!("{table}");
    println!(
        "paper's best order: 9 (h = 0.9871); measured best: {} (h = {:.4})",
        best.0, best.1
    );
}
