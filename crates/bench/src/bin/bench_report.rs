//! Machine-readable performance report: `BENCH_2.json`.
//!
//! Measures the two throughput numbers this repository's CI tracks
//! per-PR (see ISSUE 2 and `DESIGN.md` §"Streaming engine"):
//!
//! 1. **batching speedup** — the batched `Trng::fill_bytes` fast path
//!    against the per-bit `next_bit` path on the behavioural DH-TRNG
//!    model (identical bit streams, so the ratio is pure overhead
//!    removed);
//! 2. **shard scaling** — the 4-shard [`EntropyStream`] against a
//!    single shard, both as wall-clock simulation throughput (which
//!    depends on the host's cores) and as the modeled hardware
//!    throughput (one sampling clock per instance: linear in the shard
//!    count, the paper's multi-instance deployment claim).
//!
//! Usage: `bench_report [--quick] [--out PATH]` (default
//! `BENCH_2.json` in the working directory; CI uploads it as a
//! workflow artifact).

use std::time::Instant;

use dhtrng_bench::args;
use dhtrng_core::{DhTrng, Trng};
use dhtrng_stream::EntropyStream;

/// Times `routine` adaptively: one warm-up call sizes a batch that runs
/// for roughly `budget_s`, and the mean seconds per call is returned.
fn time_mean_s<F: FnMut()>(mut routine: F, budget_s: f64) -> f64 {
    routine(); // warm-up (also faults in buffers)
    let start = Instant::now();
    routine();
    let once = start.elapsed().as_secs_f64().max(1e-9);
    let reps = ((budget_s / once) as u64).clamp(1, 10_000);
    let start = Instant::now();
    for _ in 0..reps {
        routine();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let quick = args::switch("--quick");
    let out_path: String = args::flag("--out", "BENCH_2.json".to_string());
    let budget_s = if quick { 0.05 } else { 0.5 };
    let bits = if quick { 1 << 18 } else { 1 << 21 };
    let stream_bytes: usize = if quick { 1 << 18 } else { 1 << 22 };

    // 1. Per-bit vs batched on the same generator/seed.
    let mut per_bit_trng = DhTrng::builder().seed(1).build();
    let per_bit_s = time_mean_s(
        || {
            let mut acc = 0u32;
            for _ in 0..bits {
                acc ^= u32::from(per_bit_trng.next_bit());
            }
            std::hint::black_box(acc);
        },
        budget_s,
    );
    let mut batched_trng = DhTrng::builder().seed(1).build();
    let mut buf = vec![0u8; bits / 8];
    let batched_s = time_mean_s(
        || {
            batched_trng.fill_bytes(&mut buf);
            std::hint::black_box(buf[0]);
        },
        budget_s,
    );
    let per_bit_mbps = bits as f64 / per_bit_s / 1e6;
    let batched_mbps = bits as f64 / batched_s / 1e6;
    let batch_speedup = per_bit_s / batched_s;

    // 2. Stream scaling: 1 shard vs 4 shards, same chunking.
    let mut stream_buf = vec![0u8; stream_bytes];
    let mut wallclock_mbps = [0.0f64; 2];
    let mut modeled_mbps = [0.0f64; 2];
    for (slot, shards) in [1usize, 4].into_iter().enumerate() {
        let mut stream = EntropyStream::builder()
            .shards(shards)
            .seed(1)
            .chunk_bytes(64 * 1024)
            .build();
        modeled_mbps[slot] = stream.throughput_mbps();
        let seconds = time_mean_s(
            || {
                stream.read(&mut stream_buf).expect("healthy stream");
                std::hint::black_box(stream_buf[0]);
            },
            budget_s,
        );
        wallclock_mbps[slot] = stream_bytes as f64 * 8.0 / seconds / 1e6;
    }
    let wallclock_scaling = wallclock_mbps[1] / wallclock_mbps[0];
    let modeled_scaling = modeled_mbps[1] / modeled_mbps[0];

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let single = DhTrng::builder().seed(1).build();

    let json = format!(
        r#"{{
  "schema": "dhtrng-bench-report/2",
  "quick": {quick},
  "host_cpus": {cpus},
  "batching": {{
    "bits_per_iteration": {bits},
    "per_bit_simulated_mbps": {per_bit:.3},
    "batched_simulated_mbps": {batched:.3},
    "speedup": {speedup:.3}
  }},
  "streaming": {{
    "read_bytes_per_iteration": {stream_bytes},
    "one_shard_simulated_mbps": {s1:.3},
    "four_shard_simulated_mbps": {s4:.3},
    "wallclock_scaling": {wscale:.3},
    "one_shard_modeled_mbps": {m1:.3},
    "four_shard_modeled_mbps": {m4:.3},
    "modeled_scaling": {mscale:.3}
  }},
  "paper_anchor": {{
    "per_instance_modeled_mbps": {anchor:.3},
    "note": "modeled Mbps = sampling clock x 1 bit/cycle; the paper reports 620 (Artix-7) / 670 (Virtex-6) per instance and linear multi-instance scaling, which modeled_scaling reproduces exactly. Simulated Mbps measure how fast this software model runs on the host and bound experiment runtimes."
  }}
}}
"#,
        quick = quick,
        cpus = cpus,
        bits = bits,
        per_bit = per_bit_mbps,
        batched = batched_mbps,
        speedup = batch_speedup,
        stream_bytes = stream_bytes,
        s1 = wallclock_mbps[0],
        s4 = wallclock_mbps[1],
        wscale = wallclock_scaling,
        m1 = modeled_mbps[0],
        m4 = modeled_mbps[1],
        mscale = modeled_scaling,
        anchor = single.throughput_mbps(),
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    print!("{json}");
    eprintln!(
        "wrote {out_path} (batch speedup {batch_speedup:.2}x, modeled scaling {modeled_scaling:.2}x, wall-clock scaling {wallclock_scaling:.2}x on {cpus} cpu(s))"
    );
}
