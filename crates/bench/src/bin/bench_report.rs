//! Machine-readable performance report: `BENCH_9.json`.
//!
//! Measures the throughput numbers this repository's CI tracks per-PR
//! (see ISSUE 2 / ISSUE 4 / ISSUE 5 / ISSUE 6 / ISSUE 7 / ISSUE 8 /
//! ISSUE 9 / ISSUE 10 and `DESIGN.md` §5–§12):
//!
//! 1. **batching speedup** — the batched `Trng::fill_bytes` fast path
//!    against the per-bit `next_bit` path on the behavioural DH-TRNG
//!    model (identical bit streams, so the ratio is pure overhead
//!    removed);
//! 2. **shard scaling** — the 4-shard [`EntropyStream`] against a
//!    single shard, both as wall-clock simulation throughput (which
//!    depends on the host's cores) and as the modeled hardware
//!    throughput (one sampling clock per instance: linear in the shard
//!    count, the paper's multi-instance deployment claim);
//! 3. **pipeline tiers** — post-conditioning throughput of the three
//!    output tiers (`raw` / `conditioned` / `drbg`) of the SP 800-90C
//!    pipeline over the same 4-shard deployment, so the cost of the
//!    conditioning stage and the expansion of the DRBG stage are
//!    tracked alongside the raw numbers (TuRaN and QUAC-TRNG both
//!    report throughput *after* conditioning — so do we);
//! 4. **allocation count** — heap allocations per steady-state
//!    raw-tier chunk read, measured process-wide under a counting
//!    global allocator. The stage-graph executor's recycled buffer
//!    pool makes this exactly 0 (also pinned by `tests/zero_alloc.rs`);
//!    any regression shows up here as a non-zero `allocs_per_read`;
//! 5. **serving latency** — the `dhtrng-serve` load generator drives a
//!    fleet of concurrent drbg client sessions (full wire round-trips
//!    through the daemon's connection state machine) over one shared
//!    4-shard source and reports per-read latency percentiles; the run
//!    must finish with zero protocol errors and zero exactly-once
//!    delivery violations or the report aborts;
//! 6. **kernel comparison** — 64 same-seeded generators evaluated by
//!    the scalar batched `BlockKernel` (sequentially, the shard
//!    worker's path) against the bit-sliced ×64 `SlicedKernel` bank
//!    (identical bytes per lane), plus which kernel `Auto` resolves
//!    to on this host and which SIMD backend the sliced kernel
//!    selected at runtime;
//! 7. **multicore scaling + hand-off cost** — raw-tier wall-clock Mbps
//!    at 1/2/4 shards for **both** kernels with `core_affinity(PerShard)`
//!    engaged, the per-chunk cost of the lock-free SPSC ring hand-off
//!    against the `std::sync::mpsc` channel it replaced, the hand-off
//!    allocation count (must be 0), and the decision `KernelKind::Auto`'s
//!    cost model takes on this host. `scaling.measured` is `true` only
//!    when `available_parallelism() > 1`: on a 1-CPU host the shard
//!    workers time-share one core, so the Mbps columns are recorded but
//!    are explicitly **not** a multicore scaling measurement;
//! 8. **telemetry overhead** — ns per steady-state raw-tier chunk read
//!    with the stage-event recorder disabled (the no-op default) vs
//!    enabled (a bounded deterministic `Tracer`), plus allocations per
//!    read with the recorder on. The always-on counters run in both
//!    configurations, so the ratio isolates the event layer's cost; CI
//!    fails the job when `overhead_ratio` exceeds 1.10 or the
//!    recorder-on read path allocates at all;
//! 9. **conditioning kernels** — per-conditioner ns per raw bit for the
//!    bit-serial `push` loop vs the table-driven `condition_block`
//!    path, measured on the same input buffer, plus a bit-exactness
//!    check (the block path must produce the identical output stream,
//!    partial-byte tail included). `conditioning.block_speedup` is the
//!    CRC-16 ratio-2 ratio — the pipeline's default conditioner — and
//!    CI fails the job when any `match` flag is false or when the
//!    conditioned-tier read path allocates.
//!
//! Usage: `bench_report [--quick] [--out PATH]` (default
//! `BENCH_9.json` in the working directory; CI uploads it as a
//! workflow artifact and compares it against the committed snapshot:
//! a non-zero `allocs_per_read`, a false conditioning `match`, or
//! a 20%+ drop in the batching speedup **fails the job**, while
//! raw-Mbps and serve-latency drifts stay warnings — wall-clock
//! throughput on shared runners is too noisy to gate on).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dhtrng_bench::args;
use dhtrng_core::conditioning::{
    BitSink, Conditioner, CrcWhitener, LfsrConditioner, VonNeumannConditioner, XorFold,
};
use dhtrng_core::drbg::DrbgConfig;
use dhtrng_core::{DhTrng, SlicedDhTrng, Trng};
use dhtrng_serve::{loadgen, LoadConfig, Service};
use dhtrng_stream::{
    ring, AffinityPolicy, ConditionerSpec, EntropySource, EntropyStream, KernelKind,
    PipelineBuilder, Tier,
};

/// `System`, plus a global count of allocation events (alloc,
/// alloc_zeroed, and realloc all count; frees don't). Active for the
/// whole binary; the one counter increment is noise next to the work
/// the timed sections do.
///
/// Deliberately duplicated in `tests/zero_alloc.rs` (which pins the
/// same invariant this binary reports): a `#[global_allocator]` must
/// live in each final binary, and the shared crates forbid unsafe
/// code. Keep the counting rules of the two copies in sync.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation verbatim to `System`; the counter
// bump has no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Times `routine` adaptively: one warm-up call sizes a batch that runs
/// for roughly `budget_s`, and the mean seconds per call is returned.
fn time_mean_s<F: FnMut()>(mut routine: F, budget_s: f64) -> f64 {
    routine(); // warm-up (also faults in buffers)
    let start = Instant::now();
    routine();
    let once = start.elapsed().as_secs_f64().max(1e-9);
    let reps = ((budget_s / once) as u64).clamp(1, 10_000);
    let start = Instant::now();
    for _ in 0..reps {
        routine();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// One pipeline tier over a 4-shard deployment: (simulated Mbps,
/// modeled Mbps).
fn measure_tier(tier: Tier, read_bytes: usize, budget_s: f64) -> (f64, f64) {
    let mut stream = PipelineBuilder::new()
        .shards(4)
        .seed(1)
        .chunk_bytes(64 * 1024)
        .build(tier);
    let modeled = stream.throughput_mbps();
    let mut buf = vec![0u8; read_bytes];
    let seconds = time_mean_s(
        || {
            stream.read(&mut buf).expect("healthy pipeline");
            std::hint::black_box(buf[0]);
        },
        budget_s,
    );
    (read_bytes as f64 * 8.0 / seconds / 1e6, modeled)
}

/// Raw kernel throughput over `lanes` same-seeded generators, both
/// ways: the scalar shard-worker path (`lanes` sequential batched
/// `fill_bytes`) against one lane-parallel sliced bank. The two
/// produce identical bytes per lane, so the ratio is pure kernel
/// speed — no stream/channel overhead in either number.
fn measure_kernels(lanes: usize, bytes_per_lane: usize, budget_s: f64) -> (f64, f64) {
    let seeded = |i: usize| DhTrng::builder().seed(1 + i as u64).build();
    let mut scalars: Vec<DhTrng> = (0..lanes).map(seeded).collect();
    let mut buf = vec![0u8; bytes_per_lane];
    let scalar_s = time_mean_s(
        || {
            for trng in &mut scalars {
                trng.fill_bytes(&mut buf);
            }
            std::hint::black_box(buf[0]);
        },
        budget_s,
    );
    let mut bank =
        SlicedDhTrng::new((0..lanes).map(seeded).collect()).expect("MAX_LANES generators fit");
    let mut chunks: Vec<Option<Vec<u8>>> = (0..lanes)
        .map(|_| Some(vec![0u8; bytes_per_lane]))
        .collect();
    let sliced_s = time_mean_s(
        || {
            bank.fill_lane_chunks(&mut chunks);
            std::hint::black_box(chunks[0].as_deref().map(|c| c[0]));
        },
        budget_s,
    );
    let bits = (lanes * bytes_per_lane) as f64 * 8.0;
    (bits / scalar_s / 1e6, bits / sliced_s / 1e6)
}

/// Allocations per steady-state raw-tier chunk read (process-wide, so
/// worker threads count too). The executor's recycled pool makes this
/// exactly zero; see `DESIGN.md` §7.
fn measure_steady_state_allocs(reads: usize) -> (f64, usize) {
    let shards = 4;
    let queue_chunks = 4;
    let chunk = 64 * 1024;
    let mut stream = EntropyStream::builder()
        .shards(shards)
        .seed(1)
        .chunk_bytes(chunk)
        .queue_chunks(queue_chunks)
        .build();
    let mut buf = vec![0u8; chunk];
    // Prime the pool: cycle every buffer through the recycle loop.
    for _ in 0..shards * (queue_chunks + 2) * 3 {
        stream.read(&mut buf).expect("healthy stream");
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..reads {
        stream.read(&mut buf).expect("healthy stream");
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    std::hint::black_box(buf[0]);
    ((after - before) as f64 / reads as f64, reads)
}

/// One telemetry configuration: ns per steady-state raw-tier chunk
/// read and allocations per read, with the given recorder (or the
/// no-op default when `None`). Identical deployment and priming to
/// `measure_steady_state_allocs`, so recorder-off here is the same
/// path the `allocation` section measures.
fn measure_telemetry_point(
    recorder: Option<std::sync::Arc<dyn dhtrng_stream::Recorder>>,
    budget_s: f64,
    alloc_reads: usize,
) -> (f64, f64) {
    let shards = 4;
    let queue_chunks = 4;
    let chunk = 64 * 1024;
    let mut builder = EntropyStream::builder()
        .shards(shards)
        .seed(1)
        .chunk_bytes(chunk)
        .queue_chunks(queue_chunks);
    if let Some(recorder) = recorder {
        builder = builder.recorder(recorder);
    }
    let mut stream = builder.build();
    let mut buf = vec![0u8; chunk];
    for _ in 0..shards * (queue_chunks + 2) * 3 {
        stream.read(&mut buf).expect("healthy stream");
    }
    let seconds = time_mean_s(
        || {
            stream.read(&mut buf).expect("healthy stream");
            std::hint::black_box(buf[0]);
        },
        budget_s,
    );
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..alloc_reads {
        stream.read(&mut buf).expect("healthy stream");
    }
    let allocs = (ALLOCATIONS.load(Ordering::SeqCst) - before) as f64 / alloc_reads as f64;
    std::hint::black_box(buf[0]);
    (seconds * 1e9, allocs)
}

/// Raw-tier wall-clock Mbps of one `EntropyStream` deployment with the
/// kernel forced and `core_affinity(PerShard)` engaged (a no-op on
/// 1-CPU hosts — `AffinityPolicy::core_for_worker` declines to pin).
/// Returns `(mbps, affinity_pins)`.
fn measure_scaling_point(
    shards: usize,
    kernel: KernelKind,
    read_bytes: usize,
    budget_s: f64,
) -> (f64, u64) {
    let mut stream = EntropyStream::builder()
        .shards(shards)
        .seed(1)
        .chunk_bytes(64 * 1024)
        .kernel(kernel)
        .core_affinity(AffinityPolicy::PerShard)
        .build();
    let mut buf = vec![0u8; read_bytes];
    let seconds = time_mean_s(
        || {
            stream.read(&mut buf).expect("healthy stream");
            std::hint::black_box(buf[0]);
        },
        budget_s,
    );
    (
        read_bytes as f64 * 8.0 / seconds / 1e6,
        stream.affinity_pins(),
    )
}

/// Per-chunk hand-off cost of the lock-free SPSC ring against the
/// bounded mpsc channel it replaced, measured as a cross-thread
/// round trip: one buffer ping-ponged between this thread and an echo
/// thread over a data/return pair — the engine's worker→merger
/// topology, where every hand-off crosses a thread boundary and the
/// waiting side's backoff/park protocol is on the clock. Per-chunk =
/// round-trip / 2 (two hand-offs per bounce). Also counts heap
/// allocations across the ring round trips — the ring recycles
/// pre-allocated slots and parks without allocating, so this must be
/// exactly 0 (CI gates on it).
/// Returns `(ring_ns, mpsc_ns, ring_allocs_per_handoff)`.
fn measure_handoff(budget_s: f64) -> (f64, f64, f64) {
    const QUEUE: usize = 4;
    const BUFFER_BYTES: usize = 64;

    let (mut to_peer, mut peer_in) = ring::spsc::<Vec<u8>>(QUEUE);
    let (mut peer_out, mut from_peer) = ring::spsc::<Vec<u8>>(QUEUE);
    let echo = std::thread::spawn(move || {
        while let Ok(buffer) = peer_in.pop() {
            if peer_out.push(buffer).is_err() {
                return;
            }
        }
    });
    let mut slot = Some(vec![0u8; BUFFER_BYTES]);
    let ring_s = time_mean_s(
        || {
            to_peer
                .push(slot.take().expect("in hand"))
                .expect("echo thread alive");
            slot = Some(from_peer.pop().expect("echo thread alive"));
            std::hint::black_box(slot.as_deref().map(|b| b[0]));
        },
        budget_s,
    );
    // Allocation audit on the same live pair, outside the timed region.
    let audit_rounds: u64 = 10_000;
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..audit_rounds {
        to_peer
            .push(slot.take().expect("in hand"))
            .expect("echo thread alive");
        slot = Some(from_peer.pop().expect("echo thread alive"));
    }
    let ring_allocs =
        (ALLOCATIONS.load(Ordering::SeqCst) - before) as f64 / (2 * audit_rounds) as f64;
    drop((to_peer, from_peer, slot));
    echo.join().expect("echo thread exits");

    let (to_peer, peer_in) = std::sync::mpsc::sync_channel::<Vec<u8>>(QUEUE);
    let (peer_out, from_peer) = std::sync::mpsc::sync_channel::<Vec<u8>>(QUEUE);
    let echo = std::thread::spawn(move || {
        while let Ok(buffer) = peer_in.recv() {
            if peer_out.send(buffer).is_err() {
                return;
            }
        }
    });
    let mut slot = Some(vec![0u8; BUFFER_BYTES]);
    let mpsc_s = time_mean_s(
        || {
            to_peer
                .send(slot.take().expect("in hand"))
                .expect("echo thread alive");
            slot = Some(from_peer.recv().expect("echo thread alive"));
            std::hint::black_box(slot.as_deref().map(|b| b[0]));
        },
        budget_s,
    );
    drop((to_peer, from_peer, slot));
    echo.join().expect("echo thread exits");

    (ring_s / 2.0 * 1e9, mpsc_s / 2.0 * 1e9, ring_allocs)
}

/// One conditioning machine measured both ways on the same raw
/// buffer: ns per raw input bit through the bit-serial `push` loop vs
/// the table-driven `condition_block` path, plus whether the two
/// produced the identical output stream (whole bytes and the ≤7-bit
/// partial tail). The match check runs on fresh clones before timing,
/// so a broken kernel is reported as `match: false` rather than as a
/// fast-but-wrong speedup.
struct ConditioningRow {
    name: &'static str,
    serial_ns_per_raw_bit: f64,
    block_ns_per_raw_bit: f64,
    block_speedup: f64,
    matches: bool,
}

fn measure_conditioner<C: Conditioner + Clone>(
    name: &'static str,
    cond: &C,
    raw: &[u8],
    budget_s: f64,
) -> ConditioningRow {
    let raw_bits = (raw.len() * 8) as f64;
    let mut out = vec![0u8; raw.len() + 1];

    // Bit-exactness first, on fresh clones.
    let mut serial_out = vec![0u8; raw.len() + 1];
    let mut machine = cond.clone();
    let mut sink = BitSink::new(&mut serial_out);
    for &byte in raw {
        for i in (0..8).rev() {
            if let Some(bit) = machine.push((byte >> i) & 1 == 1) {
                sink.push_bit(bit);
            }
        }
    }
    let serial_parts = sink.into_parts();
    let mut machine = cond.clone();
    let mut sink = BitSink::new(&mut out);
    machine.condition_block(raw, &mut sink);
    let block_parts = sink.into_parts();
    let matches =
        serial_parts == block_parts && serial_out[..serial_parts.0] == out[..block_parts.0];

    let mut machine = cond.clone();
    let serial_s = time_mean_s(
        || {
            let mut sink = BitSink::new(&mut out);
            for &byte in raw {
                for i in (0..8).rev() {
                    if let Some(bit) = machine.push((byte >> i) & 1 == 1) {
                        sink.push_bit(bit);
                    }
                }
            }
            std::hint::black_box(sink.bits_pushed());
            std::hint::black_box(&out);
        },
        budget_s,
    );
    let mut machine = cond.clone();
    let block_s = time_mean_s(
        || {
            let mut sink = BitSink::new(&mut out);
            machine.condition_block(raw, &mut sink);
            std::hint::black_box(sink.bits_pushed());
            std::hint::black_box(&out);
        },
        budget_s,
    );
    ConditioningRow {
        name,
        serial_ns_per_raw_bit: serial_s * 1e9 / raw_bits,
        block_ns_per_raw_bit: block_s * 1e9 / raw_bits,
        block_speedup: serial_s / block_s,
        matches,
    }
}

/// The conditioning-kernel sweep: every shipped machine plus the
/// default chain shape, all over the same deterministic mixed-content
/// buffer (a fixed multiplicative hash keeps 0/1 balance and pair
/// diversity so Von Neumann's keep-rate is realistic).
fn measure_conditioning(raw_bytes: usize, budget_s: f64) -> Vec<ConditioningRow> {
    let raw: Vec<u8> = (0..raw_bytes)
        .map(|i| ((i.wrapping_mul(2654435761)) >> 7) as u8)
        .collect();
    vec![
        measure_conditioner("crc-ratio2", &CrcWhitener::new(2), &raw, budget_s),
        measure_conditioner("crc-ratio1", &CrcWhitener::new(1), &raw, budget_s),
        measure_conditioner("lfsr", &LfsrConditioner::new(), &raw, budget_s),
        measure_conditioner("xorfold4", &XorFold::new(4), &raw, budget_s),
        measure_conditioner("von-neumann", &VonNeumannConditioner::new(), &raw, budget_s),
        measure_conditioner(
            "chain-xf2-crc2",
            &XorFold::new(2).then(CrcWhitener::new(2)),
            &raw,
            budget_s,
        ),
    ]
}

/// Allocations per steady-state conditioned-tier chunk read: the same
/// counting-allocator audit as the raw-tier number, but through the
/// block conditioning kernels end to end. The `ConditionerStage`
/// rewrites recycled chunk buffers in place through 64-byte stack
/// staging, so this must be exactly 0 (tests/zero_alloc.rs pins the
/// same invariant; CI fails the job on any non-zero value).
fn measure_conditioned_allocs(reads: usize) -> f64 {
    let mut stream = PipelineBuilder::new()
        .shards(4)
        .seed(1)
        .chunk_bytes(64 * 1024)
        .build(Tier::Conditioned);
    let mut buf = vec![0u8; 64 * 1024];
    // Prime: the conditioned tier refills recycled buffers at the
    // compression ratio, so cycle enough reads to settle the pool.
    for _ in 0..48 {
        stream.read(&mut buf).expect("healthy pipeline");
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..reads {
        stream.read(&mut buf).expect("healthy pipeline");
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    std::hint::black_box(buf[0]);
    (after - before) as f64 / reads as f64
}

/// Fleet latency over the daemon's connection state machine: one
/// shared 4-shard source, `clients` concurrent drbg sessions, full
/// wire round-trips per read. Aborts on any protocol error or
/// exactly-once violation — a latency number from a dirty run would
/// be meaningless.
fn measure_serving(clients: usize, reads_per_client: usize) -> dhtrng_serve::LoadReport {
    let source = EntropySource::builder()
        .shards(4)
        .seed(1)
        .chunk_bytes(64 * 1024)
        .build()
        .expect("valid source");
    let service = Service::new(source);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let report = loadgen::run(
        &service,
        &LoadConfig {
            clients,
            reads_per_client,
            read_bytes: 64,
            tier: Tier::Drbg,
            threads,
        },
    );
    assert_eq!(report.protocol_errors, 0, "serve bench must run clean");
    assert_eq!(report.delivery_violations, 0, "serve bench must run clean");
    report
}

/// Formats a slice of Mbps values as a JSON array literal.
fn mbps_array(values: &[f64]) -> String {
    let items: Vec<String> = values.iter().map(|v| format!("{v:.3}")).collect();
    format!("[{}]", items.join(", "))
}

fn main() {
    let quick = args::switch("--quick");
    let out_path: String = args::flag("--out", "BENCH_9.json".to_string());
    let budget_s = if quick { 0.05 } else { 0.5 };
    let bits = if quick { 1 << 18 } else { 1 << 21 };
    let stream_bytes: usize = if quick { 1 << 18 } else { 1 << 22 };
    // The conditioned tier pays the compression ratio in wall-clock
    // too, so read a fraction of the raw volume per iteration.
    let tier_bytes: usize = if quick { 1 << 16 } else { 1 << 20 };
    let alloc_reads: usize = if quick { 48 } else { 192 };
    let serve_clients: usize = if quick { 200 } else { 1000 };
    let serve_reads: usize = if quick { 8 } else { 16 };

    // 1. Per-bit vs batched on the same generator/seed.
    let mut per_bit_trng = DhTrng::builder().seed(1).build();
    let per_bit_s = time_mean_s(
        || {
            let mut acc = 0u32;
            for _ in 0..bits {
                acc ^= u32::from(per_bit_trng.next_bit());
            }
            std::hint::black_box(acc);
        },
        budget_s,
    );
    let mut batched_trng = DhTrng::builder().seed(1).build();
    let mut buf = vec![0u8; bits / 8];
    let batched_s = time_mean_s(
        || {
            batched_trng.fill_bytes(&mut buf);
            std::hint::black_box(buf[0]);
        },
        budget_s,
    );
    let per_bit_mbps = bits as f64 / per_bit_s / 1e6;
    let batched_mbps = bits as f64 / batched_s / 1e6;
    let batch_speedup = per_bit_s / batched_s;

    // 2. Stream scaling: 1 shard vs 4 shards, same chunking.
    let mut stream_buf = vec![0u8; stream_bytes];
    let mut wallclock_mbps = [0.0f64; 2];
    let mut modeled_mbps = [0.0f64; 2];
    for (slot, shards) in [1usize, 4].into_iter().enumerate() {
        let mut stream = EntropyStream::builder()
            .shards(shards)
            .seed(1)
            .chunk_bytes(64 * 1024)
            .build();
        modeled_mbps[slot] = stream.throughput_mbps();
        let seconds = time_mean_s(
            || {
                stream.read(&mut stream_buf).expect("healthy stream");
                std::hint::black_box(stream_buf[0]);
            },
            budget_s,
        );
        wallclock_mbps[slot] = stream_bytes as f64 * 8.0 / seconds / 1e6;
    }
    let wallclock_scaling = wallclock_mbps[1] / wallclock_mbps[0];
    let modeled_scaling = modeled_mbps[1] / modeled_mbps[0];

    // 3. Pipeline tiers over the 4-shard deployment (stage defaults:
    // 2:1 CRC conditioning, 1 Mbit DRBG reseed interval).
    // Stage metadata is derived from the defaults the measured streams
    // actually run, so a changed default can never be mislabeled.
    let conditioner = format!("{:?}", ConditionerSpec::default());
    let (raw_sim, raw_model) = measure_tier(Tier::Raw, tier_bytes, budget_s);
    let (cond_sim, cond_model) = measure_tier(Tier::Conditioned, tier_bytes, budget_s);
    let (drbg_sim, drbg_model) = measure_tier(Tier::Drbg, tier_bytes, budget_s);

    // 4. Steady-state allocation count on the raw-tier read path.
    let (allocs_per_read, alloc_reads_measured) = measure_steady_state_allocs(alloc_reads);

    // 5. Serving latency under a concurrent client fleet.
    let serve = measure_serving(serve_clients, serve_reads);

    // 6. Scalar vs bit-sliced block kernel at full lane width, plus
    // what Auto resolves to here and which SIMD backend the sliced
    // kernel picked. The selected kind is read off a real Auto-built
    // stream so an env-var override (DHTRNG_KERNEL) shows up
    // truthfully.
    let kernel_lanes = dhtrng_core::MAX_LANES;
    let kernel_bytes_per_lane: usize = if quick { 1 << 12 } else { 1 << 15 };
    let (raw_mbps_scalar, raw_mbps_sliced) =
        measure_kernels(kernel_lanes, kernel_bytes_per_lane, budget_s);
    let kernel_speedup = raw_mbps_sliced / raw_mbps_scalar;
    // Same one-core aggregate basis: N per-bit generators time-sharing
    // the core produce per_bit_mbps total, so the ratio is direct.
    let kernel_speedup_vs_per_bit = raw_mbps_sliced / per_bit_mbps;
    let selected_kernel = format!(
        "{:?}",
        EntropyStream::builder().shards(4).seed(1).build().kernel()
    )
    .to_lowercase();
    let simd_backend = SlicedDhTrng::new(vec![DhTrng::builder().seed(1).build()])
        .expect("one lane always fits")
        .backend_name();

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let single = DhTrng::builder().seed(1).build();

    // 8. Telemetry overhead: the same steady-state chunk-read loop with
    // the recorder off (no-op default) and on (a bounded deterministic
    // Tracer — the heaviest shipped recorder, mutex and eviction
    // included). The tracer capacity is far below the event volume so
    // the measured path includes drop-oldest eviction.
    // 9. Conditioning kernels: bit-serial vs block path per machine,
    // ns per raw input bit, with a bit-exactness check per row. The
    // headline `block_speedup` is CRC ratio 2 — the pipeline default.
    let conditioning_bytes: usize = if quick { 1 << 14 } else { 1 << 16 };
    let conditioning = measure_conditioning(conditioning_bytes, budget_s);
    let conditioning_all_match = conditioning.iter().all(|row| row.matches);
    let conditioning_block_speedup = conditioning
        .iter()
        .find(|row| row.name == "crc-ratio2")
        .map(|row| row.block_speedup)
        .unwrap_or(0.0);
    let conditioning_rows: Vec<String> = conditioning
        .iter()
        .map(|row| {
            format!(
                r#"      {{ "name": "{}", "serial_ns_per_raw_bit": {:.4}, "block_ns_per_raw_bit": {:.4}, "block_speedup": {:.3}, "match": {} }}"#,
                row.name,
                row.serial_ns_per_raw_bit,
                row.block_ns_per_raw_bit,
                row.block_speedup,
                row.matches,
            )
        })
        .collect();
    let conditioning_machines = conditioning_rows.join(",\n");
    let conditioned_allocs = measure_conditioned_allocs(alloc_reads);

    let (telemetry_off_ns, _) = measure_telemetry_point(None, budget_s, alloc_reads);
    let telemetry_tracer: std::sync::Arc<dyn dhtrng_stream::Recorder> =
        std::sync::Arc::new(dhtrng_stream::Tracer::deterministic(1024));
    let (telemetry_on_ns, telemetry_on_allocs) =
        measure_telemetry_point(Some(telemetry_tracer), budget_s, alloc_reads);
    let telemetry_overhead = telemetry_on_ns / telemetry_off_ns;

    // 7. Multicore scaling + hand-off cost. The shard sweep runs with
    // core_affinity(PerShard) engaged; on a 1-CPU host that declines to
    // pin and `measured` is false — the Mbps columns then show shard
    // workers time-sharing one core, not multicore scaling.
    let scaling_measured = cpus > 1;
    let scaling_bytes: usize = if quick { 1 << 16 } else { 1 << 20 };
    let shard_counts = [1usize, 2, 4];
    let mut scaling_scalar_mbps = Vec::new();
    let mut scaling_sliced_mbps = Vec::new();
    let mut scaling_pins = 0u64;
    for shards in shard_counts {
        let (mbps, pins) =
            measure_scaling_point(shards, KernelKind::Scalar, scaling_bytes, budget_s);
        scaling_scalar_mbps.push(mbps);
        scaling_pins += pins;
        let (mbps, pins) =
            measure_scaling_point(shards, KernelKind::Sliced, scaling_bytes, budget_s);
        scaling_sliced_mbps.push(mbps);
        scaling_pins += pins;
    }
    let scalar_per_shard: Vec<f64> = shard_counts
        .iter()
        .zip(&scaling_scalar_mbps)
        .map(|(&n, &mbps)| mbps / n as f64)
        .collect();
    let sliced_per_shard: Vec<f64> = shard_counts
        .iter()
        .zip(&scaling_sliced_mbps)
        .map(|(&n, &mbps)| mbps / n as f64)
        .collect();
    let scalar_scaling_at_2 = scaling_scalar_mbps[1] / scaling_scalar_mbps[0];
    let scalar_scaling_at_4 = scaling_scalar_mbps[2] / scaling_scalar_mbps[0];
    let (handoff_ring_ns, handoff_mpsc_ns, handoff_allocs) = measure_handoff(budget_s);
    let auto_selected = format!("{:?}", KernelKind::cost_model(4, cpus)).to_lowercase();
    let usable_cores = 4usize.min(cpus.max(1));
    let auto_decision = format!(
        "shards=4, host_cpus={cpus}: scalar threads get min(4, {cpus}) = {usable_cores} \
         usable core(s); the sliced bank's measured single-core advantage 1.80x (BENCH_6 \
         kernel.speedup 1.86) {cmp} {usable_cores}.00x, so Auto resolves to {auto_selected}",
        cmp = if 1.8 >= usable_cores as f64 {
            ">="
        } else {
            "<"
        },
    );

    let json = format!(
        r#"{{
  "schema": "dhtrng-bench-report/9",
  "quick": {quick},
  "host_cpus": {cpus},
  "batching": {{
    "bits_per_iteration": {bits},
    "per_bit_simulated_mbps": {per_bit:.3},
    "batched_simulated_mbps": {batched:.3},
    "speedup": {speedup:.3}
  }},
  "streaming": {{
    "read_bytes_per_iteration": {stream_bytes},
    "one_shard_simulated_mbps": {s1:.3},
    "four_shard_simulated_mbps": {s4:.3},
    "wallclock_scaling": {wscale:.3},
    "one_shard_modeled_mbps": {m1:.3},
    "four_shard_modeled_mbps": {m4:.3},
    "modeled_scaling": {mscale:.3}
  }},
  "pipeline": {{
    "read_bytes_per_iteration": {tier_bytes},
    "shards": 4,
    "conditioner": "{conditioner}",
    "drbg_reseed_interval_bits": {reseed_bits},
    "raw_simulated_mbps": {raw_sim:.3},
    "conditioned_simulated_mbps": {cond_sim:.3},
    "drbg_simulated_mbps": {drbg_sim:.3},
    "raw_modeled_mbps": {raw_model:.3},
    "conditioned_modeled_mbps": {cond_model:.3},
    "drbg_modeled_mbps": {drbg_model:.3}
  }},
  "allocation": {{
    "steady_state_reads_measured": {alloc_reads_measured},
    "allocs_per_read": {allocs_per_read:.3},
    "note": "process-wide heap allocations per steady-state raw-tier 64 KiB chunk read (workers included), after priming the recycled buffer pool. The stage-graph executor keeps this at exactly 0; tests/zero_alloc.rs pins the same invariant."
  }},
  "serve": {{
    "clients": {serve_clients},
    "reads_per_client": {serve_reads},
    "read_bytes": 64,
    "latency_p50_us": {serve_p50:.3},
    "latency_p99_us": {serve_p99:.3},
    "latency_max_us": {serve_max:.3},
    "reads": {serve_total_reads},
    "protocol_errors": {serve_protocol_errors},
    "delivery_violations": {serve_delivery_violations},
    "elapsed_secs": {serve_elapsed:.3},
    "note": "concurrent drbg client sessions over one shared 4-shard source via the dhtrng-serve connection state machine (full wire round-trips, sockets elided). Latencies are per-64-byte-read, nearest-rank percentiles; the run aborts unless protocol errors and exactly-once delivery violations are both zero."
  }},
  "kernel": {{
    "selected": "{selected_kernel}",
    "simd_backend": "{simd_backend}",
    "lanes": {kernel_lanes},
    "bytes_per_lane_per_iteration": {kernel_bytes_per_lane},
    "raw_mbps_scalar": {raw_mbps_scalar:.3},
    "raw_mbps_sliced": {raw_mbps_sliced:.3},
    "speedup": {kernel_speedup:.3},
    "speedup_vs_per_bit": {kernel_speedup_vs_per_bit:.3},
    "note": "aggregate one-core Mbps of 64 same-seeded generators: scalar = 64 sequential batched BlockKernel fill_bytes (the shard worker's path), sliced = one 64-lane SlicedKernel bank; identical bytes per lane, so the ratio is pure kernel speed. 'speedup' compares against the batched scalar kernel, which already autovectorizes across the 12-beat bank — that baseline caps bit-slicing's win well below the naive 64x (see DESIGN.md section 9); 'speedup_vs_per_bit' compares against the per-bit reference path (one next_bit per cycle, the pre-batching baseline the slicing motivation assumed). 'selected' is what KernelKind::Auto resolves to on this host and 'simd_backend' is the runtime-detected inner loop of the sliced kernel."
  }},
  "scaling": {{
    "measured": {scaling_measured},
    "host_cpus": {cpus},
    "read_bytes_per_iteration": {scaling_bytes},
    "shard_counts": [1, 2, 4],
    "scalar_mbps": {scalar_mbps_arr},
    "sliced_mbps": {sliced_mbps_arr},
    "per_shard_mbps": {{
      "scalar": {scalar_per_shard_arr},
      "sliced": {sliced_per_shard_arr}
    }},
    "scalar_scaling_at_2": {scalar_scaling_at_2:.3},
    "scalar_scaling_at_4": {scalar_scaling_at_4:.3},
    "affinity_pins": {scaling_pins},
    "handoff_ns_per_chunk": {handoff_ring_ns:.1},
    "handoff_mpsc_ns_per_chunk": {handoff_mpsc_ns:.1},
    "handoff_speedup": {handoff_speedup:.3},
    "handoff_allocs_per_chunk": {handoff_allocs:.3},
    "auto_kernel": "{auto_selected}",
    "auto_decision": "{auto_decision}",
    "note": "raw-tier wall-clock Mbps at 1/2/4 shards, both kernels forced, core_affinity(PerShard) engaged (a no-op when host_cpus=1, so affinity_pins is 0 there). measured=true only when available_parallelism()>1: on a 1-CPU host the shard workers time-share one core and these columns are NOT a multicore scaling measurement — scalar_scaling_at_2 is gated in CI only when measured=true. handoff_ns_per_chunk is half the cross-thread round-trip cost of the lock-free SPSC ring (one buffer ping-ponged to an echo thread over a data/return pair, the engine's worker->merger topology) vs the bounded mpsc channel it replaced, so it includes the backoff/park protocol both transports pay when the peer is not ready; handoff_allocs_per_chunk is heap allocations per ring hand-off under the counting allocator and must be exactly 0 (CI fails otherwise)."
  }},
  "conditioning": {{
    "raw_bytes_per_iteration": {conditioning_bytes},
    "block_speedup": {conditioning_block_speedup:.3},
    "all_match": {conditioning_all_match},
    "conditioned_tier_allocs_per_read": {conditioned_allocs:.3},
    "machines": [
{conditioning_machines}
    ],
    "note": "ns per raw input bit through each conditioning machine, bit-serial push loop vs the table-driven condition_block path, on one deterministic mixed-content buffer. 'match' verifies the block path produced the bit-identical output stream (partial-byte tail included) on fresh machine state before timing; CI fails the job when any match is false. The headline block_speedup is crc-ratio2 — the pipeline's default conditioner — and the acceptance floor is 4x (see DESIGN.md section 12). conditioned_tier_allocs_per_read is heap allocations per steady-state conditioned-tier 64 KiB chunk read under the counting allocator: the ConditionerStage rewrites recycled buffers in place through stack staging, so CI fails the job on any non-zero value."
  }},
  "telemetry": {{
    "read_bytes_per_chunk": 65536,
    "recorder_off_ns_per_chunk": {telemetry_off_ns:.1},
    "recorder_on_ns_per_chunk": {telemetry_on_ns:.1},
    "overhead_ratio": {telemetry_overhead:.4},
    "allocs_per_read_recorder_on": {telemetry_on_allocs:.3},
    "note": "ns per steady-state raw-tier 64 KiB chunk read over the 4-shard deployment, stage-event recorder off (the no-op default) vs on (a bounded deterministic Tracer sized to force drop-oldest eviction — the heaviest shipped recorder). The always-on counters run in both configurations, so overhead_ratio isolates the event layer; CI fails when it exceeds 1.10 or when the recorder-on read path allocates at all (tests/zero_alloc.rs pins the same invariant)."
  }},
  "paper_anchor": {{
    "per_instance_modeled_mbps": {anchor:.3},
    "note": "modeled Mbps = sampling clock x 1 bit/cycle; the paper reports 620 (Artix-7) / 670 (Virtex-6) per instance and linear multi-instance scaling, which modeled_scaling reproduces exactly. Simulated Mbps measure how fast this software model runs on the host and bound experiment runtimes. Pipeline tiers report post-conditioning throughput: conditioned = raw / compression ratio, drbg = conditioned x expansion factor (see DESIGN.md sections 6-7)."
  }}
}}
"#,
        quick = quick,
        cpus = cpus,
        bits = bits,
        per_bit = per_bit_mbps,
        batched = batched_mbps,
        speedup = batch_speedup,
        stream_bytes = stream_bytes,
        s1 = wallclock_mbps[0],
        s4 = wallclock_mbps[1],
        wscale = wallclock_scaling,
        m1 = modeled_mbps[0],
        m4 = modeled_mbps[1],
        mscale = modeled_scaling,
        tier_bytes = tier_bytes,
        conditioner = conditioner,
        reseed_bits = DrbgConfig::default().reseed_interval_bits,
        raw_sim = raw_sim,
        cond_sim = cond_sim,
        drbg_sim = drbg_sim,
        raw_model = raw_model,
        cond_model = cond_model,
        drbg_model = drbg_model,
        alloc_reads_measured = alloc_reads_measured,
        allocs_per_read = allocs_per_read,
        serve_clients = serve.clients,
        serve_reads = serve_reads,
        serve_p50 = serve.p50_us,
        serve_p99 = serve.p99_us,
        serve_max = serve.max_us,
        serve_total_reads = serve.reads,
        serve_protocol_errors = serve.protocol_errors,
        serve_delivery_violations = serve.delivery_violations,
        serve_elapsed = serve.elapsed_secs,
        selected_kernel = selected_kernel,
        simd_backend = simd_backend,
        kernel_lanes = kernel_lanes,
        kernel_bytes_per_lane = kernel_bytes_per_lane,
        raw_mbps_scalar = raw_mbps_scalar,
        raw_mbps_sliced = raw_mbps_sliced,
        kernel_speedup = kernel_speedup,
        kernel_speedup_vs_per_bit = kernel_speedup_vs_per_bit,
        scaling_measured = scaling_measured,
        scaling_bytes = scaling_bytes,
        scalar_mbps_arr = mbps_array(&scaling_scalar_mbps),
        sliced_mbps_arr = mbps_array(&scaling_sliced_mbps),
        scalar_per_shard_arr = mbps_array(&scalar_per_shard),
        sliced_per_shard_arr = mbps_array(&sliced_per_shard),
        scalar_scaling_at_2 = scalar_scaling_at_2,
        scalar_scaling_at_4 = scalar_scaling_at_4,
        scaling_pins = scaling_pins,
        handoff_ring_ns = handoff_ring_ns,
        handoff_mpsc_ns = handoff_mpsc_ns,
        handoff_speedup = handoff_mpsc_ns / handoff_ring_ns,
        handoff_allocs = handoff_allocs,
        auto_selected = auto_selected,
        auto_decision = auto_decision,
        telemetry_off_ns = telemetry_off_ns,
        telemetry_on_ns = telemetry_on_ns,
        telemetry_overhead = telemetry_overhead,
        telemetry_on_allocs = telemetry_on_allocs,
        anchor = single.throughput_mbps(),
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    print!("{json}");
    eprintln!(
        "wrote {out_path} (batch speedup {batch_speedup:.2}x, modeled scaling {modeled_scaling:.2}x, wall-clock scaling {wallclock_scaling:.2}x on {cpus} cpu(s); tiers raw/conditioned/drbg = {raw_sim:.0}/{cond_sim:.0}/{drbg_sim:.0} simulated Mbps; {allocs_per_read:.2} allocs/read steady-state; serve {clients} clients p50/p99 = {p50:.1}/{p99:.1} us; kernel {selected_kernel}/{simd_backend} sliced-vs-scalar {kernel_speedup:.2}x; hand-off ring/mpsc = {handoff_ring_ns:.0}/{handoff_mpsc_ns:.0} ns, scaling measured = {scaling_measured}; telemetry overhead {telemetry_overhead:.3}x, {telemetry_on_allocs:.2} allocs/read recorder-on; conditioning crc2 block {conditioning_block_speedup:.2}x, all match = {conditioning_all_match})",
        clients = serve.clients,
        p50 = serve.p50_us,
        p99 = serve.p99_us,
    );
}
