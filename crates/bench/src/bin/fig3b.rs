//! Regenerates Figure 3(b): the entropy unit's internal waveforms from
//! the event-driven gate-level simulator — RO1's jittered oscillation,
//! RO2's dynamic switching between oscillation and holding, and the
//! sampled outputs.
//!
//! Usage: `fig3b [--ns N]` (default 60 ns of simulated time).

use dhtrng_bench::args;
use dhtrng_core::architecture::entropy_unit_netlist;
use dhtrng_fpga::Device;
use dhtrng_noise::NoiseRng;
use dhtrng_sim::{Engine, Femtos, Level, Waveform};

fn render(label: &str, wave: &Waveform, t0: Femtos, t1: Femtos, cols: usize) -> String {
    let mut line = String::with_capacity(cols + 8);
    line.push_str(&format!("{label:>4} "));
    let span = t1.as_fs() - t0.as_fs();
    for c in 0..cols {
        let t = Femtos::from_fs(t0.as_fs() + span * c as u64 / cols as u64);
        line.push(match wave.value_at(t) {
            Level::High => '#',
            Level::Low => '_',
            Level::Unknown => '?',
        });
    }
    line
}

fn main() {
    let ns: f64 = args::flag("--ns", 60.0f64);
    println!("Figure 3(b) — dynamic hybrid unit waveforms (gate-level simulation)\n");
    let device = Device::artix7();
    let (nl, ports) = entropy_unit_netlist(&device);
    let mut engine = Engine::new(nl, NoiseRng::seed_from_u64(0xf13b)).expect("netlist valid");

    engine.drive(ports.en, Femtos::ZERO, Level::Low);
    engine.drive(ports.en, Femtos::from_ns(5.0), Level::High);
    engine.add_clock_50(
        ports.clk,
        Femtos::from_ns(6.0),
        Femtos::from_seconds(1.0 / 100.0e6),
    );

    let probes = [
        ("clk", engine.attach_probe(ports.clk)),
        ("r1", engine.attach_probe(ports.r1)),
        ("r2", engine.attach_probe(ports.r2)),
        ("q1", engine.attach_probe(ports.q1)),
        ("q2", engine.attach_probe(ports.q2)),
        ("out", engine.attach_probe(ports.out)),
    ];
    let t_end = Femtos::from_ns(5.0 + ns);
    engine.run_until(t_end);

    let t0 = Femtos::from_ns(5.0);
    for (label, probe) in probes {
        let wave = engine.waveform(probe).expect("probe exists");
        println!("{}", render(label, wave, t0, t_end, 100));
    }
    let stats = engine.stats();
    println!(
        "\n{} net transitions, {} DFF samples, {} metastable resolutions \
         in {:.0} ns",
        stats.net_transitions, stats.dff_samples, stats.metastable_samples, ns
    );
    println!(
        "r1 drives RO2's MUX: while r1 = 1 the holding loop freezes r2 \
         (locking subthreshold pulses); while r1 = 0 it oscillates — the \
         paper's dynamic switching."
    );
}
