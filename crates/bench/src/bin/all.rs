//! Runs every experiment binary in sequence (the full paper regeneration)
//! and mirrors each one's output into `docs/experiments/`.
//!
//! Usage: `all [--quick]` — `--quick` scales the heavy experiments down
//! (table3 at 8 sets, fig9/tables at 256 kbit) for a fast smoke pass.

use dhtrng_bench::args;
use std::process::Command;

const EXPERIMENTS: [&str; 13] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "fig1b",
    "fig3b",
    "fig7",
    "fig8",
    "fig9",
    "restart",
    "deviation",
];

fn main() {
    let quick = args::switch("--quick");
    let self_path = std::env::current_exe().expect("current executable path");
    let bin_dir = self_path.parent().expect("executable directory");
    let out_dir = std::path::Path::new("docs/experiments");
    std::fs::create_dir_all(out_dir).expect("create docs/experiments");

    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        let mut cmd = Command::new(bin_dir.join(name));
        if quick {
            match name {
                "table3" => {
                    cmd.args(["--sets", "8", "--bits", "262144"]);
                }
                "table4" | "fig8" | "fig9" | "table1" | "table2" => {
                    cmd.args(["--bits", "262144"]);
                }
                "deviation" => {
                    cmd.args(["--sets", "4", "--bits", "262144"]);
                }
                _ => {}
            }
        }
        print!("running {name:<10} ... ");
        match cmd.output() {
            Ok(out) if out.status.success() => {
                let path = out_dir.join(format!("{name}.txt"));
                std::fs::write(&path, &out.stdout).expect("write experiment output");
                println!("ok -> {}", path.display());
            }
            Ok(out) => {
                println!("FAILED (status {})", out.status);
                failures.push(name);
            }
            Err(e) => {
                println!("FAILED to launch: {e}");
                failures.push(name);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiments regenerated", EXPERIMENTS.len());
    } else {
        println!("\nFAILURES: {failures:?}");
        std::process::exit(1);
    }
}
