//! Regenerates Figure 9: min-entropy across the PVT sweep
//! (−20…80 °C x 0.8/1.0/1.2 V x both devices).
//!
//! Usage: `fig9 [--bits N]` (default 1 Mbit per corner; 36 corners).

use dhtrng_bench::{args, fmt::Table, gen, paper};
use dhtrng_core::DhTrng;
use dhtrng_fpga::Device;
use dhtrng_noise::PvtCorner;
use dhtrng_stattests::sp800_90b::min_entropy_mcv;

const TEMPS: [f64; 6] = [-20.0, 0.0, 20.0, 40.0, 60.0, 80.0];
const VOLTS: [f64; 3] = [1.2, 1.0, 0.8];

fn main() {
    let nbits: usize = args::flag("--bits", 1usize << 20);
    println!("Figure 9 — PVT min-entropy sweep ({nbits} bits per corner)\n");

    let mut global_min = (1.0f64, String::new());
    let mut global_max = (0.0f64, String::new());
    for device in [Device::artix7(), Device::virtex6()] {
        let label = device.display_name();
        println!("== {label} ==");
        let mut table = Table::new(&["V \\ T", "-20C", "0C", "20C", "40C", "60C", "80C"]);
        for v in VOLTS {
            let mut cells = vec![format!("{v:.1} V")];
            for (ti, t) in TEMPS.iter().enumerate() {
                let corner = PvtCorner::new(*t, v);
                let mut trng = DhTrng::builder()
                    .device(device.clone())
                    .corner(corner)
                    .seed(0xf19 + ti as u64 + (v * 10.0) as u64 * 31)
                    .build();
                let h = min_entropy_mcv(&gen::bits_from(&mut trng, nbits));
                if h < global_min.0 {
                    global_min = (h, format!("{label} @ {corner}"));
                }
                if h > global_max.0 {
                    global_max = (h, format!("{label} @ {corner}"));
                }
                cells.push(format!("{h:.4}"));
            }
            table.row(&cells);
        }
        println!("{table}");
    }
    println!(
        "max h = {:.4} at {} (paper: peak at 20 C / 1.0 V)",
        global_max.0, global_max.1
    );
    println!(
        "min h = {:.4} at {} (paper: stays above {} at every corner)",
        global_min.0,
        global_min.1,
        paper::FIG9_MIN_ENTROPY_FLOOR
    );
}
