//! Regenerates Table 5: the AIS-31 evaluation (T0–T8) on both devices.
//!
//! Usage: `table5 [--bits N]` (default 7 200 000 bits per device, as the
//! paper collects).

use dhtrng_bench::{args, fmt::Table, gen};
use dhtrng_core::DhTrng;
use dhtrng_fpga::Device;
use dhtrng_stattests::ais31;

fn main() {
    let nbits: usize = args::flag("--bits", 7_200_000usize);
    println!("Table 5 — AIS-31 ({nbits} bits per device; paper: all items pass)\n");

    let mut table = Table::new(&["AIS-31", "paper V6", "paper A7", "Virtex-6", "Artix-7"]);
    let mut reports = Vec::new();
    for device in [Device::virtex6(), Device::artix7()] {
        let mut trng = DhTrng::builder().device(device).seed(0xa1531).build();
        let bits = gen::bits_from(&mut trng, nbits);
        reports.push(ais31::evaluate(&bits));
    }
    let (v6, a7) = (&reports[0], &reports[1]);
    let pass = |b: bool| if b { "Pass" } else { "FAIL" }.to_string();
    table.row(&[
        "Disjointness Test (T0)".into(),
        "Pass".into(),
        "Pass".into(),
        pass(v6.t0),
        pass(a7.t0),
    ]);
    table.row(&[
        "Monobit Tests (T1)*".into(),
        "100%".into(),
        "100%".into(),
        v6.t1.to_string(),
        a7.t1.to_string(),
    ]);
    table.row(&[
        "Poker Tests (T2)*".into(),
        "100%".into(),
        "100%".into(),
        v6.t2.to_string(),
        a7.t2.to_string(),
    ]);
    table.row(&[
        "Run Tests (T3)*".into(),
        "100%".into(),
        "100%".into(),
        v6.t3.to_string(),
        a7.t3.to_string(),
    ]);
    table.row(&[
        "Long Run Test (T4)*".into(),
        "100%".into(),
        "100%".into(),
        v6.t4.to_string(),
        a7.t4.to_string(),
    ]);
    table.row(&[
        "Autocorrelation Test (T5)*".into(),
        "100%".into(),
        "100%".into(),
        v6.t5.to_string(),
        a7.t5.to_string(),
    ]);
    table.row(&[
        "Uniform Distribution (T6)".into(),
        "Pass".into(),
        "Pass".into(),
        pass(v6.t6),
        pass(a7.t6),
    ]);
    table.row(&[
        "Multinomial Dist. (T7)".into(),
        "Pass".into(),
        "Pass".into(),
        pass(v6.t7),
        pass(a7.t7),
    ]);
    table.row(&[
        "Entropy Test (T8)".into(),
        "Pass".into(),
        "Pass".into(),
        pass(v6.t8),
        pass(a7.t8),
    ]);
    println!("{table}");
    println!(
        "T8 statistics: V6 f = {:.4}, A7 f = {:.4} (threshold {}); \
         samples per starred row: {}",
        v6.t8_statistic,
        a7.t8_statistic,
        ais31::T8_THRESHOLD,
        v6.t1.total
    );
    println!(
        "overall: V6 {}, A7 {}",
        if v6.all_pass() {
            "all pass"
        } else {
            "FAILURES"
        },
        if a7.all_pass() {
            "all pass"
        } else {
            "FAILURES"
        },
    );
}
