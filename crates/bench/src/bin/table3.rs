//! Regenerates Table 3: the NIST SP 800-22 suite over sets of 1 Mbit
//! sequences from the DH-TRNG on both devices.
//!
//! Usage: `table3 [--sets N] [--bits N]` (paper: 30 sets of 1 Mbit;
//! default 30 sets — expect a few minutes of runtime).

use dhtrng_bench::{args, fmt::Table, gen, paper};
use dhtrng_core::DhTrng;
use dhtrng_fpga::Device;
use dhtrng_stattests::sp800_22::run_suite;

fn main() {
    let sets: usize = args::flag("--sets", 30usize);
    let nbits: usize = args::flag("--bits", 1usize << 20);
    println!("Table 3 — NIST SP 800-22 ({sets} sets of {nbits} bits per device)\n");

    for device in [Device::virtex6(), Device::artix7()] {
        let label = device.display_name();
        let dev = device.clone();
        let seqs = gen::sequences(
            move |i| {
                DhTrng::builder()
                    .device(dev.clone())
                    .seed(0x5eed + i)
                    .build()
            },
            sets,
            nbits,
        );
        let report = run_suite(&seqs);

        println!("== {label} ==");
        let mut table = Table::new(&[
            "NIST SP 800-22",
            "paper P-value",
            "paper Prop.",
            "measured P-value",
            "measured Prop.",
            "ok",
        ]);
        for (row, paper_row) in report.rows.iter().zip(paper::TABLE3) {
            let (p_paper, prop_paper) = if device.process.nm == 45 {
                (paper_row.1, paper_row.2)
            } else {
                (paper_row.3, paper_row.4)
            };
            table.row(&[
                row.test.name().to_string(),
                format!("{p_paper:.6}"),
                prop_paper.to_string(),
                format!("{:.6}", row.uniformity_p),
                row.proportion(),
                if row.acceptable() { "pass" } else { "FAIL" }.to_string(),
            ]);
        }
        println!("{table}");
        println!(
            "suite verdict: {}\n",
            if report.all_acceptable() {
                "all tests acceptable (paper: passes all items)"
            } else {
                "SOME TESTS FAILED"
            }
        );
    }
}
