//! Regenerates Figure 8: the autocorrelation function (lags 1–100) of
//! 1 Mbit sequences from both devices.
//!
//! Usage: `fig8 [--bits N]`.

use dhtrng_bench::{args, fmt::Table, gen};
use dhtrng_core::DhTrng;
use dhtrng_fpga::Device;
use dhtrng_stattests::basic::{autocorrelation_series, passes_pearson_criterion};

fn main() {
    let nbits: usize = args::flag("--bits", 1usize << 20);
    println!("Figure 8 — autocorrelation function, lags 1..=100 ({nbits} bits)\n");

    let mut table = Table::new(&["device", "max |ACF|", "mean |ACF|", "Pearson |r|<0.3"]);
    for device in [Device::virtex6(), Device::artix7()] {
        let label = device.display_name();
        let mut trng = DhTrng::builder().device(device).seed(0xf18).build();
        let bits = gen::bits_from(&mut trng, nbits);
        let series = autocorrelation_series(&bits, 100);
        let max = series.iter().fold(0.0f64, |m, r| m.max(r.abs()));
        let mean = series.iter().map(|r| r.abs()).sum::<f64>() / series.len() as f64;
        table.row(&[
            label,
            format!("{max:.2e}"),
            format!("{mean:.2e}"),
            if passes_pearson_criterion(&bits, 100) {
                "pass"
            } else {
                "FAIL"
            }
            .to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "paper's Figure 8 shows |ACF| < 4e-3 at every lag on both devices; \
         at 1 Mbit the sampling floor alone is ~1e-3, so values of that \
         order indicate uncorrelated output."
    );
}
