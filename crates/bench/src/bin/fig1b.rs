//! Regenerates Figure 1(b): throughput vs 1/(Slices x Power) scatter for
//! all compared designs, rendered as a data table plus an ASCII plot.

use dhtrng_baselines::paper_rows;
use dhtrng_bench::fmt::Table;
use dhtrng_fpga::efficiency::inverse_slice_power;

fn main() {
    println!("Figure 1(b) — throughput vs 1/(Slice*Power)\n");
    let rows = paper_rows();
    let mut table = Table::new(&["Design", "x = 1/(Slices*W)", "y = Mbps"]);
    let mut points = Vec::new();
    for row in &rows {
        let x = inverse_slice_power(row.slices, row.power_w);
        table.row(&[
            row.design.to_string(),
            format!("{x:.3}"),
            format!("{:.2}", row.throughput_mbps),
        ]);
        points.push((row.design, x, row.throughput_mbps));
    }
    println!("{table}");

    // ASCII scatter, 60x20.
    let (w, h) = (60usize, 20usize);
    let x_max = points.iter().map(|p| p.1).fold(0.0, f64::max) * 1.05;
    let y_max = points.iter().map(|p| p.2).fold(0.0, f64::max) * 1.05;
    let mut grid = vec![vec![' '; w]; h];
    for (i, &(_, x, y)) in points.iter().enumerate() {
        let cx = ((x / x_max) * (w - 1) as f64).round() as usize;
        let cy = ((y / y_max) * (h - 1) as f64).round() as usize;
        let marker = if i == points.len() - 1 {
            '*'
        } else {
            (b'a' + i as u8) as char
        };
        grid[h - 1 - cy][cx] = marker;
    }
    println!("Mbps");
    for row in grid {
        println!("|{}", row.into_iter().collect::<String>());
    }
    println!("+{}", "-".repeat(w));
    println!(" -> 1/(Slices*Power)   (* = this work; letters = Table 6 order)");
    println!(
        "\nThe * point sits alone in the upper right — the paper's 2.63x \
         efficiency headline."
    );
}
