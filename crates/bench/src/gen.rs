//! Bitstream generation helpers (with thread-parallel batch collection).

use dhtrng_core::Trng;
use dhtrng_stattests::BitBuffer;

/// Collects `n` bits from a generator into a [`BitBuffer`] through the
/// batched `fill_bytes` path — one block setup for the whole request,
/// and the same stream a per-bit loop would produce.
pub fn bits_from<T: Trng + ?Sized>(trng: &mut T, n: usize) -> BitBuffer {
    let mut bytes = vec![0u8; n / 8];
    trng.fill_bytes(&mut bytes);
    let mut buf = BitBuffer::with_capacity(n);
    for byte in bytes {
        for i in (0..8).rev() {
            buf.push((byte >> i) & 1 == 1);
        }
    }
    let tail = (n % 8) as u32;
    if tail > 0 {
        let word = trng.next_bits(tail);
        for i in (0..tail).rev() {
            buf.push((word >> i) & 1 == 1);
        }
    }
    buf
}

/// Generates `count` independent sequences of `nbits` bits, one
/// generator per sequence (constructed by `make(seq_index)`), spread
/// across available CPU cores.
pub fn sequences<T, F>(make: F, count: usize, nbits: usize) -> Vec<BitBuffer>
where
    T: Trng + Send,
    F: Fn(u64) -> T + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(count.max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut out: Vec<Option<BitBuffer>> = (0..count).map(|_| None).collect();
    let slots: Vec<std::sync::Mutex<Option<BitBuffer>>> =
        (0..count).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let mut trng = make(i as u64);
                let bits = bits_from(&mut trng, nbits);
                *slots[i].lock().expect("sequence slot poisoned") = Some(bits);
            });
        }
    });
    for (i, slot) in slots.into_iter().enumerate() {
        out[i] = slot.into_inner().expect("sequence slot poisoned");
    }
    out.into_iter()
        .map(|s| s.expect("sequence not generated"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtrng_core::DhTrng;

    #[test]
    fn bits_from_collects_exactly_n() {
        let mut trng = DhTrng::builder().seed(1).build();
        let bits = bits_from(&mut trng, 1234);
        assert_eq!(bits.len(), 1234);
    }

    #[test]
    fn parallel_sequences_are_reproducible_and_distinct() {
        let make = |seed: u64| DhTrng::builder().seed(1000 + seed).build();
        let a = sequences(make, 4, 4096);
        let b = sequences(make, 4, 4096);
        assert_eq!(a, b, "same seeds, same sequences, regardless of threads");
        assert_ne!(a[0], a[1], "different seeds differ");
    }
}
