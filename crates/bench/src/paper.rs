//! The paper's reported numbers, embedded so every experiment binary can
//! print "paper vs measured" side by side.

/// Table 1: (ring order, min-entropy) at 100 MHz sampling.
pub const TABLE1: [(u32, f64); 12] = [
    (2, 0.9737),
    (3, 0.9733),
    (4, 0.9756),
    (5, 0.9776),
    (6, 0.9783),
    (7, 0.9831),
    (8, 0.9860),
    (9, 0.9871),
    (10, 0.9842),
    (11, 0.9837),
    (12, 0.9788),
    (13, 0.9735),
];

/// Table 2: (XOR order, hybrid-unit h, 9-stage-RO h).
pub const TABLE2: [(u32, f64, f64); 10] = [
    (9, 0.9765, 0.9705),
    (10, 0.9803, 0.9751),
    (11, 0.9830, 0.9779),
    (12, 0.9836, 0.9801),
    (13, 0.9853, 0.9813),
    (14, 0.9868, 0.9849),
    (15, 0.9885, 0.9871),
    (16, 0.9896, 0.9873),
    (17, 0.9903, 0.9886),
    (18, 0.9912, 0.9891),
];

/// Table 3: (test name, V6 P-value, V6 prop, A7 P-value, A7 prop).
pub const TABLE3: [(&str, f64, &str, f64, &str); 15] = [
    ("Frequency", 0.739918, "30/30", 0.739918, "30/30"),
    ("BlockFrequency", 0.100508, "29/30", 0.407091, "29/30"),
    ("CumulativeSums*", 0.180952, "30/30", 0.462665, "30/30"),
    ("Runs", 0.468595, "30/30", 0.178278, "29/30"),
    ("LongestRun", 0.122325, "30/30", 0.213309, "29/30"),
    ("Rank", 0.350485, "30/30", 0.350485, "30/30"),
    ("FFT", 0.739918, "30/30", 0.468595, "30/30"),
    (
        "NonOverlappingTemplate*",
        0.472949,
        "30/30",
        0.477819,
        "30/30",
    ),
    ("OverlappingTemplate", 0.671779, "30/30", 0.534146, "30/30"),
    ("Universal", 0.350485, "30/30", 0.299251, "29/30"),
    ("ApproximateEntropy", 0.602458, "30/30", 0.804337, "30/30"),
    ("RandomExcursions*", 0.090867, "17/17", 0.029136, "17/17"),
    (
        "RandomExcursionsVariant*",
        0.084577,
        "17/17",
        0.043234,
        "17/17",
    ),
    ("Serial*", 0.390368, "30/30", 0.844760, "30/30"),
    ("LinearComplexity", 0.178278, "29/30", 0.407091, "30/30"),
];

/// Table 4: (estimator, V6 p-max, V6 h-min, A7 p-max, A7 h-min).
pub const TABLE4: [(&str, f64, f64, f64, f64); 10] = [
    ("MCV", 0.501841, 0.994698, 0.501400, 0.995966),
    ("Collision", 0.527344, 0.923184, 0.521484, 0.939304),
    ("Markov", 4.28e-39, 0.995748, 3.64e-39, 0.997594),
    ("Compression", 0.5, 1.0, 0.5, 1.0),
    ("t-Tuple", 0.519390, 0.945111, 0.529343, 0.917726),
    ("LRS", 0.519355, 0.945206, 0.502963, 0.991475),
    ("Multi-MCW", 0.501042, 0.998657, 0.501141, 0.996713),
    ("Lag", 0.500465, 0.998567, 0.501683, 0.995153),
    ("Multi-MMC", 0.500630, 0.998183, 0.500566, 0.998368),
    ("LZ78Y", 0.501705, 0.99509, 0.501028, 0.997038),
];

/// §4.2: the six restart words the paper reports.
pub const RESTART_WORDS: [u32; 6] = [
    0x8E8F_7BE6,
    0xD448_223A,
    0x2ED8_2918,
    0x79DA_4E4B,
    0x51A6_02A9,
    0xDB9E_49EC,
];

/// §4.3 deviation test: (device, bias %).
pub const DEVIATION: [(&str, f64); 2] = [("Virtex-6", 0.0075), ("Artix-7", 0.0069)];

/// §4 operating points: (device, throughput Mbps, power W).
pub const OPERATING_POINTS: [(&str, f64, f64); 2] =
    [("Virtex-6", 670.0, 0.126), ("Artix-7", 620.0, 0.068)];

/// Figure 9: the lowest min-entropy across the PVT sweep stays above
/// this level in the paper's plot.
pub const FIG9_MIN_ENTROPY_FLOOR: f64 = 0.970;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shapes() {
        assert_eq!(TABLE1.len(), 12);
        assert_eq!(TABLE2.len(), 10);
        assert_eq!(TABLE3.len(), 15);
        assert_eq!(TABLE4.len(), 10);
    }

    #[test]
    fn table1_peaks_at_nine() {
        let max = TABLE1
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(max.0, 9);
    }

    #[test]
    fn table2_units_beat_ros_everywhere() {
        for (n, dh, ro) in TABLE2 {
            assert!(dh > ro, "n = {n}");
        }
    }

    #[test]
    fn restart_words_distinct() {
        let mut w = RESTART_WORDS.to_vec();
        w.sort_unstable();
        w.dedup();
        assert_eq!(w.len(), 6);
    }
}
