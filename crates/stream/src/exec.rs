//! The stage-graph executor: one merge loop + recycled buffer pool
//! driving every output tier.
//!
//! Before this module existed, each layer of the output chain pulled
//! from the one below it through its own private buffers — the engine
//! replaced its current chunk `Vec` per refill, the conditioned stage
//! copied raw bytes into a scratch array and re-buffered its output
//! byte-by-byte into a `VecDeque`, and the DRBG pool allocated seed
//! material per reseed. The executor collapses that stack into one
//! dataflow over **recycled chunk buffers**:
//!
//! * every shard owns a fixed set of `queue_chunks + 2` buffers,
//!   created once at build time: one being filled by the worker, up to
//!   `queue_chunks` in the bounded data queue, one drained by the
//!   consumer. Drained buffers return to their shard's worker over a
//!   **return ring**, so the steady-state read path performs **zero
//!   heap allocation** (pinned by `tests/zero_alloc.rs` and reported
//!   in `BENCH_9.json`);
//! * the consumer merges chunks **round-robin in shard order** (chunk
//!   `k` of the stream is chunk `k / N` of shard `k % N`), exactly as
//!   before — the merged stream stays a pure function of the shard
//!   seed schedule;
//! * downstream stages borrow the current chunk *in place* via
//!   [`Executor::with_chunk`] (a [`Stage`](dhtrng_core::kernel::Stage)
//!   transforms the pooled bytes where they sit) instead of copying
//!   them out first.
//!
//! # Shard-retirement merge order
//!
//! When a shard retires (health failure through its restart budget, a
//! panicked worker, or an injected failure), its terminal error is a
//! message *in its queue position*: the executor keeps serving chunks
//! from the other shards until the round-robin cursor reaches the
//! retired shard's slot, and only then surfaces the error — which is
//! then latched forever. Every chunk merged before that slot is
//! delivered. The merged prefix of a stream with a shard that retires
//! after its `k`-th chunk is therefore deterministic: all chunks in
//! round-robin order through round `k`, then the chunks of the
//! earlier-in-rotation shards of round `k + 1`, then the typed error.
//! `tests/streaming.rs` pins this with a 3-shard stream whose middle
//! shard retires mid-read.

use std::sync::Arc;
use std::thread::JoinHandle;

use dhtrng_core::telemetry::Telemetry;

use crate::error::Error;
use crate::ring::{Consumer, Producer, TryPopError};
use crate::shard::ShardMessage;

/// The consumer ends of one shard's ring pair: produced chunks arrive
/// on `data`; drained buffers go home over `pool`. Both directions are
/// lock-free SPSC rings (see [`crate::ring`]) — the executor is the
/// single consumer of `data` and the single producer of `pool`.
#[derive(Debug)]
pub(crate) struct ShardLink {
    pub(crate) data: Consumer<ShardMessage>,
    pub(crate) pool: Producer<Vec<u8>>,
}

/// The merge loop + buffer pool behind every tier (see the
/// [module docs](self)).
#[derive(Debug)]
pub(crate) struct Executor {
    links: Vec<ShardLink>,
    workers: Vec<JoinHandle<()>>,
    /// Next shard in the round-robin rotation.
    cursor: usize,
    /// The chunk being drained (empty before the first refill).
    current: Vec<u8>,
    /// Which shard `current` came from (meaningless while empty).
    current_shard: usize,
    /// Bytes of `current` already consumed.
    offset: usize,
    failed: Option<Error>,
    bytes_delivered: u64,
    /// Pool buffers created at build time (a pure function of the
    /// configuration; the pool never grows afterwards).
    buffers_created: usize,
    /// Stream-wide counters + event recorder (shared with every stage).
    telemetry: Arc<Telemetry>,
}

impl Executor {
    pub(crate) fn new(
        links: Vec<ShardLink>,
        workers: Vec<JoinHandle<()>>,
        buffers_created: usize,
        telemetry: Arc<Telemetry>,
    ) -> Self {
        Self {
            links,
            workers,
            cursor: 0,
            current: Vec::new(),
            current_shard: 0,
            offset: 0,
            failed: None,
            bytes_delivered: 0,
            buffers_created,
            telemetry,
        }
    }

    pub(crate) fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    pub(crate) fn shards(&self) -> usize {
        self.links.len()
    }

    pub(crate) fn bytes_delivered(&self) -> u64 {
        self.bytes_delivered
    }

    pub(crate) fn failed(&self) -> Option<Error> {
        self.failed
    }

    pub(crate) fn buffers_created(&self) -> usize {
        self.buffers_created
    }

    /// Sends the drained current buffer home to its shard's pool ring.
    /// A no-op before the first refill; a dead worker (consumer side
    /// gone) just drops the buffer. The pool ring's capacity covers
    /// every buffer the shard owns, so the push never blocks.
    fn recycle_current(&mut self) {
        if !self.current.is_empty() {
            let buffer = std::mem::take(&mut self.current);
            let _ = self.links[self.current_shard].pool.push(buffer);
        }
        self.offset = 0;
    }

    /// Pops the next chunk, round-robin in shard order, recycling the
    /// drained one. Does **not** latch the failure (callers decide).
    fn refill(&mut self) -> Result<(), Error> {
        let shard = self.cursor;
        // Depth before the pop = depth including the chunk we are about
        // to take — the queue-pressure sample for the high-water mark.
        let depth = self.links[shard].data.len();
        match self.links[shard].data.pop() {
            Ok(Ok(chunk)) => {
                // `depth.max(1)`: a pop that blocked sampled an empty
                // ring, but it still took one chunk.
                self.telemetry
                    .chunk_merged(shard, chunk.len(), depth.max(1));
                self.recycle_current();
                self.current = chunk;
                self.current_shard = shard;
                self.cursor = (self.cursor + 1) % self.links.len();
                Ok(())
            }
            Ok(Err(failure)) => Err(Error::ShardFailed {
                shard: failure.shard,
                consecutive_restarts: failure.consecutive_restarts,
            }),
            Err(_) => Err(Error::ShardDisconnected { shard }),
        }
    }

    /// Fills `out` with the next merged bytes (the raw-tier read path:
    /// pooled chunk → caller buffer, nothing in between).
    pub(crate) fn read(&mut self, out: &mut [u8]) -> Result<(), Error> {
        if let Some(error) = self.failed {
            return Err(error);
        }
        let mut written = 0;
        while written < out.len() {
            if self.offset == self.current.len() {
                if let Err(error) = self.refill() {
                    self.failed = Some(error);
                    return Err(error);
                }
            }
            let take = (out.len() - written).min(self.current.len() - self.offset);
            out[written..written + take]
                .copy_from_slice(&self.current[self.offset..self.offset + take]);
            self.offset += take;
            written += take;
            self.bytes_delivered += take as u64;
            self.telemetry.bytes_delivered(take);
        }
        Ok(())
    }

    /// Hands the unconsumed remainder of the next chunk to `f` for
    /// in-place processing, then recycles the buffer. The whole
    /// remainder counts as delivered: this is how downstream stages
    /// consume the raw stream without re-buffering it.
    pub(crate) fn with_chunk<R>(&mut self, f: impl FnOnce(&mut [u8]) -> R) -> Result<R, Error> {
        if let Some(error) = self.failed {
            return Err(error);
        }
        if self.offset == self.current.len() {
            if let Err(error) = self.refill() {
                self.failed = Some(error);
                return Err(error);
            }
        }
        let result = f(&mut self.current[self.offset..]);
        let remainder = self.current.len() - self.offset;
        self.bytes_delivered += remainder as u64;
        self.telemetry.bytes_delivered(remainder);
        self.offset = self.current.len();
        Ok(result)
    }

    /// Buffers a chunk if one is ready, without blocking. `Ok(true)`
    /// when bytes are available to read, `Ok(false)` when the next
    /// shard has not produced yet. Latches any failure it consumes.
    pub(crate) fn try_buffer(&mut self) -> Result<bool, Error> {
        if let Some(error) = self.failed {
            return Err(error);
        }
        if self.offset < self.current.len() {
            return Ok(true);
        }
        let shard = self.cursor;
        let depth = self.links[shard].data.len();
        let error = match self.links[shard].data.try_pop() {
            Ok(Ok(chunk)) => {
                self.telemetry.chunk_merged(shard, chunk.len(), depth);
                self.recycle_current();
                self.current = chunk;
                self.current_shard = shard;
                self.cursor = (self.cursor + 1) % self.links.len();
                return Ok(true);
            }
            Err(TryPopError::Empty) => return Ok(false),
            Ok(Err(failure)) => Error::ShardFailed {
                shard: failure.shard,
                consecutive_restarts: failure.consecutive_restarts,
            },
            Err(TryPopError::Disconnected) => Error::ShardDisconnected { shard },
        };
        // Latch: this path may consume the shard's one obituary message,
        // so later reads must keep reporting the true cause.
        self.failed = Some(error);
        Err(error)
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        // Hang up both directions first: workers blocked pushing a
        // chunk observe the data-ring hangup; workers blocked waiting
        // for a pool buffer observe the return-ring hangup (the ring
        // `Drop` impls set the alive flags and wake parked peers).
        // Then reap the threads.
        self.links.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}
