//! Opt-in shard→core affinity.
//!
//! The scaling story in the DH-TRNG paper is "more units, linearly more
//! bits"; on a real multi-core host that only materialises if the shard
//! workers do not migrate between cores and trample each other's
//! caches. [`AffinityPolicy`] is the builder knob: **disabled by
//! default** (the scheduler usually does fine), and best-effort when
//! enabled — a failed pin is recorded, never fatal.
//!
//! The pinning itself is a raw `sched_setaffinity(2)` call on Linux,
//! declared inline (`std` already links libc, so this adds no
//! dependency) behind a scoped `unsafe` shim mirroring the AVX2
//! dispatch precedent in `dhtrng-core`. On every other platform the
//! shim is a no-op that reports "not pinned".

use std::num::NonZeroUsize;

/// How shard worker threads are placed onto CPU cores.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum AffinityPolicy {
    /// Let the OS scheduler place worker threads (the default).
    #[default]
    Disabled,
    /// Pin worker `i` to core `i % host_cpus`; the sliced bank worker
    /// (one thread driving all lanes) pins to core 0. Best-effort: on
    /// non-Linux hosts, on single-CPU hosts, or when the kernel
    /// refuses, the thread simply runs unpinned.
    PerShard,
}

impl AffinityPolicy {
    /// The core worker `index` should pin to, or `None` when this
    /// policy (or the host shape) says not to pin at all. Pinning on a
    /// single-CPU host is pure downside — it forbids nothing and
    /// forfeits nothing — so it is skipped.
    pub fn core_for_worker(self, index: usize, host_cpus: usize) -> Option<usize> {
        match self {
            AffinityPolicy::Disabled => None,
            AffinityPolicy::PerShard if host_cpus <= 1 => None,
            AffinityPolicy::PerShard => Some(index % host_cpus),
        }
    }
}

/// CPUs visible to this process, with the std fallback of 1 when the
/// host will not say. Cached: `available_parallelism` is a syscall,
/// and the backoff ladder consults this on the hand-off hot path.
pub(crate) fn host_cpus() -> usize {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    match CACHED.load(Ordering::Relaxed) {
        0 => {
            let cpus = std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1);
            CACHED.store(cpus, Ordering::Relaxed);
            cpus
        }
        cpus => cpus,
    }
}

/// Pins the calling thread to `cpu`. Returns whether the pin took
/// effect. Never panics and never fails the caller: affinity is an
/// optimisation, not a correctness requirement.
#[cfg(target_os = "linux")]
pub(crate) fn pin_current_thread(cpu: usize) -> bool {
    // Matches the kernel's default CPU_SETSIZE of 1024 bits.
    const SETSIZE_BYTES: usize = 128;
    const BITS_PER_WORD: usize = u64::BITS as usize;

    #[allow(unsafe_code)]
    extern "C" {
        // std links libc on Linux, so declaring the symbol inline costs
        // no new dependency. pid 0 means "the calling thread".
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    if cpu >= SETSIZE_BYTES * 8 {
        return false;
    }
    let mut mask = [0u64; SETSIZE_BYTES / 8];
    mask[cpu / BITS_PER_WORD] |= 1u64 << (cpu % BITS_PER_WORD);
    // SAFETY: `mask` is a valid, initialised buffer of exactly
    // `SETSIZE_BYTES` bytes that outlives the call; pid 0 targets only
    // the calling thread, so no other thread's state is touched. The
    // call has no memory effects beyond reading `mask`.
    #[allow(unsafe_code)]
    let rc = unsafe { sched_setaffinity(0, SETSIZE_BYTES, mask.as_ptr()) };
    rc == 0
}

/// Non-Linux fallback: affinity is not supported, report "not pinned".
#[cfg(not(target_os = "linux"))]
pub(crate) fn pin_current_thread(_cpu: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_policy_never_pins() {
        for index in 0..8 {
            assert_eq!(AffinityPolicy::Disabled.core_for_worker(index, 16), None);
        }
    }

    #[test]
    fn per_shard_wraps_over_host_cpus() {
        let policy = AffinityPolicy::PerShard;
        assert_eq!(policy.core_for_worker(0, 4), Some(0));
        assert_eq!(policy.core_for_worker(3, 4), Some(3));
        assert_eq!(policy.core_for_worker(4, 4), Some(0));
        assert_eq!(policy.core_for_worker(9, 4), Some(1));
    }

    #[test]
    fn per_shard_skips_single_cpu_hosts() {
        assert_eq!(AffinityPolicy::PerShard.core_for_worker(0, 1), None);
        assert_eq!(AffinityPolicy::PerShard.core_for_worker(5, 0), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pinning_to_core_zero_succeeds_on_linux() {
        // Core 0 always exists; the call must succeed (or at worst be
        // refused by a restrictive sandbox — accept both, but exercise
        // the path).
        let _ = pin_current_thread(0);
        // Out-of-range CPUs are rejected without calling the kernel.
        assert!(!pin_current_thread(1 << 20));
    }
}
