//! Round-robin reseed arbitration with bounded per-session credits.
//!
//! Raw entropy is the scarce resource of the whole service: every DRBG
//! session expands it ~2700x, but the *harvests* that feed those
//! expansions all drain the same conditioned stream. The arbiter
//! decides whose harvest runs next:
//!
//! * **FIFO queue = round-robin.** Sessions enqueue when they need a
//!   reseed and are served strictly in arrival order, so under
//!   contention every session's reseeds interleave instead of one hot
//!   session monopolising the source.
//! * **Bounded credits = backpressure.** Each session holds at most
//!   `max_reseed_credits` credits; a harvest spends one, and a credit
//!   is earned back for every round *other* sessions advance. A
//!   session that reseeds faster than its fair share runs dry and is
//!   demoted to the back of the queue once per request ([`Turn::Demote`])
//!   — or, in fail-fast mode, told [`Backpressure`](crate::Error::Backpressure)
//!   outright.
//!
//! The demotion fires at most once per request (the caller tracks the
//! `demoted` flag), so a dry session is delayed by exactly one queue
//! lap, never starved: the policy is deadlock-free by construction.
//! The arbiter itself is just the bookkeeping; blocking and wake-ups
//! live in `api.rs` (a `Condvar` over the source's shared state).

use std::collections::VecDeque;

/// What a session at some queue position should do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Turn {
    /// Not at the front yet: block until the queue moves.
    Wait,
    /// At the front with credit (or already demoted once): harvest now.
    Serve,
    /// At the front, out of credits, with sessions waiting behind: go
    /// to the back of the queue and let them pass (once per request).
    Demote,
}

/// FIFO reseed queue plus the served-round counter credits are earned
/// against.
#[derive(Debug, Default)]
pub(crate) struct ReseedArbiter {
    /// Session ids awaiting a harvest, front = next to serve.
    queue: VecDeque<u64>,
    /// Total harvests served; sessions earn credits as this advances.
    rounds: u64,
}

impl ReseedArbiter {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Total harvests served so far.
    pub(crate) fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Sessions currently queued for a harvest.
    pub(crate) fn contenders(&self) -> usize {
        self.queue.len()
    }

    /// Joins the queue (idempotent: a session already queued keeps its
    /// position).
    pub(crate) fn enqueue(&mut self, id: u64) {
        if !self.queue.contains(&id) {
            self.queue.push_back(id);
        }
    }

    /// What session `id` (holding `credits`, already demoted this
    /// request or not) should do now.
    pub(crate) fn turn(&self, id: u64, credits: u32, demoted: bool) -> Turn {
        if self.queue.front() != Some(&id) {
            Turn::Wait
        } else if credits == 0 && self.queue.len() > 1 && !demoted {
            Turn::Demote
        } else {
            Turn::Serve
        }
    }

    /// Moves the front session to the back (it was out of credits).
    pub(crate) fn demote(&mut self, id: u64) {
        debug_assert_eq!(self.queue.front(), Some(&id), "demote out of turn");
        if self.queue.front() == Some(&id) {
            self.queue.rotate_left(1);
        }
    }

    /// Marks the front session's harvest complete and advances the
    /// round counter.
    pub(crate) fn served(&mut self, id: u64) {
        debug_assert_eq!(self.queue.front(), Some(&id), "served out of turn");
        self.queue.retain(|&q| q != id);
        self.rounds += 1;
    }

    /// Withdraws a session from the queue without serving it (the
    /// source died while it waited).
    pub(crate) fn remove(&mut self, id: u64) {
        self.queue.retain(|&q| q != id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_round_robin() {
        let mut a = ReseedArbiter::new();
        a.enqueue(7);
        a.enqueue(3);
        a.enqueue(9);
        assert_eq!(a.turn(3, 1, false), Turn::Wait);
        assert_eq!(a.turn(7, 1, false), Turn::Serve);
        a.served(7);
        assert_eq!(a.rounds(), 1);
        assert_eq!(a.turn(3, 1, false), Turn::Serve);
        a.served(3);
        assert_eq!(a.turn(9, 1, false), Turn::Serve);
        a.served(9);
        assert_eq!(a.contenders(), 0);
        assert_eq!(a.rounds(), 3);
    }

    #[test]
    fn zero_credit_front_is_demoted_once_then_served() {
        let mut a = ReseedArbiter::new();
        a.enqueue(1);
        a.enqueue(2);
        // Out of credits with a contender behind: step aside once.
        assert_eq!(a.turn(1, 0, false), Turn::Demote);
        a.demote(1);
        assert_eq!(a.turn(2, 0, false), Turn::Demote);
        a.demote(2);
        // Both demoted: the demoted flag guarantees progress.
        assert_eq!(a.turn(1, 0, true), Turn::Serve);
        a.served(1);
        assert_eq!(a.turn(2, 0, true), Turn::Serve);
    }

    #[test]
    fn sole_contender_never_demotes() {
        let mut a = ReseedArbiter::new();
        a.enqueue(5);
        assert_eq!(a.turn(5, 0, false), Turn::Serve);
    }

    #[test]
    fn enqueue_is_idempotent_and_remove_withdraws() {
        let mut a = ReseedArbiter::new();
        a.enqueue(1);
        a.enqueue(1);
        a.enqueue(2);
        assert_eq!(a.contenders(), 2);
        a.remove(1);
        assert_eq!(a.contenders(), 1);
        assert_eq!(a.turn(2, 1, false), Turn::Serve);
        assert_eq!(a.rounds(), 0, "removal serves nothing");
    }
}
