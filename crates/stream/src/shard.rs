//! Shard workers: one DH-TRNG instance per thread, producing
//! health-tested chunks into recycled pool buffers.
//!
//! Each worker owns a [`DhTrng`] (driven as a stage-graph
//! [`BlockSource`]) and a continuous [`HealthMonitor`] (SP 800-90B §4.4
//! RCT + APT) over the bits it delivers. Buffers arrive over the pool
//! return ring — the worker never allocates a chunk; it regenerates
//! into the same storage. A chunk whose bits trip the monitor is
//! **discarded whole** (regenerated in place), the instance is
//! power-cycled via [`DhTrng::restart`] (fresh metastable startup
//! state, as in the paper's §4.2 restart test), the monitor is reset,
//! and the chunk is regenerated — the consumer never sees unhealthy
//! bytes and never sees a gap. A shard that cannot produce a healthy
//! chunk within the configured number of consecutive restarts reports
//! a [`ShardFailure`] and retires instead of flooding restarts forever.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dhtrng_core::kernel::{BitBlock, BlockSource};
use dhtrng_core::telemetry::Telemetry;
use dhtrng_core::{DhTrng, HealthMonitor, HealthStatus};

use crate::error::ConfigError;
use crate::ring::{Consumer, Producer};

/// Cutoffs for the per-shard continuous health tests.
///
/// The defaults are the SP 800-90B §4.4 values [`HealthMonitor::new`]
/// uses (`alpha = 2^-30`, `H = 0.99`): a healthy DH-TRNG essentially
/// never trips them. Tighter cutoffs are useful to exercise the restart
/// machinery deterministically in tests.
///
/// Cutoffs that arrive from **untrusted input** (a daemon config file,
/// a peer) should come through [`builder`](Self::builder), which
/// returns a typed [`ConfigError`] instead of panicking; the plain
/// struct literal stays available for in-process construction where a
/// bad value is a programmer error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Repetition Count Test cutoff (must exceed 1).
    pub rct_cutoff: u32,
    /// Adaptive Proportion Test window size.
    pub apt_window: u32,
    /// Adaptive Proportion Test cutoff (at most the window).
    pub apt_cutoff: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            rct_cutoff: 32,
            apt_window: 1024,
            apt_cutoff: 624,
        }
    }
}

impl HealthConfig {
    /// Starts configuring cutoffs with validation — the path for
    /// untrusted input.
    pub fn builder() -> HealthConfigBuilder {
        HealthConfigBuilder {
            config: Self::default(),
        }
    }

    /// Checks the invariants [`monitor`](Self::monitor) would otherwise
    /// panic on.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.rct_cutoff <= 1 {
            return Err(ConfigError::RctCutoff {
                got: self.rct_cutoff,
            });
        }
        if self.apt_window == 0 {
            return Err(ConfigError::AptWindow);
        }
        if self.apt_cutoff == 0 {
            return Err(ConfigError::AptCutoff);
        }
        if self.apt_cutoff > self.apt_window {
            return Err(ConfigError::AptCutoffExceedsWindow {
                cutoff: self.apt_cutoff,
                window: self.apt_window,
            });
        }
        Ok(())
    }

    /// Builds a monitor with these cutoffs.
    ///
    /// # Panics
    ///
    /// Panics on invalid cutoffs (see [`HealthMonitor::with_cutoffs`]);
    /// validate untrusted values first via [`builder`](Self::builder)
    /// or [`validate`](Self::validate).
    pub fn monitor(&self) -> HealthMonitor {
        HealthMonitor::with_cutoffs(self.rct_cutoff, self.apt_window, self.apt_cutoff)
    }
}

/// Builder-style, validated construction of [`HealthConfig`] — returns
/// typed errors instead of panicking, so daemon configuration parsed
/// from untrusted input cannot take the process down.
///
/// ```
/// use dhtrng_stream::{ConfigError, HealthConfig};
///
/// let health = HealthConfig::builder()
///     .rct_cutoff(20)
///     .apt_window(512)
///     .apt_cutoff(400)
///     .build()
///     .expect("valid cutoffs");
/// assert_eq!(health.rct_cutoff, 20);
///
/// let err = HealthConfig::builder().apt_cutoff(4096).build().unwrap_err();
/// assert_eq!(
///     err,
///     ConfigError::AptCutoffExceedsWindow { cutoff: 4096, window: 1024 }
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct HealthConfigBuilder {
    config: HealthConfig,
}

impl HealthConfigBuilder {
    /// Repetition Count Test cutoff (must exceed 1 at build time).
    #[must_use]
    pub fn rct_cutoff(mut self, cutoff: u32) -> Self {
        self.config.rct_cutoff = cutoff;
        self
    }

    /// Adaptive Proportion Test window size (positive at build time).
    #[must_use]
    pub fn apt_window(mut self, window: u32) -> Self {
        self.config.apt_window = window;
        self
    }

    /// Adaptive Proportion Test cutoff (positive, at most the window,
    /// at build time).
    #[must_use]
    pub fn apt_cutoff(mut self, cutoff: u32) -> Self {
        self.config.apt_cutoff = cutoff;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// The first violated invariant (see [`HealthConfig::validate`]).
    pub fn build(self) -> Result<HealthConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Terminal failure of one shard: the entropy source kept tripping the
/// health tests through the allowed consecutive restarts (or an
/// injected retirement fired — see
/// [`EntropyStreamBuilder::inject_shard_failure`](crate::engine::EntropyStreamBuilder::inject_shard_failure)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardFailure {
    /// Index of the failed shard.
    pub shard: usize,
    /// Consecutive restart attempts consumed before giving up (0 for an
    /// injected retirement).
    pub consecutive_restarts: u32,
}

/// What a shard sends down its data ring: a healthy chunk (in a pool
/// buffer the consumer must eventually return), or its own obituary —
/// the in-band retirement tag that keeps the error in the shard's
/// round-robin queue position.
pub(crate) type ShardMessage = Result<Vec<u8>, ShardFailure>;

/// The state a shard worker thread runs with.
pub(crate) struct ShardWorker {
    pub(crate) shard: usize,
    pub(crate) trng: DhTrng,
    pub(crate) health: HealthConfig,
    pub(crate) chunk_bytes: usize,
    pub(crate) max_consecutive_restarts: u32,
    /// Shared restart counter (read by the engine's statistics).
    pub(crate) restarts: Arc<AtomicU64>,
    /// Recycled buffers come back from the consumer over this ring.
    pub(crate) pool: Consumer<Vec<u8>>,
    /// Deterministic fault injection: retire after this many healthy
    /// chunks (`None` = never).
    pub(crate) fail_after_chunks: Option<u64>,
    /// Stream-wide counters + event recorder (shared with every stage).
    pub(crate) telemetry: Arc<Telemetry>,
}

impl ShardWorker {
    /// Produces chunks until the consumer hangs up or the shard dies.
    pub(crate) fn run(mut self, mut tx: Producer<ShardMessage>) {
        let mut monitor = self.health.monitor();
        let mut healthy_sent = 0u64;
        loop {
            if self.fail_after_chunks == Some(healthy_sent) {
                // Injected retirement: deterministic in the chunk count,
                // independent of thread timing.
                self.telemetry.retired(self.shard, 0);
                let _ = tx.push(Err(ShardFailure {
                    shard: self.shard,
                    consecutive_restarts: 0,
                }));
                return;
            }
            // Zero-allocation steady state: wait for a recycled buffer
            // instead of allocating. A hung-up return ring means the
            // consumer dropped the stream: orderly shutdown.
            let Ok(mut buffer) = self.pool.pop() else {
                return;
            };
            buffer.resize(self.chunk_bytes, 0);
            match self.next_healthy_chunk_into(&mut monitor, &mut buffer) {
                Ok(()) => {
                    if tx.push(Ok(buffer)).is_err() {
                        // Consumer dropped the stream: orderly shutdown.
                        return;
                    }
                    self.telemetry.chunk_produced(self.shard, self.chunk_bytes);
                    healthy_sent += 1;
                }
                Err(failure) => {
                    self.telemetry
                        .retired(self.shard, u64::from(failure.consecutive_restarts));
                    // Best effort: the consumer may already be gone.
                    let _ = tx.push(Err(failure));
                    return;
                }
            }
        }
    }

    /// Regenerates `buffer` in place (restarting the instance on health
    /// failure) until its contents pass, or the restart budget is
    /// exhausted.
    fn next_healthy_chunk_into(
        &mut self,
        monitor: &mut HealthMonitor,
        buffer: &mut [u8],
    ) -> Result<(), ShardFailure> {
        let mut restarts_performed = 0u32;
        loop {
            let mut block = BitBlock::empty(buffer);
            self.trng.fill_block(&mut block);
            let healthy = chunk_is_healthy(monitor, buffer);
            self.telemetry.health_verdict(self.shard, healthy);
            if healthy {
                return Ok(());
            }
            // The chunk is tainted and always discarded (overwritten on
            // the next attempt); whether another power-cycle is worth it
            // depends on the remaining budget.
            if restarts_performed >= self.max_consecutive_restarts {
                return Err(ShardFailure {
                    shard: self.shard,
                    consecutive_restarts: restarts_performed,
                });
            }
            // Graceful restart: power-cycle the instance and start the
            // monitor over on the fresh source. The shared counter
            // counts restarts actually performed.
            restarts_performed += 1;
            self.restarts.fetch_add(1, Ordering::Relaxed);
            self.telemetry
                .restart(self.shard, u64::from(restarts_performed));
            self.trng.restart();
            *monitor = self.health.monitor();
        }
    }
}

/// Feeds a chunk through the monitor; `false` as soon as any bit trips.
/// Shared with the sliced bank worker so both kernels apply the exact
/// same health gate to the exact same bit order.
pub(crate) fn chunk_is_healthy(monitor: &mut HealthMonitor, chunk: &[u8]) -> bool {
    chunk.iter().all(|&byte| {
        (0..8)
            .rev()
            .all(|i| monitor.feed((byte >> i) & 1 == 1) == HealthStatus::Ok)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtrng_core::Trng;

    #[test]
    fn default_cutoffs_match_health_monitor_defaults() {
        // Keep HealthConfig::default() in lockstep with
        // HealthMonitor::new(): same trip behaviour on a stuck source.
        let mut from_config = HealthConfig::default().monitor();
        let mut from_new = HealthMonitor::new();
        let mut config_trip = None;
        let mut new_trip = None;
        for i in 0..2048 {
            if from_config.feed(true) != HealthStatus::Ok && config_trip.is_none() {
                config_trip = Some(i);
            }
            if from_new.feed(true) != HealthStatus::Ok && new_trip.is_none() {
                new_trip = Some(i);
            }
        }
        assert_eq!(config_trip, new_trip);
        assert!(config_trip.is_some());
    }

    #[test]
    fn healthy_chunks_pass_default_cutoffs() {
        let mut trng = DhTrng::builder().seed(42).build();
        let mut chunk = vec![0u8; 8192];
        trng.fill_bytes(&mut chunk);
        let mut monitor = HealthConfig::default().monitor();
        assert!(chunk_is_healthy(&mut monitor, &chunk));
    }

    #[test]
    fn stuck_chunk_trips() {
        let mut monitor = HealthConfig::default().monitor();
        assert!(!chunk_is_healthy(&mut monitor, &[0xFF; 16]));
    }
}
