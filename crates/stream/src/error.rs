//! The unified error surface of the streaming stack.
//!
//! Before ISSUE 6 every tier re-exported the engine's two-variant
//! `StreamError`, and each new failure mode (quotas, backpressure,
//! untrusted configuration) would have grown its own ad-hoc error type
//! somewhere in the stack. The daemon front-end (`dhtrng-serve`) forced
//! the collapse: its retry and degradation logic needs **one** error
//! vocabulary with a machine-checkable
//! [retriability classification](Error::is_retriable), not a per-tier
//! zoo of variants to match on.
//!
//! [`Error`] is `#[non_exhaustive]`: downstream matches must carry a
//! wildcard arm, which is what lets the service grow new failure modes
//! (and it will — see `DESIGN.md` §8) without a breaking release.
//! Callers that only care about *retry or give up* should branch on
//! [`is_retriable`](Error::is_retriable) instead of matching variants.

use std::fmt;

/// Why a configuration was rejected by a validating builder
/// ([`HealthConfig::builder`](crate::shard::HealthConfig::builder),
/// [`SourceBuilder::build`](crate::api::SourceBuilder::build)).
///
/// Server configuration arrives from untrusted input (a config file, a
/// peer's `Hello`), so the validating paths return this typed error
/// instead of panicking the daemon; the legacy in-process builders
/// (`EntropyStreamBuilder::build`, `PipelineBuilder::build_*`) keep
/// their documented panics for programmer errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The Repetition Count Test cutoff must exceed 1.
    RctCutoff {
        /// The rejected cutoff.
        got: u32,
    },
    /// The Adaptive Proportion Test window must be positive.
    AptWindow,
    /// The Adaptive Proportion Test cutoff must be positive.
    AptCutoff,
    /// The APT cutoff cannot exceed the APT window.
    AptCutoffExceedsWindow {
        /// The rejected cutoff.
        cutoff: u32,
        /// The window it exceeds.
        window: u32,
    },
    /// The shard count must be in `1..=64`.
    Shards {
        /// The rejected shard count.
        got: usize,
    },
    /// `chunk_bytes` must be positive.
    ChunkBytes,
    /// `queue_chunks` must be positive.
    QueueChunks,
    /// An explicit seed schedule must have one seed per shard.
    SeedSchedule {
        /// Shards configured.
        expected: usize,
        /// Seeds supplied.
        got: usize,
    },
    /// An injected failure names a shard outside the configured range.
    InjectedShard {
        /// The out-of-range shard index.
        shard: usize,
        /// Shards configured.
        shards: usize,
    },
    /// The DRBG policy's `seed_bytes` must be positive.
    SeedBytes,
    /// A conditioner fold factor or compression ratio must be positive.
    ConditionerRatio,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::RctCutoff { got } => write!(f, "RCT cutoff must exceed 1, got {got}"),
            Self::AptWindow => write!(f, "APT window must be positive"),
            Self::AptCutoff => write!(f, "APT cutoff must be positive"),
            Self::AptCutoffExceedsWindow { cutoff, window } => {
                write!(f, "APT cutoff {cutoff} exceeds the window {window}")
            }
            Self::Shards { got } => write!(f, "shard count must be 1..=64, got {got}"),
            Self::ChunkBytes => write!(f, "chunk_bytes must be positive"),
            Self::QueueChunks => write!(f, "queue_chunks must be positive"),
            Self::SeedSchedule { expected, got } => {
                write!(
                    f,
                    "seed schedule length must equal the shard count: \
                     {got} seeds for {expected} shards"
                )
            }
            Self::InjectedShard { shard, shards } => {
                write!(f, "injected failure names shard {shard} of {shards}")
            }
            Self::SeedBytes => write!(f, "DRBG seed_bytes must be positive"),
            Self::ConditionerRatio => {
                write!(
                    f,
                    "conditioner fold factor / compression ratio must be positive"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Any failure of the streaming stack — engine, tiers, sessions, and
/// the daemon's session arbitration all speak this one type.
///
/// `#[non_exhaustive]`: match with a wildcard arm, or better, branch on
/// [`is_retriable`](Self::is_retriable) — the classification the
/// daemon's retry/degradation logic is built on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A shard exhausted its consecutive-restart budget and retired.
    ShardFailed {
        /// Index of the failed shard.
        shard: usize,
        /// Restart attempts consumed before giving up (0 for an
        /// injected retirement).
        consecutive_restarts: u32,
    },
    /// A shard worker vanished without reporting (panicked).
    ShardDisconnected {
        /// Index of the lost shard.
        shard: usize,
    },
    /// A session asked for more bytes than its quota has left. The
    /// session stays usable within the remaining budget; the request
    /// itself delivered nothing.
    QuotaExceeded {
        /// Bytes the rejected request asked for.
        requested: u64,
        /// Bytes the session may still read.
        remaining: u64,
    },
    /// Scarce entropy is being arbitrated and this consumer is over its
    /// fair share right now; the identical request is expected to
    /// succeed after other sessions take their turns.
    Backpressure,
    /// A validating builder rejected untrusted configuration.
    InvalidConfig(
        /// What was rejected, and why.
        ConfigError,
    ),
}

impl Error {
    /// Whether retrying the same operation can succeed without any
    /// other intervention.
    ///
    /// The daemon's serving loop is built on this split: retriable
    /// errors ([`Backpressure`](Self::Backpressure)) are waited out and
    /// retried; non-retriable errors either end the session
    /// ([`QuotaExceeded`](Self::QuotaExceeded),
    /// [`InvalidConfig`](Self::InvalidConfig)) or flip the source into
    /// degraded mode ([`ShardFailed`](Self::ShardFailed),
    /// [`ShardDisconnected`](Self::ShardDisconnected) — terminal for
    /// raw/conditioned consumers, survivable for DRBG sessions, which
    /// keep serving from their deterministic state while reseeds
    /// stall).
    pub fn is_retriable(&self) -> bool {
        match self {
            Self::Backpressure => true,
            Self::ShardFailed { .. }
            | Self::ShardDisconnected { .. }
            | Self::QuotaExceeded { .. }
            | Self::InvalidConfig(_) => false,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Retirement has two causes (an exhausted health-restart
            // budget, or an injected fault reporting zero restarts), so
            // the message claims only what the payload actually records.
            Self::ShardFailed {
                shard,
                consecutive_restarts,
            } => write!(
                f,
                "shard {shard} retired after {consecutive_restarts} consecutive restarts"
            ),
            Self::ShardDisconnected { shard } => write!(f, "shard {shard} worker disconnected"),
            Self::QuotaExceeded {
                requested,
                remaining,
            } => write!(
                f,
                "session quota exceeded: requested {requested} bytes, {remaining} remaining"
            ),
            Self::Backpressure => write!(f, "entropy arbiter backpressure; retry after a turn"),
            Self::InvalidConfig(cause) => write!(f, "invalid configuration: {cause}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::InvalidConfig(cause) => Some(cause),
            _ => None,
        }
    }
}

impl From<ConfigError> for Error {
    fn from(cause: ConfigError) -> Self {
        Self::InvalidConfig(cause)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retriability_classification_is_what_the_daemon_relies_on() {
        assert!(Error::Backpressure.is_retriable());
        for terminal in [
            Error::ShardFailed {
                shard: 0,
                consecutive_restarts: 3,
            },
            Error::ShardDisconnected { shard: 1 },
            Error::QuotaExceeded {
                requested: 10,
                remaining: 3,
            },
            Error::InvalidConfig(ConfigError::AptWindow),
        ] {
            assert!(!terminal.is_retriable(), "{terminal}");
        }
    }

    #[test]
    fn config_error_chains_as_the_source() {
        let err = Error::from(ConfigError::RctCutoff { got: 1 });
        let source = std::error::Error::source(&err).expect("chained cause");
        assert_eq!(source.to_string(), "RCT cutoff must exceed 1, got 1");
        assert!(err.to_string().contains("invalid configuration"));
    }

    #[test]
    fn displays_name_the_payload() {
        let err = Error::QuotaExceeded {
            requested: 64,
            remaining: 8,
        };
        assert_eq!(
            err.to_string(),
            "session quota exceeded: requested 64 bytes, 8 remaining"
        );
    }
}
