//! Parking and backoff primitives behind the lock-free hand-off.
//!
//! Two wakeup mechanisms replace the `Condvar`s the hand-off path used
//! to rely on (inside `std::sync::mpsc` and in the session layer):
//!
//! * [`WakeToken`] — a single-waiter "eventcount" for the SPSC ring:
//!   one side of a ring registers itself, re-checks its condition, and
//!   parks; the other side's notify is one `SeqCst` fence plus one
//!   relaxed load when nobody is waiting. An idle merge loop therefore
//!   costs the producer exactly one uncontended load per push.
//! * [`EventCount`] — a multi-waiter epoch counter for the session
//!   layer's reseed arbiter, where any number of sessions may wait for
//!   the queue to move. Registration happens under the source lock (so
//!   a notify can never slip between registering and sleeping), and
//!   the epoch guards against stale unpark tokens.
//!
//! Both follow the classic two-sided `SeqCst`-fence handshake (Dekker
//! store-load pattern): the waiter *registers then re-checks*, the
//! notifier *publishes then checks for a waiter*, and the fences
//! guarantee at least one side observes the other. The memory-ordering
//! argument is written out in `DESIGN.md` §10.
//!
//! [`Backoff`] is the spin → yield ladder both sides climb before they
//! commit to parking: short waits (the common case at chunk
//! granularity) never enter the kernel at all.

use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread::{self, Thread};

/// Spin-with-`spin_loop`-hint steps before escalating (2^0..2^6 spins).
const SPIN_STEPS: u32 = 6;
/// `yield_now` steps after spinning, before the caller should park.
const YIELD_STEPS: u32 = 4;

/// The spin → yield ladder a waiter climbs before parking.
///
/// On a single-CPU host the spin phase is skipped entirely: the peer
/// cannot make progress while this thread burns cycles, so the only
/// useful moves are yielding the core to it and parking.
#[derive(Debug)]
pub(crate) struct Backoff {
    step: u32,
}

impl Backoff {
    pub(crate) fn new() -> Self {
        Self {
            step: if crate::affinity::host_cpus() > 1 {
                0
            } else {
                SPIN_STEPS + 1
            },
        }
    }

    /// Waits one escalating unit. Returns `true` once the ladder is
    /// exhausted and the caller should park instead of burning CPU.
    pub(crate) fn snooze(&mut self) -> bool {
        if self.step <= SPIN_STEPS {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
        } else {
            thread::yield_now();
        }
        if self.step < SPIN_STEPS + YIELD_STEPS {
            self.step += 1;
            false
        } else {
            true
        }
    }

    /// Restarts the ladder at the yield phase: after a park-and-wake
    /// the condition is usually ready, but if it is not, spinning from
    /// scratch would just reheat the core.
    pub(crate) fn wound(&mut self) {
        self.step = SPIN_STEPS + 1;
    }
}

/// Nobody is waiting on the token.
const IDLE: usize = 0;
/// A waiter has registered and may be (about to be) parked.
const WAITING: usize = 1;
/// The notifier fired while a waiter was registered.
const NOTIFIED: usize = 2;

/// A single-waiter wakeup token (one side of one SPSC ring).
///
/// Waiter protocol: [`prepare`](Self::prepare), then **re-check the
/// wake condition**, then either [`cancel`](Self::cancel) (condition
/// already true) or [`park`](Self::park). Notifier protocol: publish
/// the state change, then [`notify`](Self::notify). The re-check
/// between `prepare` and `park` is what makes the handshake lossless —
/// see the module docs.
///
/// The internal `Mutex` is touched only on the slow path (a waiter
/// actually registering, a notifier actually finding one); the hot
/// path of `notify` is a fence plus one relaxed load.
#[derive(Debug, Default)]
pub(crate) struct WakeToken {
    state: AtomicUsize,
    sleeper: Mutex<Option<Thread>>,
}

impl WakeToken {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Registers the calling thread as the waiter. The caller **must**
    /// re-check its wake condition after this returns and before
    /// calling [`park`](Self::park).
    pub(crate) fn prepare(&self) {
        *self.sleeper.lock().expect("wake token poisoned") = Some(thread::current());
        self.state.store(WAITING, Ordering::Relaxed);
        // Waiter-side half of the handshake: the WAITING store must be
        // ordered before the caller's condition re-check.
        fence(Ordering::SeqCst);
    }

    /// Withdraws a registration whose condition re-check came back
    /// true.
    pub(crate) fn cancel(&self) {
        self.state.store(IDLE, Ordering::Release);
    }

    /// Parks until notified. Spurious wakeups of the underlying
    /// `thread::park` are absorbed by the state loop.
    pub(crate) fn park(&self) {
        while self.state.load(Ordering::Acquire) == WAITING {
            thread::park();
        }
        self.state.store(IDLE, Ordering::Release);
    }

    /// Wakes the registered waiter, if there is one. The caller must
    /// have already published the state change the waiter is waiting
    /// for (a `Release` store is enough; the fence below completes the
    /// handshake).
    ///
    /// Returns `true` iff a registered waiter was actually claimed —
    /// the telemetry definition of a "wake". A claimed waiter may still
    /// have been between `prepare` and `cancel` (it never parked), so
    /// wakes are not bounded by parks; the hot path (nobody waiting)
    /// returns `false` for one fence plus one relaxed load.
    pub(crate) fn notify(&self) -> bool {
        // Notifier-side half of the handshake: order the caller's
        // publication before the waiter-state load.
        fence(Ordering::SeqCst);
        if self.state.load(Ordering::Relaxed) == WAITING
            && self.state.swap(NOTIFIED, Ordering::AcqRel) == WAITING
        {
            if let Some(thread) = self.sleeper.lock().expect("wake token poisoned").take() {
                thread.unpark();
            }
            true
        } else {
            false
        }
    }
}

/// A multi-waiter eventcount: threads wait for "the state moved", the
/// epoch counter distinguishes real notifications from stale unparks.
///
/// Waiters must call [`prepare`](Self::prepare) while still holding
/// the lock that guards the state they are waiting on, then release it
/// and call [`wait`](Self::wait); notifiers mutate the state and call
/// [`notify_all`](Self::notify_all) under the same lock. Registration
/// under the lock is what makes the sleep lossless: a notifier can
/// never run between the condition check and the registration.
#[derive(Debug, Default)]
pub(crate) struct EventCount {
    epoch: AtomicU64,
    waiters: Mutex<Vec<Thread>>,
}

impl EventCount {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Registers the calling thread and snapshots the epoch. Call
    /// while holding the state lock; pass the returned epoch to
    /// [`wait`](Self::wait) after releasing it.
    pub(crate) fn prepare(&self) -> u64 {
        let epoch = self.epoch.load(Ordering::SeqCst);
        self.waiters
            .lock()
            .expect("eventcount poisoned")
            .push(thread::current());
        epoch
    }

    /// Sleeps until the epoch moves past `epoch`. Stale unpark tokens
    /// (from a wait the caller abandoned, or a previous lap) only cost
    /// a loop iteration.
    pub(crate) fn wait(&self, epoch: u64) {
        while self.epoch.load(Ordering::SeqCst) == epoch {
            thread::park();
        }
    }

    /// Advances the epoch and wakes every registered waiter. Call
    /// under the state lock after mutating the guarded state.
    pub(crate) fn notify_all(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        let mut waiters = self.waiters.lock().expect("eventcount poisoned");
        for thread in waiters.drain(..) {
            thread.unpark();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn backoff_ladder_reaches_park_recommendation() {
        let mut backoff = Backoff::new();
        let mut steps = 0;
        while !backoff.snooze() {
            steps += 1;
            assert!(steps < 64, "ladder must terminate");
        }
        // Multi-core hosts climb the full spin phase first; a solo
        // host goes straight to the yield phase (spinning cannot help
        // a peer that is not running).
        let expected = if crate::affinity::host_cpus() > 1 {
            SPIN_STEPS + YIELD_STEPS
        } else {
            YIELD_STEPS - 1
        };
        assert_eq!(steps, expected as usize);
        // Once exhausted it keeps recommending the park.
        assert!(backoff.snooze());
        backoff.wound();
        assert!(!backoff.snooze());
    }

    #[test]
    fn wake_token_round_trip() {
        let token = Arc::new(WakeToken::new());
        let flag = Arc::new(AtomicBool::new(false));
        let waiter = {
            let token = Arc::clone(&token);
            let flag = Arc::clone(&flag);
            thread::spawn(move || loop {
                token.prepare();
                if flag.load(Ordering::SeqCst) {
                    token.cancel();
                    return;
                }
                token.park();
            })
        };
        thread::sleep(std::time::Duration::from_millis(20));
        flag.store(true, Ordering::SeqCst);
        token.notify();
        waiter.join().expect("waiter exits");
    }

    #[test]
    fn notify_before_prepare_is_not_lost() {
        // The condition re-check between prepare and park covers the
        // notify-first interleaving; the token itself must simply not
        // dead-lock when notified with nobody registered.
        let token = WakeToken::new();
        token.notify();
        token.prepare();
        token.cancel();
    }

    #[test]
    fn eventcount_wakes_all_waiters() {
        let count = Arc::new(EventCount::new());
        let mut joins = Vec::new();
        for _ in 0..4 {
            let count = Arc::clone(&count);
            joins.push(thread::spawn(move || {
                let epoch = count.prepare();
                count.wait(epoch);
            }));
        }
        thread::sleep(std::time::Duration::from_millis(20));
        count.notify_all();
        for join in joins {
            join.join().expect("waiter exits");
        }
    }
}
