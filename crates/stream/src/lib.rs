//! Sharded streaming engine for the DH-TRNG reproduction.
//!
//! The paper deploys DH-TRNG by replicating its 8-slice core: each
//! instance contributes its full 620/670 Mbps, and aggregate throughput
//! scales linearly because instances share nothing but the fabric. This
//! crate is the software mirror of that deployment, built for serving
//! entropy at production scale:
//!
//! * **N shards** — independently-seeded [`DhTrng`](dhtrng_core::DhTrng)
//!   instances, each assigned its own placement region on the modeled
//!   device, each generating through the batched
//!   [`Trng`](dhtrng_core::Trng) fast path on its own worker thread;
//! * **deterministic merge, zero-allocation steady state** — shards
//!   produce fixed-size chunks into bounded lock-free SPSC [`ring`]s
//!   (chunked buffering with backpressure), every chunk in a buffer
//!   recycled through a per-shard pool (drained buffers return to
//!   their worker over a paired return ring, so the raw-tier read path
//!   never touches the heap — or a lock — after build); the consumer
//!   drains chunks round-robin in shard order, so the merged stream is
//!   a pure function of the seed schedule, never of thread timing;
//!   opt-in [`AffinityPolicy`] pins workers to cores on multi-core
//!   Linux hosts;
//! * **graceful degradation** — every shard runs the SP 800-90B
//!   continuous health tests over its output; a failing chunk is
//!   discarded and the shard restarts (the paper's §4.2 power-cycle)
//!   without disturbing the other shards, and a shard that cannot
//!   recover retires with a typed [`StreamError`] that surfaces
//!   deterministically at its round-robin slot (see
//!   [`EntropyStream::read`]).
//!
//! On top of the merged raw stream sits the session-oriented [`api`]:
//! one shared [`EntropySource`] (engine + in-place conditioning stage,
//! the SP 800-90C source → health → conditioner chain) minting
//! independent per-consumer [`Session`]s at a quality [`Tier`] — the
//! surface the `dhtrng-serve` daemon multiplexes thousands of clients
//! over, with round-robin reseed arbitration, per-session quotas, and
//! graceful degradation on shard retirement. The conditioning stage
//! transforms each pooled chunk **in place** (a
//! [`Stage`](dhtrng_core::kernel::Stage) over borrowed
//! [`BitBlock`](dhtrng_core::kernel::BitBlock)s, via
//! [`EntropyStream::with_next_chunk`]) and each session's DRBG pumps
//! blocks out of borrowed state — no layer re-buffers the one below it
//! (`DESIGN.md` §7–8). The legacy single-consumer [`pipeline`]
//! (`RawStream → ConditionedStream → DrbgPool` behind one
//! [`PipelineBuilder`]) survives as bit-identical sole-session shims.
//! The `dh_trng` facade wraps [`EntropyStream`] and [`TierStream`] in
//! `rand`-compatible adapters (`StreamRng` / `PipelineRng`) for the
//! `rand` ecosystem.
//!
//! # Example
//!
//! ```
//! use dhtrng_stream::EntropyStream;
//!
//! let mut stream = EntropyStream::builder().shards(4).seed(1).chunk_bytes(2048).build();
//! let mut key = [0u8; 64];
//! stream.read(&mut key).expect("shards healthy");
//! assert!(key.iter().any(|&b| b != 0));
//! assert!(stream.throughput_mbps() > 2000.0); // 4 x ~620 Mbps modeled
//! ```
//!
//! The same deployment behind the full pipeline, at the `drbg` tier:
//!
//! ```
//! use dhtrng_stream::{PipelineBuilder, Tier};
//!
//! let mut pool = PipelineBuilder::new()
//!     .shards(2)
//!     .seed(1)
//!     .chunk_bytes(2048)
//!     .build(Tier::Drbg);
//! let mut key = [0u8; 64];
//! pool.read(&mut key).expect("shards healthy");
//! assert_eq!(pool.tier(), Tier::Drbg);
//! ```

#![deny(missing_docs)]
// Unsafe is denied crate-wide and allowed back in exactly two leaf
// modules, each with per-site SAFETY comments (mirroring the AVX2
// dispatch precedent in `dhtrng-core`): the SPSC ring's slot cells
// (`ring`) and the Linux `sched_setaffinity` shim (`affinity`).
#![deny(unsafe_code)]

pub mod affinity;
pub mod api;
mod arbiter;
pub mod engine;
pub mod error;
mod exec;
pub mod pipeline;
pub mod ring;
pub mod shard;
mod sliced;
mod wake;

pub use affinity::AffinityPolicy;
pub use api::{
    EntropySource, Session, SessionConfig, SourceBuilder, SourceStats, DEFAULT_RESEED_CREDITS,
};
pub use engine::{EntropyStream, EntropyStreamBuilder, KernelKind, StreamError};
pub use error::{ConfigError, Error};
pub use pipeline::{
    ConditionedStream, ConditionerSpec, DrbgPool, PipelineBuilder, RawStream, SeedFlow, Tier,
    TierStream,
};
pub use shard::{HealthConfig, HealthConfigBuilder, ShardFailure};

// The observability vocabulary (defined in `dhtrng-core::telemetry`,
// wired through every stage here) re-exported so stream users reach it
// without naming the core crate.
pub use dhtrng_core::telemetry::{
    MetricsHandle, NoopRecorder, Recorder, ShardSnapshot, Snapshot, StageEvent, TraceEvent, Tracer,
};
