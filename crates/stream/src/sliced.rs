//! The sliced bank worker: every shard as one lane of a single
//! [`SlicedDhTrng`], produced by one thread.
//!
//! Stream-compatibility contract: the merged stream, the per-shard
//! restart counters, the health gate, the injected-retirement
//! semantics, and the failure surface are all **bit- and
//! event-identical** to N scalar [`ShardWorker`](crate::shard::ShardWorker)
//! threads on the same seed schedule. The consumer side (the
//! [`Executor`](crate::exec::Executor), the ring shapes, the pool
//! recycling) is untouched — the engine only swaps who produces into
//! the per-shard rings:
//!
//! * lane `i` of the bank continues shard `i`'s generator stream
//!   exactly (the core crate's lane-equivalence contract);
//! * each produced chunk passes through the same
//!   [`chunk_is_healthy`](crate::shard::chunk_is_healthy) gate with the
//!   same per-shard monitor lifecycle (reset on restart);
//! * a health failure power-cycles only the offending lane
//!   ([`SlicedDhTrng::restart_lane_and_refill`] — the scalar
//!   [`DhTrng::restart`](dhtrng_core::DhTrng::restart) under the hood,
//!   counted in the same shared counter), regenerating its chunk while
//!   the other lanes' streams are untouched;
//! * a shard that exhausts its restart budget (or hits an injected
//!   retirement at its exact healthy-chunk count) sends the same
//!   terminal [`ShardFailure`] into the same queue position, then its
//!   lane goes dark: it keeps advancing (lanes march in lockstep) but
//!   materialises nothing.
//!
//! One thread produces for all shards, round by round: receive a
//! recycled buffer for every live lane, advance all lanes together
//! ([`SlicedDhTrng::fill_lane_chunks`]), then health-gate and send each
//! lane's chunk. Lockstep cannot deadlock against the round-robin
//! consumer: the consumer drains shards in order, so its cursor never
//! lags the slowest shard by more than one round, while every data
//! ring holds `queue_chunks ≥ 1` slots — a blocked `pool.pop` on one
//! lane implies the consumer still holds that lane's buffers, which it
//! only does while draining this same round elsewhere.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dhtrng_core::telemetry::Telemetry;
use dhtrng_core::SlicedDhTrng;

use crate::ring::{Consumer, Producer};
use crate::shard::{chunk_is_healthy, HealthConfig, ShardFailure, ShardMessage};

/// The producer side of one shard's ring pair, as wired by the
/// engine (same shapes as a scalar worker's, one set per lane).
pub(crate) struct LaneLink {
    /// Healthy chunks (and at most one terminal failure) go out here.
    pub(crate) tx: Producer<ShardMessage>,
    /// Recycled buffers come back from the consumer over this ring.
    pub(crate) pool: Consumer<Vec<u8>>,
    /// Shared restart counter (read by the engine's statistics).
    pub(crate) restarts: Arc<AtomicU64>,
    /// Deterministic fault injection: retire after this many healthy
    /// chunks (`None` = never).
    pub(crate) fail_after_chunks: Option<u64>,
}

/// The state the single sliced-bank producer thread runs with.
pub(crate) struct SlicedBankWorker {
    /// Lane `i` continues shard `i`'s stream.
    pub(crate) bank: SlicedDhTrng,
    pub(crate) health: HealthConfig,
    pub(crate) chunk_bytes: usize,
    pub(crate) max_consecutive_restarts: u32,
    pub(crate) lanes: Vec<LaneLink>,
    /// Stream-wide counters + event recorder (shared with every stage).
    /// Lane `i` reports as shard `i`, so the per-shard event sequence
    /// is identical to the scalar kernel's.
    pub(crate) telemetry: Arc<Telemetry>,
}

impl SlicedBankWorker {
    /// Produces chunks for every lane until all lanes have retired or
    /// the consumer has hung up everywhere.
    pub(crate) fn run(mut self) {
        let lanes = self.lanes.len();
        let mut monitors: Vec<_> = (0..lanes).map(|_| self.health.monitor()).collect();
        let mut healthy_sent = vec![0u64; lanes];
        // A dark lane produces nothing but still advances in lockstep
        // (its stream position is unobservable, so this is free of
        // semantic consequence and keeps the kernel uniform).
        let mut dark = vec![false; lanes];
        let mut staging: Vec<Option<Vec<u8>>> = (0..lanes).map(|_| None).collect();
        loop {
            // Phase A: injected retirements fire at their exact chunk
            // count, then every live lane waits for a recycled buffer.
            for (lane, link) in self.lanes.iter_mut().enumerate() {
                if dark[lane] {
                    continue;
                }
                if link.fail_after_chunks == Some(healthy_sent[lane]) {
                    self.telemetry.retired(lane, 0);
                    let _ = link.tx.push(Err(ShardFailure {
                        shard: lane,
                        consecutive_restarts: 0,
                    }));
                    dark[lane] = true;
                    continue;
                }
                match link.pool.pop() {
                    Ok(mut buffer) => {
                        buffer.resize(self.chunk_bytes, 0);
                        staging[lane] = Some(buffer);
                    }
                    // Hung-up return ring: the consumer dropped this
                    // lane's stream end — orderly per-lane shutdown.
                    Err(_) => dark[lane] = true,
                }
            }
            if dark.iter().all(|&d| d) {
                return;
            }
            // Phase B: one lockstep advance fills every staged chunk.
            self.bank.fill_lane_chunks(&mut staging);
            // Phase C: health-gate, restart-and-regenerate, deliver.
            for (lane, slot) in staging.iter_mut().enumerate() {
                let Some(mut buffer) = slot.take() else {
                    continue;
                };
                let link = &mut self.lanes[lane];
                let mut restarts_performed = 0u32;
                let verdict = loop {
                    let healthy = chunk_is_healthy(&mut monitors[lane], &buffer);
                    self.telemetry.health_verdict(lane, healthy);
                    if healthy {
                        break Ok(());
                    }
                    // Tainted chunk: discarded whole, regenerated from a
                    // power-cycled lane — if the budget allows another try.
                    if restarts_performed >= self.max_consecutive_restarts {
                        break Err(ShardFailure {
                            shard: lane,
                            consecutive_restarts: restarts_performed,
                        });
                    }
                    restarts_performed += 1;
                    link.restarts.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.restart(lane, u64::from(restarts_performed));
                    self.bank.restart_lane_and_refill(lane, &mut buffer);
                    monitors[lane] = self.health.monitor();
                };
                match verdict {
                    Ok(()) => {
                        if link.tx.push(Ok(buffer)).is_err() {
                            dark[lane] = true;
                        } else {
                            self.telemetry.chunk_produced(lane, self.chunk_bytes);
                            healthy_sent[lane] += 1;
                        }
                    }
                    Err(failure) => {
                        self.telemetry
                            .retired(lane, u64::from(failure.consecutive_restarts));
                        // Best effort: the consumer may already be gone.
                        let _ = link.tx.push(Err(failure));
                        dark[lane] = true;
                    }
                }
            }
        }
    }
}
