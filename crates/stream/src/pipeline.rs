//! The typed output pipeline: `RawStream → ConditionedStream →
//! DrbgPool`, selected per consumer as a quality **tier**.
//!
//! The sharded engine ([`EntropyStream`]) delivers the merged raw
//! source bits, already gated by the per-shard SP 800-90B continuous
//! health tests. Production consumers pick how much post-processing
//! sits between that raw stream and their bytes:
//!
//! * **raw** ([`Tier::Raw`]) — the merged source itself, full rate;
//!   what the paper's evaluation batteries consume;
//! * **conditioned** ([`Tier::Conditioned`]) — a [`Conditioner`] over
//!   the merged stream (default: 2:1 [`CrcWhitener`]), trading rate
//!   for defence-in-depth entropy concentration;
//! * **drbg** ([`Tier::Drbg`]) — a [`HashDrbg`] keyed from the
//!   conditioned stream and re-keyed on the configured interval: the
//!   SP 800-90C source → health → conditioner → DRBG chain, and the
//!   tier a key-serving service exposes.
//!
//! All three tiers are thin shells over the engine's stage-graph
//! executor: the conditioned tier mounts its machine as a
//! [`ConditionerStage`](dhtrng_core::kernel::ConditionerStage) that
//! transforms each pooled chunk **in place**
//! (via [`EntropyStream::with_next_chunk`]) instead of re-buffering the
//! raw bytes, and the drbg tier pumps 512-bit blocks out of borrowed
//! state, harvesting seed material through the same path into one
//! persistent buffer. See `DESIGN.md` §7 for the stage graph and
//! buffer-pool lifecycle.
//!
//! One [`PipelineBuilder`] configures all three; [`TierStream`] is the
//! tier-erased handle the `dh_trng` facade wraps in its
//! `rand`-compatible `PipelineRng`. Every stage is a pure function of
//! the shard seed schedule, so all three tiers inherit the engine's
//! reproducibility guarantee; every stage also propagates the typed
//! [`StreamError`] (a retired shard surfaces identically at any tier).
//!
//! # Deprecation: this is the legacy single-consumer surface
//!
//! Since ISSUE 6 the deployment lives behind the shared, multi-session
//! [`EntropySource`]; the conditioned and
//! drbg types here are **thin shims, each a sole
//! [`Session`] over a private source**, kept
//! bit-identical for existing callers (the pinned-head tests hold).
//! They remain fully supported but frozen: new code — and any code
//! that needs more than one consumer — should build an
//! `EntropySource` and mint sessions ([`PipelineBuilder::into_source_builder`]
//! migrates a configuration verbatim).
//!
//! # Example
//!
//! ```
//! use dhtrng_stream::pipeline::{PipelineBuilder, Tier};
//!
//! let mut pool = PipelineBuilder::new()
//!     .shards(2)
//!     .seed(9)
//!     .chunk_bytes(2048)
//!     .build_drbg();
//! let mut key = [0u8; 64];
//! pool.read(&mut key).expect("healthy pipeline");
//! assert_eq!(pool.tier(), Tier::Drbg);
//! ```

use std::sync::Arc;

use dhtrng_core::conditioning::{Conditioner, CrcWhitener, VonNeumannConditioner, XorFold};
use dhtrng_core::drbg::DrbgConfig;
#[cfg(doc)]
use dhtrng_core::drbg::{HashDrbg, BLOCK_BYTES};
use dhtrng_core::telemetry::{MetricsHandle, Recorder};
use dhtrng_core::DhTrngConfig;

use crate::api::{EntropySource, Session, SessionConfig, SourceBuilder};
use crate::engine::{EntropyStream, EntropyStreamBuilder, StreamError};
use crate::shard::HealthConfig;

/// The merged sharded source — tier 0 of the pipeline. (A vocabulary
/// alias: the engine type predates the pipeline.)
pub type RawStream = EntropyStream;

/// Quality tier of a pipeline output stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The merged health-gated source stream, full rate.
    Raw,
    /// Conditioner output (rate divided by the compression ratio).
    Conditioned,
    /// DRBG output keyed from the conditioned stream.
    Drbg,
}

/// Which conditioner the pipeline's conditioning stage runs.
///
/// A closed enum (rather than a user-supplied trait object) so the
/// builder stays `Clone` and the choice is recordable in reports; the
/// core [`Conditioned`](dhtrng_core::conditioning::Conditioned) adaptor
/// accepts arbitrary [`Conditioner`] implementations for custom stacks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConditionerSpec {
    /// Von Neumann debiasing (expected 4:1 on an unbiased source).
    VonNeumann,
    /// XOR of `factor` raw bits per output bit.
    XorFold(
        /// The fold factor (raw bits per output bit, `>= 1`).
        u32,
    ),
    /// CRC-16 whitener emitting one bit per `ratio` raw bits.
    Crc {
        /// Raw bits per output bit (`>= 1`).
        ratio: u32,
    },
}

impl Default for ConditionerSpec {
    /// The pipeline default: 2:1 CRC conditioning.
    fn default() -> Self {
        Self::Crc { ratio: 2 }
    }
}

impl ConditionerSpec {
    /// Expected raw bits per conditioned bit for this choice, as
    /// declared by the machine itself (single source of truth).
    ///
    /// # Panics
    ///
    /// Panics on a zero fold factor or compression ratio.
    pub fn expected_ratio(&self) -> f64 {
        self.build().expected_ratio()
    }

    /// Checks the spec for a zero fold factor or compression ratio —
    /// the validation path for untrusted configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ConditionerRatio`](crate::error::ConfigError::ConditionerRatio)
    /// on a zero parameter.
    pub fn validate(&self) -> Result<(), crate::error::ConfigError> {
        match *self {
            Self::XorFold(0) | Self::Crc { ratio: 0 } => {
                Err(crate::error::ConfigError::ConditionerRatio)
            }
            _ => Ok(()),
        }
    }

    /// Instantiates the chosen machine.
    ///
    /// # Panics
    ///
    /// Panics on a zero fold factor or compression ratio.
    pub(crate) fn build(&self) -> Box<dyn Conditioner + Send> {
        match *self {
            Self::VonNeumann => Box::new(VonNeumannConditioner::new()),
            Self::XorFold(factor) => Box::new(XorFold::new(factor)),
            Self::Crc { ratio } => Box::new(CrcWhitener::new(ratio)),
        }
    }
}

/// Configures all three tiers behind one API; finish with
/// [`build_raw`](Self::build_raw) /
/// [`build_conditioned`](Self::build_conditioned) /
/// [`build_drbg`](Self::build_drbg) for a typed stage, or
/// [`build`](Self::build) for the tier-erased [`TierStream`].
///
/// Engine knobs (shards, seeds, chunking, health cutoffs) delegate to
/// [`EntropyStreamBuilder`]; the conditioning and DRBG stages add
/// [`conditioner`](Self::conditioner) and
/// [`drbg_config`](Self::drbg_config).
#[derive(Debug, Clone, Default)]
pub struct PipelineBuilder {
    stream: EntropyStreamBuilder,
    conditioner: ConditionerSpec,
    drbg: DrbgConfig,
}

impl PipelineBuilder {
    /// Starts from the engine and stage defaults (4 shards, 64 KiB
    /// chunks, 2:1 CRC conditioning, 1 Mbit DRBG reseed interval).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of parallel DH-TRNG instances (1..=64).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.stream = self.stream.shards(shards);
        self
    }

    /// Master seed for the shard seed schedule.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.stream = self.stream.seed(seed);
        self
    }

    /// Explicit per-shard seed schedule (length must equal the shard
    /// count at build time).
    #[must_use]
    pub fn shard_seeds(mut self, seeds: Vec<u64>) -> Self {
        self.stream = self.stream.shard_seeds(seeds);
        self
    }

    /// Base instance configuration for every shard.
    #[must_use]
    pub fn config(mut self, config: DhTrngConfig) -> Self {
        self.stream = self.stream.config(config);
        self
    }

    /// Bytes per produced chunk (the engine's merge granularity).
    #[must_use]
    pub fn chunk_bytes(mut self, bytes: usize) -> Self {
        self.stream = self.stream.chunk_bytes(bytes);
        self
    }

    /// Chunks buffered per shard before its worker blocks.
    #[must_use]
    pub fn queue_chunks(mut self, chunks: usize) -> Self {
        self.stream = self.stream.queue_chunks(chunks);
        self
    }

    /// Health-test cutoffs applied per shard.
    #[must_use]
    pub fn health(mut self, health: HealthConfig) -> Self {
        self.stream = self.stream.health(health);
        self
    }

    /// Consecutive restarts a shard may burn on one chunk before it
    /// retires.
    #[must_use]
    pub fn max_consecutive_restarts(mut self, restarts: u32) -> Self {
        self.stream = self.stream.max_consecutive_restarts(restarts);
        self
    }

    /// Which generation kernel drives the shards (default
    /// [`KernelKind::Auto`](crate::KernelKind::Auto)); every tier's
    /// stream is bit-identical under either kernel.
    #[must_use]
    pub fn kernel(mut self, kernel: crate::KernelKind) -> Self {
        self.stream = self.stream.kernel(kernel);
        self
    }

    /// How the engine's worker threads are placed onto CPU cores (see
    /// [`EntropyStreamBuilder::core_affinity`]); best-effort, and every
    /// tier's stream is identical either way.
    #[must_use]
    pub fn core_affinity(mut self, policy: crate::AffinityPolicy) -> Self {
        self.stream = self.stream.core_affinity(policy);
        self
    }

    /// Deterministic fault injection: `shard` retires after `chunks`
    /// healthy chunks (see
    /// [`EntropyStreamBuilder::inject_shard_failure`]).
    #[must_use]
    pub fn inject_shard_failure(mut self, shard: usize, chunks: u64) -> Self {
        self.stream = self.stream.inject_shard_failure(shard, chunks);
        self
    }

    /// Installs a stage-event recorder on the deployment (see
    /// [`EntropyStreamBuilder::recorder`]). The always-on counters
    /// behind each tier's `metrics()` run either way; the default
    /// recorder is a no-op.
    #[must_use]
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.stream = self.stream.recorder(recorder);
        self
    }

    /// Conditioner for the conditioned and drbg tiers.
    #[must_use]
    pub fn conditioner(mut self, spec: ConditionerSpec) -> Self {
        self.conditioner = spec;
        self
    }

    /// DRBG policy (reseed interval, seed width, prediction
    /// resistance) for the drbg tier.
    #[must_use]
    pub fn drbg_config(mut self, config: DrbgConfig) -> Self {
        self.drbg = config;
        self
    }

    /// The shared-source equivalent of this configuration: the
    /// modern builder every tier here is a sole-session shim over.
    pub fn into_source_builder(self) -> SourceBuilder {
        SourceBuilder {
            stream: self.stream,
            conditioner: self.conditioner,
            drbg: self.drbg,
            reseed_credits: 0,
        }
    }

    /// Builds the shared source behind the legacy tiers, preserving
    /// the legacy panic-on-misconfiguration contract.
    fn source(self) -> EntropySource {
        self.into_source_builder()
            .build()
            .unwrap_or_else(|error| panic!("{error}"))
    }

    /// Builds the raw tier: the sharded engine itself.
    ///
    /// # Panics
    ///
    /// Panics on invalid engine configuration (see
    /// [`EntropyStreamBuilder::build`]).
    pub fn build_raw(self) -> RawStream {
        self.stream.build()
    }

    /// Builds the conditioned tier.
    ///
    /// # Panics
    ///
    /// As [`build_raw`](Self::build_raw), plus on a zero conditioner
    /// ratio/factor.
    pub fn build_conditioned(self) -> ConditionedStream {
        let source = self.source();
        ConditionedStream {
            session: source.session(Tier::Conditioned),
        }
    }

    /// Builds the drbg tier (DRBG instantiation is lazy: the first
    /// [`read`](DrbgPool::read) harvests the instantiate material, so
    /// building never blocks on the source).
    ///
    /// # Panics
    ///
    /// As [`build_conditioned`](Self::build_conditioned), plus on
    /// `drbg_config.seed_bytes == 0`.
    pub fn build_drbg(self) -> DrbgPool {
        let source = self.source();
        DrbgPool {
            // The legacy pool predates graceful degradation: a dead
            // source surfaces as the read's error, never as a stalled
            // reseed.
            session: source.session_with(SessionConfig::new(Tier::Drbg).stall_reseeds(false)),
        }
    }

    /// Builds the requested tier behind the tier-erased handle.
    ///
    /// # Panics
    ///
    /// As the typed builders for the chosen tier.
    pub fn build(self, tier: Tier) -> TierStream {
        match tier {
            Tier::Raw => TierStream::Raw(self.build_raw()),
            Tier::Conditioned => TierStream::Conditioned(self.build_conditioned()),
            Tier::Drbg => TierStream::Drbg(self.build_drbg()),
        }
    }
}

/// The conditioned tier: the merged raw stream run through the
/// configured conditioner, **in place** in the engine's pooled chunk
/// buffers.
///
/// Each refill borrows the next raw chunk via
/// [`EntropyStream::with_next_chunk`] and lets the
/// [`ConditionerStage`](dhtrng_core::kernel::ConditionerStage)
/// overwrite it with its own output — no scratch
/// buffer, no byte-by-byte queueing; only the tail that does not fit
/// the caller's buffer is carried over. Like the raw tier, the output
/// is a pure function of the shard seed schedule. Rate is the raw rate
/// divided by the conditioner's compression ratio;
/// [`measured_ratio`](Self::measured_ratio) tracks the realised cost
/// (which exceeds the expected ratio for Von Neumann on a biased
/// source).
pub struct ConditionedStream {
    session: Session,
}

impl std::fmt::Debug for ConditionedStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConditionedStream")
            .field("spec", &self.spec())
            .field("bytes_delivered", &self.bytes_delivered())
            .finish_non_exhaustive()
    }
}

impl ConditionedStream {
    /// Fills `out` with conditioned bytes.
    ///
    /// # Errors
    ///
    /// Propagates the raw stream's terminal [`StreamError`]. A failed
    /// read consumes nothing: conditioned bytes already copied into
    /// `out` are pushed back onto the internal carry buffer, so a
    /// consumer that retries with smaller reads still sees every
    /// healthy byte exactly once before the error surfaces for good.
    pub fn read(&mut self, out: &mut [u8]) -> Result<(), StreamError> {
        self.session.read(out)
    }

    /// The conditioner choice this stage runs.
    pub fn spec(&self) -> ConditionerSpec {
        self.session.source().conditioner()
    }

    /// Raw bits fed to the conditioner so far.
    pub fn consumed_bits(&self) -> u64 {
        self.session.source().stats().consumed_bits
    }

    /// Conditioned bits emitted so far.
    pub fn emitted_bits(&self) -> u64 {
        self.session.source().stats().emitted_bits
    }

    /// Measured raw-bits-per-output-bit (infinite before the first
    /// emission).
    pub fn measured_ratio(&self) -> f64 {
        let stats = self.session.source().stats();
        if stats.emitted_bits == 0 {
            f64::INFINITY
        } else {
            stats.consumed_bits as f64 / stats.emitted_bits as f64
        }
    }

    /// Conditioned bytes handed to consumers so far.
    pub fn bytes_delivered(&self) -> u64 {
        self.session.bytes_delivered()
    }

    /// Modeled sustained output rate: the engine's modeled hardware
    /// throughput divided by the conditioner's expected ratio.
    pub fn throughput_mbps(&self) -> f64 {
        self.session.source().conditioned_mbps()
    }

    /// The shared source behind this stream (the modern handle: mint
    /// further sessions from it instead of building a second
    /// deployment).
    pub fn source(&self) -> &EntropySource {
        self.session.source()
    }

    /// A live handle over the deployment's always-on stage counters.
    pub fn metrics(&self) -> MetricsHandle {
        self.session.source().metrics()
    }
}

/// The drbg tier: a [`HashDrbg`] keyed (and re-keyed per policy) from
/// the conditioned stream — the full SP 800-90C chain as one handle.
///
/// Instantiation is lazy: the first [`read`](Self::read) harvests the
/// instantiate material through the conditioner, so a dead source
/// surfaces as the read's [`StreamError`] rather than a build panic.
/// Seed material is harvested into one persistent buffer, so the
/// steady-state refill path — and even the reseed path — performs no
/// heap allocation.
#[derive(Debug)]
pub struct DrbgPool {
    session: Session,
}

impl DrbgPool {
    /// Fills `out` with DRBG output bytes.
    ///
    /// # Errors
    ///
    /// Propagates the raw stream's terminal [`StreamError`] when a seed
    /// harvest (instantiate or reseed) hits a failed source. Between
    /// reseeds, reads touch only DRBG state and cannot fail.
    ///
    /// On error the current output block is rewound by the bytes
    /// already copied into `out` (up to the one block the pool holds),
    /// so a consumer reading at most [`BLOCK_BYTES`] per call sees
    /// every generated byte exactly once across retries — the same
    /// contract as [`ConditionedStream::read`]. Bytes from blocks
    /// completed earlier within one oversized failed read cannot be
    /// rewound and are lost with the failed call.
    pub fn read(&mut self, out: &mut [u8]) -> Result<(), StreamError> {
        self.session.read(out)
    }

    /// Reseeds performed so far (the lazy instantiation not counted).
    pub fn reseeds(&self) -> u64 {
        self.session.reseeds()
    }

    /// DRBG bytes handed to consumers so far.
    pub fn bytes_delivered(&self) -> u64 {
        self.session.bytes_delivered()
    }

    /// The DRBG policy in force.
    pub fn config(&self) -> &DrbgConfig {
        self.session.drbg_config()
    }

    /// Modeled sustained output rate: the conditioned tier's modeled
    /// rate times the policy's expansion factor (output bits per
    /// harvested seed bit). The realised software rate is CPU-bound and
    /// reported by `bench_report` instead.
    pub fn throughput_mbps(&self) -> f64 {
        self.session.source().conditioned_mbps() * self.config().expansion_factor()
    }

    /// A snapshot of the conditioned seed flow feeding this pool
    /// (bytes harvested so far, modeled conditioned rate).
    pub fn conditioned(&self) -> SeedFlow {
        SeedFlow {
            bytes_delivered: self.session.harvested_bytes(),
            throughput_mbps: self.session.source().conditioned_mbps(),
        }
    }

    /// The shared source behind this pool (the modern handle: mint
    /// further sessions from it instead of building a second
    /// deployment).
    pub fn source(&self) -> &EntropySource {
        self.session.source()
    }

    /// Always [`Tier::Drbg`] (mirrors [`TierStream::tier`] for generic
    /// reporting code).
    pub fn tier(&self) -> Tier {
        Tier::Drbg
    }

    /// A live handle over the deployment's always-on stage counters.
    pub fn metrics(&self) -> MetricsHandle {
        self.session.source().metrics()
    }
}

/// A snapshot of the conditioned seed flow feeding a [`DrbgPool`] —
/// what [`DrbgPool::conditioned`] reports now that the conditioning
/// stage lives in the shared [`EntropySource`] rather than inside the
/// pool.
#[derive(Debug, Clone, Copy)]
pub struct SeedFlow {
    bytes_delivered: u64,
    throughput_mbps: f64,
}

impl SeedFlow {
    /// Conditioned bytes harvested as seed material by this pool.
    pub fn bytes_delivered(&self) -> u64 {
        self.bytes_delivered
    }

    /// Modeled sustained conditioned-tier rate.
    pub fn throughput_mbps(&self) -> f64 {
        self.throughput_mbps
    }
}

/// A pipeline output stream of any tier — what
/// [`PipelineBuilder::build`] returns and the facade's `PipelineRng`
/// wraps.
// One long-lived handle per deployment, never stored in bulk: the
// size spread between the raw engine and the drbg pool (which carries
// its output block and persistent seed buffer inline) costs nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum TierStream {
    /// The raw tier.
    Raw(RawStream),
    /// The conditioned tier.
    Conditioned(ConditionedStream),
    /// The drbg tier.
    Drbg(DrbgPool),
}

impl TierStream {
    /// Starts configuring a pipeline.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::new()
    }

    /// Which tier this stream serves.
    pub fn tier(&self) -> Tier {
        match self {
            Self::Raw(_) => Tier::Raw,
            Self::Conditioned(_) => Tier::Conditioned,
            Self::Drbg(_) => Tier::Drbg,
        }
    }

    /// Fills `out` from this tier.
    ///
    /// # Errors
    ///
    /// Propagates the engine's terminal [`StreamError`] (every tier
    /// surfaces the same typed failure).
    pub fn read(&mut self, out: &mut [u8]) -> Result<(), StreamError> {
        match self {
            Self::Raw(stream) => stream.read(out),
            Self::Conditioned(stream) => stream.read(out),
            Self::Drbg(pool) => pool.read(out),
        }
    }

    /// Modeled sustained throughput of this tier (see the per-tier
    /// docs for what each models).
    pub fn throughput_mbps(&self) -> f64 {
        match self {
            Self::Raw(stream) => stream.throughput_mbps(),
            Self::Conditioned(stream) => stream.throughput_mbps(),
            Self::Drbg(pool) => pool.throughput_mbps(),
        }
    }

    /// The shared source behind this tier, for the conditioned and
    /// drbg shims (`None` for the raw tier, which still owns its
    /// engine directly to preserve the zero-allocation read path).
    pub fn source(&self) -> Option<&EntropySource> {
        match self {
            Self::Raw(_) => None,
            Self::Conditioned(stream) => Some(stream.source()),
            Self::Drbg(pool) => Some(pool.source()),
        }
    }

    /// A live handle over the deployment's always-on stage counters
    /// (every tier has one; the raw tier's comes straight off its
    /// engine).
    pub fn metrics(&self) -> MetricsHandle {
        match self {
            Self::Raw(stream) => stream.metrics(),
            Self::Conditioned(stream) => stream.metrics(),
            Self::Drbg(pool) => pool.metrics(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtrng_core::conditioning::Conditioned;
    use dhtrng_core::{DhTrng, Trng};

    fn builder(seed: u64) -> PipelineBuilder {
        PipelineBuilder::new()
            .shards(2)
            .seed(seed)
            .chunk_bytes(1024)
    }

    #[test]
    fn conditioned_tier_matches_core_adaptor_over_the_merged_stream() {
        // The stream-level conditioning stage must produce exactly what
        // the core `Conditioned` adaptor produces over the same merged
        // raw bytes: one conditioning implementation, two mounts.
        let mut tier = builder(5)
            .conditioner(ConditionerSpec::Crc { ratio: 2 })
            .build_conditioned();
        let mut got = vec![0u8; 2048];
        tier.read(&mut got).expect("healthy");

        // Reference: raw merged stream through the same machine.
        let mut raw = builder(5).build_raw();
        let mut raw_bytes = vec![0u8; 8192];
        raw.read(&mut raw_bytes).expect("healthy");
        let mut cond = CrcWhitener::new(2);
        let mut reference = Vec::new();
        let mut acc = 0u8;
        let mut acc_len = 0;
        'outer: for byte in raw_bytes {
            for i in (0..8).rev() {
                if let Some(bit) = cond.push((byte >> i) & 1 == 1) {
                    acc = (acc << 1) | u8::from(bit);
                    acc_len += 1;
                    if acc_len == 8 {
                        reference.push(acc);
                        acc = 0;
                        acc_len = 0;
                        if reference.len() == got.len() {
                            break 'outer;
                        }
                    }
                }
            }
        }
        assert_eq!(got, reference);
        assert_eq!(tier.measured_ratio(), 2.0);
    }

    #[test]
    fn drbg_tier_is_deterministic_and_reseeds_on_interval() {
        let config = DrbgConfig {
            reseed_interval_bits: 2048,
            seed_bytes: 16,
            prediction_resistance: false,
        };
        let make = || builder(7).drbg_config(config).build_drbg();
        let mut a = make();
        let mut buf_a = vec![0u8; 2048];
        a.read(&mut buf_a).expect("healthy");
        // 16384 bits over 2048-bit intervals: 8 intervals, 7 reseeds.
        assert_eq!(a.reseeds(), 7);
        let mut b = make();
        let mut buf_b = vec![0u8; 2048];
        b.read(&mut buf_b).expect("healthy");
        assert_eq!(buf_a, buf_b, "same schedule, same DRBG stream");
        let mut c = builder(8).drbg_config(config).build_drbg();
        let mut buf_c = vec![0u8; 2048];
        c.read(&mut buf_c).expect("healthy");
        assert_ne!(buf_a, buf_c, "different master seed, different stream");
    }

    #[test]
    fn tier_streams_are_balanced() {
        for tier in [Tier::Raw, Tier::Conditioned, Tier::Drbg] {
            let mut stream = builder(3).build(tier);
            assert_eq!(stream.tier(), tier);
            let mut buf = vec![0u8; 1 << 16];
            stream.read(&mut buf).expect("healthy");
            let ones: u64 = buf.iter().map(|b| u64::from(b.count_ones())).sum();
            let frac = ones as f64 / (buf.len() as f64 * 8.0);
            assert!((frac - 0.5).abs() < 0.01, "{tier:?}: ones fraction {frac}");
        }
    }

    #[test]
    fn modeled_throughput_ladder_matches_the_policy_math() {
        let raw = builder(1).build_raw();
        let conditioned = builder(1)
            .conditioner(ConditionerSpec::XorFold(4))
            .build_conditioned();
        assert!(
            (conditioned.throughput_mbps() - raw.throughput_mbps() / 4.0).abs() < 1e-9,
            "conditioned rate = raw / ratio"
        );
        let pool = builder(1).build_drbg();
        let expected = pool.conditioned().throughput_mbps() * pool.config().expansion_factor();
        assert!((pool.throughput_mbps() - expected).abs() < 1e-6);
    }

    #[test]
    fn shard_failure_surfaces_through_every_tier() {
        for tier in [Tier::Raw, Tier::Conditioned, Tier::Drbg] {
            let mut stream = PipelineBuilder::new()
                .shards(2)
                .seed(1)
                .chunk_bytes(256)
                .health(HealthConfig {
                    rct_cutoff: 2,
                    apt_window: 64,
                    apt_cutoff: 64,
                })
                .max_consecutive_restarts(2)
                .build(tier);
            let mut buf = [0u8; 64];
            let err = stream.read(&mut buf).unwrap_err();
            assert!(
                matches!(err, StreamError::ShardFailed { shard: 0, .. }),
                "{tier:?}: {err}"
            );
        }
    }

    #[test]
    fn injected_failure_surfaces_through_every_tier() {
        for tier in [Tier::Raw, Tier::Conditioned, Tier::Drbg] {
            let mut stream = PipelineBuilder::new()
                .shards(2)
                .seed(1)
                .chunk_bytes(256)
                .inject_shard_failure(0, 2)
                .build(tier);
            let mut sink = [0u8; 64];
            let err = loop {
                match stream.read(&mut sink) {
                    Ok(()) => continue,
                    Err(e) => break e,
                }
            };
            assert_eq!(
                err,
                StreamError::ShardFailed {
                    shard: 0,
                    consecutive_restarts: 0
                },
                "{tier:?}"
            );
        }
    }

    #[test]
    fn core_and_stream_drbg_share_one_state_machine() {
        // A DrbgPool over a 1-shard raw stream and a core Drbg over the
        // equivalent Conditioned<DhTrng> walk the same seed material,
        // hence the same output stream.
        let config = DrbgConfig {
            reseed_interval_bits: 1024,
            seed_bytes: 8,
            prediction_resistance: false,
        };
        let mut pool = PipelineBuilder::new()
            .shards(1)
            .shard_seeds(vec![42])
            .chunk_bytes(1024)
            .conditioner(ConditionerSpec::Crc { ratio: 2 })
            .drbg_config(config)
            .build_drbg();
        let mut pool_bytes = vec![0u8; 512];
        pool.read(&mut pool_bytes).expect("healthy");

        let source = Conditioned::new(DhTrng::builder().seed(42).build(), CrcWhitener::new(2));
        let mut adaptor = dhtrng_core::drbg::Drbg::new(source, config);
        let mut adaptor_bytes = vec![0u8; 512];
        Trng::fill_bytes(&mut adaptor, &mut adaptor_bytes);
        assert_eq!(pool_bytes, adaptor_bytes);
    }

    #[test]
    fn conditioned_read_rolls_back_on_error() {
        // A failed read must consume nothing: buffered healthy bytes
        // stay queued and are still drainable exactly once by smaller
        // retries.
        let mut tier = PipelineBuilder::new()
            .shards(1)
            .seed(1)
            .chunk_bytes(256)
            .health(HealthConfig {
                rct_cutoff: 2,
                apt_window: 64,
                apt_cutoff: 64,
            })
            .max_consecutive_restarts(1)
            .build_conditioned();
        // Simulate healthy bytes buffered before the source died.
        tier.session.carry_mut().extend([0xAA, 0xBB, 0xCC]);
        let mut big = [0u8; 16];
        assert!(tier.read(&mut big).is_err());
        assert_eq!(
            tier.session.carry_mut().len(),
            3,
            "rolled back, nothing consumed"
        );
        assert_eq!(tier.bytes_delivered(), 0);
        // Smaller reads drain the healthy bytes exactly once...
        let mut small = [0u8; 3];
        tier.read(&mut small).expect("served from the buffer");
        assert_eq!(small, [0xAA, 0xBB, 0xCC]);
        assert_eq!(tier.bytes_delivered(), 3);
        // ...after which the terminal error surfaces for good.
        assert!(tier.read(&mut small).is_err());
        assert_eq!(tier.bytes_delivered(), 3);
    }

    #[test]
    fn drbg_pool_read_rewinds_current_block_on_error() {
        // Mirror of the conditioned rollback contract at DRBG block
        // granularity: a failed oversized read rewinds the current
        // block, so block-sized retries see its bytes exactly once.
        // seed_bytes = one full chunk's conditioned output: the
        // instantiate harvest drains chunk 0 exactly, and the injected
        // retirement makes the first reseed harvest hit a dead source.
        let mut pool = PipelineBuilder::new()
            .shards(1)
            .seed(1)
            .chunk_bytes(256)
            .inject_shard_failure(0, 1)
            .drbg_config(DrbgConfig {
                reseed_interval_bits: 512, // one block per reseed
                seed_bytes: 128,
                prediction_resistance: false,
            })
            .build_drbg();
        // Oversized read: instantiation and the first block succeed and
        // serve 64 bytes, then the reseed harvest hits the dead source.
        let mut out = [0u8; 100];
        assert!(pool.read(&mut out).is_err());
        assert_eq!(pool.bytes_delivered(), 0, "block rewound, nothing consumed");
        // A block-sized retry drains those bytes exactly once...
        let mut small = [0u8; 64];
        pool.read(&mut small)
            .expect("served from the rewound block");
        assert_eq!(small[..], out[..64]);
        assert_eq!(pool.bytes_delivered(), 64);
        // ...then the terminal error surfaces for good.
        assert!(pool.read(&mut [0u8; 1]).is_err());
        assert_eq!(pool.bytes_delivered(), 64);
    }
}
