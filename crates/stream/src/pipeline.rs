//! The typed output pipeline: `RawStream → ConditionedStream →
//! DrbgPool`, selected per consumer as a quality **tier**.
//!
//! The sharded engine ([`EntropyStream`]) delivers the merged raw
//! source bits, already gated by the per-shard SP 800-90B continuous
//! health tests. Production consumers pick how much post-processing
//! sits between that raw stream and their bytes:
//!
//! * **raw** ([`Tier::Raw`]) — the merged source itself, full rate;
//!   what the paper's evaluation batteries consume;
//! * **conditioned** ([`Tier::Conditioned`]) — a [`Conditioner`] over
//!   the merged stream (default: 2:1 [`CrcWhitener`]), trading rate
//!   for defence-in-depth entropy concentration;
//! * **drbg** ([`Tier::Drbg`]) — a [`HashDrbg`] keyed from the
//!   conditioned stream and re-keyed on the configured interval: the
//!   SP 800-90C source → health → conditioner → DRBG chain, and the
//!   tier a key-serving service exposes.
//!
//! All three tiers are thin shells over the engine's stage-graph
//! executor: the conditioned tier mounts its machine as a
//! [`ConditionerStage`] that transforms each pooled chunk **in place**
//! (via [`EntropyStream::with_next_chunk`]) instead of re-buffering the
//! raw bytes, and the drbg tier pumps 512-bit blocks out of borrowed
//! state, harvesting seed material through the same path into one
//! persistent buffer. See `DESIGN.md` §7 for the stage graph and
//! buffer-pool lifecycle.
//!
//! One [`PipelineBuilder`] configures all three; [`TierStream`] is the
//! tier-erased handle the `dh_trng` facade wraps in its
//! `rand`-compatible `PipelineRng`. Every stage is a pure function of
//! the shard seed schedule, so all three tiers inherit the engine's
//! reproducibility guarantee; every stage also propagates the typed
//! [`StreamError`] (a retired shard surfaces identically at any tier).
//!
//! # Example
//!
//! ```
//! use dhtrng_stream::pipeline::{PipelineBuilder, Tier};
//!
//! let mut pool = PipelineBuilder::new()
//!     .shards(2)
//!     .seed(9)
//!     .chunk_bytes(2048)
//!     .build_drbg();
//! let mut key = [0u8; 64];
//! pool.read(&mut key).expect("healthy pipeline");
//! assert_eq!(pool.tier(), Tier::Drbg);
//! ```

use std::collections::VecDeque;

use dhtrng_core::conditioning::{Conditioner, CrcWhitener, VonNeumannConditioner, XorFold};
use dhtrng_core::drbg::{DrbgConfig, HashDrbg, BLOCK_BYTES};
use dhtrng_core::kernel::{BitBlock, ConditionerStage, Stage};
use dhtrng_core::DhTrngConfig;

use crate::engine::{EntropyStream, EntropyStreamBuilder, StreamError};
use crate::shard::HealthConfig;

/// The merged sharded source — tier 0 of the pipeline. (A vocabulary
/// alias: the engine type predates the pipeline.)
pub type RawStream = EntropyStream;

/// Quality tier of a pipeline output stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The merged health-gated source stream, full rate.
    Raw,
    /// Conditioner output (rate divided by the compression ratio).
    Conditioned,
    /// DRBG output keyed from the conditioned stream.
    Drbg,
}

/// Which conditioner the pipeline's conditioning stage runs.
///
/// A closed enum (rather than a user-supplied trait object) so the
/// builder stays `Clone` and the choice is recordable in reports; the
/// core [`Conditioned`](dhtrng_core::conditioning::Conditioned) adaptor
/// accepts arbitrary [`Conditioner`] implementations for custom stacks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConditionerSpec {
    /// Von Neumann debiasing (expected 4:1 on an unbiased source).
    VonNeumann,
    /// XOR of `factor` raw bits per output bit.
    XorFold(
        /// The fold factor (raw bits per output bit, `>= 1`).
        u32,
    ),
    /// CRC-16 whitener emitting one bit per `ratio` raw bits.
    Crc {
        /// Raw bits per output bit (`>= 1`).
        ratio: u32,
    },
}

impl Default for ConditionerSpec {
    /// The pipeline default: 2:1 CRC conditioning.
    fn default() -> Self {
        Self::Crc { ratio: 2 }
    }
}

impl ConditionerSpec {
    /// Expected raw bits per conditioned bit for this choice, as
    /// declared by the machine itself (single source of truth).
    ///
    /// # Panics
    ///
    /// Panics on a zero fold factor or compression ratio.
    pub fn expected_ratio(&self) -> f64 {
        self.build().expected_ratio()
    }

    /// Instantiates the chosen machine.
    ///
    /// # Panics
    ///
    /// Panics on a zero fold factor or compression ratio.
    fn build(&self) -> Box<dyn Conditioner + Send> {
        match *self {
            Self::VonNeumann => Box::new(VonNeumannConditioner::new()),
            Self::XorFold(factor) => Box::new(XorFold::new(factor)),
            Self::Crc { ratio } => Box::new(CrcWhitener::new(ratio)),
        }
    }
}

/// Configures all three tiers behind one API; finish with
/// [`build_raw`](Self::build_raw) /
/// [`build_conditioned`](Self::build_conditioned) /
/// [`build_drbg`](Self::build_drbg) for a typed stage, or
/// [`build`](Self::build) for the tier-erased [`TierStream`].
///
/// Engine knobs (shards, seeds, chunking, health cutoffs) delegate to
/// [`EntropyStreamBuilder`]; the conditioning and DRBG stages add
/// [`conditioner`](Self::conditioner) and
/// [`drbg_config`](Self::drbg_config).
#[derive(Debug, Clone, Default)]
pub struct PipelineBuilder {
    stream: EntropyStreamBuilder,
    conditioner: ConditionerSpec,
    drbg: DrbgConfig,
}

impl PipelineBuilder {
    /// Starts from the engine and stage defaults (4 shards, 64 KiB
    /// chunks, 2:1 CRC conditioning, 1 Mbit DRBG reseed interval).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of parallel DH-TRNG instances (1..=64).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.stream = self.stream.shards(shards);
        self
    }

    /// Master seed for the shard seed schedule.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.stream = self.stream.seed(seed);
        self
    }

    /// Explicit per-shard seed schedule (length must equal the shard
    /// count at build time).
    #[must_use]
    pub fn shard_seeds(mut self, seeds: Vec<u64>) -> Self {
        self.stream = self.stream.shard_seeds(seeds);
        self
    }

    /// Base instance configuration for every shard.
    #[must_use]
    pub fn config(mut self, config: DhTrngConfig) -> Self {
        self.stream = self.stream.config(config);
        self
    }

    /// Bytes per produced chunk (the engine's merge granularity).
    #[must_use]
    pub fn chunk_bytes(mut self, bytes: usize) -> Self {
        self.stream = self.stream.chunk_bytes(bytes);
        self
    }

    /// Chunks buffered per shard before its worker blocks.
    #[must_use]
    pub fn queue_chunks(mut self, chunks: usize) -> Self {
        self.stream = self.stream.queue_chunks(chunks);
        self
    }

    /// Health-test cutoffs applied per shard.
    #[must_use]
    pub fn health(mut self, health: HealthConfig) -> Self {
        self.stream = self.stream.health(health);
        self
    }

    /// Consecutive restarts a shard may burn on one chunk before it
    /// retires.
    #[must_use]
    pub fn max_consecutive_restarts(mut self, restarts: u32) -> Self {
        self.stream = self.stream.max_consecutive_restarts(restarts);
        self
    }

    /// Deterministic fault injection: `shard` retires after `chunks`
    /// healthy chunks (see
    /// [`EntropyStreamBuilder::inject_shard_failure`]).
    #[must_use]
    pub fn inject_shard_failure(mut self, shard: usize, chunks: u64) -> Self {
        self.stream = self.stream.inject_shard_failure(shard, chunks);
        self
    }

    /// Conditioner for the conditioned and drbg tiers.
    #[must_use]
    pub fn conditioner(mut self, spec: ConditionerSpec) -> Self {
        self.conditioner = spec;
        self
    }

    /// DRBG policy (reseed interval, seed width, prediction
    /// resistance) for the drbg tier.
    #[must_use]
    pub fn drbg_config(mut self, config: DrbgConfig) -> Self {
        self.drbg = config;
        self
    }

    /// Builds the raw tier: the sharded engine itself.
    ///
    /// # Panics
    ///
    /// Panics on invalid engine configuration (see
    /// [`EntropyStreamBuilder::build`]).
    pub fn build_raw(self) -> RawStream {
        self.stream.build()
    }

    /// Builds the conditioned tier.
    ///
    /// # Panics
    ///
    /// As [`build_raw`](Self::build_raw), plus on a zero conditioner
    /// ratio/factor.
    pub fn build_conditioned(self) -> ConditionedStream {
        ConditionedStream {
            stage: ConditionerStage::new(self.conditioner.build()),
            spec: self.conditioner,
            raw: self.stream.build(),
            ready: VecDeque::new(),
            bytes_delivered: 0,
        }
    }

    /// Builds the drbg tier (DRBG instantiation is lazy: the first
    /// [`read`](DrbgPool::read) harvests the instantiate material, so
    /// building never blocks on the source).
    ///
    /// # Panics
    ///
    /// As [`build_conditioned`](Self::build_conditioned), plus on
    /// `drbg_config.seed_bytes == 0`.
    pub fn build_drbg(self) -> DrbgPool {
        assert!(self.drbg.seed_bytes > 0, "seed_bytes must be positive");
        let config = self.drbg;
        DrbgPool {
            conditioned: self.build_conditioned(),
            config,
            drbg: None,
            block: [0u8; BLOCK_BYTES],
            cursor: BLOCK_BYTES,
            material: vec![0u8; config.seed_bytes],
            bytes_delivered: 0,
        }
    }

    /// Builds the requested tier behind the tier-erased handle.
    ///
    /// # Panics
    ///
    /// As the typed builders for the chosen tier.
    pub fn build(self, tier: Tier) -> TierStream {
        match tier {
            Tier::Raw => TierStream::Raw(self.build_raw()),
            Tier::Conditioned => TierStream::Conditioned(self.build_conditioned()),
            Tier::Drbg => TierStream::Drbg(self.build_drbg()),
        }
    }
}

/// The conditioned tier: the merged raw stream run through the
/// configured conditioner, **in place** in the engine's pooled chunk
/// buffers.
///
/// Each refill borrows the next raw chunk via
/// [`EntropyStream::with_next_chunk`] and lets the
/// [`ConditionerStage`] overwrite it with its own output — no scratch
/// buffer, no byte-by-byte queueing; only the tail that does not fit
/// the caller's buffer is carried over. Like the raw tier, the output
/// is a pure function of the shard seed schedule. Rate is the raw rate
/// divided by the conditioner's compression ratio;
/// [`measured_ratio`](Self::measured_ratio) tracks the realised cost
/// (which exceeds the expected ratio for Von Neumann on a biased
/// source).
pub struct ConditionedStream {
    raw: RawStream,
    stage: ConditionerStage<Box<dyn Conditioner + Send>>,
    spec: ConditionerSpec,
    /// Conditioned bytes carried over: the part of a processed chunk
    /// that did not fit the caller's buffer (at most one chunk's
    /// conditioned output), plus — after a failed read — everything the
    /// rollback contract restored, which can reach the failed read's
    /// full length.
    ready: VecDeque<u8>,
    bytes_delivered: u64,
}

impl std::fmt::Debug for ConditionedStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConditionedStream")
            .field("spec", &self.spec)
            .field("consumed_bits", &self.stage.consumed())
            .field("emitted_bits", &self.stage.emitted())
            .field("bytes_delivered", &self.bytes_delivered)
            .finish_non_exhaustive()
    }
}

impl ConditionedStream {
    /// Fills `out` with conditioned bytes.
    ///
    /// # Errors
    ///
    /// Propagates the raw stream's terminal [`StreamError`]. A failed
    /// read consumes nothing: conditioned bytes already copied into
    /// `out` are pushed back onto the internal carry buffer, so a
    /// consumer that retries with smaller reads still sees every
    /// healthy byte exactly once before the error surfaces for good.
    pub fn read(&mut self, out: &mut [u8]) -> Result<(), StreamError> {
        let mut written = 0;
        while written < out.len() {
            // Serve carried-over bytes first.
            while written < out.len() {
                let Some(byte) = self.ready.pop_front() else {
                    break;
                };
                out[written] = byte;
                written += 1;
            }
            if written == out.len() {
                break;
            }
            // Condition the next raw chunk in place in its pool buffer,
            // copying straight into `out`; only the tail is carried.
            let Self {
                raw, stage, ready, ..
            } = self;
            let space = out.len() - written;
            let dest = &mut out[written..];
            match raw.with_next_chunk(|chunk| {
                let mut block = BitBlock::full(chunk);
                stage.process(&mut block);
                let emitted = block.whole_bytes();
                let take = emitted.min(space);
                dest[..take].copy_from_slice(&chunk[..take]);
                ready.extend(&chunk[take..emitted]);
                take
            }) {
                Ok(take) => written += take,
                Err(error) => {
                    // Roll back: healthy bytes already written go back
                    // to the carry buffer front, in order, unconsumed.
                    for &byte in out[..written].iter().rev() {
                        self.ready.push_front(byte);
                    }
                    return Err(error);
                }
            }
        }
        self.bytes_delivered += out.len() as u64;
        Ok(())
    }

    /// The conditioner choice this stage runs.
    pub fn spec(&self) -> ConditionerSpec {
        self.spec
    }

    /// Raw bits fed to the conditioner so far.
    pub fn consumed_bits(&self) -> u64 {
        self.stage.consumed()
    }

    /// Conditioned bits emitted so far.
    pub fn emitted_bits(&self) -> u64 {
        self.stage.emitted()
    }

    /// Measured raw-bits-per-output-bit (infinite before the first
    /// emission).
    pub fn measured_ratio(&self) -> f64 {
        self.stage.measured_ratio()
    }

    /// Conditioned bytes handed to consumers so far.
    pub fn bytes_delivered(&self) -> u64 {
        self.bytes_delivered
    }

    /// Modeled sustained output rate: the engine's modeled hardware
    /// throughput divided by the conditioner's expected ratio.
    pub fn throughput_mbps(&self) -> f64 {
        self.raw.throughput_mbps() / self.spec.expected_ratio()
    }

    /// The raw engine behind this stage (shards, restarts, placements).
    pub fn raw(&self) -> &RawStream {
        &self.raw
    }
}

/// The drbg tier: a [`HashDrbg`] keyed (and re-keyed per policy) from
/// the conditioned stream — the full SP 800-90C chain as one handle.
///
/// Instantiation is lazy: the first [`read`](Self::read) harvests the
/// instantiate material through the conditioner, so a dead source
/// surfaces as the read's [`StreamError`] rather than a build panic.
/// Seed material is harvested into one persistent buffer, so the
/// steady-state refill path — and even the reseed path — performs no
/// heap allocation.
#[derive(Debug)]
pub struct DrbgPool {
    conditioned: ConditionedStream,
    config: DrbgConfig,
    drbg: Option<HashDrbg>,
    block: [u8; BLOCK_BYTES],
    /// Byte cursor into `block`; `BLOCK_BYTES` means exhausted.
    cursor: usize,
    /// Persistent seed-material buffer, reused across reseeds.
    material: Vec<u8>,
    bytes_delivered: u64,
}

impl DrbgPool {
    /// Fills `out` with DRBG output bytes.
    ///
    /// # Errors
    ///
    /// Propagates the raw stream's terminal [`StreamError`] when a seed
    /// harvest (instantiate or reseed) hits a failed source. Between
    /// reseeds, reads touch only DRBG state and cannot fail.
    ///
    /// On error the current output block is rewound by the bytes
    /// already copied into `out` (up to the one block the pool holds),
    /// so a consumer reading at most [`BLOCK_BYTES`] per call sees
    /// every generated byte exactly once across retries — the same
    /// contract as [`ConditionedStream::read`]. Bytes from blocks
    /// completed earlier within one oversized failed read cannot be
    /// rewound and are lost with the failed call.
    pub fn read(&mut self, out: &mut [u8]) -> Result<(), StreamError> {
        let mut written = 0;
        while written < out.len() {
            if self.cursor == BLOCK_BYTES {
                if let Err(e) = self.refill() {
                    // Roll back what the current block can restore: its
                    // tail is exactly the last bytes copied out (refill
                    // fails before `generate`, so the block is intact).
                    let rewind = written.min(BLOCK_BYTES);
                    self.cursor -= rewind;
                    self.bytes_delivered -= rewind as u64;
                    return Err(e);
                }
            }
            let take = (out.len() - written).min(BLOCK_BYTES - self.cursor);
            out[written..written + take]
                .copy_from_slice(&self.block[self.cursor..self.cursor + take]);
            self.cursor += take;
            written += take;
            self.bytes_delivered += take as u64;
        }
        Ok(())
    }

    /// Produces the next output block, harvesting seed material first
    /// when the policy requires it. The harvest lands in the pool's
    /// persistent material buffer — instantiate, reseed, and refill all
    /// run without heap allocation (at the default interval a reseed
    /// happens on 1 of every 2048 refills anyway).
    fn refill(&mut self) -> Result<(), StreamError> {
        if self.drbg.is_none() {
            self.conditioned.read(&mut self.material)?;
            self.drbg = Some(HashDrbg::instantiate(&self.material, self.config));
        }
        let drbg = self.drbg.as_mut().expect("instantiated above");
        if drbg.needs_reseed() {
            self.conditioned.read(&mut self.material)?;
            drbg.reseed(&self.material);
        }
        drbg.generate(&mut self.block)
            .expect("reseed just satisfied the interval");
        self.cursor = 0;
        Ok(())
    }

    /// Reseeds performed so far (the lazy instantiation not counted).
    pub fn reseeds(&self) -> u64 {
        self.drbg.as_ref().map_or(0, HashDrbg::reseeds)
    }

    /// DRBG bytes handed to consumers so far.
    pub fn bytes_delivered(&self) -> u64 {
        self.bytes_delivered
    }

    /// The DRBG policy in force.
    pub fn config(&self) -> &DrbgConfig {
        &self.config
    }

    /// Modeled sustained output rate: the conditioned tier's modeled
    /// rate times the policy's expansion factor (output bits per
    /// harvested seed bit). The realised software rate is CPU-bound and
    /// reported by `bench_report` instead.
    pub fn throughput_mbps(&self) -> f64 {
        self.conditioned.throughput_mbps() * self.config.expansion_factor()
    }

    /// The conditioning stage feeding this pool.
    pub fn conditioned(&self) -> &ConditionedStream {
        &self.conditioned
    }

    /// Always [`Tier::Drbg`] (mirrors [`TierStream::tier`] for generic
    /// reporting code).
    pub fn tier(&self) -> Tier {
        Tier::Drbg
    }
}

/// A pipeline output stream of any tier — what
/// [`PipelineBuilder::build`] returns and the facade's `PipelineRng`
/// wraps.
// One long-lived handle per deployment, never stored in bulk: the
// size spread between the raw engine and the drbg pool (which carries
// its output block and persistent seed buffer inline) costs nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum TierStream {
    /// The raw tier.
    Raw(RawStream),
    /// The conditioned tier.
    Conditioned(ConditionedStream),
    /// The drbg tier.
    Drbg(DrbgPool),
}

impl TierStream {
    /// Starts configuring a pipeline.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::new()
    }

    /// Which tier this stream serves.
    pub fn tier(&self) -> Tier {
        match self {
            Self::Raw(_) => Tier::Raw,
            Self::Conditioned(_) => Tier::Conditioned,
            Self::Drbg(_) => Tier::Drbg,
        }
    }

    /// Fills `out` from this tier.
    ///
    /// # Errors
    ///
    /// Propagates the engine's terminal [`StreamError`] (every tier
    /// surfaces the same typed failure).
    pub fn read(&mut self, out: &mut [u8]) -> Result<(), StreamError> {
        match self {
            Self::Raw(stream) => stream.read(out),
            Self::Conditioned(stream) => stream.read(out),
            Self::Drbg(pool) => pool.read(out),
        }
    }

    /// Modeled sustained throughput of this tier (see the per-tier
    /// docs for what each models).
    pub fn throughput_mbps(&self) -> f64 {
        match self {
            Self::Raw(stream) => stream.throughput_mbps(),
            Self::Conditioned(stream) => stream.throughput_mbps(),
            Self::Drbg(pool) => pool.throughput_mbps(),
        }
    }

    /// The raw engine at the bottom of this tier.
    pub fn raw(&self) -> &RawStream {
        match self {
            Self::Raw(stream) => stream,
            Self::Conditioned(stream) => stream.raw(),
            Self::Drbg(pool) => pool.conditioned().raw(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtrng_core::conditioning::Conditioned;
    use dhtrng_core::{DhTrng, Trng};

    fn builder(seed: u64) -> PipelineBuilder {
        PipelineBuilder::new()
            .shards(2)
            .seed(seed)
            .chunk_bytes(1024)
    }

    #[test]
    fn conditioned_tier_matches_core_adaptor_over_the_merged_stream() {
        // The stream-level conditioning stage must produce exactly what
        // the core `Conditioned` adaptor produces over the same merged
        // raw bytes: one conditioning implementation, two mounts.
        let mut tier = builder(5)
            .conditioner(ConditionerSpec::Crc { ratio: 2 })
            .build_conditioned();
        let mut got = vec![0u8; 2048];
        tier.read(&mut got).expect("healthy");

        // Reference: raw merged stream through the same machine.
        let mut raw = builder(5).build_raw();
        let mut raw_bytes = vec![0u8; 8192];
        raw.read(&mut raw_bytes).expect("healthy");
        let mut cond = CrcWhitener::new(2);
        let mut reference = Vec::new();
        let mut acc = 0u8;
        let mut acc_len = 0;
        'outer: for byte in raw_bytes {
            for i in (0..8).rev() {
                if let Some(bit) = cond.push((byte >> i) & 1 == 1) {
                    acc = (acc << 1) | u8::from(bit);
                    acc_len += 1;
                    if acc_len == 8 {
                        reference.push(acc);
                        acc = 0;
                        acc_len = 0;
                        if reference.len() == got.len() {
                            break 'outer;
                        }
                    }
                }
            }
        }
        assert_eq!(got, reference);
        assert_eq!(tier.measured_ratio(), 2.0);
    }

    #[test]
    fn drbg_tier_is_deterministic_and_reseeds_on_interval() {
        let config = DrbgConfig {
            reseed_interval_bits: 2048,
            seed_bytes: 16,
            prediction_resistance: false,
        };
        let make = || builder(7).drbg_config(config).build_drbg();
        let mut a = make();
        let mut buf_a = vec![0u8; 2048];
        a.read(&mut buf_a).expect("healthy");
        // 16384 bits over 2048-bit intervals: 8 intervals, 7 reseeds.
        assert_eq!(a.reseeds(), 7);
        let mut b = make();
        let mut buf_b = vec![0u8; 2048];
        b.read(&mut buf_b).expect("healthy");
        assert_eq!(buf_a, buf_b, "same schedule, same DRBG stream");
        let mut c = builder(8).drbg_config(config).build_drbg();
        let mut buf_c = vec![0u8; 2048];
        c.read(&mut buf_c).expect("healthy");
        assert_ne!(buf_a, buf_c, "different master seed, different stream");
    }

    #[test]
    fn tier_streams_are_balanced() {
        for tier in [Tier::Raw, Tier::Conditioned, Tier::Drbg] {
            let mut stream = builder(3).build(tier);
            assert_eq!(stream.tier(), tier);
            let mut buf = vec![0u8; 1 << 16];
            stream.read(&mut buf).expect("healthy");
            let ones: u64 = buf.iter().map(|b| u64::from(b.count_ones())).sum();
            let frac = ones as f64 / (buf.len() as f64 * 8.0);
            assert!((frac - 0.5).abs() < 0.01, "{tier:?}: ones fraction {frac}");
        }
    }

    #[test]
    fn modeled_throughput_ladder_matches_the_policy_math() {
        let raw = builder(1).build_raw();
        let conditioned = builder(1)
            .conditioner(ConditionerSpec::XorFold(4))
            .build_conditioned();
        assert!(
            (conditioned.throughput_mbps() - raw.throughput_mbps() / 4.0).abs() < 1e-9,
            "conditioned rate = raw / ratio"
        );
        let pool = builder(1).build_drbg();
        let expected = pool.conditioned().throughput_mbps() * pool.config().expansion_factor();
        assert!((pool.throughput_mbps() - expected).abs() < 1e-6);
    }

    #[test]
    fn shard_failure_surfaces_through_every_tier() {
        for tier in [Tier::Raw, Tier::Conditioned, Tier::Drbg] {
            let mut stream = PipelineBuilder::new()
                .shards(2)
                .seed(1)
                .chunk_bytes(256)
                .health(HealthConfig {
                    rct_cutoff: 2,
                    apt_window: 64,
                    apt_cutoff: 64,
                })
                .max_consecutive_restarts(2)
                .build(tier);
            let mut buf = [0u8; 64];
            let err = stream.read(&mut buf).unwrap_err();
            assert!(
                matches!(err, StreamError::ShardFailed { shard: 0, .. }),
                "{tier:?}: {err}"
            );
        }
    }

    #[test]
    fn injected_failure_surfaces_through_every_tier() {
        for tier in [Tier::Raw, Tier::Conditioned, Tier::Drbg] {
            let mut stream = PipelineBuilder::new()
                .shards(2)
                .seed(1)
                .chunk_bytes(256)
                .inject_shard_failure(0, 2)
                .build(tier);
            let mut sink = [0u8; 64];
            let err = loop {
                match stream.read(&mut sink) {
                    Ok(()) => continue,
                    Err(e) => break e,
                }
            };
            assert_eq!(
                err,
                StreamError::ShardFailed {
                    shard: 0,
                    consecutive_restarts: 0
                },
                "{tier:?}"
            );
        }
    }

    #[test]
    fn core_and_stream_drbg_share_one_state_machine() {
        // A DrbgPool over a 1-shard raw stream and a core Drbg over the
        // equivalent Conditioned<DhTrng> walk the same seed material,
        // hence the same output stream.
        let config = DrbgConfig {
            reseed_interval_bits: 1024,
            seed_bytes: 8,
            prediction_resistance: false,
        };
        let mut pool = PipelineBuilder::new()
            .shards(1)
            .shard_seeds(vec![42])
            .chunk_bytes(1024)
            .conditioner(ConditionerSpec::Crc { ratio: 2 })
            .drbg_config(config)
            .build_drbg();
        let mut pool_bytes = vec![0u8; 512];
        pool.read(&mut pool_bytes).expect("healthy");

        let source = Conditioned::new(DhTrng::builder().seed(42).build(), CrcWhitener::new(2));
        let mut adaptor = dhtrng_core::drbg::Drbg::new(source, config);
        let mut adaptor_bytes = vec![0u8; 512];
        Trng::fill_bytes(&mut adaptor, &mut adaptor_bytes);
        assert_eq!(pool_bytes, adaptor_bytes);
    }

    #[test]
    fn conditioned_read_rolls_back_on_error() {
        // A failed read must consume nothing: buffered healthy bytes
        // stay queued and are still drainable exactly once by smaller
        // retries.
        let mut tier = PipelineBuilder::new()
            .shards(1)
            .seed(1)
            .chunk_bytes(256)
            .health(HealthConfig {
                rct_cutoff: 2,
                apt_window: 64,
                apt_cutoff: 64,
            })
            .max_consecutive_restarts(1)
            .build_conditioned();
        // Simulate healthy bytes buffered before the source died.
        tier.ready.extend([0xAA, 0xBB, 0xCC]);
        let mut big = [0u8; 16];
        assert!(tier.read(&mut big).is_err());
        assert_eq!(tier.ready.len(), 3, "rolled back, nothing consumed");
        assert_eq!(tier.bytes_delivered(), 0);
        // Smaller reads drain the healthy bytes exactly once...
        let mut small = [0u8; 3];
        tier.read(&mut small).expect("served from the buffer");
        assert_eq!(small, [0xAA, 0xBB, 0xCC]);
        assert_eq!(tier.bytes_delivered(), 3);
        // ...after which the terminal error surfaces for good.
        assert!(tier.read(&mut small).is_err());
        assert_eq!(tier.bytes_delivered(), 3);
    }

    #[test]
    fn drbg_pool_read_rewinds_current_block_on_error() {
        // Mirror of the conditioned rollback contract at DRBG block
        // granularity: a failed oversized read rewinds the current
        // block, so block-sized retries see its bytes exactly once.
        let config = DrbgConfig {
            reseed_interval_bits: 512, // one block per reseed
            seed_bytes: 8,
            prediction_resistance: false,
        };
        let doomed = PipelineBuilder::new()
            .shards(1)
            .seed(1)
            .chunk_bytes(256)
            .health(HealthConfig {
                rct_cutoff: 2,
                apt_window: 64,
                apt_cutoff: 64,
            })
            .max_consecutive_restarts(1)
            .build_conditioned();
        let mut drbg = HashDrbg::instantiate(&[1, 2, 3, 4, 5, 6, 7, 8], config);
        let mut block = [0u8; BLOCK_BYTES];
        drbg.generate(&mut block).expect("fresh interval");
        let mut pool = DrbgPool {
            conditioned: doomed,
            config,
            drbg: Some(drbg),
            block,
            cursor: 0,
            material: vec![0u8; config.seed_bytes],
            bytes_delivered: 0,
        };
        // Oversized read: the block serves 64 bytes, then the reseed
        // harvest hits the dead source.
        let mut out = [0u8; 100];
        assert!(pool.read(&mut out).is_err());
        assert_eq!(pool.bytes_delivered(), 0, "block rewound, nothing consumed");
        // A block-sized retry drains those bytes exactly once...
        let mut small = [0u8; 64];
        pool.read(&mut small)
            .expect("served from the rewound block");
        assert_eq!(small[..], out[..64]);
        assert_eq!(pool.bytes_delivered(), 64);
        // ...then the terminal error surfaces for good.
        assert!(pool.read(&mut [0u8; 1]).is_err());
        assert_eq!(pool.bytes_delivered(), 64);
    }
}
