//! The sharded streaming engine: builder, merge loop, statistics.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;

use dhtrng_core::{DhTrng, DhTrngConfig};
use dhtrng_fpga::Placement;

use crate::shard::{HealthConfig, ShardMessage, ShardWorker};

/// Horizontal slice pitch between neighbouring shard placement regions
/// (the 8-slice core packs into a 3x3 bounding box; pitch 4 leaves a
/// routing channel between instances, as the paper's Fig. 5 layout does).
const PLACEMENT_PITCH: u32 = 4;

/// Streaming failure surfaced to the consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// A shard exhausted its consecutive-restart budget and retired.
    ShardFailed {
        /// Index of the failed shard.
        shard: usize,
        /// Restart attempts consumed before giving up.
        consecutive_restarts: u32,
    },
    /// A shard worker vanished without reporting (panicked).
    ShardDisconnected {
        /// Index of the lost shard.
        shard: usize,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShardFailed {
                shard,
                consecutive_restarts,
            } => write!(
                f,
                "shard {shard} failed health tests through {consecutive_restarts} consecutive restarts"
            ),
            Self::ShardDisconnected { shard } => write!(f, "shard {shard} worker disconnected"),
        }
    }
}

impl std::error::Error for StreamError {}

/// Configures and builds an [`EntropyStream`].
///
/// Obtained via [`EntropyStream::builder`]; every knob has a production
/// default (4 shards, 64 KiB chunks, a 4-chunk buffer per shard, the
/// SP 800-90B health cutoffs).
#[derive(Debug, Clone)]
pub struct EntropyStreamBuilder {
    config: DhTrngConfig,
    shards: usize,
    seed: u64,
    shard_seeds: Option<Vec<u64>>,
    chunk_bytes: usize,
    queue_chunks: usize,
    health: HealthConfig,
    max_consecutive_restarts: u32,
}

impl Default for EntropyStreamBuilder {
    fn default() -> Self {
        Self {
            config: DhTrngConfig::default(),
            shards: 4,
            seed: 0,
            shard_seeds: None,
            chunk_bytes: 64 * 1024,
            queue_chunks: 4,
            health: HealthConfig::default(),
            max_consecutive_restarts: 16,
        }
    }
}

impl EntropyStreamBuilder {
    /// Number of parallel DH-TRNG instances (1..=64).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Master seed; each shard derives an independent instance seed from
    /// it (same golden-ratio schedule as
    /// [`DhTrngArray::new`](dhtrng_core::DhTrngArray::new)).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Explicit per-shard seed schedule, overriding the derivation from
    /// [`seed`](Self::seed). Length must equal the shard count at
    /// [`build`](Self::build) time.
    #[must_use]
    pub fn shard_seeds(mut self, seeds: Vec<u64>) -> Self {
        self.shard_seeds = Some(seeds);
        self
    }

    /// Base instance configuration (device, corner, coupling/feedback,
    /// sampling clock); the per-shard seed overrides its `seed` field.
    #[must_use]
    pub fn config(mut self, config: DhTrngConfig) -> Self {
        self.config = config;
        self
    }

    /// Bytes per produced chunk (the merge granularity).
    #[must_use]
    pub fn chunk_bytes(mut self, bytes: usize) -> Self {
        self.chunk_bytes = bytes;
        self
    }

    /// Chunks buffered per shard before its worker blocks
    /// (backpressure).
    #[must_use]
    pub fn queue_chunks(mut self, chunks: usize) -> Self {
        self.queue_chunks = chunks;
        self
    }

    /// Health-test cutoffs applied per shard.
    #[must_use]
    pub fn health(mut self, health: HealthConfig) -> Self {
        self.health = health;
        self
    }

    /// Consecutive restarts a shard may burn on one chunk before it
    /// reports [`StreamError::ShardFailed`].
    #[must_use]
    pub fn max_consecutive_restarts(mut self, restarts: u32) -> Self {
        self.max_consecutive_restarts = restarts;
        self
    }

    /// Spawns the shard workers and returns the merged stream.
    ///
    /// # Panics
    ///
    /// Panics if the shard count is outside `1..=64`, `chunk_bytes` or
    /// `queue_chunks` is zero, an explicit seed schedule has the wrong
    /// length, or a worker thread cannot be spawned.
    pub fn build(self) -> EntropyStream {
        assert!(
            (1..=64).contains(&self.shards),
            "shard count must be 1..=64, got {}",
            self.shards
        );
        assert!(self.chunk_bytes > 0, "chunk_bytes must be positive");
        assert!(self.queue_chunks > 0, "queue_chunks must be positive");
        let seeds: Vec<u64> = match &self.shard_seeds {
            Some(seeds) => {
                assert_eq!(
                    seeds.len(),
                    self.shards,
                    "seed schedule length must equal the shard count"
                );
                seeds.clone()
            }
            None => (0..self.shards as u64)
                .map(|i| {
                    self.seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i)
                })
                .collect(),
        };

        let mut receivers = Vec::with_capacity(self.shards);
        let mut workers = Vec::with_capacity(self.shards);
        let mut restarts = Vec::with_capacity(self.shards);
        let mut placements = Vec::with_capacity(self.shards);
        let mut modeled_mbps = 0.0;
        for (shard, &seed) in seeds.iter().enumerate() {
            let mut cfg = self.config.clone();
            cfg.seed = seed;
            let trng = DhTrng::new(cfg);
            // Each instance occupies its own placement region, as in the
            // paper's parallel deployment: disjoint compact squares along
            // a row of the fabric.
            placements.push(trng.placement((shard as u32 * PLACEMENT_PITCH, 0)));
            modeled_mbps += trng.throughput_mbps();
            let counter = Arc::new(AtomicU64::new(0));
            restarts.push(Arc::clone(&counter));
            let (tx, rx) = sync_channel::<ShardMessage>(self.queue_chunks);
            let worker = ShardWorker {
                shard,
                trng,
                health: self.health,
                chunk_bytes: self.chunk_bytes,
                max_consecutive_restarts: self.max_consecutive_restarts,
                restarts: counter,
            };
            let handle = std::thread::Builder::new()
                .name(format!("dhtrng-shard-{shard}"))
                .spawn(move || worker.run(tx))
                .expect("spawn shard worker thread");
            receivers.push(rx);
            workers.push(handle);
        }

        EntropyStream {
            receivers,
            workers,
            cursor: 0,
            current: Vec::new(),
            offset: 0,
            restarts,
            placements,
            modeled_mbps,
            bytes_delivered: 0,
            chunk_bytes: self.chunk_bytes,
            failed: None,
        }
    }
}

/// A consumer-facing merged entropy stream over N parallel DH-TRNG
/// shards.
///
/// Shards produce fixed-size chunks on worker threads into bounded
/// queues; the consumer drains them **round-robin in shard order**, so
/// the merged byte stream is a pure function of the shard seed schedule
/// — independent of thread scheduling. Chunk `k` of the stream is chunk
/// `k / N` of shard `k % N`.
///
/// # Example
///
/// ```
/// use dhtrng_stream::EntropyStream;
///
/// let mut stream = EntropyStream::builder()
///     .shards(2)
///     .seed(7)
///     .chunk_bytes(1024)
///     .build();
/// let mut buf = [0u8; 4096];
/// stream.read(&mut buf).expect("healthy stream");
/// assert_eq!(stream.bytes_delivered(), 4096);
/// assert!(stream.throughput_mbps() > 1000.0); // 2 x ~620 Mbps modeled
/// ```
#[derive(Debug)]
pub struct EntropyStream {
    receivers: Vec<Receiver<ShardMessage>>,
    workers: Vec<JoinHandle<()>>,
    cursor: usize,
    current: Vec<u8>,
    offset: usize,
    restarts: Vec<Arc<AtomicU64>>,
    placements: Vec<Placement>,
    modeled_mbps: f64,
    bytes_delivered: u64,
    chunk_bytes: usize,
    failed: Option<StreamError>,
}

impl EntropyStream {
    /// Starts configuring a stream.
    pub fn builder() -> EntropyStreamBuilder {
        EntropyStreamBuilder::default()
    }

    /// Fills `out` with the next bytes of the merged stream.
    ///
    /// Blocks while every buffered chunk of the next shard in the
    /// round-robin order is consumed and its worker is still generating.
    ///
    /// # Errors
    ///
    /// Returns the shard's terminal error once a shard retires; the
    /// stream stays failed from then on (bytes already delivered remain
    /// valid).
    pub fn read(&mut self, out: &mut [u8]) -> Result<(), StreamError> {
        if let Some(error) = self.failed {
            return Err(error);
        }
        let mut written = 0;
        while written < out.len() {
            if self.offset == self.current.len() {
                if let Err(error) = self.refill() {
                    self.failed = Some(error);
                    return Err(error);
                }
            }
            let take = (out.len() - written).min(self.current.len() - self.offset);
            out[written..written + take]
                .copy_from_slice(&self.current[self.offset..self.offset + take]);
            self.offset += take;
            written += take;
            self.bytes_delivered += take as u64;
        }
        Ok(())
    }

    /// Pops the next chunk, round-robin in shard order.
    fn refill(&mut self) -> Result<(), StreamError> {
        let shard = self.cursor;
        match self.receivers[shard].recv() {
            Ok(Ok(chunk)) => {
                self.current = chunk;
                self.offset = 0;
                self.cursor = (self.cursor + 1) % self.receivers.len();
                Ok(())
            }
            Ok(Err(failure)) => Err(StreamError::ShardFailed {
                shard: failure.shard,
                consecutive_restarts: failure.consecutive_restarts,
            }),
            Err(_) => Err(StreamError::ShardDisconnected { shard }),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.receivers.len()
    }

    /// Chunk size (the merge granularity) in bytes.
    pub fn chunk_bytes(&self) -> usize {
        self.chunk_bytes
    }

    /// Total bytes handed to consumers so far.
    pub fn bytes_delivered(&self) -> u64 {
        self.bytes_delivered
    }

    /// Total shard restarts triggered by health-test failures.
    pub fn restarts(&self) -> u64 {
        self.restarts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Restarts of one shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_restarts(&self, shard: usize) -> u64 {
        self.restarts[shard].load(Ordering::Relaxed)
    }

    /// The modeled aggregate hardware throughput: the sum of every
    /// shard's sampling clock (one bit per cycle), i.e. `N x` the
    /// paper's per-instance 620/670 Mbps — the linear multi-instance
    /// scaling the deployment relies on.
    pub fn throughput_mbps(&self) -> f64 {
        self.modeled_mbps
    }

    /// Per-shard placement regions (disjoint compact squares).
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Whether the stream has failed terminally.
    pub fn failed(&self) -> Option<StreamError> {
        self.failed
    }

    /// Drains any chunk already buffered without blocking (used by
    /// shutdown paths and tests; consumers normally just `read`).
    pub fn try_refill(&mut self) -> Result<bool, StreamError> {
        if let Some(error) = self.failed {
            return Err(error);
        }
        if self.offset < self.current.len() {
            return Ok(true);
        }
        let error = match self.receivers[self.cursor].try_recv() {
            Ok(Ok(chunk)) => {
                self.current = chunk;
                self.offset = 0;
                self.cursor = (self.cursor + 1) % self.receivers.len();
                return Ok(true);
            }
            Err(TryRecvError::Empty) => return Ok(false),
            Ok(Err(failure)) => StreamError::ShardFailed {
                shard: failure.shard,
                consecutive_restarts: failure.consecutive_restarts,
            },
            Err(TryRecvError::Disconnected) => {
                StreamError::ShardDisconnected { shard: self.cursor }
            }
        };
        // Latch: this path may consume the shard's one obituary message,
        // so later reads must keep reporting the true cause.
        self.failed = Some(error);
        Err(error)
    }
}

impl Drop for EntropyStream {
    fn drop(&mut self) {
        // Hang up first: workers blocked on a full queue observe the
        // send error and exit; then reap the threads.
        self.receivers.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtrng_core::Trng;

    fn small_stream(shards: usize, seed: u64) -> EntropyStream {
        EntropyStream::builder()
            .shards(shards)
            .seed(seed)
            .chunk_bytes(512)
            .build()
    }

    #[test]
    fn merge_is_deterministic_across_runs() {
        let mut a = small_stream(4, 9);
        let mut b = small_stream(4, 9);
        let mut buf_a = vec![0u8; 8192];
        let mut buf_b = vec![0u8; 8192];
        a.read(&mut buf_a).unwrap();
        b.read(&mut buf_b).unwrap();
        assert_eq!(buf_a, buf_b, "same seeds, same merged stream");
        let mut c = small_stream(4, 10);
        let mut buf_c = vec![0u8; 8192];
        c.read(&mut buf_c).unwrap();
        assert_ne!(buf_a, buf_c, "different master seed, different stream");
    }

    #[test]
    fn merge_interleaves_shard_streams_round_robin() {
        let seeds = vec![101, 202, 303];
        let chunk = 256usize;
        let mut stream = EntropyStream::builder()
            .shards(3)
            .shard_seeds(seeds.clone())
            .chunk_bytes(chunk)
            .build();
        let mut merged = vec![0u8; chunk * 6];
        stream.read(&mut merged).unwrap();

        // Reference: each shard is a plain DhTrng on its schedule seed;
        // chunk k of the merge is chunk k/3 of shard k%3.
        let mut reference = Vec::new();
        let mut shard_trngs: Vec<DhTrng> = seeds
            .iter()
            .map(|&seed| {
                DhTrng::new(DhTrngConfig {
                    seed,
                    ..DhTrngConfig::default()
                })
            })
            .collect();
        for k in 0..6 {
            let mut part = vec![0u8; chunk];
            shard_trngs[k % 3].fill_bytes(&mut part);
            reference.extend_from_slice(&part);
        }
        assert_eq!(merged, reference);
    }

    #[test]
    fn unaligned_reads_see_the_same_stream() {
        let mut aligned = small_stream(2, 5);
        let mut unaligned = small_stream(2, 5);
        let mut whole = vec![0u8; 3000];
        aligned.read(&mut whole).unwrap();
        let mut pieces = Vec::new();
        for size in [1usize, 7, 300, 513, 2179] {
            let mut piece = vec![0u8; size];
            unaligned.read(&mut piece).unwrap();
            pieces.extend_from_slice(&piece);
        }
        assert_eq!(pieces, whole);
        assert_eq!(unaligned.bytes_delivered(), 3000);
    }

    #[test]
    fn impossible_health_cutoffs_fail_the_stream_gracefully() {
        // RCT cutoff 2 trips on any repeated bit, i.e. on every chunk:
        // the shard burns its restart budget and retires; read errors.
        let mut stream = EntropyStream::builder()
            .shards(2)
            .seed(1)
            .chunk_bytes(256)
            .health(HealthConfig {
                rct_cutoff: 2,
                apt_window: 64,
                apt_cutoff: 64,
            })
            .max_consecutive_restarts(3)
            .build();
        let mut buf = vec![0u8; 1024];
        let err = stream.read(&mut buf).unwrap_err();
        assert_eq!(
            err,
            StreamError::ShardFailed {
                shard: 0,
                consecutive_restarts: 3
            }
        );
        // The failure is sticky.
        assert_eq!(stream.read(&mut buf).unwrap_err(), err);
        assert_eq!(stream.failed(), Some(err));
        assert!(stream.restarts() >= 3);
    }

    #[test]
    fn modeled_throughput_scales_linearly() {
        let one = small_stream(1, 3);
        let four = small_stream(4, 3);
        assert!((four.throughput_mbps() / one.throughput_mbps() - 4.0).abs() < 1e-9);
        assert_eq!(four.shards(), 4);
    }

    #[test]
    fn placements_are_disjoint_regions() {
        let stream = small_stream(4, 8);
        let placements = stream.placements();
        assert_eq!(placements.len(), 4);
        for pair in placements.windows(2) {
            let (a, b) = (pair[0].origin(), pair[1].origin());
            assert!(b.x >= a.x + 4, "regions overlap: {a:?} vs {b:?}");
        }
    }

    #[test]
    #[should_panic(expected = "seed schedule length")]
    fn mismatched_seed_schedule_panics() {
        let _ = EntropyStream::builder()
            .shards(3)
            .shard_seeds(vec![1, 2])
            .build();
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_panics() {
        let _ = EntropyStream::builder().shards(0).build();
    }
}
