//! The sharded streaming engine: builder, executor-backed merged
//! stream, statistics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dhtrng_core::telemetry::{MetricsHandle, NoopRecorder, Recorder, Telemetry};
use dhtrng_core::{DhTrng, DhTrngConfig, SlicedDhTrng};
use dhtrng_fpga::Placement;

use crate::affinity::{self, AffinityPolicy};
use crate::error::{ConfigError, Error};
use crate::exec::{Executor, ShardLink};
use crate::ring;
use crate::shard::{HealthConfig, ShardMessage, ShardWorker};
use crate::sliced::{LaneLink, SlicedBankWorker};

/// Horizontal slice pitch between neighbouring shard placement regions
/// (the 8-slice core packs into a 3x3 bounding box; pitch 4 leaves a
/// routing channel between instances, as the paper's Fig. 5 layout does).
const PLACEMENT_PITCH: u32 = 4;

/// Pool buffers per shard beyond the queue depth: one being filled by
/// the worker, one being drained by the consumer.
const POOL_SLACK: usize = 2;

/// Measured single-core advantage of the sliced bank over one scalar
/// worker: BENCH_6 recorded `kernel.speedup = 1.86x` on this class of
/// host (one thread driving all lanes SIMD-style vs one thread per
/// shard). The [`KernelKind::cost_model`] compares this constant
/// against the parallelism scalar workers could actually harvest.
const SLICED_SINGLE_CORE_ADVANTAGE: f64 = 1.8;

/// Which generation kernel the shard producers run on.
///
/// Both kernels produce the **same merged stream** for the same
/// configuration — the choice is purely a throughput/topology decision,
/// and the CI kernel-matrix runs the full equivalence suites under each
/// forced value to keep it that way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelKind {
    /// Resolve at build time: the `DHTRNG_KERNEL` environment variable
    /// (`scalar` / `sliced` / `auto`) if set, otherwise the
    /// [`cost_model`](Self::cost_model) over the shard count and the
    /// host's available parallelism. The environment override is
    /// only consulted from `Auto`, so explicit builder settings always
    /// win (which is what lets the equivalence tests force one side
    /// while CI forces the other globally).
    #[default]
    Auto,
    /// One scalar [`DhTrng`] worker thread per shard (the pre-slicing
    /// topology).
    Scalar,
    /// All shards as lanes of one bit-sliced [`SlicedDhTrng`] bank,
    /// produced by a single worker thread (the SIMD-friendly topology;
    /// see `DESIGN.md` §9).
    Sliced,
}

impl KernelKind {
    /// The kernel [`Auto`](Self::Auto) resolves to (absent a
    /// `DHTRNG_KERNEL` override) for a given shard count on a host with
    /// `host_cpus` usable CPUs — the first *measured* cost model,
    /// replacing the old "≥ 2 shards → sliced" rule:
    ///
    /// * one shard has no parallelism to harvest and no bank to
    ///   amortise → [`Scalar`](Self::Scalar);
    /// * the sliced bank runs on **one** core at ~1.8x a single scalar
    ///   worker (BENCH_6 `kernel.speedup`); N scalar workers can use up
    ///   to `min(shards, host_cpus)` cores at ~1.0x each. Sliced wins
    ///   exactly when `1.8 ≥ min(shards, host_cpus)` — so a 1-CPU host
    ///   keeps the sliced bank for multi-shard streams (threads cannot
    ///   buy anything there), while a genuinely multi-core host
    ///   switches to per-shard threads.
    ///
    /// Pure and public so the bench report can log the decision it
    /// predicts and tests can mirror it against the real host.
    pub fn cost_model(shards: usize, host_cpus: usize) -> KernelKind {
        if shards < 2 {
            return KernelKind::Scalar;
        }
        let scalar_cores = shards.min(host_cpus.max(1));
        if SLICED_SINGLE_CORE_ADVANTAGE >= scalar_cores as f64 {
            KernelKind::Sliced
        } else {
            KernelKind::Scalar
        }
    }
}

/// **Deprecated alias** for the unified [`Error`] — retained so code
/// written against the pre-ISSUE-6 per-tier error surface keeps
/// compiling. New code should name [`crate::Error`] directly; the
/// variants this alias used to own (`ShardFailed`, `ShardDisconnected`)
/// live there now, next to the session-era failure modes
/// (`QuotaExceeded`, `Backpressure`, `InvalidConfig`) and the
/// [`is_retriable`](Error::is_retriable) classification the daemon's
/// retry logic is built on.
pub type StreamError = Error;

/// Configures and builds an [`EntropyStream`].
///
/// Obtained via [`EntropyStream::builder`]; every knob has a production
/// default (4 shards, 64 KiB chunks, a 4-chunk buffer per shard, the
/// SP 800-90B health cutoffs).
#[derive(Debug, Clone)]
pub struct EntropyStreamBuilder {
    config: DhTrngConfig,
    shards: usize,
    seed: u64,
    shard_seeds: Option<Vec<u64>>,
    chunk_bytes: usize,
    queue_chunks: usize,
    health: HealthConfig,
    max_consecutive_restarts: u32,
    injected_failures: Vec<(usize, u64)>,
    kernel: KernelKind,
    affinity: AffinityPolicy,
    recorder: Option<Arc<dyn Recorder>>,
}

impl Default for EntropyStreamBuilder {
    fn default() -> Self {
        Self {
            config: DhTrngConfig::default(),
            shards: 4,
            seed: 0,
            shard_seeds: None,
            chunk_bytes: 64 * 1024,
            queue_chunks: 4,
            health: HealthConfig::default(),
            max_consecutive_restarts: 16,
            injected_failures: Vec::new(),
            kernel: KernelKind::Auto,
            affinity: AffinityPolicy::Disabled,
            recorder: None,
        }
    }
}

impl EntropyStreamBuilder {
    /// Number of parallel DH-TRNG instances (1..=64).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Master seed; each shard derives an independent instance seed from
    /// it (same golden-ratio schedule as
    /// [`DhTrngArray::new`](dhtrng_core::DhTrngArray::new)).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Explicit per-shard seed schedule, overriding the derivation from
    /// [`seed`](Self::seed). Length must equal the shard count at
    /// [`build`](Self::build) time.
    #[must_use]
    pub fn shard_seeds(mut self, seeds: Vec<u64>) -> Self {
        self.shard_seeds = Some(seeds);
        self
    }

    /// Base instance configuration (device, corner, coupling/feedback,
    /// sampling clock); the per-shard seed overrides its `seed` field.
    #[must_use]
    pub fn config(mut self, config: DhTrngConfig) -> Self {
        self.config = config;
        self
    }

    /// Bytes per produced chunk (the merge granularity).
    #[must_use]
    pub fn chunk_bytes(mut self, bytes: usize) -> Self {
        self.chunk_bytes = bytes;
        self
    }

    /// Chunks buffered per shard before its worker blocks
    /// (backpressure). Each shard's buffer pool holds this many chunks
    /// plus two (one in flight at the worker, one at the consumer).
    #[must_use]
    pub fn queue_chunks(mut self, chunks: usize) -> Self {
        self.queue_chunks = chunks;
        self
    }

    /// Health-test cutoffs applied per shard.
    #[must_use]
    pub fn health(mut self, health: HealthConfig) -> Self {
        self.health = health;
        self
    }

    /// Consecutive restarts a shard may burn on one chunk before it
    /// reports [`Error::ShardFailed`].
    #[must_use]
    pub fn max_consecutive_restarts(mut self, restarts: u32) -> Self {
        self.max_consecutive_restarts = restarts;
        self
    }

    /// Deterministic fault injection: `shard` retires (reports
    /// [`Error::ShardFailed`] with zero restarts) after producing
    /// exactly `chunks` healthy chunks.
    ///
    /// The retirement is a pure function of the chunk count, never of
    /// thread timing, so tests and fail-over drills can pin the exact
    /// merged prefix the consumer sees before the error — see the
    /// shard-retirement contract on [`EntropyStream::read`]. Calling
    /// this for the same shard twice keeps the smaller budget.
    #[must_use]
    pub fn inject_shard_failure(mut self, shard: usize, chunks: u64) -> Self {
        self.injected_failures.push((shard, chunks));
        self
    }

    /// Which generation kernel drives the shards (default
    /// [`KernelKind::Auto`]). Both kernels produce the same merged
    /// stream; see [`KernelKind`] for the resolution rules.
    #[must_use]
    pub fn kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// How worker threads are placed onto CPU cores (default
    /// [`AffinityPolicy::Disabled`]). Best-effort and purely a
    /// throughput knob: the merged stream is identical either way, and
    /// a pin the OS refuses is simply skipped —
    /// [`EntropyStream::affinity_pins`] reports how many took effect.
    #[must_use]
    pub fn core_affinity(mut self, policy: AffinityPolicy) -> Self {
        self.affinity = policy;
        self
    }

    /// Plug an event [`Recorder`] (for example a
    /// [`Tracer`](dhtrng_core::telemetry::Tracer)) that receives every
    /// [`StageEvent`](dhtrng_core::telemetry::StageEvent) the stream's
    /// stages emit. The default is the no-op recorder; the always-on
    /// counters behind [`EntropyStream::metrics`] run either way.
    #[must_use]
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The per-shard seed the golden-ratio schedule derives from a
    /// master `seed` for shard `index` — a pure function of the index,
    /// never of spawn order, so the seed schedule (and therefore the
    /// merged stream) is identical regardless of how worker threads
    /// interleave at build time. Public so tests and tools can pin the
    /// schedule without building a stream.
    pub fn derive_shard_seed(seed: u64, index: u64) -> u64 {
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(index)
    }

    /// The kernel [`spawn`](Self::spawn) will run with: the builder's
    /// explicit setting, or — from [`KernelKind::Auto`] only — the
    /// `DHTRNG_KERNEL` environment override, falling back to the
    /// [`KernelKind::cost_model`] over the shard count and the host's
    /// available parallelism.
    fn resolved_kernel(&self) -> KernelKind {
        let requested = match self.kernel {
            KernelKind::Auto => match std::env::var("DHTRNG_KERNEL").ok().as_deref() {
                Some("scalar") => KernelKind::Scalar,
                Some("sliced") => KernelKind::Sliced,
                _ => KernelKind::Auto,
            },
            explicit => explicit,
        };
        match requested {
            KernelKind::Auto => KernelKind::cost_model(self.shards, affinity::host_cpus()),
            explicit => explicit,
        }
    }

    /// Checks the invariants [`build`](Self::build) would otherwise
    /// panic on — the validation path for untrusted configuration.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(1..=64).contains(&self.shards) {
            return Err(ConfigError::Shards { got: self.shards });
        }
        if self.chunk_bytes == 0 {
            return Err(ConfigError::ChunkBytes);
        }
        if self.queue_chunks == 0 {
            return Err(ConfigError::QueueChunks);
        }
        for &(shard, _) in &self.injected_failures {
            if shard >= self.shards {
                return Err(ConfigError::InjectedShard {
                    shard,
                    shards: self.shards,
                });
            }
        }
        if let Some(seeds) = &self.shard_seeds {
            if seeds.len() != self.shards {
                return Err(ConfigError::SeedSchedule {
                    expected: self.shards,
                    got: seeds.len(),
                });
            }
        }
        self.health.validate()
    }

    /// Spawns the shard workers and returns the merged stream,
    /// rejecting invalid configuration with a typed error instead of a
    /// panic — the path for configuration parsed from untrusted input.
    ///
    /// # Errors
    ///
    /// See [`validate`](Self::validate).
    ///
    /// # Panics
    ///
    /// Panics only if a worker thread cannot be spawned.
    pub fn try_build(self) -> Result<EntropyStream, ConfigError> {
        self.validate()?;
        Ok(self.spawn())
    }

    /// Spawns the shard workers and returns the merged stream.
    ///
    /// # Panics
    ///
    /// Panics if the shard count is outside `1..=64`, `chunk_bytes` or
    /// `queue_chunks` is zero, an explicit seed schedule has the wrong
    /// length, an injected failure names an out-of-range shard, the
    /// health cutoffs are invalid, or a worker thread cannot be
    /// spawned. [`try_build`](Self::try_build) reports the same
    /// violations as typed errors instead.
    pub fn build(self) -> EntropyStream {
        if let Err(error) = self.validate() {
            panic!("{error}");
        }
        self.spawn()
    }

    /// The post-validation construction: derives the seed schedule,
    /// wires one SPSC ring pair per shard, pre-fills each buffer pool,
    /// and spawns the producers of the resolved kernel — one scalar
    /// worker thread per shard, or one sliced bank thread driving every
    /// shard as a lane. The consumer-facing wiring (and therefore the
    /// merged stream) is identical either way.
    fn spawn(self) -> EntropyStream {
        let kernel = self.resolved_kernel();
        let host_cpus = affinity::host_cpus();
        let affinity_pins = Arc::new(AtomicU64::new(0));
        // One telemetry block per stream, shared by every stage: the
        // plugged recorder (or the no-op default) sees every event, the
        // counters are always on.
        let recorder: Arc<dyn Recorder> = self
            .recorder
            .clone()
            .unwrap_or_else(|| Arc::new(NoopRecorder));
        let telemetry = Arc::new(Telemetry::new(self.shards, recorder));
        let (ring_parks, ring_wakes) = telemetry.ring_wait_counters();
        let seeds: Vec<u64> = match &self.shard_seeds {
            Some(seeds) => seeds.clone(),
            None => (0..self.shards as u64)
                .map(|i| EntropyStreamBuilder::derive_shard_seed(self.seed, i))
                .collect(),
        };

        let buffers_per_shard = self.queue_chunks + POOL_SLACK;
        let mut links = Vec::with_capacity(self.shards);
        let mut workers = Vec::with_capacity(self.shards);
        let mut restarts = Vec::with_capacity(self.shards);
        let mut placements = Vec::with_capacity(self.shards);
        let mut modeled_mbps = 0.0;
        // Sliced mode accumulators: shard i becomes lane i of one bank.
        let mut instances = Vec::new();
        let mut lane_links = Vec::new();
        for (shard, &seed) in seeds.iter().enumerate() {
            let mut cfg = self.config.clone();
            cfg.seed = seed;
            let trng = DhTrng::new(cfg);
            // Each instance occupies its own placement region, as in the
            // paper's parallel deployment: disjoint compact squares along
            // a row of the fabric.
            placements.push(trng.placement((shard as u32 * PLACEMENT_PITCH, 0)));
            modeled_mbps += trng.throughput_mbps();
            let counter = Arc::new(AtomicU64::new(0));
            restarts.push(Arc::clone(&counter));
            // The data ring buffers `queue_chunks` produced chunks
            // (rounded up to a power of two) before the worker blocks.
            // Every ring shares the stream-wide park/wake tallies.
            let (tx, rx) = ring::spsc_with_wait_counters::<ShardMessage>(
                self.queue_chunks,
                Arc::clone(&ring_parks),
                Arc::clone(&ring_wakes),
            );
            // The shard's buffer pool: created once, recycled forever
            // over the return ring. Its capacity covers every buffer the
            // shard owns, so returning one never blocks.
            let (mut pool_tx, pool_rx) = ring::spsc_with_wait_counters::<Vec<u8>>(
                buffers_per_shard,
                Arc::clone(&ring_parks),
                Arc::clone(&ring_wakes),
            );
            for _ in 0..buffers_per_shard {
                pool_tx
                    .try_push(Vec::with_capacity(self.chunk_bytes))
                    .expect("pool ring sized for every buffer");
            }
            let fail_after_chunks = self
                .injected_failures
                .iter()
                .filter(|&&(s, _)| s == shard)
                .map(|&(_, chunks)| chunks)
                .min();
            match kernel {
                KernelKind::Sliced => {
                    instances.push(trng);
                    lane_links.push(LaneLink {
                        tx,
                        pool: pool_rx,
                        restarts: counter,
                        fail_after_chunks,
                    });
                }
                _ => {
                    let worker = ShardWorker {
                        shard,
                        trng,
                        health: self.health,
                        chunk_bytes: self.chunk_bytes,
                        max_consecutive_restarts: self.max_consecutive_restarts,
                        restarts: counter,
                        pool: pool_rx,
                        fail_after_chunks,
                        telemetry: Arc::clone(&telemetry),
                    };
                    let pin = self.affinity.core_for_worker(shard, host_cpus);
                    let pins = Arc::clone(&affinity_pins);
                    let handle = std::thread::Builder::new()
                        .name(format!("dhtrng-shard-{shard}"))
                        .spawn(move || {
                            if let Some(cpu) = pin {
                                if affinity::pin_current_thread(cpu) {
                                    pins.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            worker.run(tx)
                        })
                        .expect("spawn shard worker thread");
                    workers.push(handle);
                }
            }
            links.push(ShardLink {
                data: rx,
                pool: pool_tx,
            });
        }
        if kernel == KernelKind::Sliced {
            let worker = SlicedBankWorker {
                bank: SlicedDhTrng::new(instances)
                    .expect("validated shard count fits the lane capacity"),
                health: self.health,
                chunk_bytes: self.chunk_bytes,
                max_consecutive_restarts: self.max_consecutive_restarts,
                lanes: lane_links,
                telemetry: Arc::clone(&telemetry),
            };
            // The bank is one thread driving every lane: worker index 0.
            let pin = self.affinity.core_for_worker(0, host_cpus);
            let pins = Arc::clone(&affinity_pins);
            let handle = std::thread::Builder::new()
                .name("dhtrng-sliced-bank".to_string())
                .spawn(move || {
                    if let Some(cpu) = pin {
                        if affinity::pin_current_thread(cpu) {
                            pins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    worker.run()
                })
                .expect("spawn sliced bank worker thread");
            workers.push(handle);
        }

        EntropyStream {
            exec: Executor::new(links, workers, self.shards * buffers_per_shard, telemetry),
            restarts,
            placements,
            modeled_mbps,
            chunk_bytes: self.chunk_bytes,
            kernel,
            affinity_pins,
        }
    }
}

/// A consumer-facing merged entropy stream over N parallel DH-TRNG
/// shards.
///
/// Shards produce fixed-size chunks on worker threads into bounded
/// queues — each chunk in a buffer recycled through a per-shard pool,
/// so the steady-state read path performs no heap allocation (see
/// `DESIGN.md` §7). The consumer drains chunks **round-robin in shard
/// order**, so the merged byte stream is a pure function of the shard
/// seed schedule — independent of thread scheduling. Chunk `k` of the
/// stream is chunk `k / N` of shard `k % N`.
///
/// # Example
///
/// ```
/// use dhtrng_stream::EntropyStream;
///
/// let mut stream = EntropyStream::builder()
///     .shards(2)
///     .seed(7)
///     .chunk_bytes(1024)
///     .build();
/// let mut buf = [0u8; 4096];
/// stream.read(&mut buf).expect("healthy stream");
/// assert_eq!(stream.bytes_delivered(), 4096);
/// assert!(stream.throughput_mbps() > 1000.0); // 2 x ~620 Mbps modeled
/// ```
#[derive(Debug)]
pub struct EntropyStream {
    exec: Executor,
    restarts: Vec<Arc<AtomicU64>>,
    placements: Vec<Placement>,
    modeled_mbps: f64,
    chunk_bytes: usize,
    kernel: KernelKind,
    affinity_pins: Arc<AtomicU64>,
}

impl EntropyStream {
    /// Starts configuring a stream.
    pub fn builder() -> EntropyStreamBuilder {
        EntropyStreamBuilder::default()
    }

    /// Fills `out` with the next bytes of the merged stream — the
    /// pooled zero-copy read path: bytes move pool chunk → `out`, with
    /// no intermediate buffer and no allocation.
    ///
    /// Blocks while every buffered chunk of the next shard in the
    /// round-robin order is consumed and its worker is still generating.
    ///
    /// # Shard retirement
    ///
    /// A retired shard's terminal error sits in its queue position: the
    /// stream keeps delivering chunks from the other shards until the
    /// round-robin cursor reaches the retired shard's slot, then
    /// surfaces the error — so the merged prefix delivered before the
    /// failure is deterministic in the seed schedule and the failing
    /// shard's chunk count, never in thread timing. The raw tier does
    /// not roll back the bytes a failing call already wrote into `out`
    /// ([`ConditionedStream`](crate::pipeline::ConditionedStream) adds
    /// that contract at the conditioned tier).
    ///
    /// # Errors
    ///
    /// Returns the shard's terminal error once a shard retires; the
    /// stream stays failed from then on (bytes already delivered remain
    /// valid).
    pub fn read(&mut self, out: &mut [u8]) -> Result<(), Error> {
        self.exec.read(out)
    }

    /// Hands the unconsumed remainder of the next chunk to `f` for
    /// in-place processing in its pool buffer, then recycles the
    /// buffer. The remainder counts as delivered in full.
    ///
    /// This is the zero-copy hook the conditioning tier runs on: a
    /// [`Stage`](dhtrng_core::kernel::Stage) transforms the chunk where
    /// it sits instead of copying it out first.
    ///
    /// # Errors
    ///
    /// As [`read`](Self::read): the terminal [`Error`] once a
    /// shard retires (in which case `f` is not called).
    pub fn with_next_chunk<R>(&mut self, f: impl FnOnce(&mut [u8]) -> R) -> Result<R, Error> {
        self.exec.with_chunk(f)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.exec.shards()
    }

    /// Chunk size (the merge granularity) in bytes.
    pub fn chunk_bytes(&self) -> usize {
        self.chunk_bytes
    }

    /// The generation kernel this stream resolved to at build time —
    /// never [`KernelKind::Auto`]; the resolution rules live on
    /// [`KernelKind`].
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// Worker threads whose core pin actually took effect (affinity is
    /// best-effort — see
    /// [`core_affinity`](EntropyStreamBuilder::core_affinity)). Always
    /// zero under [`AffinityPolicy::Disabled`], on single-CPU hosts,
    /// and on non-Linux platforms. Workers pin themselves as they start
    /// up, so this can lag thread spawn by a moment.
    pub fn affinity_pins(&self) -> u64 {
        self.affinity_pins.load(Ordering::Relaxed)
    }

    /// A cloneable handle over the stream's always-on telemetry
    /// counters: per-shard production/health/restart tallies, merge and
    /// delivery totals, ring park/wake counts. The handle stays valid
    /// (counters frozen) after the stream fails or is dropped.
    pub fn metrics(&self) -> MetricsHandle {
        MetricsHandle::new(Arc::clone(self.exec.telemetry()))
    }

    /// The shared telemetry block, for sibling layers (the session API)
    /// that record events of their own into the same stream.
    pub(crate) fn telemetry(&self) -> Arc<Telemetry> {
        Arc::clone(self.exec.telemetry())
    }

    /// Total bytes handed to consumers so far.
    pub fn bytes_delivered(&self) -> u64 {
        self.exec.bytes_delivered()
    }

    /// Total shard restarts triggered by health-test failures.
    pub fn restarts(&self) -> u64 {
        self.restarts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Restarts of one shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_restarts(&self, shard: usize) -> u64 {
        self.restarts[shard].load(Ordering::Relaxed)
    }

    /// Chunk buffers created for the recycled pool — a pure function of
    /// the configuration (`shards x (queue_chunks + 2)`); the pool
    /// never grows after build, which is what makes the steady-state
    /// read path allocation-free.
    pub fn pool_buffers(&self) -> usize {
        self.exec.buffers_created()
    }

    /// The modeled aggregate hardware throughput: the sum of every
    /// shard's sampling clock (one bit per cycle), i.e. `N x` the
    /// paper's per-instance 620/670 Mbps — the linear multi-instance
    /// scaling the deployment relies on.
    pub fn throughput_mbps(&self) -> f64 {
        self.modeled_mbps
    }

    /// Per-shard placement regions (disjoint compact squares).
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Whether the stream has failed terminally.
    pub fn failed(&self) -> Option<Error> {
        self.exec.failed()
    }

    /// Drains any chunk already buffered without blocking (used by
    /// shutdown paths and tests; consumers normally just `read`).
    ///
    /// # Errors
    ///
    /// The terminal [`Error`] if the stream has failed (or fails
    /// on this call).
    pub fn try_refill(&mut self) -> Result<bool, Error> {
        self.exec.try_buffer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtrng_core::Trng;

    fn small_stream(shards: usize, seed: u64) -> EntropyStream {
        EntropyStream::builder()
            .shards(shards)
            .seed(seed)
            .chunk_bytes(512)
            .build()
    }

    #[test]
    fn merge_is_deterministic_across_runs() {
        let mut a = small_stream(4, 9);
        let mut b = small_stream(4, 9);
        let mut buf_a = vec![0u8; 8192];
        let mut buf_b = vec![0u8; 8192];
        a.read(&mut buf_a).unwrap();
        b.read(&mut buf_b).unwrap();
        assert_eq!(buf_a, buf_b, "same seeds, same merged stream");
        let mut c = small_stream(4, 10);
        let mut buf_c = vec![0u8; 8192];
        c.read(&mut buf_c).unwrap();
        assert_ne!(buf_a, buf_c, "different master seed, different stream");
    }

    #[test]
    fn merge_interleaves_shard_streams_round_robin() {
        let seeds = vec![101, 202, 303];
        let chunk = 256usize;
        let mut stream = EntropyStream::builder()
            .shards(3)
            .shard_seeds(seeds.clone())
            .chunk_bytes(chunk)
            .build();
        let mut merged = vec![0u8; chunk * 6];
        stream.read(&mut merged).unwrap();

        // Reference: each shard is a plain DhTrng on its schedule seed;
        // chunk k of the merge is chunk k/3 of shard k%3.
        let mut reference = Vec::new();
        let mut shard_trngs: Vec<DhTrng> = seeds
            .iter()
            .map(|&seed| {
                DhTrng::new(DhTrngConfig {
                    seed,
                    ..DhTrngConfig::default()
                })
            })
            .collect();
        for k in 0..6 {
            let mut part = vec![0u8; chunk];
            shard_trngs[k % 3].fill_bytes(&mut part);
            reference.extend_from_slice(&part);
        }
        assert_eq!(merged, reference);
    }

    #[test]
    fn unaligned_reads_see_the_same_stream() {
        let mut aligned = small_stream(2, 5);
        let mut unaligned = small_stream(2, 5);
        let mut whole = vec![0u8; 3000];
        aligned.read(&mut whole).unwrap();
        let mut pieces = Vec::new();
        for size in [1usize, 7, 300, 513, 2179] {
            let mut piece = vec![0u8; size];
            unaligned.read(&mut piece).unwrap();
            pieces.extend_from_slice(&piece);
        }
        assert_eq!(pieces, whole);
        assert_eq!(unaligned.bytes_delivered(), 3000);
    }

    #[test]
    fn with_next_chunk_walks_the_same_stream_as_read() {
        let mut by_read = small_stream(2, 12);
        let mut by_chunk = small_stream(2, 12);
        let mut expect = vec![0u8; 512 * 4];
        by_read.read(&mut expect).unwrap();
        let mut got = Vec::new();
        for _ in 0..4 {
            by_chunk
                .with_next_chunk(|chunk| got.extend_from_slice(chunk))
                .unwrap();
        }
        assert_eq!(got, expect);
        assert_eq!(by_chunk.bytes_delivered(), 512 * 4);
        // Mixing: a partial read, then the chunk remainder.
        let mut mixed = small_stream(2, 12);
        let mut head = vec![0u8; 100];
        mixed.read(&mut head).unwrap();
        assert_eq!(head[..], expect[..100]);
        let rest = mixed
            .with_next_chunk(|chunk| chunk.to_vec())
            .expect("healthy");
        assert_eq!(rest[..], expect[100..512]);
    }

    #[test]
    fn impossible_health_cutoffs_fail_the_stream_gracefully() {
        // RCT cutoff 2 trips on any repeated bit, i.e. on every chunk:
        // the shard burns its restart budget and retires; read errors.
        let mut stream = EntropyStream::builder()
            .shards(2)
            .seed(1)
            .chunk_bytes(256)
            .health(HealthConfig {
                rct_cutoff: 2,
                apt_window: 64,
                apt_cutoff: 64,
            })
            .max_consecutive_restarts(3)
            .build();
        let mut buf = vec![0u8; 1024];
        let err = stream.read(&mut buf).unwrap_err();
        assert_eq!(
            err,
            Error::ShardFailed {
                shard: 0,
                consecutive_restarts: 3
            }
        );
        // The failure is sticky.
        assert_eq!(stream.read(&mut buf).unwrap_err(), err);
        assert_eq!(stream.failed(), Some(err));
        assert!(stream.restarts() >= 3);
    }

    #[test]
    fn injected_failure_retires_the_shard_deterministically() {
        let make = || {
            EntropyStream::builder()
                .shards(2)
                .seed(4)
                .chunk_bytes(256)
                .inject_shard_failure(1, 3)
                .build()
        };
        // Shard 1 produces exactly 3 chunks; the merge delivers rounds
        // 0..3 in full plus shard 0's chunk of round 3, then errors at
        // shard 1's slot.
        let mut stream = make();
        let mut buf = vec![0u8; 7 * 256];
        stream.read(&mut buf).expect("prefix is healthy");
        let err = stream.read(&mut [0u8; 1]).unwrap_err();
        assert_eq!(
            err,
            Error::ShardFailed {
                shard: 1,
                consecutive_restarts: 0
            }
        );
        // The prefix matches the healthy stream bit for bit.
        let mut healthy = EntropyStream::builder()
            .shards(2)
            .seed(4)
            .chunk_bytes(256)
            .build();
        let mut expect = vec![0u8; 7 * 256];
        healthy.read(&mut expect).unwrap();
        assert_eq!(buf, expect);
    }

    #[test]
    fn pool_is_sized_by_configuration() {
        let stream = EntropyStream::builder()
            .shards(3)
            .seed(1)
            .chunk_bytes(128)
            .queue_chunks(2)
            .build();
        assert_eq!(stream.pool_buffers(), 3 * (2 + 2));
    }

    #[test]
    fn modeled_throughput_scales_linearly() {
        let one = small_stream(1, 3);
        let four = small_stream(4, 3);
        assert!((four.throughput_mbps() / one.throughput_mbps() - 4.0).abs() < 1e-9);
        assert_eq!(four.shards(), 4);
    }

    #[test]
    fn placements_are_disjoint_regions() {
        let stream = small_stream(4, 8);
        let placements = stream.placements();
        assert_eq!(placements.len(), 4);
        for pair in placements.windows(2) {
            let (a, b) = (pair[0].origin(), pair[1].origin());
            assert!(b.x >= a.x + 4, "regions overlap: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn sliced_and_scalar_kernels_produce_the_same_merged_stream() {
        let make = |kernel: KernelKind| {
            EntropyStream::builder()
                .shards(3)
                .seed(21)
                .chunk_bytes(512)
                .kernel(kernel)
                .build()
        };
        let mut scalar = make(KernelKind::Scalar);
        let mut sliced = make(KernelKind::Sliced);
        assert_eq!(scalar.kernel(), KernelKind::Scalar);
        assert_eq!(sliced.kernel(), KernelKind::Sliced);
        let mut buf_scalar = vec![0u8; 512 * 9];
        let mut buf_sliced = vec![0u8; 512 * 9];
        scalar.read(&mut buf_scalar).unwrap();
        sliced.read(&mut buf_sliced).unwrap();
        assert_eq!(buf_scalar, buf_sliced);
        assert_eq!(sliced.pool_buffers(), scalar.pool_buffers());
    }

    #[test]
    fn auto_kernel_resolution_honours_env_then_cost_model() {
        // Explicit settings always win, regardless of environment.
        let explicit = EntropyStream::builder()
            .shards(4)
            .chunk_bytes(64)
            .kernel(KernelKind::Scalar)
            .build();
        assert_eq!(explicit.kernel(), KernelKind::Scalar);
        // Auto defers to DHTRNG_KERNEL (the CI kernel-matrix forces it),
        // then to the cost model over the real host parallelism.
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        let expected = |shards: usize| match std::env::var("DHTRNG_KERNEL").as_deref() {
            Ok("scalar") => KernelKind::Scalar,
            Ok("sliced") => KernelKind::Sliced,
            _ => KernelKind::cost_model(shards, cpus),
        };
        let auto_one = EntropyStream::builder().shards(1).chunk_bytes(64).build();
        assert_eq!(auto_one.kernel(), expected(1));
        let auto_four = EntropyStream::builder().shards(4).chunk_bytes(64).build();
        assert_eq!(auto_four.kernel(), expected(4));
    }

    #[test]
    fn cost_model_prefers_threads_only_when_cores_beat_the_bank() {
        // One shard: nothing to slice, nothing to parallelise.
        assert_eq!(KernelKind::cost_model(1, 1), KernelKind::Scalar);
        assert_eq!(KernelKind::cost_model(1, 16), KernelKind::Scalar);
        // A 1-CPU host cannot harvest thread parallelism: the bank's
        // measured ~1.8x single-core advantage stands.
        assert_eq!(KernelKind::cost_model(2, 1), KernelKind::Sliced);
        assert_eq!(KernelKind::cost_model(8, 1), KernelKind::Sliced);
        assert_eq!(KernelKind::cost_model(4, 0), KernelKind::Sliced);
        // Two or more usable cores beat the 1.8x bank.
        assert_eq!(KernelKind::cost_model(2, 2), KernelKind::Scalar);
        assert_eq!(KernelKind::cost_model(4, 4), KernelKind::Scalar);
        // Shards bound the harvestable cores, not the host.
        assert_eq!(KernelKind::cost_model(2, 16), KernelKind::Scalar);
    }

    #[test]
    fn shard_seed_derivation_is_a_pure_function_of_the_index() {
        // The blind spot this pins: seeds must never depend on the
        // order shards are set up in, only on (master seed, index).
        let master = 0xDEAD_BEEF_u64;
        let forward: Vec<u64> = (0..8)
            .map(|i| EntropyStreamBuilder::derive_shard_seed(master, i))
            .collect();
        let mut reversed: Vec<u64> = (0..8)
            .rev()
            .map(|i| EntropyStreamBuilder::derive_shard_seed(master, i))
            .collect();
        reversed.reverse();
        assert_eq!(forward, reversed);
        // And the builder's implicit schedule is exactly this function:
        // a stream with explicit derived seeds matches a master-seeded one.
        let mut implicit = EntropyStream::builder()
            .shards(3)
            .seed(master)
            .chunk_bytes(256)
            .build();
        let mut explicit = EntropyStream::builder()
            .shards(3)
            .shard_seeds(
                (0..3)
                    .map(|i| EntropyStreamBuilder::derive_shard_seed(master, i))
                    .collect(),
            )
            .chunk_bytes(256)
            .build();
        let mut buf_a = vec![0u8; 1536];
        let mut buf_b = vec![0u8; 1536];
        implicit.read(&mut buf_a).unwrap();
        explicit.read(&mut buf_b).unwrap();
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    fn core_affinity_does_not_change_the_merged_stream() {
        let make = |policy: AffinityPolicy| {
            EntropyStream::builder()
                .shards(2)
                .seed(33)
                .chunk_bytes(512)
                .core_affinity(policy)
                .build()
        };
        let mut pinned = make(AffinityPolicy::PerShard);
        let mut unpinned = make(AffinityPolicy::Disabled);
        let mut buf_a = vec![0u8; 4096];
        let mut buf_b = vec![0u8; 4096];
        pinned.read(&mut buf_a).unwrap();
        unpinned.read(&mut buf_b).unwrap();
        assert_eq!(buf_a, buf_b);
        // Disabled never pins; PerShard is best-effort (0 is legal on
        // 1-CPU or sandboxed hosts, never more than one per worker).
        assert_eq!(unpinned.affinity_pins(), 0);
        assert!(pinned.affinity_pins() <= 2);
    }

    #[test]
    fn sliced_impossible_health_cutoffs_fail_the_stream_gracefully() {
        // The sliced bank must surface the exact failure a scalar worker
        // would: shard 0's slot, the full restart budget burned.
        let mut stream = EntropyStream::builder()
            .shards(2)
            .seed(1)
            .chunk_bytes(256)
            .health(HealthConfig {
                rct_cutoff: 2,
                apt_window: 64,
                apt_cutoff: 64,
            })
            .max_consecutive_restarts(3)
            .kernel(KernelKind::Sliced)
            .build();
        let mut buf = vec![0u8; 1024];
        let err = stream.read(&mut buf).unwrap_err();
        assert_eq!(
            err,
            Error::ShardFailed {
                shard: 0,
                consecutive_restarts: 3
            }
        );
        assert_eq!(stream.read(&mut buf).unwrap_err(), err);
        assert!(stream.restarts() >= 3);
        assert!(stream.shard_restarts(0) >= 3);
    }

    #[test]
    fn sliced_injected_failure_matches_the_scalar_prefix() {
        // Same deterministic retirement contract as the scalar path:
        // rounds 0..3 in full, shard 0's chunk of round 3, then the
        // error at shard 1's slot — and the prefix is the same bytes.
        let mut stream = EntropyStream::builder()
            .shards(2)
            .seed(4)
            .chunk_bytes(256)
            .inject_shard_failure(1, 3)
            .kernel(KernelKind::Sliced)
            .build();
        let mut buf = vec![0u8; 7 * 256];
        stream.read(&mut buf).expect("prefix is healthy");
        let err = stream.read(&mut [0u8; 1]).unwrap_err();
        assert_eq!(
            err,
            Error::ShardFailed {
                shard: 1,
                consecutive_restarts: 0
            }
        );
        let mut healthy = EntropyStream::builder()
            .shards(2)
            .seed(4)
            .chunk_bytes(256)
            .kernel(KernelKind::Scalar)
            .build();
        let mut expect = vec![0u8; 7 * 256];
        healthy.read(&mut expect).unwrap();
        assert_eq!(buf, expect);
    }

    #[test]
    #[should_panic(expected = "seed schedule length")]
    fn mismatched_seed_schedule_panics() {
        let _ = EntropyStream::builder()
            .shards(3)
            .shard_seeds(vec![1, 2])
            .build();
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_panics() {
        let _ = EntropyStream::builder().shards(0).build();
    }

    #[test]
    #[should_panic(expected = "injected failure")]
    fn out_of_range_injection_panics() {
        let _ = EntropyStream::builder()
            .shards(2)
            .inject_shard_failure(2, 1)
            .build();
    }
}
