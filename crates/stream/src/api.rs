//! The session-oriented public API: one shared [`EntropySource`],
//! many independent [`Session`]s.
//!
//! The original pipeline surface was structurally single-consumer: a
//! `PipelineBuilder` moved the whole sharded deployment into exactly
//! one `TierStream`, so a daemon serving N clients would have needed N
//! deployments. This module is the redesign ISSUE 6 forces: the
//! deployment (engine + conditioning stage) lives once, behind a
//! cheaply-cloneable [`EntropySource`] handle, and every consumer —
//! library user, `PipelineRng`, or a `dhtrng-serve` client — gets its
//! own [`Session`]:
//!
//! * **raw / conditioned sessions** draw from the shared stream under
//!   the source lock. Bytes are globally sequenced: what one session
//!   reads, no other session ever sees (exactly-once delivery across
//!   the whole source).
//! * **drbg sessions** are the cheap path the daemon hands out: each
//!   owns a private [`HashDrbg`] that expands seed material harvested
//!   from the shared conditioned stream. Between reseeds a drbg read
//!   touches only session-local state — no lock, no contention.
//! * **reseed harvests are arbitrated** (round-robin queue, bounded
//!   per-session credits — the internal `arbiter` module): a session cannot
//!   monopolise the scarce raw entropy, and a session over its share
//!   either yields a queue lap or, in
//!   [fail-fast mode](SessionConfig::fail_fast_backpressure), gets the
//!   retriable [`Error::Backpressure`].
//! * **graceful degradation**: when a shard retires terminally, raw
//!   and conditioned sessions surface the typed error (after draining
//!   what was already conditioned), but drbg sessions with
//!   [`stall_reseeds_on_failure`](SessionConfig::stall_reseeds_on_failure)
//!   keep serving from their DRBG state — reseeds stall (re-keying
//!   from the last harvested material so the output keeps moving), the
//!   stall is counted, and [`SourceStats::degraded`] reports the cause.
//!
//! A source with a single session degenerates to the old pipeline
//! exactly: the legacy `ConditionedStream` / `DrbgPool` shims in
//! [`crate::pipeline`] are re-implemented over one `Session` each and
//! still pass their bit-identical pinned-head tests.
//!
//! # Example
//!
//! ```
//! use dhtrng_stream::{EntropySource, Tier};
//!
//! let source = EntropySource::builder()
//!     .shards(2)
//!     .seed(7)
//!     .chunk_bytes(2048)
//!     .build()
//!     .expect("valid configuration");
//! // Many sessions, one deployment.
//! let mut alice = source.session(Tier::Drbg);
//! let mut bob = source.session(Tier::Drbg);
//! let (mut a, mut b) = ([0u8; 32], [0u8; 32]);
//! alice.read(&mut a).expect("healthy");
//! bob.read(&mut b).expect("healthy");
//! assert_ne!(a, b, "independent DRBG streams");
//! assert_eq!(source.stats().live_sessions, 2);
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use dhtrng_core::conditioning::Conditioner;
use dhtrng_core::drbg::{DrbgConfig, HashDrbg, BLOCK_BYTES};
use dhtrng_core::kernel::{BitBlock, ConditionerStage, Stage};
use dhtrng_core::telemetry::{MetricsHandle, Recorder, Snapshot, Telemetry};
use dhtrng_core::DhTrngConfig;

use crate::affinity::AffinityPolicy;
use crate::arbiter::{ReseedArbiter, Turn};
use crate::engine::{EntropyStream, EntropyStreamBuilder};
use crate::error::{ConfigError, Error};
use crate::pipeline::{ConditionerSpec, Tier};
use crate::shard::HealthConfig;
use crate::wake::EventCount;

/// Default bound on per-session reseed credits (see
/// [`SourceBuilder::reseed_credits`]).
pub const DEFAULT_RESEED_CREDITS: u32 = 4;

/// Configures and builds a shared [`EntropySource`].
///
/// Engine knobs mirror [`EntropyStreamBuilder`]; the conditioning and
/// DRBG stages add [`conditioner`](Self::conditioner) and
/// [`drbg_config`](Self::drbg_config); the service layer adds
/// [`reseed_credits`](Self::reseed_credits). Unlike the legacy
/// builders, [`build`](Self::build) validates instead of panicking —
/// source configuration is exactly what a daemon parses from untrusted
/// input.
#[derive(Debug, Clone, Default)]
pub struct SourceBuilder {
    pub(crate) stream: EntropyStreamBuilder,
    pub(crate) conditioner: ConditionerSpec,
    pub(crate) drbg: DrbgConfig,
    pub(crate) reseed_credits: u32,
}

impl SourceBuilder {
    /// Starts from the engine and stage defaults (4 shards, 64 KiB
    /// chunks, 2:1 CRC conditioning, 1 Mbit DRBG reseed interval,
    /// [`DEFAULT_RESEED_CREDITS`]).
    pub fn new() -> Self {
        Self {
            stream: EntropyStreamBuilder::default(),
            conditioner: ConditionerSpec::default(),
            drbg: DrbgConfig::default(),
            reseed_credits: 0, // 0 = use the default at build time
        }
    }

    /// Number of parallel DH-TRNG instances (1..=64).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.stream = self.stream.shards(shards);
        self
    }

    /// Master seed for the shard seed schedule.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.stream = self.stream.seed(seed);
        self
    }

    /// Explicit per-shard seed schedule (length must equal the shard
    /// count at build time).
    #[must_use]
    pub fn shard_seeds(mut self, seeds: Vec<u64>) -> Self {
        self.stream = self.stream.shard_seeds(seeds);
        self
    }

    /// Base instance configuration for every shard.
    #[must_use]
    pub fn config(mut self, config: DhTrngConfig) -> Self {
        self.stream = self.stream.config(config);
        self
    }

    /// Bytes per produced chunk (the engine's merge granularity).
    #[must_use]
    pub fn chunk_bytes(mut self, bytes: usize) -> Self {
        self.stream = self.stream.chunk_bytes(bytes);
        self
    }

    /// Chunks buffered per shard before its worker blocks.
    #[must_use]
    pub fn queue_chunks(mut self, chunks: usize) -> Self {
        self.stream = self.stream.queue_chunks(chunks);
        self
    }

    /// Health-test cutoffs applied per shard.
    #[must_use]
    pub fn health(mut self, health: HealthConfig) -> Self {
        self.stream = self.stream.health(health);
        self
    }

    /// Consecutive restarts a shard may burn on one chunk before it
    /// retires.
    #[must_use]
    pub fn max_consecutive_restarts(mut self, restarts: u32) -> Self {
        self.stream = self.stream.max_consecutive_restarts(restarts);
        self
    }

    /// Which generation kernel drives the shards (default
    /// [`KernelKind::Auto`](crate::KernelKind::Auto)); the source's
    /// conditioned stream is bit-identical under either kernel.
    #[must_use]
    pub fn kernel(mut self, kernel: crate::KernelKind) -> Self {
        self.stream = self.stream.kernel(kernel);
        self
    }

    /// Deterministic fault injection: `shard` retires after `chunks`
    /// healthy chunks (see
    /// [`EntropyStreamBuilder::inject_shard_failure`]).
    #[must_use]
    pub fn inject_shard_failure(mut self, shard: usize, chunks: u64) -> Self {
        self.stream = self.stream.inject_shard_failure(shard, chunks);
        self
    }

    /// How the engine's worker threads are placed onto CPU cores (see
    /// [`EntropyStreamBuilder::core_affinity`]); best-effort, and the
    /// conditioned stream is identical either way.
    #[must_use]
    pub fn core_affinity(mut self, policy: AffinityPolicy) -> Self {
        self.stream = self.stream.core_affinity(policy);
        self
    }

    /// Installs a stage-event recorder on the deployment (see
    /// [`EntropyStreamBuilder::recorder`]). The always-on counters
    /// behind [`EntropySource::metrics`] run either way; the default
    /// recorder is a no-op.
    #[must_use]
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.stream = self.stream.recorder(recorder);
        self
    }

    /// Conditioner between the raw stream and the conditioned/drbg
    /// consumers.
    #[must_use]
    pub fn conditioner(mut self, spec: ConditionerSpec) -> Self {
        self.conditioner = spec;
        self
    }

    /// Default DRBG policy for drbg sessions (overridable per session
    /// via [`SessionConfig::drbg`]).
    #[must_use]
    pub fn drbg_config(mut self, config: DrbgConfig) -> Self {
        self.drbg = config;
        self
    }

    /// Bound on per-session reseed credits: how many harvests a
    /// session may take beyond its round-robin share before it is
    /// demoted (or told [`Error::Backpressure`] in fail-fast mode).
    /// Zero selects [`DEFAULT_RESEED_CREDITS`].
    #[must_use]
    pub fn reseed_credits(mut self, credits: u32) -> Self {
        self.reseed_credits = credits;
        self
    }

    /// Validates the configuration and spawns the shared deployment.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a typed [`ConfigError`] — this
    /// is the non-panicking path for configuration parsed from
    /// untrusted input (converted into [`Error::InvalidConfig`] by the
    /// daemon via `From`).
    pub fn build(self) -> Result<EntropySource, ConfigError> {
        self.conditioner.validate()?;
        if self.drbg.seed_bytes == 0 {
            return Err(ConfigError::SeedBytes);
        }
        let raw = self.stream.try_build()?;
        let telemetry = raw.telemetry();
        let modeled_mbps = raw.throughput_mbps();
        let stage = ConditionerStage::new(self.conditioner.build());
        let credits = if self.reseed_credits == 0 {
            DEFAULT_RESEED_CREDITS
        } else {
            self.reseed_credits
        };
        Ok(EntropySource {
            inner: Arc::new(Inner {
                shared: Mutex::new(Shared {
                    raw,
                    stage,
                    seed_carry: VecDeque::new(),
                    degraded: None,
                    arbiter: ReseedArbiter::new(),
                    conditioned_bytes: 0,
                    reseeds_served: 0,
                }),
                turns: EventCount::new(),
                telemetry,
                next_session: AtomicU64::new(0),
                live_sessions: AtomicU64::new(0),
                sessions_opened: AtomicU64::new(0),
                drbg_sessions: AtomicU64::new(0),
                stalled_reseeds: AtomicU64::new(0),
                modeled_mbps,
                spec: self.conditioner,
                drbg_config: self.drbg,
                max_reseed_credits: credits,
            }),
        })
    }
}

/// The deployment state every session contends for, behind one lock.
struct Shared {
    raw: EntropyStream,
    stage: ConditionerStage<Box<dyn Conditioner + Send>>,
    /// Conditioned bytes drawn for seed harvests but not yet consumed
    /// (the tail of the last chunk a harvest processed). Keeping this
    /// carry *global* is what makes a sole drbg session bit-identical
    /// to the legacy `DrbgPool`: harvests walk the conditioned stream
    /// with no gaps.
    seed_carry: VecDeque<u8>,
    /// Latched terminal failure; `Some` flips the source into degraded
    /// mode for every current and future session.
    degraded: Option<Error>,
    arbiter: ReseedArbiter,
    /// Conditioned bytes delivered (session reads + seed harvests).
    conditioned_bytes: u64,
    reseeds_served: u64,
}

impl Shared {
    /// Fills `out` with conditioned bytes: `carry` first, then whole
    /// chunks conditioned in place in the engine's pool buffers, the
    /// tail of the last chunk going back into `carry`.
    ///
    /// All-or-nothing: on a source error, bytes already copied into
    /// `out` are rolled back onto the front of `carry`, so the caller
    /// retrying with smaller reads still sees every healthy byte
    /// exactly once. (Same contract — same loop — as the legacy
    /// `ConditionedStream::read`.)
    fn draw_conditioned(&mut self, carry: &mut VecDeque<u8>, out: &mut [u8]) -> Result<(), Error> {
        let mut written = 0;
        while written < out.len() {
            while written < out.len() {
                let Some(byte) = carry.pop_front() else {
                    break;
                };
                out[written] = byte;
                written += 1;
            }
            if written == out.len() {
                break;
            }
            let Self { raw, stage, .. } = self;
            let space = out.len() - written;
            let dest = &mut out[written..];
            match raw.with_next_chunk(|chunk| {
                let mut block = BitBlock::full(chunk);
                stage.process(&mut block);
                let emitted = block.whole_bytes();
                let take = emitted.min(space);
                dest[..take].copy_from_slice(&chunk[..take]);
                carry.extend(&chunk[take..emitted]);
                take
            }) {
                Ok(take) => written += take,
                Err(error) => {
                    self.raw.telemetry().rollback(written);
                    for &byte in out[..written].iter().rev() {
                        carry.push_front(byte);
                    }
                    self.degraded = Some(error);
                    return Err(error);
                }
            }
        }
        self.conditioned_bytes += out.len() as u64;
        Ok(())
    }
}

/// The handle-side state: the lock, the reseed wake-up channel, and
/// the lock-free counters.
struct Inner {
    shared: Mutex<Shared>,
    /// Signalled whenever the reseed queue moves (a harvest completes,
    /// a session demotes or withdraws, the source degrades). The same
    /// eventcount-style wakeup token as the ring hand-off uses: waiters
    /// register under the source lock (lossless), then park outside it.
    turns: EventCount,
    /// The deployment's always-on stage counters (shared with the
    /// engine's executor and workers).
    telemetry: Arc<Telemetry>,
    next_session: AtomicU64,
    live_sessions: AtomicU64,
    sessions_opened: AtomicU64,
    drbg_sessions: AtomicU64,
    stalled_reseeds: AtomicU64,
    modeled_mbps: f64,
    spec: ConditionerSpec,
    drbg_config: DrbgConfig,
    max_reseed_credits: u32,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, Shared> {
        self.shared.lock().expect("entropy source lock poisoned")
    }
}

/// A shared handle to one sharded deployment (engine + conditioning
/// stage), minting independent per-consumer [`Session`]s.
///
/// Cloning is cheap (an `Arc` bump) and every clone mints sessions
/// over the *same* underlying stream — the multi-client daemon hands
/// one clone to every connection thread. See the
/// [module docs](self) for the delivery and arbitration guarantees.
#[derive(Clone)]
pub struct EntropySource {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for EntropySource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EntropySource")
            .field("conditioner", &self.inner.spec)
            .field("drbg_config", &self.inner.drbg_config)
            .field("max_reseed_credits", &self.inner.max_reseed_credits)
            .field(
                "live_sessions",
                &self.inner.live_sessions.load(Ordering::Relaxed),
            )
            .finish_non_exhaustive()
    }
}

impl EntropySource {
    /// Starts configuring a shared source.
    pub fn builder() -> SourceBuilder {
        SourceBuilder::new()
    }

    /// Mints a session at `tier` with no quota and the source-default
    /// policies.
    pub fn session(&self, tier: Tier) -> Session {
        self.session_with(SessionConfig::new(tier))
    }

    /// Mints a session with an explicit per-session configuration.
    ///
    /// # Panics
    ///
    /// Panics if a per-session DRBG override carries zero
    /// `seed_bytes` (a programmer error — daemon-facing quotas and
    /// tiers are validated at the protocol layer instead).
    pub fn session_with(&self, config: SessionConfig) -> Session {
        let drbg_config = config.drbg.unwrap_or(self.inner.drbg_config);
        assert!(
            drbg_config.seed_bytes > 0,
            "session DRBG seed_bytes must be positive"
        );
        let id = self.inner.next_session.fetch_add(1, Ordering::Relaxed);
        self.inner.live_sessions.fetch_add(1, Ordering::Relaxed);
        self.inner.sessions_opened.fetch_add(1, Ordering::Relaxed);
        if config.tier == Tier::Drbg {
            self.inner.drbg_sessions.fetch_add(1, Ordering::Relaxed);
        }
        let max_credits = config
            .reseed_credits
            .unwrap_or(self.inner.max_reseed_credits);
        let rounds = self.inner.lock().arbiter.rounds();
        Session {
            source: self.clone(),
            id,
            tier: config.tier,
            quota: config.quota,
            delivered: 0,
            carry: VecDeque::new(),
            drbg: None,
            drbg_config,
            block: [0u8; BLOCK_BYTES],
            cursor: BLOCK_BYTES,
            material: Vec::with_capacity(drbg_config.seed_bytes),
            harvested_bytes: 0,
            credits: max_credits,
            max_credits,
            last_rounds_seen: rounds,
            fail_fast: config.fail_fast_backpressure,
            stall_on_failure: config.stall_reseeds_on_failure,
            degraded: false,
            stalled_reseeds: 0,
        }
    }

    /// A consistent snapshot of the source's service counters.
    pub fn stats(&self) -> SourceStats {
        let shared = self.inner.lock();
        SourceStats {
            shards: shared.raw.shards(),
            chunk_bytes: shared.raw.chunk_bytes(),
            restarts: shared.raw.restarts(),
            degraded: shared.degraded,
            live_sessions: self.inner.live_sessions.load(Ordering::Relaxed),
            sessions_opened: self.inner.sessions_opened.load(Ordering::Relaxed),
            reseeds_served: shared.reseeds_served,
            stalled_reseeds: self.inner.stalled_reseeds.load(Ordering::Relaxed),
            conditioned_bytes: shared.conditioned_bytes,
            consumed_bits: shared.stage.consumed(),
            emitted_bits: shared.stage.emitted(),
            modeled_raw_mbps: self.inner.modeled_mbps,
            telemetry: self.inner.telemetry.snapshot(),
        }
    }

    /// A live handle over the deployment's always-on stage counters —
    /// per-shard and aggregated snapshots without taking the source
    /// lock.
    pub fn metrics(&self) -> MetricsHandle {
        MetricsHandle::new(Arc::clone(&self.inner.telemetry))
    }

    /// The latched terminal failure, if the source has degraded.
    pub fn degraded(&self) -> Option<Error> {
        self.inner.lock().degraded
    }

    /// The conditioner between the raw stream and every
    /// conditioned/drbg consumer.
    pub fn conditioner(&self) -> ConditionerSpec {
        self.inner.spec
    }

    /// The source-default DRBG policy for drbg sessions.
    pub fn drbg_config(&self) -> DrbgConfig {
        self.inner.drbg_config
    }

    /// The bound on per-session reseed credits.
    pub fn max_reseed_credits(&self) -> u32 {
        self.inner.max_reseed_credits
    }

    /// Modeled hardware throughput of the raw tier (sum over shards).
    pub fn modeled_raw_mbps(&self) -> f64 {
        self.inner.modeled_mbps
    }

    /// Modeled conditioned-tier rate: raw rate over the conditioner's
    /// expected compression ratio.
    pub fn conditioned_mbps(&self) -> f64 {
        self.inner.modeled_mbps / self.inner.spec.expected_ratio()
    }

    /// Modeled drbg-tier rate under the source-default policy:
    /// conditioned rate times the DRBG expansion factor.
    pub fn drbg_mbps(&self) -> f64 {
        self.conditioned_mbps() * self.inner.drbg_config.expansion_factor()
    }
}

/// Per-session policy for [`EntropySource::session_with`].
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Quality tier the session reads at.
    pub tier: Tier,
    /// Lifetime byte budget; `None` = unmetered. A read that would
    /// exceed the remainder fails whole with [`Error::QuotaExceeded`]
    /// and delivers nothing.
    pub quota: Option<u64>,
    /// Per-session DRBG policy override (`None` = the source default).
    pub drbg: Option<DrbgConfig>,
    /// Per-session reseed-credit bound override (`None` = the source
    /// default).
    pub reseed_credits: Option<u32>,
    /// When out of reseed credits with other sessions contending,
    /// return the retriable [`Error::Backpressure`] instead of
    /// yielding a queue lap and blocking (default `false`).
    pub fail_fast_backpressure: bool,
    /// On terminal source failure during a reseed, keep serving from
    /// DRBG state — re-key from the last harvested material, count a
    /// stalled reseed, mark the session degraded — instead of
    /// surfacing the error (default `true`; the legacy `DrbgPool` shim
    /// turns it off).
    pub stall_reseeds_on_failure: bool,
}

impl SessionConfig {
    /// The defaults for `tier`: no quota, source-default policies,
    /// blocking backpressure, graceful reseed stalling.
    pub fn new(tier: Tier) -> Self {
        Self {
            tier,
            quota: None,
            drbg: None,
            reseed_credits: None,
            fail_fast_backpressure: false,
            stall_reseeds_on_failure: true,
        }
    }

    /// Sets the lifetime byte quota.
    #[must_use]
    pub fn quota(mut self, bytes: u64) -> Self {
        self.quota = Some(bytes);
        self
    }

    /// Overrides the DRBG policy for this session.
    #[must_use]
    pub fn drbg(mut self, config: DrbgConfig) -> Self {
        self.drbg = Some(config);
        self
    }

    /// Overrides the reseed-credit bound for this session.
    #[must_use]
    pub fn reseed_credits(mut self, credits: u32) -> Self {
        self.reseed_credits = Some(credits);
        self
    }

    /// Selects fail-fast backpressure (see
    /// [`fail_fast_backpressure`](Self::fail_fast_backpressure)).
    #[must_use]
    pub fn fail_fast(mut self, fail_fast: bool) -> Self {
        self.fail_fast_backpressure = fail_fast;
        self
    }

    /// Selects whether reseeds stall (degraded mode) or error on
    /// terminal source failure (see
    /// [`stall_reseeds_on_failure`](Self::stall_reseeds_on_failure)).
    #[must_use]
    pub fn stall_reseeds(mut self, stall: bool) -> Self {
        self.stall_reseeds_on_failure = stall;
        self
    }
}

/// A consistent snapshot of an [`EntropySource`]'s service counters —
/// what the daemon's `Stat` response serialises.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct SourceStats {
    /// Shards in the deployment.
    pub shards: usize,
    /// Engine merge granularity in bytes.
    pub chunk_bytes: usize,
    /// Health-triggered shard restarts performed so far.
    pub restarts: u64,
    /// The latched terminal failure, if the source has degraded.
    pub degraded: Option<Error>,
    /// Sessions currently alive.
    pub live_sessions: u64,
    /// Sessions ever minted.
    pub sessions_opened: u64,
    /// Reseed harvests served through the arbiter.
    pub reseeds_served: u64,
    /// Reseeds that stalled (re-keyed from stale material) because the
    /// source had degraded.
    pub stalled_reseeds: u64,
    /// Conditioned bytes delivered (session reads + seed harvests).
    pub conditioned_bytes: u64,
    /// Raw bits fed to the conditioner.
    pub consumed_bits: u64,
    /// Conditioned bits emitted.
    pub emitted_bits: u64,
    /// Modeled hardware throughput of the raw tier.
    pub modeled_raw_mbps: f64,
    /// Aggregated stage-counter snapshot from the deployment's
    /// always-on telemetry (see [`EntropySource::metrics`]).
    pub telemetry: Snapshot,
}

/// One consumer's handle onto a shared [`EntropySource`].
///
/// Sessions are `Send` (hand one to each connection thread) but
/// deliberately not `Clone`: the per-session state — carry buffer,
/// DRBG, quota, reseed credits — is what makes delivery exactly-once
/// *per session*.
pub struct Session {
    source: EntropySource,
    id: u64,
    tier: Tier,
    quota: Option<u64>,
    delivered: u64,
    /// Conditioned-tier carry: chunk tails and rolled-back bytes, per
    /// session (the rollback contract of the legacy
    /// `ConditionedStream`, now per consumer).
    carry: VecDeque<u8>,
    drbg: Option<HashDrbg>,
    drbg_config: DrbgConfig,
    block: [u8; BLOCK_BYTES],
    /// Byte cursor into `block`; `BLOCK_BYTES` means exhausted.
    cursor: usize,
    /// Persistent seed-material buffer, reused across reseeds.
    material: Vec<u8>,
    harvested_bytes: u64,
    credits: u32,
    max_credits: u32,
    /// Arbiter round count at this session's last harvest: rounds
    /// advanced by others since then earn credits back.
    last_rounds_seen: u64,
    fail_fast: bool,
    stall_on_failure: bool,
    degraded: bool,
    stalled_reseeds: u64,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.id)
            .field("tier", &self.tier)
            .field("delivered", &self.delivered)
            .field("quota", &self.quota)
            .field("degraded", &self.degraded)
            .field("stalled_reseeds", &self.stalled_reseeds)
            .finish_non_exhaustive()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.source
            .inner
            .live_sessions
            .fetch_sub(1, Ordering::Relaxed);
        if self.tier == Tier::Drbg {
            self.source
                .inner
                .drbg_sessions
                .fetch_sub(1, Ordering::Relaxed);
        }
    }
}

impl Session {
    /// Fills `out` from this session's tier.
    ///
    /// # Errors
    ///
    /// * [`Error::QuotaExceeded`] — the request exceeds the remaining
    ///   quota; nothing is delivered and the session stays usable.
    /// * [`Error::Backpressure`] (fail-fast sessions only) — retriable;
    ///   the reseed queue was contended and this session is out of
    ///   credits.
    /// * Terminal source errors ([`Error::ShardFailed`] /
    ///   [`Error::ShardDisconnected`]) — surfaced by raw and
    ///   conditioned sessions (conditioned ones first drain and roll
    ///   back per the exactly-once contract), and by drbg sessions
    ///   only before instantiation or with reseed stalling disabled; a
    ///   stalling drbg session keeps serving in degraded mode instead
    ///   (check [`is_degraded`](Self::is_degraded)).
    pub fn read(&mut self, out: &mut [u8]) -> Result<(), Error> {
        if let Some(quota) = self.quota {
            let remaining = quota - self.delivered;
            if out.len() as u64 > remaining {
                return Err(Error::QuotaExceeded {
                    requested: out.len() as u64,
                    remaining,
                });
            }
        }
        match self.tier {
            Tier::Raw => self.read_raw(out),
            Tier::Conditioned => self.read_conditioned(out),
            Tier::Drbg => self.read_drbg(out),
        }?;
        self.delivered += out.len() as u64;
        self.source.inner.telemetry.session_bytes(out.len());
        Ok(())
    }

    /// Forces any lazy setup now: a drbg session harvests its
    /// instantiate material immediately instead of on first read.
    ///
    /// The daemon calls this at `Hello` time so a shard retirement
    /// *after* session setup can never strand a client without DRBG
    /// state — the degraded path always has material to re-key from.
    ///
    /// # Errors
    ///
    /// The harvest's error, as [`read`](Self::read).
    pub fn prime(&mut self) -> Result<(), Error> {
        if self.tier == Tier::Drbg && self.drbg.is_none() {
            self.harvest()?;
            self.drbg = Some(HashDrbg::instantiate(&self.material, self.drbg_config));
        }
        Ok(())
    }

    fn read_raw(&mut self, out: &mut [u8]) -> Result<(), Error> {
        let inner = Arc::clone(&self.source.inner);
        let mut shared = inner.lock();
        match shared.raw.read(out) {
            Ok(()) => Ok(()),
            Err(error) => {
                shared.degraded = Some(error);
                Err(error)
            }
        }
    }

    fn read_conditioned(&mut self, out: &mut [u8]) -> Result<(), Error> {
        let inner = Arc::clone(&self.source.inner);
        let mut shared = inner.lock();
        shared.draw_conditioned(&mut self.carry, out)
    }

    fn read_drbg(&mut self, out: &mut [u8]) -> Result<(), Error> {
        let mut written = 0;
        while written < out.len() {
            if self.cursor == BLOCK_BYTES {
                if let Err(error) = self.refill_block() {
                    // Rewind the current block by what this call copied
                    // from it (refills fail before `generate`, so the
                    // block is intact) — the legacy DrbgPool contract.
                    let rewind = written.min(BLOCK_BYTES);
                    self.cursor -= rewind;
                    return Err(error);
                }
            }
            let take = (out.len() - written).min(BLOCK_BYTES - self.cursor);
            out[written..written + take]
                .copy_from_slice(&self.block[self.cursor..self.cursor + take]);
            self.cursor += take;
            written += take;
        }
        Ok(())
    }

    /// Produces the next DRBG output block, harvesting (or stalling)
    /// a reseed first when the policy requires it.
    fn refill_block(&mut self) -> Result<(), Error> {
        if self.drbg.is_none() {
            // Instantiation cannot degrade gracefully: there is no
            // state to keep serving from yet.
            self.harvest()?;
            self.drbg = Some(HashDrbg::instantiate(&self.material, self.drbg_config));
        }
        let needs_reseed = self
            .drbg
            .as_ref()
            .expect("instantiated above")
            .needs_reseed();
        if needs_reseed {
            match self.harvest() {
                Ok(()) => {
                    let drbg = self.drbg.as_mut().expect("instantiated above");
                    drbg.reseed(&self.material);
                }
                Err(error) if !error.is_retriable() && self.stall_on_failure => {
                    // Degraded mode: the source is gone, but the session
                    // keeps its deterministic state. Re-key from the
                    // *last* harvested material so output keeps moving;
                    // count the stall so `Stat` can report it.
                    self.degraded = true;
                    self.stalled_reseeds += 1;
                    self.source
                        .inner
                        .stalled_reseeds
                        .fetch_add(1, Ordering::Relaxed);
                    self.source.inner.telemetry.reseed_stalled(self.id);
                    let drbg = self.drbg.as_mut().expect("instantiated above");
                    drbg.reseed(&self.material);
                }
                Err(error) => return Err(error),
            }
        }
        let drbg = self.drbg.as_mut().expect("instantiated above");
        drbg.generate(&mut self.block)
            .expect("reseed just satisfied the interval");
        self.cursor = 0;
        Ok(())
    }

    /// Credits this session would hold right now: stored credits plus
    /// one earned per round others advanced since its last harvest,
    /// capped at the bound.
    fn effective_credits(&self, rounds_now: u64) -> u32 {
        let earned = rounds_now.saturating_sub(self.last_rounds_seen);
        let earned = earned.min(u64::from(self.max_credits)) as u32;
        self.credits.saturating_add(earned).min(self.max_credits)
    }

    /// Draws `drbg_config.seed_bytes` of conditioned seed material
    /// into `self.material`, through the round-robin reseed arbiter.
    fn harvest(&mut self) -> Result<(), Error> {
        self.material.resize(self.drbg_config.seed_bytes, 0);
        let inner = Arc::clone(&self.source.inner);
        let mut shared = inner.lock();
        if let Some(error) = shared.degraded {
            return Err(error);
        }
        if self.fail_fast
            && self.effective_credits(shared.arbiter.rounds()) == 0
            && (shared.arbiter.contenders() > 0 || inner.drbg_sessions.load(Ordering::Relaxed) > 1)
        {
            return Err(Error::Backpressure);
        }
        shared.arbiter.enqueue(self.id);
        let mut demoted = false;
        loop {
            if let Some(error) = shared.degraded {
                shared.arbiter.remove(self.id);
                inner.turns.notify_all();
                return Err(error);
            }
            let credits = self.effective_credits(shared.arbiter.rounds());
            match shared.arbiter.turn(self.id, credits, demoted) {
                Turn::Serve => break,
                Turn::Demote => {
                    shared.arbiter.demote(self.id);
                    demoted = true;
                    inner.turns.notify_all();
                }
                Turn::Wait => {}
            }
            // Register under the lock (a notify cannot slip between the
            // turn check and the registration), then sleep outside it.
            let epoch = inner.turns.prepare();
            drop(shared);
            inner.turns.wait(epoch);
            shared = inner.lock();
        }
        // Our turn: draw through the shared seed carry so harvests walk
        // the conditioned stream without gaps.
        let mut seed_carry = std::mem::take(&mut shared.seed_carry);
        let result = shared.draw_conditioned(&mut seed_carry, &mut self.material);
        shared.seed_carry = seed_carry;
        match result {
            Ok(()) => {
                let credits = self.effective_credits(shared.arbiter.rounds());
                self.credits = credits.saturating_sub(1);
                shared.arbiter.served(self.id);
                self.last_rounds_seen = shared.arbiter.rounds();
                shared.reseeds_served += 1;
                inner.telemetry.reseed_granted(self.id);
                self.harvested_bytes += self.material.len() as u64;
                inner.turns.notify_all();
                Ok(())
            }
            Err(error) => {
                // `draw_conditioned` latched `shared.degraded`; release
                // the queue so every waiter observes it.
                shared.arbiter.remove(self.id);
                inner.turns.notify_all();
                Err(error)
            }
        }
    }

    /// The source this session draws from.
    pub fn source(&self) -> &EntropySource {
        &self.source
    }

    /// The source-unique session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The tier this session reads at.
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Bytes delivered to this session so far.
    pub fn bytes_delivered(&self) -> u64 {
        self.delivered
    }

    /// The lifetime byte quota, if any.
    pub fn quota(&self) -> Option<u64> {
        self.quota
    }

    /// Bytes the quota still allows (`None` = unmetered).
    pub fn quota_remaining(&self) -> Option<u64> {
        self.quota.map(|q| q - self.delivered)
    }

    /// The DRBG policy this session expands under.
    pub fn drbg_config(&self) -> &DrbgConfig {
        &self.drbg_config
    }

    /// DRBG reseeds performed (fresh and stalled; the lazy
    /// instantiation not counted).
    pub fn reseeds(&self) -> u64 {
        self.drbg.as_ref().map_or(0, HashDrbg::reseeds)
    }

    /// Reseeds that stalled (re-keyed from stale material) because the
    /// source had degraded.
    pub fn stalled_reseeds(&self) -> u64 {
        self.stalled_reseeds
    }

    /// Whether this session has entered degraded mode (serving from
    /// DRBG state over a dead source).
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Conditioned bytes this session has harvested as seed material.
    pub fn harvested_bytes(&self) -> u64 {
        self.harvested_bytes
    }

    /// Reseed credits currently held (before queue-earned top-ups).
    pub fn reseed_credits(&self) -> u32 {
        self.credits
    }

    /// Direct access to the conditioned-tier carry, for tests that
    /// stage rollback scenarios.
    #[cfg(test)]
    pub(crate) fn carry_mut(&mut self) -> &mut VecDeque<u8> {
        &mut self.carry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source(seed: u64) -> EntropySource {
        EntropySource::builder()
            .shards(2)
            .seed(seed)
            .chunk_bytes(1024)
            .build()
            .expect("valid configuration")
    }

    #[test]
    fn builder_validates_instead_of_panicking() {
        let err = EntropySource::builder().shards(0).build().unwrap_err();
        assert_eq!(err, ConfigError::Shards { got: 0 });
        let err = EntropySource::builder()
            .conditioner(ConditionerSpec::XorFold(0))
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ConditionerRatio);
        let err = EntropySource::builder()
            .drbg_config(DrbgConfig {
                seed_bytes: 0,
                ..DrbgConfig::default()
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::SeedBytes);
        let err = EntropySource::builder()
            .health(HealthConfig {
                rct_cutoff: 1,
                ..HealthConfig::default()
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::RctCutoff { got: 1 });
    }

    #[test]
    fn sole_conditioned_session_matches_the_legacy_stream() {
        // One session over a shared source must reproduce the legacy
        // single-consumer ConditionedStream byte-for-byte.
        let mut session = source(5).session(Tier::Conditioned);
        let mut got = vec![0u8; 2048];
        session.read(&mut got).expect("healthy");

        let mut legacy = crate::pipeline::PipelineBuilder::new()
            .shards(2)
            .seed(5)
            .chunk_bytes(1024)
            .build_conditioned();
        let mut want = vec![0u8; 2048];
        legacy.read(&mut want).expect("healthy");
        assert_eq!(got, want);
        assert_eq!(session.bytes_delivered(), 2048);
    }

    #[test]
    fn two_conditioned_sessions_split_the_stream_without_overlap() {
        // Chunk-aligned alternating reads from two sessions must
        // partition the reference single-consumer stream exactly.
        let src = source(11);
        let per_chunk = 1024 / 2; // 2:1 CRC over 1024-byte chunks
        let mut a = src.session(Tier::Conditioned);
        let mut b = src.session(Tier::Conditioned);
        let mut merged = Vec::new();
        let mut buf = vec![0u8; per_chunk];
        for i in 0..8 {
            let session = if i % 2 == 0 { &mut a } else { &mut b };
            session.read(&mut buf).expect("healthy");
            merged.extend_from_slice(&buf);
        }

        let mut reference = source(11).session(Tier::Conditioned);
        let mut want = vec![0u8; merged.len()];
        reference.read(&mut want).expect("healthy");
        assert_eq!(merged, want, "alternating sessions partition the stream");
    }

    #[test]
    fn quota_rejects_whole_requests_and_session_stays_usable() {
        let src = source(3);
        let mut session = src.session_with(SessionConfig::new(Tier::Drbg).quota(100));
        let mut buf = [0u8; 64];
        session.read(&mut buf).expect("within quota");
        let err = session.read(&mut buf).unwrap_err();
        assert_eq!(
            err,
            Error::QuotaExceeded {
                requested: 64,
                remaining: 36
            }
        );
        assert!(!err.is_retriable());
        assert_eq!(
            session.bytes_delivered(),
            64,
            "failed read delivered nothing"
        );
        let mut rest = [0u8; 36];
        session
            .read(&mut rest)
            .expect("the remainder is deliverable");
        assert_eq!(session.quota_remaining(), Some(0));
    }

    #[test]
    fn fail_fast_session_sees_backpressure_then_recovers() {
        let src = source(9);
        // A competing drbg session makes the source contended.
        let other = src.session(Tier::Drbg);
        let mut starved = src.session_with(
            SessionConfig::new(Tier::Drbg)
                .reseed_credits(0)
                .fail_fast(true),
        );
        // 0 credits + a live competitor: the instantiate harvest is
        // refused with the retriable backpressure error.
        let err = starved.prime().unwrap_err();
        assert_eq!(err, Error::Backpressure);
        assert!(err.is_retriable());
        // The competitor leaves; the retry (the whole point of a
        // retriable error) succeeds.
        drop(other);
        starved.prime().expect("no contention left");
        let mut buf = [0u8; 32];
        starved.read(&mut buf).expect("instantiated");
    }

    #[test]
    fn drbg_sessions_degrade_instead_of_dying_on_shard_retirement() {
        let src = EntropySource::builder()
            .shards(2)
            .seed(13)
            .chunk_bytes(256)
            .inject_shard_failure(0, 2)
            .drbg_config(DrbgConfig {
                reseed_interval_bits: 512, // reseed every block
                seed_bytes: 16,
                prediction_resistance: false,
            })
            .build()
            .expect("valid configuration");
        let mut session = src.session(Tier::Drbg);
        session.prime().expect("source healthy at setup");
        // Read far past the injected retirement: every reseed after the
        // failure stalls, but the session never errors.
        let mut buf = [0u8; 64];
        let mut outputs = std::collections::HashSet::new();
        for _ in 0..64 {
            session.read(&mut buf).expect("degraded, not dead");
            assert!(outputs.insert(buf), "degraded output must keep moving");
        }
        assert!(session.is_degraded());
        assert!(session.stalled_reseeds() > 0);
        let stats = src.stats();
        assert!(matches!(
            stats.degraded,
            Some(Error::ShardFailed { shard: 0, .. })
        ));
        assert_eq!(stats.stalled_reseeds, session.stalled_reseeds());
        // A conditioned session on the same source is not so lucky:
        // terminal error once its carry is dry.
        let mut cond = src.session(Tier::Conditioned);
        let err = cond.read(&mut [0u8; 16]).unwrap_err();
        assert!(matches!(err, Error::ShardFailed { shard: 0, .. }));
    }

    #[test]
    fn stats_count_sessions_and_harvests() {
        let src = source(21);
        assert_eq!(src.stats().live_sessions, 0);
        let mut a = src.session(Tier::Drbg);
        let b = src.session(Tier::Conditioned);
        assert_eq!(src.stats().live_sessions, 2);
        assert_eq!(src.stats().sessions_opened, 2);
        a.prime().expect("healthy");
        let stats = src.stats();
        assert_eq!(stats.reseeds_served, 1);
        assert_eq!(stats.conditioned_bytes, src.drbg_config().seed_bytes as u64);
        drop(a);
        drop(b);
        assert_eq!(src.stats().live_sessions, 0);
        assert_eq!(src.stats().sessions_opened, 2);
    }
}
