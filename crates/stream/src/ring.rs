//! Lock-free single-producer/single-consumer ring — the worker→merger
//! chunk hand-off.
//!
//! Before this module, every chunk crossed a `std::sync::mpsc` bounded
//! channel (a `Mutex` + `Condvar` under the hood) twice per lap: once
//! from the shard worker to the merge loop, once back through the pool
//! return channel. This ring replaces both directions with a
//! fixed-capacity power-of-two slot array and two `AtomicUsize`
//! cursors:
//!
//! * the **producer** owns `tail`: it writes a slot, then publishes it
//!   with a `Release` store of `tail + 1`;
//! * the **consumer** owns `head`: it observes published slots with an
//!   `Acquire` load of `tail`, takes the value, then frees the slot
//!   with a `Release` store of `head + 1`;
//! * both cursors are **cache-line padded** so the producer's `tail`
//!   line never false-shares with the consumer's `head` line;
//! * the hand-off is **allocation-free**: slots are pre-built at
//!   construction and values (the engine's recycled pool buffers) move
//!   in and out of them by `Option::take` — nothing is boxed, queued
//!   nodes are never allocated.
//!
//! Because there is exactly one producer and one consumer, `Acquire`/
//! `Release` on the two cursors is the entire synchronisation story
//! for the data path (`DESIGN.md` §10 spells the argument out). The
//! *waiting* story — a consumer blocking on an empty ring, a producer
//! on a full one — runs over the spin → yield → park ladder in
//! the private `wake` module: an idle merge loop is parked, and costs
//! the producer one uncontended load per push to leave parked.
//!
//! Shard retirement stays **in-band**: the engine's rings carry
//! [`ShardMessage`](crate::shard::ShardFailure)-shaped `Result`s, so a
//! retiring shard's obituary occupies a tagged slot in its queue
//! position and surfaces exactly at the retired shard's round-robin
//! turn — the merged-prefix contract is unchanged from the channel
//! era. Hang-up detection is two `AtomicBool`s: dropping either handle
//! wakes and un-blocks the other side ([`Consumer::pop`] drains
//! residual slots before reporting the disconnect, exactly like
//! `mpsc`).
//!
//! The module is public so the bench harness can measure the hand-off
//! against its `mpsc` baseline (`handoff` criterion group,
//! `scaling.handoff_ns_per_chunk` in the bench report), and so the
//! property/stress suites in `tests/ring_props.rs` can drive it
//! directly; the engine consumes it through `pub(crate)` wiring.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::wake::{Backoff, WakeToken};

/// Pads (and aligns) a value to its own 64-byte cache line, so the
/// producer-owned and consumer-owned cursors never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct CachePadded<T>(T);

/// The state both handles share.
struct Shared<T> {
    /// `capacity - 1`; the capacity is a power of two, so this masks a
    /// monotonically increasing cursor down to a slot index.
    mask: usize,
    /// Slot storage, length `capacity`, pre-built at construction.
    slots: Box<[UnsafeCell<Option<T>>]>,
    /// Consumer cursor: slots `< head` have been drained.
    head: CachePadded<AtomicUsize>,
    /// Producer cursor: slots `< tail` have been published.
    tail: CachePadded<AtomicUsize>,
    producer_alive: AtomicBool,
    consumer_alive: AtomicBool,
    /// The consumer parks here when the ring is empty.
    data_ready: WakeToken,
    /// The producer parks here when the ring is full.
    space_ready: WakeToken,
    /// Telemetry: how many times either side actually parked. Shared
    /// `Arc`s so the engine can pool every ring's tally into one
    /// stream-wide counter (see `telemetry::Telemetry`).
    parks: Arc<AtomicU64>,
    /// Telemetry: how many notifies actually claimed a registered
    /// waiter. Not bounded by `parks`: a notify can catch a waiter
    /// between `prepare` and `cancel`, before it ever parked.
    wakes: Arc<AtomicU64>,
}

// SAFETY: the ring moves `T` values across threads (producer writes a
// slot, consumer takes from it), so `T: Send` is required and
// sufficient. The `UnsafeCell` slots are never accessed concurrently:
// the producer only touches slots in `[head + capacity, tail]` --
// wait-free disjoint from the consumer's `[head, tail)` window -- see
// the safety comments at the two access sites.
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for Shared<T> {}
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for Shared<T> {}

/// Why a [`Producer::try_push`] did not take the value.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// Every slot is occupied; the value is handed back.
    Full(T),
    /// The consumer is gone; the value is handed back and no push can
    /// ever succeed again.
    Disconnected(T),
}

/// Why a [`Consumer::try_pop`] returned no value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryPopError {
    /// No published slot right now (the producer is still alive).
    Empty,
    /// The ring is empty **and** the producer is gone: the stream has
    /// ended. Residual values are always drained before this is
    /// reported.
    Disconnected,
}

/// The sending half: exactly one exists per ring.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half: exactly one exists per ring.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ring::Producer")
            .field("capacity", &(self.shared.mask + 1))
            .finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ring::Consumer")
            .field("capacity", &(self.shared.mask + 1))
            .finish_non_exhaustive()
    }
}

/// Builds a ring with at least `capacity` slots (rounded up to the
/// next power of two) and returns its two handles.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn spsc<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    spsc_with_wait_counters(
        capacity,
        Arc::new(AtomicU64::new(0)),
        Arc::new(AtomicU64::new(0)),
    )
}

/// [`spsc`], with the park/wake telemetry counters supplied by the
/// caller instead of freshly allocated — the engine hands every ring
/// the same pair so the stream-wide `Snapshot` pools them. `parks`
/// counts threads that actually parked (either side); `wakes` counts
/// notifies that claimed a registered waiter.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn spsc_with_wait_counters<T>(
    capacity: usize,
    parks: Arc<AtomicU64>,
    wakes: Arc<AtomicU64>,
) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be positive");
    let capacity = capacity.next_power_of_two();
    let slots: Box<[UnsafeCell<Option<T>>]> =
        (0..capacity).map(|_| UnsafeCell::new(None)).collect();
    let shared = Arc::new(Shared {
        mask: capacity - 1,
        slots,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        producer_alive: AtomicBool::new(true),
        consumer_alive: AtomicBool::new(true),
        data_ready: WakeToken::new(),
        space_ready: WakeToken::new(),
        parks,
        wakes,
    });
    (
        Producer {
            shared: Arc::clone(&shared),
        },
        Consumer { shared },
    )
}

impl<T> Shared<T> {
    /// Counts a notify that actually woke a registered waiter.
    fn count_notify(&self, woke: bool) {
        if woke {
            self.wakes.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl<T> Producer<T> {
    /// Slots in the ring (the rounded-up capacity).
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Times either side of this ring (or any ring sharing the counter)
    /// actually parked its thread.
    pub fn parks(&self) -> u64 {
        self.shared.parks.load(Ordering::Relaxed)
    }

    /// Notifies that actually claimed a registered waiter.
    pub fn wakes(&self) -> u64 {
        self.shared.wakes.load(Ordering::Relaxed)
    }

    /// Pushes without blocking, handing the value back when the ring
    /// is full or the consumer is gone.
    ///
    /// # Errors
    ///
    /// [`TryPushError::Full`] / [`TryPushError::Disconnected`], both
    /// carrying `value` back.
    pub fn try_push(&mut self, value: T) -> Result<(), TryPushError<T>> {
        if !self.shared.consumer_alive.load(Ordering::Acquire) {
            return Err(TryPushError::Disconnected(value));
        }
        // Only this handle writes `tail`, so a relaxed self-read is
        // exact; `head` needs Acquire so the consumer's slot release
        // (the `take`) happens-before our overwrite of that slot.
        let tail = self.shared.tail.0.load(Ordering::Relaxed);
        let head = self.shared.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.shared.mask {
            return Err(TryPushError::Full(value));
        }
        // SAFETY: single producer -- only this thread writes slots at
        // `tail`, and the occupancy check above proved the consumer
        // has drained this slot (its cursor moved past it at least
        // `capacity` slots ago, published by the Acquire load of
        // `head`). No other access can overlap until the Release store
        // below publishes the slot.
        #[allow(unsafe_code)]
        unsafe {
            *self.shared.slots[tail & self.shared.mask].get() = Some(value);
        }
        self.shared
            .tail
            .0
            .store(tail.wrapping_add(1), Ordering::Release);
        let woke = self.shared.data_ready.notify();
        self.shared.count_notify(woke);
        Ok(())
    }

    /// Pushes, blocking (spin → yield → park) while the ring is full.
    ///
    /// # Errors
    ///
    /// Hands `value` back if the consumer is gone.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let mut value = value;
        let mut backoff = Backoff::new();
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(TryPushError::Disconnected(v)) => return Err(v),
                Err(TryPushError::Full(v)) => value = v,
            }
            if backoff.snooze() {
                self.shared.space_ready.prepare();
                // Re-check after registering: a pop (or the consumer's
                // death) in the window since try_push must not strand
                // us parked -- see the WakeToken protocol.
                let tail = self.shared.tail.0.load(Ordering::Relaxed);
                let head = self.shared.head.0.load(Ordering::Acquire);
                if tail.wrapping_sub(head) <= self.shared.mask
                    || !self.shared.consumer_alive.load(Ordering::Acquire)
                {
                    self.shared.space_ready.cancel();
                } else {
                    self.shared.parks.fetch_add(1, Ordering::Relaxed);
                    self.shared.space_ready.park();
                }
                backoff.wound();
            }
        }
    }
}

impl<T> Consumer<T> {
    /// Slots in the ring (the rounded-up capacity).
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Published slots currently waiting to be popped. Exact from the
    /// consumer side (only it moves `head`); the producer may publish
    /// more concurrently, so this is a floor, not a promise.
    pub fn len(&self) -> usize {
        let head = self.shared.head.0.load(Ordering::Relaxed);
        let tail = self.shared.tail.0.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// `len() == 0`.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Times either side of this ring (or any ring sharing the counter)
    /// actually parked its thread.
    pub fn parks(&self) -> u64 {
        self.shared.parks.load(Ordering::Relaxed)
    }

    /// Notifies that actually claimed a registered waiter.
    pub fn wakes(&self) -> u64 {
        self.shared.wakes.load(Ordering::Relaxed)
    }

    /// Pops without blocking.
    ///
    /// # Errors
    ///
    /// [`TryPopError::Empty`] when no slot is published yet;
    /// [`TryPopError::Disconnected`] when the ring is drained and the
    /// producer is gone.
    pub fn try_pop(&mut self) -> Result<T, TryPopError> {
        // Only this handle writes `head`, so a relaxed self-read is
        // exact; `tail` needs Acquire so the producer's slot write
        // happens-before our read of it.
        let head = self.shared.head.0.load(Ordering::Relaxed);
        let mut tail = self.shared.tail.0.load(Ordering::Acquire);
        if head == tail {
            if self.shared.producer_alive.load(Ordering::Acquire) {
                return Err(TryPopError::Empty);
            }
            // The producer may have pushed its final value(s) between
            // our `tail` load and its death flag: re-read so the last
            // message (often a shard's obituary) is never dropped.
            tail = self.shared.tail.0.load(Ordering::Acquire);
            if head == tail {
                return Err(TryPopError::Disconnected);
            }
        }
        // SAFETY: single consumer -- only this thread takes from slots
        // at `head`, and `head < tail` with the Acquire load above
        // proves the producer published this slot and will not touch
        // it again until our Release store of `head + 1` frees it.
        #[allow(unsafe_code)]
        let value = unsafe { (*self.shared.slots[head & self.shared.mask].get()).take() }
            .expect("SPSC invariant: published slot holds a value");
        self.shared
            .head
            .0
            .store(head.wrapping_add(1), Ordering::Release);
        let woke = self.shared.space_ready.notify();
        self.shared.count_notify(woke);
        Ok(value)
    }

    /// Pops, blocking (spin → yield → park) while the ring is empty.
    ///
    /// # Errors
    ///
    /// Errors only when the ring is drained **and** the producer is
    /// gone.
    pub fn pop(&mut self) -> Result<T, TryPopError> {
        let mut backoff = Backoff::new();
        loop {
            match self.try_pop() {
                Ok(value) => return Ok(value),
                Err(TryPopError::Disconnected) => return Err(TryPopError::Disconnected),
                Err(TryPopError::Empty) => {}
            }
            if backoff.snooze() {
                self.shared.data_ready.prepare();
                // Re-check after registering (mirrors `push`).
                let head = self.shared.head.0.load(Ordering::Relaxed);
                if self.shared.tail.0.load(Ordering::Acquire) != head
                    || !self.shared.producer_alive.load(Ordering::Acquire)
                {
                    self.shared.data_ready.cancel();
                } else {
                    self.shared.parks.fetch_add(1, Ordering::Relaxed);
                    self.shared.data_ready.park();
                }
                backoff.wound();
            }
        }
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.shared.producer_alive.store(false, Ordering::Release);
        // A parked consumer must observe the hang-up.
        let woke = self.shared.data_ready.notify();
        self.shared.count_notify(woke);
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.shared.consumer_alive.store(false, Ordering::Release);
        // A parked producer must observe the hang-up.
        let woke = self.shared.space_ready.notify();
        self.shared.count_notify(woke);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        let (tx, rx) = spsc::<u32>(3);
        assert_eq!(tx.capacity(), 4);
        assert_eq!(rx.capacity(), 4);
        let (tx, _rx) = spsc::<u32>(1);
        assert_eq!(tx.capacity(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = spsc::<u32>(0);
    }

    #[test]
    fn fifo_order_and_fullness() {
        let (mut tx, mut rx) = spsc::<u32>(2);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        assert_eq!(tx.try_push(3), Err(TryPushError::Full(3)));
        assert_eq!(rx.try_pop(), Ok(1));
        tx.try_push(3).unwrap();
        assert_eq!(rx.try_pop(), Ok(2));
        assert_eq!(rx.try_pop(), Ok(3));
        assert_eq!(rx.try_pop(), Err(TryPopError::Empty));
    }

    #[test]
    fn consumer_drains_residue_before_reporting_disconnect() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        tx.try_push(7).unwrap();
        tx.try_push(8).unwrap();
        drop(tx);
        assert_eq!(rx.try_pop(), Ok(7));
        assert_eq!(rx.pop(), Ok(8));
        assert_eq!(rx.try_pop(), Err(TryPopError::Disconnected));
        assert_eq!(rx.pop(), Err(TryPopError::Disconnected));
    }

    #[test]
    fn producer_observes_consumer_hangup() {
        let (mut tx, rx) = spsc::<u32>(1);
        tx.try_push(1).unwrap();
        drop(rx);
        assert_eq!(tx.push(2), Err(2));
        assert_eq!(tx.try_push(3), Err(TryPushError::Disconnected(3)));
    }

    #[test]
    fn blocking_round_trip_across_threads() {
        // A capacity-1 data ring forces maximal blocking on both sides.
        let (mut data_tx, mut data_rx) = spsc::<Vec<u8>>(1);
        let (mut pool_tx, mut pool_rx) = spsc::<Vec<u8>>(4);
        for _ in 0..2 {
            pool_tx.push(vec![0u8; 8]).unwrap();
        }
        let producer = std::thread::spawn(move || {
            let mut sent = 0u64;
            while let Ok(mut buffer) = pool_rx.pop() {
                buffer[..8].copy_from_slice(&sent.to_le_bytes());
                if data_tx.push(buffer).is_err() {
                    break;
                }
                sent += 1;
            }
            sent
        });
        for expect in 0..10_000u64 {
            let buffer = data_rx.pop().expect("producer alive");
            assert_eq!(u64::from_le_bytes(buffer[..8].try_into().unwrap()), expect);
            pool_tx.push(buffer).expect("producer alive");
        }
        drop(data_rx);
        drop(pool_tx);
        let sent = producer.join().expect("producer exits");
        assert!(sent >= 10_000);
    }
}
