//! Parallel XORed ring oscillators — the classic Wold–Tan structure the
//! paper characterises in Table 1 (min-entropy vs ring order at 100 MHz
//! sampling).

use dhtrng_core::model::{table1_ro_bias, table1_ro_coverage};
use dhtrng_core::Trng;

use crate::source::BehaviouralSource;

/// Number of parallel rings XORed in the Table 1 characterisation.
pub const TABLE1_RINGS: usize = 4;
/// Sampling clock of the Table 1 characterisation (the paper: 100 MHz).
pub const TABLE1_SAMPLING_HZ: f64 = 100.0e6;

/// A bank of parallel `stages`-stage ring oscillators, XORed and sampled
/// at 100 MHz.
///
/// # Example
///
/// ```
/// use dhtrng_baselines::RoXorTrng;
/// use dhtrng_core::Trng;
///
/// // The paper's best plain-RO order.
/// let mut bank = RoXorTrng::table1(9, 42);
/// let bits = bank.collect_bits(10_000);
/// assert_eq!(bits.len(), 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct RoXorTrng {
    stages: u32,
    source: BehaviouralSource,
}

impl RoXorTrng {
    /// The Table 1 configuration: 4 parallel rings of the given order,
    /// with bias/coverage calibrated against the paper's silicon sweep.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= stages <= 13` (the sweep's range).
    pub fn table1(stages: u32, seed: u64) -> Self {
        let bias = table1_ro_bias(stages);
        let coverage = table1_ro_coverage(stages);
        // Ring period: 2 * N * (LUT + route) at ~0.6 ns/stage.
        let period_ns = 2.0 * f64::from(stages) * 0.62;
        let periods: Vec<f64> = (0..TABLE1_RINGS)
            .map(|i| period_ns * (1.0 + 0.01 * i as f64))
            .collect();
        Self {
            stages,
            source: BehaviouralSource::new(
                coverage,
                bias,
                &periods,
                1e9 / TABLE1_SAMPLING_HZ,
                seed,
            ),
        }
    }

    /// Ring order.
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Per-sample randomness coverage of the bank.
    pub fn randomness_coverage(&self) -> f64 {
        self.source.p_rand()
    }

    /// Calibrated residual bias of the bank.
    pub fn residual_bias(&self) -> f64 {
        self.source.bias()
    }
}

impl Trng for RoXorTrng {
    fn next_bit(&mut self) -> bool {
        self.source.next_bit()
    }

    fn next_bits(&mut self, n: u32) -> u64 {
        self.source.next_bits(n)
    }

    fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.source.fill_bytes(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_table1_range() {
        for stages in 2..=13 {
            let mut bank = RoXorTrng::table1(stages, 5);
            assert_eq!(bank.stages(), stages);
            let bits = bank.collect_bits(50_000);
            let ones = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
            assert!((ones - 0.5).abs() < 0.03, "stages {stages}: {ones}");
        }
    }

    #[test]
    fn nine_stages_has_the_lowest_bias() {
        let best = (2..=13)
            .min_by(|&a, &b| {
                RoXorTrng::table1(a, 1)
                    .residual_bias()
                    .partial_cmp(&RoXorTrng::table1(b, 1).residual_bias())
                    .unwrap()
            })
            .unwrap();
        assert_eq!(best, 9, "Table 1 peak must be at 9 stages");
    }

    #[test]
    fn shorter_rings_have_more_coverage() {
        let fast = RoXorTrng::table1(2, 1).randomness_coverage();
        let slow = RoXorTrng::table1(13, 1).randomness_coverage();
        assert!(fast > slow);
    }

    #[test]
    #[should_panic(expected = "Table 1 covers")]
    fn out_of_range_order_panics() {
        let _ = RoXorTrng::table1(14, 1);
    }
}
