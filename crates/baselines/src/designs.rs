//! The seven literature baselines of Table 6.
//!
//! Each struct couples a behavioural entropy model (capturing the
//! design's mechanism) with the published Artix-7 resource, throughput
//! and power figures from the DH-TRNG paper's Table 6.

use dhtrng_core::batch::pack_bits;
use dhtrng_core::Trng;
use dhtrng_fpga::ResourceReport;
use dhtrng_noise::gaussian::sample_normal;
use dhtrng_noise::metastability::MetastabilityModel;
use dhtrng_noise::NoiseRng;

use crate::source::BehaviouralSource;
use crate::Architecture;

/// Declares an [`Architecture`] impl from published Table 6 data.
macro_rules! architecture_row {
    ($ty:ty, $name:literal, $luts:literal, $dffs:literal, $slices:literal,
     $mbps:literal, $watts:literal) => {
        impl Architecture for $ty {
            fn name(&self) -> &'static str {
                $name
            }
            fn resources(&self) -> ResourceReport {
                ResourceReport::new($luts, 0, $dffs)
            }
            fn slices(&self) -> u32 {
                $slices
            }
            fn throughput_mbps(&self) -> f64 {
                $mbps
            }
            fn power_w(&self) -> f64 {
                $watts
            }
        }
    };
}

/// FPL'20 \[12\]: transition-effect ring oscillator (TERO) TRNG.
///
/// Mechanism: a TERO cell oscillates a random number of times after each
/// excitation before collapsing to a stable state; the parity of the
/// collapse count is the output bit. Collapse counts are approximately
/// normal, so parity is near-fair with entropy set by the count's spread.
#[derive(Debug, Clone)]
pub struct TeroTrng {
    rng: NoiseRng,
    mean_count: f64,
    sigma_count: f64,
}

impl TeroTrng {
    /// Creates a TERO TRNG (mean collapse count ~1000 ± 40, typical for
    /// a matched TERO cell).
    pub fn new(seed: u64) -> Self {
        Self {
            rng: NoiseRng::seed_from_u64(seed),
            mean_count: 1000.0,
            sigma_count: 40.0,
        }
    }

    /// One excitation-collapse cycle (both `Trng` paths).
    #[inline]
    fn cycle(&mut self) -> bool {
        let count = (self.mean_count + sample_normal(&mut self.rng, self.sigma_count))
            .round()
            .max(1.0) as u64;
        count % 2 == 1
    }
}

impl Trng for TeroTrng {
    fn next_bit(&mut self) -> bool {
        self.cycle()
    }

    fn next_bits(&mut self, n: u32) -> u64 {
        pack_bits(n, || self.cycle())
    }
}

architecture_row!(TeroTrng, "FPL'20", 40, 29, 10, 1.91, 0.043);

/// TCAS-II'21 \[13\]: ultra-compact latched ring oscillator TRNG.
///
/// Mechanism: a latched RO is repeatedly released into a metastable
/// race; the latch resolution (Gaussian-CDF, paper Eq. 2) is the bit.
/// A small input-offset mismatch gives the characteristic latch bias.
#[derive(Debug, Clone)]
pub struct LatchedRoTrng {
    rng: NoiseRng,
    meta: MetastabilityModel,
    offset_s: f64,
    noise_s: f64,
}

impl LatchedRoTrng {
    /// Creates a latched-RO TRNG with a 0.5 ps systematic latch offset
    /// over a 25 ps resolution window.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: NoiseRng::seed_from_u64(seed),
            meta: MetastabilityModel::fpga_dff(),
            offset_s: 0.5e-12,
            noise_s: 30.0e-12,
        }
    }

    /// One latch release-and-resolve cycle: the race arrives with
    /// jittered skew around the systematic offset; the latch resolves
    /// by Eq. 2.
    #[inline]
    fn cycle(&mut self) -> bool {
        let delta = self.offset_s + sample_normal(&mut self.rng, self.noise_s);
        self.meta.resolve(delta, &mut self.rng)
    }
}

impl Trng for LatchedRoTrng {
    fn next_bit(&mut self) -> bool {
        self.cycle()
    }

    fn next_bits(&mut self, n: u32) -> u64 {
        pack_bits(n, || self.cycle())
    }
}

architecture_row!(LatchedRoTrng, "TCASII'21", 4, 3, 1, 0.76, 0.025);

/// TCAS-I'21 \[14\]: high-throughput jitter-latch TRNG.
#[derive(Debug, Clone)]
pub struct JitterLatchTrng {
    source: BehaviouralSource,
}

impl JitterLatchTrng {
    /// Creates a jitter-latch TRNG (100 MHz output, two jitter rings).
    pub fn new(seed: u64) -> Self {
        Self {
            source: BehaviouralSource::new(0.55, 8.0e-5, &[3.1, 4.3], 10.0, seed),
        }
    }
}

impl Trng for JitterLatchTrng {
    fn next_bit(&mut self) -> bool {
        self.source.next_bit()
    }

    fn next_bits(&mut self, n: u32) -> u64 {
        self.source.next_bits(n)
    }

    fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.source.fill_bytes(buf);
    }
}

architecture_row!(JitterLatchTrng, "TCASI'21", 56, 19, 18, 100.0, 0.068);

/// TCAS-I'22 \[15\]: TEROT — three-edge ring oscillator with
/// time-to-digital conversion.
///
/// Mechanism: three edges race around a ring; a TDC quantises the
/// accumulated phase and the LSB of the code is the bit.
#[derive(Debug, Clone)]
pub struct TerotTrng {
    rng: NoiseRng,
    phase_s: f64,
    step_s: f64,
    jitter_s: f64,
    lsb_s: f64,
}

impl TerotTrng {
    /// Creates a TEROT TRNG (three-edge ring, 10 ps TDC LSB).
    pub fn new(seed: u64) -> Self {
        Self {
            rng: NoiseRng::seed_from_u64(seed),
            phase_s: 0.0,
            step_s: 1.234e-9,
            jitter_s: 18.0e-12,
            lsb_s: 10.0e-12,
        }
    }

    /// One edge-race-and-quantise cycle (both `Trng` paths).
    #[inline]
    fn cycle(&mut self) -> bool {
        self.phase_s += self.step_s + sample_normal(&mut self.rng, self.jitter_s);
        let code = (self.phase_s / self.lsb_s).floor() as i64;
        code % 2 != 0
    }
}

impl Trng for TerotTrng {
    fn next_bit(&mut self) -> bool {
        self.cycle()
    }

    fn next_bits(&mut self, n: u32) -> u64 {
        pack_bits(n, || self.cycle())
    }
}

architecture_row!(TerotTrng, "TCASI'22", 32, 55, 33, 12.5, 0.063);

/// TCAS-II'22 \[16\]: metastability TRNG using clock managers.
///
/// Mechanism: two MMCM-generated clocks with a slowly swept phase
/// offset drive a flip-flop toward its metastable point each cycle.
#[derive(Debug, Clone)]
pub struct MetastableCmTrng {
    rng: NoiseRng,
    meta: MetastabilityModel,
    sweep_phase: f64,
    sweep_rate: f64,
    sweep_span_s: f64,
    jitter_s: f64,
}

impl MetastableCmTrng {
    /// Creates a clock-manager metastability TRNG: the phase offset
    /// sweeps ±15 ps around the metastable point.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: NoiseRng::seed_from_u64(seed),
            meta: MetastabilityModel::fpga_dff(),
            sweep_phase: 0.0,
            sweep_rate: 0.003,
            sweep_span_s: 15.0e-12,
            jitter_s: 12.0e-12,
        }
    }

    /// One swept-phase capture cycle (both `Trng` paths).
    #[inline]
    fn cycle(&mut self) -> bool {
        self.sweep_phase = (self.sweep_phase + self.sweep_rate).rem_euclid(1.0);
        let offset = self.sweep_span_s * (2.0 * std::f64::consts::PI * self.sweep_phase).sin();
        let delta = offset + sample_normal(&mut self.rng, self.jitter_s);
        self.meta.resolve(delta, &mut self.rng)
    }
}

impl Trng for MetastableCmTrng {
    fn next_bit(&mut self) -> bool {
        self.cycle()
    }

    fn next_bits(&mut self, n: u32) -> u64 {
        pack_bits(n, || self.cycle())
    }
}

architecture_row!(MetastableCmTrng, "TCASII'22", 38, 121, 38, 300.0, 0.119);

/// TC'23 \[17\]: dual-mode PUF/TRNG circuit.
///
/// Mechanism: in TRNG mode the dual-mode cells are excited at their
/// metastable point; several cell outputs are XORed per bit.
#[derive(Debug, Clone)]
pub struct DualModePufTrng {
    rng: NoiseRng,
    meta: MetastabilityModel,
    cells: u32,
    mismatch_s: Vec<f64>,
}

impl DualModePufTrng {
    /// Creates a dual-mode TRNG with 4 XORed cells, each with its own
    /// manufacturing mismatch.
    pub fn new(seed: u64) -> Self {
        let mut rng = NoiseRng::seed_from_u64(seed);
        let cells = 4;
        let mismatch_s = (0..cells)
            .map(|_| sample_normal(&mut rng, 3.0e-12))
            .collect();
        Self {
            rng,
            meta: MetastabilityModel::fpga_dff(),
            cells,
            mismatch_s,
        }
    }

    /// One XOR-of-cells excitation cycle (both `Trng` paths).
    #[inline]
    fn cycle(&mut self) -> bool {
        let mut bit = false;
        for c in 0..self.cells as usize {
            let delta = self.mismatch_s[c] + sample_normal(&mut self.rng, 10.0e-12);
            bit ^= self.meta.resolve(delta, &mut self.rng);
        }
        bit
    }
}

impl Trng for DualModePufTrng {
    fn next_bit(&mut self) -> bool {
        self.cycle()
    }

    fn next_bits(&mut self, n: u32) -> u64 {
        pack_bits(n, || self.cycle())
    }
}

architecture_row!(DualModePufTrng, "TC'23", 152, 16, 40, 1.25, 0.023);

/// DAC'23 \[3\]: multiphase-sampler TRNG — the prior state of the art the
/// paper improves on by 2.63x.
///
/// Mechanism: several phase-shifted taps of one oscillator are sampled
/// each cycle and XORed, multiplying the per-cycle jitter-window
/// coverage.
#[derive(Debug, Clone)]
pub struct MultiphaseTrng {
    source: BehaviouralSource,
}

impl MultiphaseTrng {
    /// Creates the multiphase TRNG (8 phases, 275.8 MHz output).
    pub fn new(seed: u64) -> Self {
        // Eight phase taps: per-tap coverage ~0.2 at 275.8 MHz sampling
        // combines to 1 - 0.8^8 ~ 0.83.
        Self {
            source: BehaviouralSource::new(0.83, 5.0e-5, &[3.3, 3.3, 4.7], 3.626, seed),
        }
    }
}

impl Trng for MultiphaseTrng {
    fn next_bit(&mut self) -> bool {
        self.source.next_bit()
    }

    fn next_bits(&mut self, n: u32) -> u64 {
        self.source.next_bits(n)
    }

    fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.source.fill_bytes(buf);
    }
}

architecture_row!(MultiphaseTrng, "DAC'23", 24, 33, 13, 275.8, 0.049);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tero_collapse_parity_is_fair() {
        let mut t = TeroTrng::new(9);
        let n = 200_000;
        let ones = t.collect_bits(n).iter().filter(|&&b| b).count();
        let frac = ones as f64 / n as f64;
        // sigma = 40 counts: parity bias ~ exp(-2 pi^2 sigma^2) ~ 0.
        assert!((frac - 0.5).abs() < 0.005, "frac = {frac}");
    }

    #[test]
    fn latched_ro_offset_gives_slight_bias() {
        let mut t = LatchedRoTrng::new(10);
        let n = 500_000;
        let ones = t.collect_bits(n).iter().filter(|&&b| b).count();
        let frac = ones as f64 / n as f64;
        // offset/noise = 0.5/39 ps combined window: small positive bias.
        assert!(frac > 0.5, "offset must skew positive: {frac}");
        assert!(frac < 0.52, "but only slightly: {frac}");
    }

    #[test]
    fn terot_lsb_is_balanced() {
        let mut t = TerotTrng::new(11);
        let n = 200_000;
        let ones = t.collect_bits(n).iter().filter(|&&b| b).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn metastable_cm_sweep_stays_fair_on_average() {
        let mut t = MetastableCmTrng::new(12);
        let n = 200_000;
        let ones = t.collect_bits(n).iter().filter(|&&b| b).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn dual_mode_xor_washes_out_mismatch() {
        let mut t = DualModePufTrng::new(13);
        let n = 200_000;
        let ones = t.collect_bits(n).iter().filter(|&&b| b).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn published_rows_are_attached() {
        assert_eq!(TeroTrng::new(1).slices(), 10);
        assert_eq!(LatchedRoTrng::new(1).resources().luts, 4);
        assert_eq!(JitterLatchTrng::new(1).resources().dffs, 19);
        assert!((TerotTrng::new(1).power_w() - 0.063).abs() < 1e-12);
        assert!((MetastableCmTrng::new(1).throughput_mbps() - 300.0).abs() < 1e-12);
        assert_eq!(DualModePufTrng::new(1).resources().luts, 152);
        assert_eq!(MultiphaseTrng::new(1).slices(), 13);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = MultiphaseTrng::new(77);
        let mut b = MultiphaseTrng::new(77);
        assert_eq!(a.collect_bits(256), b.collect_bits(256));
    }
}
