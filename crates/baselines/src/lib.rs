//! Behavioural reimplementations of the TRNG architectures the DH-TRNG
//! paper compares against (Table 6), plus the parallel XORed ring
//! oscillators behind the paper's Table 1 characterisation.
//!
//! Every baseline implements [`dhtrng_core::Trng`] (so the whole
//! evaluation harness runs against it) and [`Architecture`] (name,
//! resources, throughput, power — the published Table 6 row for the
//! seven literature designs). The behavioural models capture each
//! design's entropy *mechanism* — oscillator-collapse counting for TERO,
//! latch resolution for the latched-RO and clock-manager designs, TDC
//! quantisation for TEROT, multiphase sampling for the DAC'23 design —
//! at the fidelity the workspace's experiments need; the resource /
//! throughput / power columns reproduce the published numbers verbatim
//! (their silicon, not ours).
//!
//! # Example
//!
//! ```
//! use dhtrng_baselines::{Architecture, MultiphaseTrng};
//! use dhtrng_core::Trng;
//!
//! let mut prior_sota = MultiphaseTrng::new(1);
//! let bits = prior_sota.collect_bits(1000);
//! assert_eq!(bits.len(), 1000);
//! assert!((prior_sota.throughput_mbps() - 275.8).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ro_xor;
pub mod source;
pub mod table6;

mod designs;

pub use designs::{
    DualModePufTrng, JitterLatchTrng, LatchedRoTrng, MetastableCmTrng, MultiphaseTrng, TeroTrng,
    TerotTrng,
};
pub use ro_xor::RoXorTrng;
pub use source::BehaviouralSource;
pub use table6::{paper_rows, Table6Row};

use dhtrng_core::Trng;
use dhtrng_fpga::ResourceReport;

/// A TRNG architecture with its platform-level characteristics.
///
/// For the seven literature baselines the numbers are the published
/// Table 6 rows (measured on Xilinx Artix-7 by the DH-TRNG authors).
pub trait Architecture: Trng {
    /// Design name, matching the Table 6 citation.
    fn name(&self) -> &'static str;

    /// Cell resources (LUTs/MUXes/DFFs).
    fn resources(&self) -> ResourceReport;

    /// Occupied slices.
    fn slices(&self) -> u32;

    /// Throughput in Mbps.
    fn throughput_mbps(&self) -> f64;

    /// Power in watts (Artix-7).
    fn power_w(&self) -> f64;

    /// The paper's comparison metric `Throughput / (Slices x Power)`.
    fn efficiency(&self) -> f64 {
        dhtrng_fpga::efficiency_metric(self.throughput_mbps(), self.slices(), self.power_w())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_baselines_generate_plausible_bits() {
        let mut designs: Vec<Box<dyn Architecture>> = vec![
            Box::new(TeroTrng::new(1)),
            Box::new(LatchedRoTrng::new(2)),
            Box::new(JitterLatchTrng::new(3)),
            Box::new(TerotTrng::new(4)),
            Box::new(MetastableCmTrng::new(5)),
            Box::new(DualModePufTrng::new(6)),
            Box::new(MultiphaseTrng::new(7)),
        ];
        for d in designs.iter_mut() {
            let n = 100_000;
            let ones = d.collect_bits(n).iter().filter(|&&b| b).count();
            let frac = ones as f64 / n as f64;
            assert!(
                (frac - 0.5).abs() < 0.02,
                "{}: ones fraction {frac}",
                d.name()
            );
            assert!(d.efficiency() > 0.0);
        }
    }

    #[test]
    fn efficiencies_match_table6() {
        let expected: &[(&str, f64)] = &[
            ("FPL'20", 4.44),
            ("TCASII'21", 30.40),
            ("TCASI'21", 81.70),
            ("TCASI'22", 6.01),
            ("TCASII'22", 66.34),
            ("TC'23", 1.36),
            ("DAC'23", 432.97),
        ];
        let designs: Vec<Box<dyn Architecture>> = vec![
            Box::new(TeroTrng::new(1)),
            Box::new(LatchedRoTrng::new(2)),
            Box::new(JitterLatchTrng::new(3)),
            Box::new(TerotTrng::new(4)),
            Box::new(MetastableCmTrng::new(5)),
            Box::new(DualModePufTrng::new(6)),
            Box::new(MultiphaseTrng::new(7)),
        ];
        for (d, &(name, eff)) in designs.iter().zip(expected) {
            assert_eq!(d.name(), name);
            let got = d.efficiency();
            assert!(
                (got - eff).abs() / eff < 0.02,
                "{name}: efficiency {got} vs published {eff}"
            );
        }
    }
}
