//! The published Table 6 comparison data.

use dhtrng_fpga::efficiency_metric;

/// One row of the paper's Table 6 (all power figures measured on
/// Xilinx Artix-7 by the DH-TRNG authors).
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct Table6Row {
    /// Design citation, e.g. `DAC'23`.
    pub design: &'static str,
    /// LUT count.
    pub luts: u32,
    /// DFF count.
    pub dffs: u32,
    /// Slice count.
    pub slices: u32,
    /// Throughput in Mbps.
    pub throughput_mbps: f64,
    /// Power in watts.
    pub power_w: f64,
    /// The efficiency value printed in the paper (recomputed values
    /// match to <1 %).
    pub published_efficiency: f64,
}

impl Table6Row {
    /// Recomputes `Throughput / (Slices x Power)` from the row's data.
    pub fn efficiency(&self) -> f64 {
        efficiency_metric(self.throughput_mbps, self.slices, self.power_w)
    }
}

/// All eight rows of Table 6, in the paper's order ("This work" last).
pub fn paper_rows() -> Vec<Table6Row> {
    vec![
        Table6Row {
            design: "FPL'20",
            luts: 40,
            dffs: 29,
            slices: 10,
            throughput_mbps: 1.91,
            power_w: 0.043,
            published_efficiency: 4.44,
        },
        Table6Row {
            design: "TCASII'21",
            luts: 4,
            dffs: 3,
            slices: 1,
            throughput_mbps: 0.76,
            power_w: 0.025,
            published_efficiency: 30.40,
        },
        Table6Row {
            design: "TCASI'21",
            luts: 56,
            dffs: 19,
            slices: 18,
            throughput_mbps: 100.0,
            power_w: 0.068,
            published_efficiency: 81.70,
        },
        Table6Row {
            design: "TCASI'22",
            luts: 32,
            dffs: 55,
            slices: 33,
            throughput_mbps: 12.5,
            power_w: 0.063,
            published_efficiency: 6.01,
        },
        Table6Row {
            design: "TCASII'22",
            luts: 38,
            dffs: 121,
            slices: 38,
            throughput_mbps: 300.0,
            power_w: 0.119,
            published_efficiency: 66.34,
        },
        Table6Row {
            design: "TC'23",
            luts: 152,
            dffs: 16,
            slices: 40,
            throughput_mbps: 1.25,
            power_w: 0.023,
            published_efficiency: 1.36,
        },
        Table6Row {
            design: "DAC'23",
            luts: 24,
            dffs: 33,
            slices: 13,
            throughput_mbps: 275.8,
            power_w: 0.049,
            published_efficiency: 432.97,
        },
        Table6Row {
            design: "This work",
            luts: 23,
            dffs: 14,
            slices: 8,
            throughput_mbps: 620.0,
            power_w: 0.068,
            published_efficiency: 1139.7,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_rows_ending_with_this_work() {
        let rows = paper_rows();
        assert_eq!(rows.len(), 8);
        assert_eq!(rows.last().unwrap().design, "This work");
    }

    #[test]
    fn recomputed_efficiencies_match_published() {
        for row in paper_rows() {
            let e = row.efficiency();
            assert!(
                (e - row.published_efficiency).abs() / row.published_efficiency < 0.01,
                "{}: {e} vs {}",
                row.design,
                row.published_efficiency
            );
        }
    }

    #[test]
    fn this_work_dominates_in_throughput_and_efficiency() {
        let rows = paper_rows();
        let ours = rows.last().unwrap();
        for other in &rows[..7] {
            assert!(
                ours.throughput_mbps > other.throughput_mbps,
                "{}",
                other.design
            );
            assert!(ours.efficiency() > other.efficiency(), "{}", other.design);
        }
        // And the 2.63x headline over the prior best.
        let prior_best = rows[..7]
            .iter()
            .map(Table6Row::efficiency)
            .fold(0.0, f64::max);
        let gain = ours.efficiency() / prior_best;
        assert!((gain - 2.63).abs() < 0.02, "gain = {gain}");
    }

    #[test]
    fn this_work_has_smallest_slice_count_except_the_single_slice_design() {
        let rows = paper_rows();
        let ours = rows.last().unwrap();
        // TCASII'21 is a 1-slice design; ours is smallest among the rest.
        for other in &rows[..7] {
            if other.design != "TCASII'21" {
                assert!(ours.slices < other.slices, "{}", other.design);
            }
        }
    }
}
