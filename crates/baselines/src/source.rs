//! Shared behavioural bit source.
//!
//! All baseline generators follow the same Eq. 5-shaped structure the
//! DH-TRNG core model uses: per sample, with probability `p_rand` the
//! architecture captures a fresh random event (jitter hit, metastable
//! resolution, collapse-count parity flip, …); otherwise the output is
//! the deterministic beat of its free-running oscillators. A small
//! architecture-specific systematic bias models sampler/latch mismatch.

use dhtrng_core::batch::BlockKernel;
use dhtrng_core::model::BeatOscillator;
use dhtrng_core::Trng;
use dhtrng_noise::NoiseRng;

/// A calibrated stochastic bit source (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct BehaviouralSource {
    p_rand: f64,
    bias: f64,
    beats: Vec<BeatOscillator>,
    rng: NoiseRng,
}

impl BehaviouralSource {
    /// Creates a source.
    ///
    /// `beat_periods_ns` lists the free-running oscillator periods in
    /// nanoseconds; `sample_ns` is the sampling clock period. Each beat
    /// gets a small per-instance mismatch so the beat increments are
    /// incommensurate.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p_rand <= 1`, `0 <= bias < 0.5`, and at least
    /// one beat period is supplied.
    pub fn new(p_rand: f64, bias: f64, beat_periods_ns: &[f64], sample_ns: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p_rand), "p_rand must be in [0,1]");
        assert!((0.0..0.5).contains(&bias), "bias must be in [0,0.5)");
        assert!(!beat_periods_ns.is_empty(), "need at least one oscillator");
        let mut rng = NoiseRng::seed_from_u64(seed);
        let beats = beat_periods_ns
            .iter()
            .map(|&period| {
                let mismatch = 1.0 + 0.02 * (rng.uniform() - 0.5);
                let increment = (sample_ns / (period * mismatch)).rem_euclid(1.0);
                BeatOscillator::new(rng.uniform(), increment, 0.5)
            })
            .collect();
        Self {
            p_rand,
            bias,
            beats,
            rng,
        }
    }

    /// Per-sample randomness coverage.
    pub fn p_rand(&self) -> f64 {
        self.p_rand
    }

    /// Systematic bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

impl Trng for BehaviouralSource {
    fn next_bit(&mut self) -> bool {
        let mut beat_xor = false;
        for beat in &mut self.beats {
            beat_xor ^= beat.step();
        }
        let mut bit = if self.rng.bernoulli(self.p_rand) {
            self.rng.bernoulli(0.5)
        } else {
            beat_xor
        };
        if !bit && self.rng.bernoulli(2.0 * self.bias) {
            bit = true;
        }
        bit
    }

    fn next_bits(&mut self, n: u32) -> u64 {
        match BlockKernel::new(&self.beats, self.p_rand, self.bias, None) {
            Some(mut kernel) => {
                let word = kernel.next_bits(&mut self.rng, n);
                kernel.write_back(&mut self.beats);
                word
            }
            None => dhtrng_core::batch::pack_bits(n, || self.next_bit()),
        }
    }

    fn fill_bytes(&mut self, buf: &mut [u8]) {
        let Some(mut kernel) = BlockKernel::new(&self.beats, self.p_rand, self.bias, None) else {
            for slot in buf {
                *slot = self.next_byte();
            }
            return;
        };
        kernel.fill_bytes(&mut self.rng, buf);
        kernel.write_back(&mut self.beats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_when_unbiased() {
        let mut s = BehaviouralSource::new(0.8, 0.0, &[3.7, 5.1], 1.6, 1);
        let n = 200_000;
        let ones = s.collect_bits(n).iter().filter(|&&b| b).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.005, "frac = {frac}");
    }

    #[test]
    fn bias_shows_up_in_the_mean() {
        let mut s = BehaviouralSource::new(0.5, 0.01, &[3.7], 1.6, 2);
        let n = 500_000;
        let ones = s.collect_bits(n).iter().filter(|&&b| b).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.51).abs() < 0.005, "frac = {frac}");
    }

    #[test]
    fn zero_coverage_is_pure_beat() {
        let mut a = BehaviouralSource::new(0.0, 0.0, &[3.0], 1.0, 3);
        let mut b = BehaviouralSource::new(0.0, 0.0, &[3.0], 1.0, 3);
        assert_eq!(a.collect_bits(256), b.collect_bits(256));
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = BehaviouralSource::new(0.7, 1e-4, &[2.9, 4.4], 1.6, 7);
        let mut b = BehaviouralSource::new(0.7, 1e-4, &[2.9, 4.4], 1.6, 7);
        assert_eq!(a.collect_bits(512), b.collect_bits(512));
    }

    #[test]
    #[should_panic(expected = "p_rand")]
    fn invalid_p_rand_panics() {
        let _ = BehaviouralSource::new(1.5, 0.0, &[1.0], 1.0, 1);
    }

    #[test]
    fn baselines_are_block_sources() {
        // Every baseline is a stage-graph source through the blanket
        // `BlockSource` impl, walking exactly the batched byte stream —
        // what lets the streaming executor shard any of them.
        use dhtrng_core::kernel::{BitBlock, BlockSource};
        let mut reference = BehaviouralSource::new(0.7, 1e-4, &[2.9, 4.4], 1.6, 7);
        let mut expect = vec![0u8; 64];
        Trng::fill_bytes(&mut reference, &mut expect);

        let mut source = BehaviouralSource::new(0.7, 1e-4, &[2.9, 4.4], 1.6, 7);
        let mut buf = vec![0u8; 64];
        let mut block = BitBlock::empty(&mut buf);
        source.fill_block(&mut block);
        assert_eq!(block.as_bytes(), &expect[..]);
    }
}
