//! Ring-oscillator jitter model (paper §2.1).
//!
//! A free-running ring oscillator accumulates timing uncertainty ("jitter")
//! on every transition. Following the standard decomposition used by the
//! phase-noise literature the paper builds on (Hajimiri JSSC'99, paper
//! Eq. 1), the variance of the accumulated jitter over an observation
//! interval `tau` is
//!
//! ```text
//! sigma^2(tau) = white * tau + flicker * tau^2
//! ```
//!
//! * the **white** (thermal) term grows linearly in `tau` — a random walk of
//!   independent per-edge perturbations;
//! * the **flicker** (1/f) term grows quadratically — slow correlated drift
//!   of the stage delays.
//!
//! The TRNG's entropy-per-sample is governed by how much of the oscillator
//! period is covered by the jitter uncertainty window when the sampler
//! fires: [`JitterModel::edge_hit_probability`] exposes exactly that
//! quantity (the `2*a*w_i / T_ro_i` term of the paper's Eq. 5).

use crate::gaussian::sample_normal;
use crate::rng::NoiseRng;

/// Stochastic jitter model of one free-running ring oscillator.
///
/// # Example
///
/// ```
/// use dhtrng_noise::JitterModel;
///
/// // A 500 MHz ring (2 ns period) with FPGA-typical jitter.
/// let j = JitterModel::fpga_ring_oscillator(2.0e-9);
/// // White-noise jitter accumulates as sqrt(tau): quadrupling the interval
/// // doubles the RMS jitter (while flicker is still negligible).
/// let s1 = j.accumulated_sigma(2.0e-9);
/// let s4 = j.accumulated_sigma(8.0e-9);
/// assert!((s4 / s1 - 2.0).abs() < 0.3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JitterModel {
    /// Oscillation period `T0` in seconds.
    period: f64,
    /// White-noise coefficient: variance seconds^2 per second of interval.
    white: f64,
    /// Flicker-noise coefficient: variance seconds^2 per second^2.
    flicker: f64,
}

/// Fraction of the period taken by the per-period RMS jitter of a typical
/// FPGA ring oscillator at the nominal corner (0.7 %; within the 0.1–1 %
/// band reported for LUT-based rings in the TRNG literature).
pub const FPGA_PER_PERIOD_JITTER_FRACTION: f64 = 0.007;

/// Observation interval, in units of the period, at which flicker noise
/// starts to dominate white noise for an FPGA ring oscillator.
pub const FPGA_FLICKER_CORNER_PERIODS: f64 = 30.0;

impl JitterModel {
    /// Creates a model from explicit coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not strictly positive or any coefficient is
    /// negative.
    pub fn new(period: f64, white: f64, flicker: f64) -> Self {
        assert!(period > 0.0, "period must be positive, got {period}");
        assert!(white >= 0.0, "white coefficient must be >= 0");
        assert!(flicker >= 0.0, "flicker coefficient must be >= 0");
        Self {
            period,
            white,
            flicker,
        }
    }

    /// Preset for a LUT-based FPGA ring oscillator of the given period.
    ///
    /// Per-period RMS jitter is [`FPGA_PER_PERIOD_JITTER_FRACTION`] of the
    /// period; the flicker corner sits at [`FPGA_FLICKER_CORNER_PERIODS`]
    /// periods, the regime relevant to the paper's 100 MHz–620 MHz sampling
    /// clocks.
    pub fn fpga_ring_oscillator(period: f64) -> Self {
        let sigma0 = FPGA_PER_PERIOD_JITTER_FRACTION * period;
        // sigma^2(T0) = white * T0  =>  white = sigma0^2 / T0.
        let white = sigma0 * sigma0 / period;
        // Flicker equals white at tau_c = corner * T0: flicker = white / tau_c.
        let flicker = white / (FPGA_FLICKER_CORNER_PERIODS * period);
        Self::new(period, white, flicker)
    }

    /// Returns a copy with all noise scaled by `factor` in RMS terms
    /// (variance scales by `factor^2`). Used by the PVT model.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor >= 0.0, "scale factor must be >= 0");
        Self {
            period: self.period,
            white: self.white * factor * factor,
            flicker: self.flicker * factor * factor,
        }
    }

    /// Returns a copy with the period replaced (noise coefficients kept).
    #[must_use]
    pub fn with_period(&self, period: f64) -> Self {
        Self::new(period, self.white, self.flicker)
    }

    /// The oscillation period `T0` in seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// The white-noise coefficient (variance per second).
    pub fn white_coefficient(&self) -> f64 {
        self.white
    }

    /// The flicker-noise coefficient (variance per second squared).
    pub fn flicker_coefficient(&self) -> f64 {
        self.flicker
    }

    /// RMS of the jitter accumulated over an interval of `tau` seconds.
    pub fn accumulated_sigma(&self, tau: f64) -> f64 {
        assert!(tau >= 0.0, "interval must be >= 0, got {tau}");
        (self.white * tau + self.flicker * tau * tau).sqrt()
    }

    /// RMS period jitter (accumulated over exactly one period).
    pub fn per_period_sigma(&self) -> f64 {
        self.accumulated_sigma(self.period)
    }

    /// Draws the jitter (seconds, signed) accumulated over `tau` seconds.
    pub fn sample_accumulated(&self, tau: f64, rng: &mut NoiseRng) -> f64 {
        sample_normal(rng, self.accumulated_sigma(tau))
    }

    /// Probability that a sample taken at a uniformly random phase, after
    /// the oscillator free-ran for `tau` seconds, lands inside the jitter
    /// uncertainty window of one of the two edges per period.
    ///
    /// This is the "randomness quantified from jitter" term of the paper's
    /// Eq. 5 (`2 a w_i / T_ro_i`): each edge carries an uncertainty window
    /// of width `2 * sigma(tau)` (± one RMS), there are two edges per
    /// period, and the result is clamped to 1 once the windows cover the
    /// whole period.
    pub fn edge_hit_probability(&self, tau: f64) -> f64 {
        let window = 2.0 * self.accumulated_sigma(tau);
        (2.0 * window / self.period).min(1.0)
    }

    /// The interval at which flicker and white contributions are equal.
    pub fn flicker_corner(&self) -> f64 {
        if self.flicker == 0.0 {
            f64::INFINITY
        } else {
            self.white / self.flicker
        }
    }
}

/// Slowly-wandering per-ring delay offset implementing the flicker (1/f)
/// component for the event-driven simulator.
///
/// Per-edge Gaussian draws can only realise the white component; flicker
/// requires correlation across edges. We model it as an Ornstein–Uhlenbeck
/// random walk of the ring's mean stage delay: `step()` advances the state
/// by one edge and returns the current offset in seconds.
#[derive(Debug, Clone)]
pub struct FlickerWalk {
    /// Current delay offset in seconds.
    offset: f64,
    /// Per-step kick RMS in seconds.
    kick_sigma: f64,
    /// Mean-reversion factor per step, in `(0, 1]`.
    reversion: f64,
}

impl FlickerWalk {
    /// Creates a walk whose stationary RMS is `stationary_sigma` seconds and
    /// whose correlation time is `correlation_steps` edges.
    ///
    /// # Panics
    ///
    /// Panics if `stationary_sigma < 0` or `correlation_steps < 1.0`.
    pub fn new(stationary_sigma: f64, correlation_steps: f64) -> Self {
        assert!(stationary_sigma >= 0.0);
        assert!(correlation_steps >= 1.0);
        let reversion = 1.0 / correlation_steps;
        // OU stationary variance = kick^2 / (2*reversion - reversion^2)
        //   => kick = stationary_sigma * sqrt(reversion * (2 - reversion)).
        let kick_sigma = stationary_sigma * (reversion * (2.0 - reversion)).sqrt();
        Self {
            offset: 0.0,
            kick_sigma,
            reversion,
        }
    }

    /// Advances the walk one edge and returns the current offset (seconds).
    pub fn step(&mut self, rng: &mut NoiseRng) -> f64 {
        self.offset = (1.0 - self.reversion) * self.offset + sample_normal(rng, self.kick_sigma);
        self.offset
    }

    /// The current offset without advancing.
    pub fn offset(&self) -> f64 {
        self.offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn white_only_scales_as_sqrt_tau() {
        let j = JitterModel::new(2.0e-9, 1.0e-22, 0.0);
        let s1 = j.accumulated_sigma(1.0e-9);
        let s4 = j.accumulated_sigma(4.0e-9);
        assert!((s4 / s1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn flicker_only_scales_as_tau() {
        let j = JitterModel::new(2.0e-9, 0.0, 1.0e-6);
        let s1 = j.accumulated_sigma(1.0e-9);
        let s2 = j.accumulated_sigma(2.0e-9);
        assert!((s2 / s1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn preset_per_period_fraction() {
        let period = 2.0e-9;
        let j = JitterModel::fpga_ring_oscillator(period);
        let frac = j.per_period_sigma() / period;
        // Slightly above the white-only 0.7% because flicker adds a little.
        assert!(frac >= FPGA_PER_PERIOD_JITTER_FRACTION);
        assert!(frac < 1.2 * FPGA_PER_PERIOD_JITTER_FRACTION);
    }

    #[test]
    fn flicker_corner_matches_preset() {
        let period = 1.0e-9;
        let j = JitterModel::fpga_ring_oscillator(period);
        let corner = j.flicker_corner();
        assert!((corner / (FPGA_FLICKER_CORNER_PERIODS * period) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn edge_hit_probability_monotone_and_clamped() {
        let j = JitterModel::fpga_ring_oscillator(2.0e-9);
        let mut prev = 0.0;
        for k in 1..2000 {
            let tau = k as f64 * 1.0e-9;
            let p = j.edge_hit_probability(tau);
            assert!(p >= prev);
            assert!(p <= 1.0);
            prev = p;
        }
        // Long enough accumulation saturates coverage at 1.
        assert_eq!(j.edge_hit_probability(1.0), 1.0);
    }

    #[test]
    fn scaled_noise_scales_sigma_linearly() {
        let j = JitterModel::fpga_ring_oscillator(2.0e-9);
        let k = j.scaled(1.5);
        let tau = 10.0e-9;
        assert!((k.accumulated_sigma(tau) / j.accumulated_sigma(tau) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn sample_accumulated_matches_sigma() {
        let j = JitterModel::fpga_ring_oscillator(2.0e-9);
        let mut rng = NoiseRng::seed_from_u64(21);
        let tau = 10.0e-9;
        let sigma = j.accumulated_sigma(tau);
        let n = 100_000;
        let var: f64 = (0..n)
            .map(|_| {
                let x = j.sample_accumulated(tau, &mut rng);
                x * x
            })
            .sum::<f64>()
            / n as f64;
        assert!((var.sqrt() / sigma - 1.0).abs() < 0.02);
    }

    #[test]
    fn flicker_walk_stationary_rms() {
        let sigma = 5.0e-12;
        let mut walk = FlickerWalk::new(sigma, 50.0);
        let mut rng = NoiseRng::seed_from_u64(22);
        // Burn-in, then measure.
        for _ in 0..10_000 {
            walk.step(&mut rng);
        }
        let n = 200_000;
        let var: f64 = (0..n)
            .map(|_| {
                let x = walk.step(&mut rng);
                x * x
            })
            .sum::<f64>()
            / n as f64;
        assert!(
            (var.sqrt() / sigma - 1.0).abs() < 0.1,
            "rms = {}, expected {}",
            var.sqrt(),
            sigma
        );
    }

    #[test]
    fn flicker_walk_is_correlated() {
        let mut walk = FlickerWalk::new(1.0e-12, 100.0);
        let mut rng = NoiseRng::seed_from_u64(23);
        for _ in 0..1000 {
            walk.step(&mut rng);
        }
        // Adjacent steps should be highly correlated for a 100-step
        // correlation time.
        let mut xs = Vec::new();
        for _ in 0..50_000 {
            xs.push(walk.step(&mut rng));
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>();
        let cov: f64 = xs
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>();
        let rho = cov / var;
        assert!(rho > 0.9, "lag-1 autocorrelation = {rho}");
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        let _ = JitterModel::new(0.0, 1.0, 1.0);
    }
}
