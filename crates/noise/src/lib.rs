//! Stochastic substrate for the DH-TRNG reproduction.
//!
//! The DH-TRNG paper (DAC 2024) extracts randomness from two analog
//! phenomena that do not exist in software:
//!
//! * **oscillation jitter** — phase noise of free-running ring oscillators
//!   caused by thermal/flicker noise (paper §2.1, Eq. 1, Hajimiri JSSC'99);
//! * **sampling metastability** — unpredictable resolution of a flip-flop
//!   whose data input violates setup/hold timing (paper §2.2, Eq. 2,
//!   Majzoobi CHES'11).
//!
//! This crate provides faithful *stochastic models* of both, plus the
//! process/voltage/temperature (PVT) environment the paper sweeps in its
//! Figure 9 experiment. Every model is driven by a seedable RNG so that all
//! experiments in the workspace are reproducible bit-for-bit.
//!
//! # Example
//!
//! ```
//! use dhtrng_noise::{JitterModel, MetastabilityModel, NoiseRng, PvtCorner};
//!
//! let mut rng = NoiseRng::seed_from_u64(7);
//! // Accumulated RMS jitter of a 500 MHz oscillator observed over 10 ns.
//! let jitter = JitterModel::fpga_ring_oscillator(2.0e-9);
//! let sigma = jitter.accumulated_sigma(10.0e-9);
//! assert!(sigma > 0.0);
//!
//! // Probability that a flip-flop sampling 5 ps after the data edge
//! // resolves to the new value.
//! let meta = MetastabilityModel::new(25.0e-12);
//! let p = meta.prob_new_value(5.0e-12);
//! assert!(p > 0.5 && p < 1.0);
//!
//! // The nominal corner of the paper's PVT sweep (20 °C, 1.0 V).
//! let corner = PvtCorner::nominal();
//! assert_eq!(corner.temp_c, 20.0);
//! let _bit = meta.resolve(0.0, &mut rng);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gaussian;
pub mod jitter;
pub mod math;
pub mod metastability;
pub mod phase_noise;
pub mod pvt;
pub mod rng;

pub use gaussian::Gaussian;
pub use jitter::JitterModel;
pub use metastability::MetastabilityModel;
pub use phase_noise::{HajimiriConstants, PhaseNoiseModel};
pub use pvt::{ProcessParams, PvtCorner, PvtFactors};
pub use rng::NoiseRng;
