//! Flip-flop metastability model (paper §2.2).
//!
//! When a flip-flop samples a data signal that transitions inside the
//! setup/hold window, the output is unpredictable. Majzoobi et al.
//! (CHES'11) showed the settling probability is modelled accurately by the
//! Gaussian CDF — the paper's Eq. 2:
//!
//! ```text
//! P(out = 1) = Q(delta / sigma)
//! ```
//!
//! where `delta` is the time between the data transition and the sampling
//! edge (positive when the transition happens *before* the clock edge — the
//! new value had `delta` seconds to propagate) and `sigma` is proportional
//! to the setup/hold window width.
//!
//! The DH-TRNG additionally exploits a second metastable mechanism: when
//! RO2's MUX switches to the *holding loop* mid-transition, the loop locks a
//! node at a subthreshold voltage, and sampling that node is a near-fair
//! coin flip (paper §3.1, the `tau` term of Eq. 5). [`SubthresholdLock`]
//! models that mechanism.

use crate::math::norm_q;
use crate::rng::NoiseRng;

/// Gaussian-CDF metastability model for a clocked sampling element.
///
/// # Example
///
/// ```
/// use dhtrng_noise::MetastabilityModel;
///
/// let meta = MetastabilityModel::new(25.0e-12);
/// // Sampling exactly at the transition: fair coin.
/// assert!((meta.prob_one(0.0) - 0.5).abs() < 1e-6);
/// // Data settled long before the edge: deterministic 1.
/// assert!(meta.prob_one(-1.0e-9) > 0.999_999);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetastabilityModel {
    /// Width parameter of the resolution CDF, in seconds.
    sigma: f64,
}

/// Default resolution-window sigma for an FPGA slice flip-flop (25 ps, the
/// order reported for 28–45 nm Xilinx devices in the metastability-TRNG
/// literature the paper cites).
pub const FPGA_DFF_SIGMA: f64 = 25.0e-12;

impl MetastabilityModel {
    /// Creates a model with resolution-window parameter `sigma` (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not strictly positive.
    pub fn new(sigma: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
        Self { sigma }
    }

    /// Model of a Xilinx 6/7-series slice flip-flop at the nominal corner.
    pub fn fpga_dff() -> Self {
        Self::new(FPGA_DFF_SIGMA)
    }

    /// The resolution-window parameter in seconds.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Returns a copy with sigma scaled by `factor` (PVT dependence).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Self::new(self.sigma * factor)
    }

    /// Probability the element resolves to the *new* data value when the
    /// data transitioned `delta` seconds **before** the sampling edge.
    ///
    /// Negative `delta` means the transition happens after the edge (the
    /// old value dominates); `delta = 0` is a fair coin. This is the
    /// paper's Eq. 2 with the sign convention `P(out = new) = Q(-delta /
    /// sigma)` so the probability *increases* with settling time.
    pub fn prob_new_value(&self, delta: f64) -> f64 {
        norm_q(-delta / self.sigma)
    }

    /// The paper's literal Eq. 2 form: `P(out = 1) = Q(delta / sigma)`.
    ///
    /// `delta` is the signed offset between the sampling edge and the
    /// moment a rising transition crosses the threshold; at `delta = 0`
    /// the output is a fair coin.
    pub fn prob_one(&self, delta: f64) -> f64 {
        norm_q(delta / self.sigma)
    }

    /// Samples the resolution outcome for a transition `delta` seconds
    /// before the sampling edge (`true` = the new value won).
    pub fn resolve(&self, delta: f64, rng: &mut NoiseRng) -> bool {
        rng.bernoulli(self.prob_new_value(delta))
    }

    /// Whether a transition at `delta` seconds from the edge is close
    /// enough to produce observable randomness (within `k` sigma).
    pub fn in_window(&self, delta: f64, k: f64) -> bool {
        delta.abs() <= k * self.sigma
    }
}

impl Default for MetastabilityModel {
    fn default() -> Self {
        Self::fpga_dff()
    }
}

/// Subthreshold-lock model for the DH-TRNG holding loop.
///
/// When RO2's MUX flips from the inverter loop to the holding loop while
/// the looped node is mid-transition, the node is "randomly locked at an
/// uncertain subthreshold state" (paper §3.1). Sampling such a node yields
/// a near-fair Bernoulli outcome; sampling a settled node yields the locked
/// logic value.
///
/// `lock_probability` is the probability that a switch event catches the
/// node mid-transition (the `tau` of the paper's Eq. 5); `ambiguity_bias`
/// bounds how far from fair the locked-state coin can be.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubthresholdLock {
    lock_probability: f64,
    ambiguity_bias: f64,
}

impl SubthresholdLock {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= lock_probability <= 1` and
    /// `0 <= ambiguity_bias <= 0.5`.
    pub fn new(lock_probability: f64, ambiguity_bias: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&lock_probability),
            "lock probability must be in [0,1], got {lock_probability}"
        );
        assert!(
            (0.0..=0.5).contains(&ambiguity_bias),
            "ambiguity bias must be in [0,0.5], got {ambiguity_bias}"
        );
        Self {
            lock_probability,
            ambiguity_bias,
        }
    }

    /// Nominal-corner model used by the DH-TRNG reproduction: the holding
    /// loop catches a transition slightly more often than not (tau = 0.55)
    /// and the locked coin is within 2 % of fair.
    pub fn dh_trng_nominal() -> Self {
        Self::new(0.55, 0.02)
    }

    /// Probability a mode switch locks the node mid-transition (Eq. 5 tau).
    pub fn lock_probability(&self) -> f64 {
        self.lock_probability
    }

    /// Maximum deviation from a fair coin when locked.
    pub fn ambiguity_bias(&self) -> f64 {
        self.ambiguity_bias
    }

    /// Returns a copy with the lock probability replaced.
    #[must_use]
    pub fn with_lock_probability(&self, p: f64) -> Self {
        Self::new(p, self.ambiguity_bias)
    }

    /// Samples the node: `settled_value` is what the node would read if it
    /// locked cleanly. Returns the sampled logic level.
    pub fn sample(&self, settled_value: bool, rng: &mut NoiseRng) -> bool {
        if rng.bernoulli(self.lock_probability) {
            // Mid-transition lock: near-fair coin with a small drawn bias.
            let bias = (rng.uniform() * 2.0 - 1.0) * self.ambiguity_bias;
            rng.bernoulli(0.5 + bias)
        } else {
            settled_value
        }
    }
}

impl Default for SubthresholdLock {
    fn default() -> Self {
        Self::dh_trng_nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq2_midpoint_is_fair() {
        let m = MetastabilityModel::fpga_dff();
        assert!((m.prob_one(0.0) - 0.5).abs() < 1e-6);
        assert!((m.prob_new_value(0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn eq2_monotone_in_delta() {
        let m = MetastabilityModel::fpga_dff();
        let mut prev = 1.0;
        for i in -100..=100 {
            let delta = i as f64 * 1.0e-12;
            let p = m.prob_one(delta);
            assert!(p <= prev + 1e-9, "Q must decrease with delta");
            prev = p;
        }
    }

    #[test]
    fn settled_data_is_deterministic() {
        let m = MetastabilityModel::fpga_dff();
        // 1 ns before the edge: fully settled.
        assert!(m.prob_new_value(1.0e-9) > 1.0 - 1e-9);
        // 1 ns after the edge: old value wins.
        assert!(m.prob_new_value(-1.0e-9) < 1e-9);
    }

    #[test]
    fn resolve_statistics_match_probability() {
        let m = MetastabilityModel::new(25.0e-12);
        let mut rng = NoiseRng::seed_from_u64(31);
        let delta = 10.0e-12;
        let expected = m.prob_new_value(delta);
        let n = 200_000;
        let ones = (0..n).filter(|_| m.resolve(delta, &mut rng)).count();
        let freq = ones as f64 / n as f64;
        assert!((freq - expected).abs() < 0.01, "freq {freq} vs {expected}");
    }

    #[test]
    fn window_membership() {
        let m = MetastabilityModel::new(10.0e-12);
        assert!(m.in_window(5.0e-12, 1.0));
        assert!(!m.in_window(15.0e-12, 1.0));
        assert!(m.in_window(15.0e-12, 2.0));
    }

    #[test]
    fn scaled_sigma() {
        let m = MetastabilityModel::new(10.0e-12).scaled(2.0);
        assert!((m.sigma() - 20.0e-12).abs() < 1e-24);
    }

    #[test]
    fn subthreshold_lock_is_near_fair_when_always_locking() {
        let lock = SubthresholdLock::new(1.0, 0.0);
        let mut rng = NoiseRng::seed_from_u64(32);
        let n = 200_000;
        let ones = (0..n).filter(|_| lock.sample(false, &mut rng)).count();
        let freq = ones as f64 / n as f64;
        assert!((freq - 0.5).abs() < 0.005, "freq = {freq}");
    }

    #[test]
    fn subthreshold_never_locking_returns_settled() {
        let lock = SubthresholdLock::new(0.0, 0.1);
        let mut rng = NoiseRng::seed_from_u64(33);
        for _ in 0..100 {
            assert!(lock.sample(true, &mut rng));
            assert!(!lock.sample(false, &mut rng));
        }
    }

    #[test]
    fn subthreshold_mixture_mean() {
        // With lock prob 0.5 and settled value fixed at 1, the expected
        // one-probability is 0.5*0.5 + 0.5*1 = 0.75.
        let lock = SubthresholdLock::new(0.5, 0.0);
        let mut rng = NoiseRng::seed_from_u64(34);
        let n = 200_000;
        let ones = (0..n).filter(|_| lock.sample(true, &mut rng)).count();
        let freq = ones as f64 / n as f64;
        assert!((freq - 0.75).abs() < 0.01, "freq = {freq}");
    }

    #[test]
    #[should_panic(expected = "lock probability")]
    fn invalid_lock_probability_panics() {
        let _ = SubthresholdLock::new(1.5, 0.0);
    }
}
