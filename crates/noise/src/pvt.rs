//! Process/voltage/temperature environment model (paper §4.5, Figure 9).
//!
//! The paper evaluates DH-TRNG from −20 °C to 80 °C and 0.8 V to 1.2 V on
//! two process nodes (45 nm Virtex-6, 28 nm Artix-7) and finds the
//! min-entropy peaks at 20 °C / 1.0 V, degrading only slightly at the
//! corners. This module supplies the scaling laws that create that
//! behaviour in the simulated circuit:
//!
//! * **delay** — alpha-power law in voltage, linear temperature coefficient
//!   (slower at low V and high T);
//! * **jitter** — thermal noise power grows as `sqrt(T)`; supply deviation
//!   from nominal adds regulator noise (a bowl centred at 1.0 V);
//! * **asymmetry** — duty-cycle/threshold distortion grows quadratically
//!   away from the nominal corner; this is the mechanism that *reduces*
//!   min-entropy at the corners even though raw jitter may grow;
//! * **leakage** — exponential in temperature, quadratic in voltage.

/// Operating corner: die temperature and core supply voltage.
///
/// # Example
///
/// ```
/// use dhtrng_noise::PvtCorner;
///
/// let corner = PvtCorner::new(80.0, 0.8);
/// assert!(corner.temp_c > PvtCorner::nominal().temp_c);
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PvtCorner {
    /// Die temperature in degrees Celsius.
    pub temp_c: f64,
    /// Core supply voltage in volts.
    pub vdd_v: f64,
}

/// Nominal temperature of the paper's sweep (°C).
pub const NOMINAL_TEMP_C: f64 = 20.0;
/// Nominal core voltage of the paper's sweep (V).
pub const NOMINAL_VDD_V: f64 = 1.0;

impl PvtCorner {
    /// Creates a corner.
    ///
    /// # Panics
    ///
    /// Panics outside the physically meaningful envelope (−55…125 °C,
    /// 0.5…1.5 V) — wider than the paper's sweep, narrower than nonsense.
    pub fn new(temp_c: f64, vdd_v: f64) -> Self {
        assert!(
            (-55.0..=125.0).contains(&temp_c),
            "temperature out of range: {temp_c} °C"
        );
        assert!(
            (0.5..=1.5).contains(&vdd_v),
            "voltage out of range: {vdd_v} V"
        );
        Self { temp_c, vdd_v }
    }

    /// The paper's nominal corner: 20 °C, 1.0 V.
    pub fn nominal() -> Self {
        Self::new(NOMINAL_TEMP_C, NOMINAL_VDD_V)
    }

    /// Die temperature in kelvin.
    pub fn temp_k(&self) -> f64 {
        self.temp_c + 273.15
    }

    /// Euclidean-ish distance from nominal, used by tests for monotonicity
    /// assertions (temperature normalised to the 100 °C sweep span,
    /// voltage to the 0.4 V span).
    pub fn distance_from_nominal(&self) -> f64 {
        let dt = (self.temp_c - NOMINAL_TEMP_C) / 100.0;
        let dv = (self.vdd_v - NOMINAL_VDD_V) / 0.4;
        (dt * dt + dv * dv).sqrt()
    }
}

impl Default for PvtCorner {
    fn default() -> Self {
        Self::nominal()
    }
}

impl std::fmt::Display for PvtCorner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.0} °C / {:.2} V", self.temp_c, self.vdd_v)
    }
}

/// Per-process scaling constants.
///
/// The two presets correspond to the paper's devices: 45 nm (Virtex-6) and
/// 28 nm (Artix-7).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessParams {
    /// Feature size in nanometres (identification only).
    pub nm: u32,
    /// Effective threshold voltage in volts.
    pub vth_v: f64,
    /// Velocity-saturation exponent of the alpha-power delay law.
    pub alpha: f64,
    /// Linear delay temperature coefficient per °C.
    pub delay_tc_per_c: f64,
    /// Quadratic supply-noise jitter coefficient (per (V/0.2)^2 deviation).
    pub jitter_supply_coeff: f64,
    /// Quadratic corner-asymmetry coefficient.
    pub asymmetry_coeff: f64,
    /// Temperature increase that doubles leakage, in °C.
    pub leak_doubling_c: f64,
}

impl ProcessParams {
    /// 45 nm process (Xilinx Virtex-6, xc6vlx240t).
    pub fn nm45() -> Self {
        Self {
            nm: 45,
            vth_v: 0.40,
            alpha: 1.3,
            delay_tc_per_c: 0.0012,
            jitter_supply_coeff: 0.06,
            asymmetry_coeff: 0.020,
            leak_doubling_c: 30.0,
        }
    }

    /// 28 nm process (Xilinx Artix-7, xc7a100t).
    pub fn nm28() -> Self {
        Self {
            nm: 28,
            vth_v: 0.35,
            alpha: 1.25,
            delay_tc_per_c: 0.0010,
            jitter_supply_coeff: 0.05,
            asymmetry_coeff: 0.018,
            leak_doubling_c: 28.0,
        }
    }

    /// Computes all scaling factors for the given corner, each normalised
    /// to exactly 1.0 (or 0.0 for asymmetry) at the nominal corner.
    pub fn factors(&self, corner: PvtCorner) -> PvtFactors {
        let nominal = PvtCorner::nominal();

        // Alpha-power delay law: t_d ∝ V / (V - Vth)^alpha.
        let alpha_power = |v: f64| v / (v - self.vth_v).powf(self.alpha);
        let delay_v = alpha_power(corner.vdd_v) / alpha_power(nominal.vdd_v);
        let delay_t = 1.0 + self.delay_tc_per_c * (corner.temp_c - nominal.temp_c);
        let delay = delay_v * delay_t;

        // Thermal jitter ∝ sqrt(T_kelvin); supply deviation adds noise.
        let dv = (corner.vdd_v - nominal.vdd_v) / 0.2;
        let jitter = (corner.temp_k() / nominal.temp_k()).sqrt()
            * (1.0 + self.jitter_supply_coeff * dv * dv);

        // Metastability window widens with slower transistors.
        let metastability = delay.sqrt();

        // Corner asymmetry: 0 at nominal, grows quadratically.
        let dt = (corner.temp_c - nominal.temp_c) / 100.0;
        let asymmetry = self.asymmetry_coeff * (dt * dt + dv * dv);

        // Leakage: doubles every `leak_doubling_c`, ∝ V^2.
        let leakage = 2f64.powf((corner.temp_c - nominal.temp_c) / self.leak_doubling_c)
            * (corner.vdd_v / nominal.vdd_v).powi(2);

        PvtFactors {
            delay,
            jitter,
            metastability,
            asymmetry,
            leakage,
        }
    }
}

/// Scaling factors produced by [`ProcessParams::factors`], all relative to
/// the nominal corner.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PvtFactors {
    /// Gate/net delay multiplier (1.0 at nominal).
    pub delay: f64,
    /// Jitter RMS multiplier (1.0 at nominal).
    pub jitter: f64,
    /// Metastability-window sigma multiplier (1.0 at nominal).
    pub metastability: f64,
    /// Sampling-threshold asymmetry (0.0 at nominal), an absolute duty
    /// distortion applied to sampled waveforms.
    pub asymmetry: f64,
    /// Static leakage power multiplier (1.0 at nominal).
    pub leakage: f64,
}

impl PvtFactors {
    /// Factors at the nominal corner: the identity scaling.
    pub fn identity() -> Self {
        Self {
            delay: 1.0,
            jitter: 1.0,
            metastability: 1.0,
            asymmetry: 0.0,
            leakage: 1.0,
        }
    }
}

impl Default for PvtFactors {
    fn default() -> Self {
        Self::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_factors_are_identity() {
        for p in [ProcessParams::nm45(), ProcessParams::nm28()] {
            let f = p.factors(PvtCorner::nominal());
            assert!((f.delay - 1.0).abs() < 1e-12);
            assert!((f.jitter - 1.0).abs() < 1e-12);
            assert!((f.metastability - 1.0).abs() < 1e-12);
            assert!(f.asymmetry.abs() < 1e-12);
            assert!((f.leakage - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn low_voltage_slows_the_circuit() {
        let p = ProcessParams::nm28();
        let slow = p.factors(PvtCorner::new(20.0, 0.8));
        let fast = p.factors(PvtCorner::new(20.0, 1.2));
        assert!(slow.delay > 1.1, "0.8 V delay factor = {}", slow.delay);
        assert!(fast.delay < 0.95, "1.2 V delay factor = {}", fast.delay);
    }

    #[test]
    fn high_temperature_slows_the_circuit() {
        let p = ProcessParams::nm45();
        let hot = p.factors(PvtCorner::new(80.0, 1.0));
        let cold = p.factors(PvtCorner::new(-20.0, 1.0));
        assert!(hot.delay > 1.0);
        assert!(cold.delay < 1.0);
    }

    #[test]
    fn jitter_grows_with_temperature() {
        let p = ProcessParams::nm28();
        let hot = p.factors(PvtCorner::new(80.0, 1.0));
        let cold = p.factors(PvtCorner::new(-20.0, 1.0));
        assert!(hot.jitter > 1.0);
        assert!(cold.jitter < 1.0);
    }

    #[test]
    fn supply_deviation_adds_jitter_both_ways() {
        let p = ProcessParams::nm28();
        let low = p.factors(PvtCorner::new(20.0, 0.8));
        let high = p.factors(PvtCorner::new(20.0, 1.2));
        assert!(low.jitter > 1.0);
        assert!(high.jitter > 1.0);
    }

    #[test]
    fn asymmetry_is_a_bowl_centred_at_nominal() {
        let p = ProcessParams::nm45();
        let corners = [
            PvtCorner::new(-20.0, 0.8),
            PvtCorner::new(-20.0, 1.2),
            PvtCorner::new(80.0, 0.8),
            PvtCorner::new(80.0, 1.2),
        ];
        for c in corners {
            assert!(p.factors(c).asymmetry > 0.0, "corner {c}");
        }
        // Monotone in distance along an axis.
        let a40 = p.factors(PvtCorner::new(40.0, 1.0)).asymmetry;
        let a80 = p.factors(PvtCorner::new(80.0, 1.0)).asymmetry;
        assert!(a80 > a40);
    }

    #[test]
    fn leakage_doubles_at_doubling_temperature() {
        let p = ProcessParams::nm45();
        let f = p.factors(PvtCorner::new(NOMINAL_TEMP_C + p.leak_doubling_c, 1.0));
        assert!((f.leakage - 2.0).abs() < 1e-9);
    }

    #[test]
    fn corner_display_and_distance() {
        let c = PvtCorner::new(80.0, 1.2);
        assert_eq!(format!("{c}"), "80 °C / 1.20 V");
        assert!(c.distance_from_nominal() > PvtCorner::nominal().distance_from_nominal());
    }

    #[test]
    #[should_panic(expected = "temperature out of range")]
    fn absurd_temperature_panics() {
        let _ = PvtCorner::new(300.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "voltage out of range")]
    fn absurd_voltage_panics() {
        let _ = PvtCorner::new(20.0, 3.3);
    }
}
