//! Ring-oscillator phase-noise model — the paper's Eq. 1 (Hajimiri
//! JSSC'99).
//!
//! The paper relates the achievable phase noise of an `N`-stage ring
//! oscillator to its order:
//!
//! ```text
//! L_min{df} = (8N / 3eta) * (kT / P) * (VDD / V_char) * (f0 / df)^2
//! ```
//!
//! Larger `N` amplifies phase noise (more entropy per edge) but lowers the
//! oscillation frequency `f0 = 1 / (2 N t_stage)` (fewer edges per second)
//! — the trade-off that motivates the dynamic hybrid entropy unit (paper
//! §2.1/§3.1 and Table 1). This module implements the formula and the
//! standard McNeill conversion from white-FM phase noise to time-domain
//! jitter, so the `JitterModel` used everywhere else can be *derived* from
//! the physics instead of asserted.

use crate::jitter::JitterModel;

/// Physical constants and design parameters of Eq. 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HajimiriConstants {
    /// Boltzmann constant in J/K.
    pub k_boltzmann: f64,
    /// Absolute temperature in kelvin.
    pub temp_k: f64,
    /// Proportionality constant `eta` (close to 1 for ring oscillators).
    pub eta: f64,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Characteristic voltage `V + VDD/(I R)` of the delay stage, in volts.
    pub v_char: f64,
}

impl HajimiriConstants {
    /// Room-temperature constants representative of an FPGA LUT ring at
    /// 1.0 V core voltage.
    pub fn fpga_nominal() -> Self {
        Self {
            k_boltzmann: 1.380_649e-23,
            temp_k: 293.15,
            eta: 1.0,
            vdd: 1.0,
            v_char: 0.5,
        }
    }
}

impl Default for HajimiriConstants {
    fn default() -> Self {
        Self::fpga_nominal()
    }
}

/// Phase-noise model of an `N`-stage ring oscillator (paper Eq. 1).
///
/// # Example
///
/// ```
/// use dhtrng_noise::PhaseNoiseModel;
///
/// let m = PhaseNoiseModel::fpga_ring(3, 0.35e-9, 1.0e-3);
/// // Phase noise at a 1 MHz offset, in dBc/Hz: plausible RO figure.
/// let l = m.phase_noise_dbc(1.0e6);
/// assert!(l < -70.0 && l > -140.0, "L = {l} dBc/Hz");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseNoiseModel {
    constants: HajimiriConstants,
    /// Ring order (number of stages) `N`.
    stages: u32,
    /// Per-stage delay in seconds.
    stage_delay: f64,
    /// Power consumption `P` of the ring in watts.
    power: f64,
}

impl PhaseNoiseModel {
    /// Creates a model from explicit constants.
    ///
    /// # Panics
    ///
    /// Panics if `stages == 0`, `stage_delay <= 0`, or `power <= 0`.
    pub fn new(constants: HajimiriConstants, stages: u32, stage_delay: f64, power: f64) -> Self {
        assert!(stages > 0, "ring must have at least one stage");
        assert!(stage_delay > 0.0, "stage delay must be positive");
        assert!(power > 0.0, "power must be positive");
        Self {
            constants,
            stages,
            stage_delay,
            power,
        }
    }

    /// FPGA ring with nominal constants.
    pub fn fpga_ring(stages: u32, stage_delay: f64, power: f64) -> Self {
        Self::new(
            HajimiriConstants::fpga_nominal(),
            stages,
            stage_delay,
            power,
        )
    }

    /// Ring order `N`.
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Oscillation frequency `f0 = 1 / (2 N t_stage)`.
    pub fn frequency(&self) -> f64 {
        1.0 / (2.0 * f64::from(self.stages) * self.stage_delay)
    }

    /// Oscillation period `T0 = 2 N t_stage`.
    pub fn period(&self) -> f64 {
        2.0 * f64::from(self.stages) * self.stage_delay
    }

    /// Eq. 1 as a linear ratio (1/Hz) at offset `df` from the carrier.
    ///
    /// # Panics
    ///
    /// Panics if `df <= 0`.
    pub fn phase_noise(&self, df: f64) -> f64 {
        assert!(df > 0.0, "offset frequency must be positive");
        let c = &self.constants;
        let n = f64::from(self.stages);
        let f0 = self.frequency();
        (8.0 * n / (3.0 * c.eta))
            * (c.k_boltzmann * c.temp_k / self.power)
            * (c.vdd / c.v_char)
            * (f0 / df).powi(2)
    }

    /// Eq. 1 in dBc/Hz.
    pub fn phase_noise_dbc(&self, df: f64) -> f64 {
        10.0 * self.phase_noise(df).log10()
    }

    /// McNeill conversion: white-FM phase noise to the jitter-accumulation
    /// constant `kappa` with `sigma(tau) = kappa * sqrt(tau)`.
    ///
    /// `kappa^2 = L(df) * (df / f0)^2` — independent of the chosen offset
    /// for a pure `1/df^2` spectrum, which Eq. 1 is.
    pub fn jitter_kappa(&self) -> f64 {
        let df = 1.0e6; // any offset works for a 1/df^2 spectrum
        let l = self.phase_noise(df);
        (l * (df / self.frequency()).powi(2)).sqrt()
    }

    /// Derives a white-noise [`JitterModel`] for this ring (flicker left at
    /// the FPGA-preset corner relative to the derived white level).
    pub fn to_jitter_model(&self) -> JitterModel {
        let kappa = self.jitter_kappa();
        let white = kappa * kappa;
        let flicker = white / (crate::jitter::FPGA_FLICKER_CORNER_PERIODS * self.period());
        JitterModel::new(self.period(), white, flicker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(stages: u32) -> PhaseNoiseModel {
        PhaseNoiseModel::fpga_ring(stages, 0.35e-9, 1.0e-3)
    }

    #[test]
    fn frequency_halves_when_stages_double() {
        let f3 = model(3).frequency();
        let f6 = model(6).frequency();
        assert!((f3 / f6 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn eq1_scales_with_order() {
        // At a fixed *relative* offset (df proportional to f0), L grows
        // linearly with N via the leading 8N/3eta factor.
        let m3 = model(3);
        let m9 = model(9);
        let l3 = m3.phase_noise(m3.frequency() / 100.0);
        let l9 = m9.phase_noise(m9.frequency() / 100.0);
        assert!((l9 / l3 - 3.0).abs() < 1e-6, "ratio = {}", l9 / l3);
    }

    #[test]
    fn eq1_inverse_square_in_offset() {
        let m = model(3);
        let l1 = m.phase_noise(1.0e6);
        let l2 = m.phase_noise(2.0e6);
        assert!((l1 / l2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn eq1_linear_in_temperature_and_inverse_in_power() {
        let mut hot = HajimiriConstants::fpga_nominal();
        hot.temp_k *= 2.0;
        let base = model(3);
        let hot_model = PhaseNoiseModel::new(hot, 3, 0.35e-9, 1.0e-3);
        assert!((hot_model.phase_noise(1e6) / base.phase_noise(1e6) - 2.0).abs() < 1e-9);

        let strong = PhaseNoiseModel::fpga_ring(3, 0.35e-9, 2.0e-3);
        assert!((base.phase_noise(1e6) / strong.phase_noise(1e6) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn kappa_independent_of_offset_choice() {
        let m = model(5);
        // kappa computed from L at two different offsets must agree.
        let k_a = (m.phase_noise(1.0e5) * (1.0e5 / m.frequency()).powi(2)).sqrt();
        let k_b = (m.phase_noise(1.0e7) * (1.0e7 / m.frequency()).powi(2)).sqrt();
        assert!((k_a / k_b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn derived_jitter_model_has_plausible_magnitude() {
        let m = model(3);
        let j = m.to_jitter_model();
        let frac = j.per_period_sigma() / m.period();
        // Physical RO jitter: between 0.01% and 5% of the period.
        assert!(frac > 1e-4 && frac < 5e-2, "sigma/T0 = {frac}");
    }

    #[test]
    fn longer_rings_accumulate_more_absolute_jitter() {
        // Paper's motivation: increasing N amplifies phase noise.
        let tau = 10.0e-9;
        let j3 = model(3).to_jitter_model().accumulated_sigma(tau);
        let j9 = model(9).to_jitter_model().accumulated_sigma(tau);
        assert!(j9 > j3);
    }

    #[test]
    #[should_panic(expected = "offset frequency")]
    fn zero_offset_panics() {
        let _ = model(3).phase_noise(0.0);
    }
}
