//! Small numeric helpers needed by the noise models.
//!
//! Only the functions the stochastic models require live here (the
//! statistical test batteries in `dhtrng-stattests` carry their own, more
//! extensive special-function module). The error-function implementation is
//! W. J. Cody-style rational/asymptotic with absolute error below `1e-12`
//! over the range the models use.

/// Complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Uses the Numerical Recipes Chebyshev fit, accurate to roughly `1.2e-7`
/// relative error everywhere, which is far below what any of the jitter or
/// metastability probability models can resolve.
pub fn erfc(x: f64) -> f64 {
    erfc_cheb(x).clamp(0.0, 2.0)
}

/// Chebyshev approximation of `erfc` (Numerical Recipes §6.2).
fn erfc_cheb(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal upper-tail probability `Q(x) = P(Z > x)`.
///
/// This is the `Q` function of the paper's Eq. 2: the probability that a
/// metastable flip-flop resolves to `1` is `Q(delta / sigma)`.
pub fn norm_q(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Standard normal CDF `Phi(x) = P(Z <= x)`.
pub fn norm_cdf(x: f64) -> f64 {
    1.0 - norm_q(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_known_values() {
        // Reference values from Abramowitz & Stegun tables.
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc(0.5) - 0.4795001222).abs() < 1e-6);
        assert!((erfc(1.0) - 0.1572992071).abs() < 1e-6);
        assert!((erfc(2.0) - 0.0046777349).abs() < 1e-7);
        assert!((erfc(-1.0) - 1.8427007929).abs() < 1e-6);
    }

    #[test]
    fn erfc_symmetry() {
        for i in 0..100 {
            let x = i as f64 * 0.05;
            let s = erfc(x) + erfc(-x);
            assert!((s - 2.0).abs() < 1e-6, "x = {x}: {s}");
        }
    }

    #[test]
    fn norm_q_midpoint_and_tails() {
        assert!((norm_q(0.0) - 0.5).abs() < 1e-7);
        assert!((norm_q(1.0) - 0.158655254).abs() < 1e-6);
        assert!((norm_q(2.0) - 0.022750132).abs() < 1e-6);
        assert!(norm_q(8.0) < 1e-14);
        assert!(norm_q(-8.0) > 1.0 - 1e-14);
    }

    #[test]
    fn cdf_complements_q() {
        for i in -40..=40 {
            let x = i as f64 * 0.1;
            assert!((norm_cdf(x) + norm_q(x) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn q_is_monotone_decreasing() {
        let mut prev = norm_q(-5.0);
        let mut x = -5.0;
        while x < 5.0 {
            x += 0.01;
            let q = norm_q(x);
            assert!(q <= prev + 1e-9);
            prev = q;
        }
    }
}
