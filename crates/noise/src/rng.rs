//! Reproducible random-number plumbing.
//!
//! Every stochastic component in the workspace draws noise from a
//! [`NoiseRng`]. A `NoiseRng` is seedable, cheap to fork, and deterministic,
//! which is what makes the "true" randomness of the simulated hardware
//! reproducible in experiments: the physics is random, the experiment is
//! not.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Seedable random source used by all noise models in the workspace.
///
/// Wraps a cryptographically-solid PRNG ([`StdRng`]) so that the *model*
/// noise never becomes the statistical bottleneck of the simulated TRNG:
/// any structure detected by the test batteries comes from the simulated
/// circuit, not from the noise generator.
///
/// # Example
///
/// ```
/// use dhtrng_noise::NoiseRng;
/// use rand::Rng;
///
/// let mut a = NoiseRng::seed_from_u64(42);
/// let mut b = NoiseRng::seed_from_u64(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Debug, Clone)]
pub struct NoiseRng {
    inner: StdRng,
}

impl NoiseRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Forks an independent child generator for a named subsystem.
    ///
    /// The child stream is decorrelated from the parent both by the drawn
    /// 64-bit seed material and by a stable hash of `label`, so two
    /// subsystems forked from the same parent never share a stream even if
    /// forked at the same point.
    pub fn fork(&mut self, label: &str) -> Self {
        let drawn: u64 = self.inner.gen();
        Self::seed_from_u64(drawn ^ fnv1a(label.as_bytes()))
    }

    /// Draws a uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Draws a Bernoulli sample with probability `p` of `true`.
    ///
    /// `p` is clamped to `[0, 1]`, so callers may pass the raw output of a
    /// probability model without pre-clamping.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen::<f64>() < p
    }

    /// Precomputes the integer acceptance threshold for [`bernoulli`]
    /// with probability `p`, for use with [`bernoulli_fast`] in batched
    /// hot loops.
    ///
    /// [`bernoulli`] compares a uniform 53-bit mantissa draw
    /// `k * 2^-53 < p`. Both sides scale exactly by `2^53` (a power of
    /// two, so no rounding), giving the integer test `k < ceil(p * 2^53)`
    /// — bit-for-bit the same accept/reject decision without the
    /// per-draw clamp, int→float conversion and float compare.
    ///
    /// [`bernoulli`]: NoiseRng::bernoulli
    /// [`bernoulli_fast`]: NoiseRng::bernoulli_fast
    pub fn bernoulli_threshold(p: f64) -> u64 {
        const SCALE: f64 = (1u64 << 53) as f64;
        (p.clamp(0.0, 1.0) * SCALE).ceil() as u64
    }

    /// Draws a Bernoulli sample against a threshold precomputed by
    /// [`bernoulli_threshold`](NoiseRng::bernoulli_threshold).
    ///
    /// Consumes exactly one `u64` draw and returns exactly what
    /// [`bernoulli`](NoiseRng::bernoulli) would have returned for the
    /// probability the threshold was computed from (the equivalence is
    /// pinned by this module's tests).
    #[inline]
    pub fn bernoulli_fast(&mut self, threshold: u64) -> bool {
        (self.inner.next_u64() >> 11) < threshold
    }

    /// Snapshots the generator's raw state words.
    ///
    /// Together with [`from_state`](Self::from_state) this suspends and
    /// resumes the exact stream position: the bit-sliced kernel
    /// extracts each lane's noise state through this, advances it
    /// lane-parallel with the same update rule, and loads it back.
    pub fn state(&self) -> [u64; 4] {
        self.inner.state()
    }

    /// Restores a generator from a [`state`](Self::state) snapshot; the
    /// resumed generator continues the suspended stream bit-for-bit.
    pub fn from_state(state: [u64; 4]) -> Self {
        Self {
            inner: StdRng::from_state(state),
        }
    }
}

impl RngCore for NoiseRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// 64-bit FNV-1a hash, used to derive fork seeds from labels.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = NoiseRng::seed_from_u64(1);
        let mut b = NoiseRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = NoiseRng::seed_from_u64(1);
        let mut b = NoiseRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_decorrelated_by_label() {
        let mut parent_a = NoiseRng::seed_from_u64(9);
        let mut parent_b = NoiseRng::seed_from_u64(9);
        let mut x = parent_a.fork("ro1");
        let mut y = parent_b.fork("ro2");
        let matches = (0..64).filter(|_| x.next_u64() == y.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn forks_are_reproducible() {
        let mut parent_a = NoiseRng::seed_from_u64(9);
        let mut parent_b = NoiseRng::seed_from_u64(9);
        let mut x = parent_a.fork("ro1");
        let mut y = parent_b.fork("ro1");
        for _ in 0..32 {
            assert_eq!(x.next_u64(), y.next_u64());
        }
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = NoiseRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bernoulli_edge_probabilities() {
        let mut rng = NoiseRng::seed_from_u64(4);
        assert!((0..100).all(|_| rng.bernoulli(1.0)));
        assert!((0..100).all(|_| !rng.bernoulli(0.0)));
        // Out-of-range probabilities are clamped, not a panic.
        assert!(rng.bernoulli(2.0));
        assert!(!rng.bernoulli(-1.0));
    }

    #[test]
    fn bernoulli_mean_tracks_p() {
        let mut rng = NoiseRng::seed_from_u64(5);
        let n = 200_000;
        let ones = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let mean = ones as f64 / n as f64;
        assert!((mean - 0.3).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn threshold_bernoulli_matches_float_bernoulli() {
        // The batched generators rely on bernoulli_fast(threshold(p))
        // being indistinguishable from bernoulli(p): same decisions, same
        // number of draws, across edge and mid-range probabilities.
        let probabilities = [
            0.0,
            1.0,
            -0.5,
            2.0,
            0.5,
            0.25,
            1.0 - 1e-16,
            f64::MIN_POSITIVE,
            1e-18,
            0.3,
            0.999_999,
            7.2e-5,
        ];
        for &p in &probabilities {
            let threshold = NoiseRng::bernoulli_threshold(p);
            let mut float_rng = NoiseRng::seed_from_u64(0xFEED);
            let mut int_rng = NoiseRng::seed_from_u64(0xFEED);
            for draw in 0..20_000 {
                assert_eq!(
                    float_rng.bernoulli(p),
                    int_rng.bernoulli_fast(threshold),
                    "p = {p}, draw {draw}"
                );
            }
        }
    }

    #[test]
    fn threshold_bernoulli_matches_on_random_probabilities() {
        let mut p_source = NoiseRng::seed_from_u64(77);
        for case in 0..200 {
            let p = p_source.uniform();
            let threshold = NoiseRng::bernoulli_threshold(p);
            let mut float_rng = NoiseRng::seed_from_u64(1000 + case);
            let mut int_rng = NoiseRng::seed_from_u64(1000 + case);
            for _ in 0..500 {
                assert_eq!(
                    float_rng.bernoulli(p),
                    int_rng.bernoulli_fast(threshold),
                    "p = {p}"
                );
            }
        }
    }

    #[test]
    fn state_snapshot_resumes_the_exact_stream() {
        let mut rng = NoiseRng::seed_from_u64(31);
        // Advance to an arbitrary mid-stream position.
        for _ in 0..97 {
            rng.next_u64();
        }
        let snapshot = rng.state();
        let mut resumed = NoiseRng::from_state(snapshot);
        for _ in 0..256 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
        assert_eq!(rng.state(), resumed.state());
    }

    #[test]
    fn fnv_differs_for_labels() {
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b""), fnv1a(b"a"));
    }
}
