//! Gaussian sampling without external distribution crates.
//!
//! Thermal-noise jitter is Gaussian to an excellent approximation (central
//! limit theorem over many independent scattering events; Hajimiri JSSC'99),
//! so a fast normal sampler is the workhorse of the whole noise substrate.
//! We use the Marsaglia polar method with a cached spare, which needs only
//! a uniform source and `ln`/`sqrt`.

use crate::rng::NoiseRng;

/// A normal distribution `N(mean, sigma^2)` sampler.
///
/// # Example
///
/// ```
/// use dhtrng_noise::{Gaussian, NoiseRng};
///
/// let mut rng = NoiseRng::seed_from_u64(1);
/// let mut g = Gaussian::new(0.0, 2.0);
/// let x = g.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct Gaussian {
    mean: f64,
    sigma: f64,
    spare: Option<f64>,
}

impl Gaussian {
    /// Creates a sampler with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(mean: f64, sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be finite and non-negative, got {sigma}"
        );
        assert!(mean.is_finite(), "mean must be finite, got {mean}");
        Self {
            mean,
            sigma,
            spare: None,
        }
    }

    /// Creates a standard normal `N(0, 1)` sampler.
    pub fn standard() -> Self {
        Self::new(0.0, 1.0)
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The configured standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one sample.
    pub fn sample(&mut self, rng: &mut NoiseRng) -> f64 {
        self.mean + self.sigma * self.sample_standard(rng)
    }

    /// Draws one standard-normal sample (Marsaglia polar method).
    fn sample_standard(&mut self, rng: &mut NoiseRng) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u = 2.0 * rng.uniform() - 1.0;
            let v = 2.0 * rng.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * factor);
                return u * factor;
            }
        }
    }
}

/// Draws a single `N(0, sigma^2)` sample without constructing a sampler.
///
/// Convenient for call sites that draw with a different sigma every time
/// (e.g. per-edge jitter whose sigma depends on the elapsed interval).
pub fn sample_normal(rng: &mut NoiseRng, sigma: f64) -> f64 {
    debug_assert!(sigma >= 0.0);
    if sigma == 0.0 {
        return 0.0;
    }
    // Polar method, no spare caching (sigma changes between calls).
    loop {
        let u = 2.0 * rng.uniform() - 1.0;
        let v = 2.0 * rng.uniform() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return sigma * u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = NoiseRng::seed_from_u64(11);
        let mut g = Gaussian::standard();
        let samples: Vec<f64> = (0..200_000).map(|_| g.sample(&mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.02, "var = {var}");
    }

    #[test]
    fn scaled_normal_moments() {
        let mut rng = NoiseRng::seed_from_u64(12);
        let mut g = Gaussian::new(5.0, 3.0);
        let samples: Vec<f64> = (0..200_000).map(|_| g.sample(&mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 5.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 9.0).abs() < 0.2, "var = {var}");
    }

    #[test]
    fn zero_sigma_is_constant() {
        let mut rng = NoiseRng::seed_from_u64(13);
        let mut g = Gaussian::new(2.5, 0.0);
        for _ in 0..10 {
            assert_eq!(g.sample(&mut rng), 2.5);
        }
        assert_eq!(sample_normal(&mut rng, 0.0), 0.0);
    }

    #[test]
    fn tail_mass_is_gaussian() {
        // P(|Z| > 2) ~ 0.0455 for a true normal.
        let mut rng = NoiseRng::seed_from_u64(14);
        let mut g = Gaussian::standard();
        let n = 200_000;
        let tail = (0..n).filter(|_| g.sample(&mut rng).abs() > 2.0).count();
        let frac = tail as f64 / n as f64;
        assert!((frac - 0.0455).abs() < 0.005, "tail fraction = {frac}");
    }

    #[test]
    fn one_shot_matches_sampler_statistics() {
        let mut rng = NoiseRng::seed_from_u64(15);
        let samples: Vec<f64> = (0..100_000).map(|_| sample_normal(&mut rng, 2.0)).collect();
        let (mean, var) = moments(&samples);
        assert!(mean.abs() < 0.05);
        assert!((var - 4.0).abs() < 0.15);
    }

    #[test]
    #[should_panic(expected = "sigma must be finite")]
    fn negative_sigma_panics() {
        let _ = Gaussian::new(0.0, -1.0);
    }
}
