//! Statistical test batteries for random bitstreams.
//!
//! Implements, in pure Rust, every statistical procedure the DH-TRNG paper
//! (DAC 2024) uses in its evaluation section:
//!
//! * **NIST SP 800-22** (Table 3): all 15 tests of the revision 1a suite,
//!   with the multi-sequence aggregation (uniformity P-value + pass
//!   proportion) the paper reports — [`sp800_22`].
//! * **NIST SP 800-90B** (Tables 1, 2, 4; Figure 9): the ten non-IID
//!   min-entropy estimators of the paper's Table 4 (MCV, Collision,
//!   Markov, Compression, t-Tuple, LRS, Multi-MCW, Lag, Multi-MMC, LZ78Y)
//!   plus the IID-track permutation test — [`sp800_90b`].
//! * **AIS-31** (Table 5): tests T0–T8 of the BSI procedure — [`ais31`].
//! * **Basic tests** (§4.2–4.4; Figures 7, 8): bias/deviation (Eq. 6),
//!   autocorrelation function, restart test, bitstream imaging — [`basic`].
//!
//! The numerical substrate (incomplete gamma, erfc, FFT, Berlekamp–Massey,
//! GF(2) rank) lives in [`special`]; bitstreams are handled through the
//! packed [`BitBuffer`].
//!
//! # Example
//!
//! ```
//! use dhtrng_stattests::BitBuffer;
//! use dhtrng_stattests::sp800_22::frequency_test;
//!
//! // A balanced sequence passes the monobit test.
//! let bits: BitBuffer = (0..10_000).map(|i| i % 2 == 0).collect();
//! let p = frequency_test(&bits).p_value();
//! assert!(p > 0.99); // perfectly balanced
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ais31;
pub mod basic;
pub mod bits;
pub mod sp800_22;
pub mod sp800_90b;
pub mod special;

pub use bits::BitBuffer;
