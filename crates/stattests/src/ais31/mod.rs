//! BSI AIS-31 statistical tests T0–T8 (paper Table 5).
//!
//! Implements the nine tests of the AIS 20/31 methodology in their
//! functional form:
//!
//! * **Procedure A** — T0 (disjointness) once, then T1–T5 (the FIPS-style
//!   battery plus autocorrelation) over consecutive 20 000-bit samples;
//! * **Procedure B** — T6 (uniform distribution, two parameterisations),
//!   T7 (comparative multinomial/homogeneity), T8 (Coron's entropy test).
//!
//! T7 is implemented as a two-sample chi-square homogeneity test over
//! disjoint 2-bit words (the BSI reference evaluates transition
//! distributions; the homogeneity form detects the same defects and is
//! documented as a simplification in `DESIGN.md`).

use crate::bits::BitBuffer;

/// Bits per T1–T5 sample.
pub const SAMPLE_BITS: usize = 20_000;
/// Words checked by T0.
pub const T0_WORDS: usize = 1 << 16;
/// Bits per T0 word.
pub const T0_WORD_BITS: usize = 48;

/// T0 — disjointness test: 2^16 consecutive 48-bit words must all be
/// distinct.
///
/// # Panics
///
/// Panics if fewer than `2^16 * 48` bits are supplied.
pub fn t0_disjointness(bits: &BitBuffer) -> bool {
    assert!(
        bits.len() >= T0_WORDS * T0_WORD_BITS,
        "T0 needs {} bits",
        T0_WORDS * T0_WORD_BITS
    );
    let mut words: Vec<u64> = (0..T0_WORDS)
        .map(|i| bits.window(i * T0_WORD_BITS, T0_WORD_BITS))
        .collect();
    words.sort_unstable();
    words.windows(2).all(|w| w[0] != w[1])
}

/// T1 — monobit test on one 20 000-bit sample: `9654 < ones < 10346`.
pub fn t1_monobit(sample: &BitBuffer) -> bool {
    assert_eq!(sample.len(), SAMPLE_BITS, "T1 sample must be 20000 bits");
    let ones = sample.ones();
    ones > 9654 && ones < 10346
}

/// T2 — poker test (4-bit words): `1.03 < X < 57.4`.
pub fn t2_poker(sample: &BitBuffer) -> bool {
    assert_eq!(sample.len(), SAMPLE_BITS, "T2 sample must be 20000 bits");
    let mut f = [0u64; 16];
    for i in 0..SAMPLE_BITS / 4 {
        f[sample.window(i * 4, 4) as usize] += 1;
    }
    let sum_sq: u64 = f.iter().map(|&c| c * c).sum();
    let x = 16.0 / 5000.0 * sum_sq as f64 - 5000.0;
    x > 1.03 && x < 57.4
}

/// Permitted run-count intervals for T3, runs of length 1..=5 and >= 6.
const T3_INTERVALS: [(u64, u64); 6] = [
    (2267, 2733),
    (1079, 1421),
    (502, 748),
    (223, 402),
    (90, 223),
    (90, 223),
];

/// T3 — runs test: counts of 0-runs and 1-runs of each length must fall
/// in the prescribed intervals.
pub fn t3_runs(sample: &BitBuffer) -> bool {
    assert_eq!(sample.len(), SAMPLE_BITS, "T3 sample must be 20000 bits");
    let mut counts = [[0u64; 6]; 2]; // [bit][length bin]
    let mut run_val = sample.bit(0);
    let mut run_len = 1usize;
    for i in 1..SAMPLE_BITS {
        if sample.bit(i) == run_val {
            run_len += 1;
        } else {
            counts[usize::from(run_val)][run_len.min(6) - 1] += 1;
            run_val = sample.bit(i);
            run_len = 1;
        }
    }
    counts[usize::from(run_val)][run_len.min(6) - 1] += 1;
    for row in &counts {
        for (len, &(lo, hi)) in T3_INTERVALS.iter().enumerate() {
            let c = row[len];
            if c < lo || c > hi {
                return false;
            }
        }
    }
    true
}

/// T4 — long run test: no run of length >= 34.
pub fn t4_long_run(sample: &BitBuffer) -> bool {
    assert_eq!(sample.len(), SAMPLE_BITS, "T4 sample must be 20000 bits");
    let mut run = 1usize;
    for i in 1..SAMPLE_BITS {
        if sample.bit(i) == sample.bit(i - 1) {
            run += 1;
            if run >= 34 {
                return false;
            }
        } else {
            run = 1;
        }
    }
    true
}

/// T5 — autocorrelation test: pick the worst shift on the first half,
/// verify it on the second half (`2326 < Z < 2674`).
pub fn t5_autocorrelation(sample: &BitBuffer) -> bool {
    assert_eq!(sample.len(), SAMPLE_BITS, "T5 sample must be 20000 bits");
    // Phase 1: worst tau over the first 10000 bits (word-parallel
    // XOR/popcount keeps the 5000-tau search fast).
    let z = |offset: usize, tau: usize| -> u64 {
        sample.xor_distance(offset, offset + tau, 5000) as u64
    };
    let mut worst_tau = 1;
    let mut worst_dev = 0i64;
    for tau in 1..=5000 {
        let dev = (z(0, tau) as i64 - 2500).abs();
        if dev > worst_dev {
            worst_dev = dev;
            worst_tau = tau;
        }
    }
    // Phase 2: fresh data.
    let zt = z(10_000, worst_tau);
    zt > 2326 && zt < 2674
}

/// T6 — uniform distribution test with parameters `(k, n, a)`: all
/// empirical k-bit word probabilities within `2^-k ± a`.
///
/// # Panics
///
/// Panics if fewer than `n * k` bits are supplied.
pub fn t6_uniform(bits: &BitBuffer, k: usize, n: usize, a: f64) -> bool {
    assert!(bits.len() >= n * k, "T6 needs {} bits", n * k);
    let mut counts = vec![0u64; 1 << k];
    for i in 0..n {
        counts[bits.window(i * k, k) as usize] += 1;
    }
    let ideal = 1.0 / (1 << k) as f64;
    counts
        .iter()
        .all(|&c| (c as f64 / n as f64 - ideal).abs() < a)
}

/// T7 — comparative multinomial (homogeneity) test: chi-square between
/// the disjoint 2-bit word distributions of the two halves; threshold is
/// the 99.99th percentile of chi-square with 3 degrees of freedom.
///
/// # Panics
///
/// Panics if fewer than 8 bits are supplied.
pub fn t7_homogeneity(bits: &BitBuffer) -> bool {
    let n_words = bits.len() / 2;
    assert!(n_words >= 4, "T7 needs at least 8 bits");
    let half = n_words / 2;
    let mut a = [0f64; 4];
    let mut b = [0f64; 4];
    for i in 0..half {
        a[bits.window(i * 2, 2) as usize] += 1.0;
    }
    for i in half..2 * half {
        b[bits.window(i * 2, 2) as usize] += 1.0;
    }
    let na: f64 = a.iter().sum();
    let nb: f64 = b.iter().sum();
    let mut chi2 = 0.0;
    for v in 0..4 {
        let pooled = (a[v] + b[v]) / (na + nb);
        if pooled == 0.0 {
            continue;
        }
        chi2 += (a[v] - na * pooled).powi(2) / (na * pooled)
            + (b[v] - nb * pooled).powi(2) / (nb * pooled);
    }
    // chi2(0.9999, 3) = 21.11.
    chi2 < 21.11
}

/// Coron entropy test parameters: word size L, warm-up Q, evaluation K.
pub const T8_L: usize = 8;
/// T8 warm-up words.
pub const T8_Q: usize = 2560;
/// T8 evaluation words.
pub const T8_K: usize = 256_000;
/// T8 pass threshold for L = 8.
pub const T8_THRESHOLD: f64 = 7.976;

/// T8 — Coron's entropy test. Returns the statistic `f`; the test passes
/// when `f > 7.976` (for L = 8).
///
/// # Panics
///
/// Panics if fewer than `(Q + K) * L` bits are supplied.
pub fn t8_entropy_statistic(bits: &BitBuffer) -> f64 {
    let need = (T8_Q + T8_K) * T8_L;
    assert!(bits.len() >= need, "T8 needs {need} bits");
    // Coron's g(i) = (1/ln 2) * sum_{k=1}^{i-1} 1/k, computed lazily with
    // a memo table (distances are bounded by Q + K).
    let mut g_table = vec![0.0f64; 1];
    let mut harmonic = 0.0f64;
    let g = |i: usize, table: &mut Vec<f64>, harmonic: &mut f64| -> f64 {
        while table.len() <= i {
            let k = table.len();
            // g(k) needs H_{k-1}: extend the harmonic sum then store.
            if k >= 2 {
                *harmonic += 1.0 / (k as f64 - 1.0);
            }
            table.push(*harmonic / std::f64::consts::LN_2);
        }
        table[i]
    };
    let mut last = vec![0usize; 1 << T8_L];
    for n in 1..=T8_Q {
        let w = bits.window((n - 1) * T8_L, T8_L) as usize;
        last[w] = n;
    }
    let mut sum = 0.0;
    for n in (T8_Q + 1)..=(T8_Q + T8_K) {
        let w = bits.window((n - 1) * T8_L, T8_L) as usize;
        let dist = if last[w] == 0 { n } else { n - last[w] };
        last[w] = n;
        sum += g(dist, &mut g_table, &mut harmonic);
    }
    sum / T8_K as f64
}

/// T8 pass/fail.
pub fn t8_entropy(bits: &BitBuffer) -> bool {
    t8_entropy_statistic(bits) > T8_THRESHOLD
}

/// Pass-rate over the T1–T5 battery applied to consecutive 20 000-bit
/// samples (the starred rows of the paper's Table 5).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassRate {
    /// Samples that passed.
    pub passed: usize,
    /// Samples tested.
    pub total: usize,
}

impl PassRate {
    /// Pass rate in percent.
    pub fn percent(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.passed as f64 / self.total as f64
        }
    }

    /// Whether every sample passed.
    pub fn all(&self) -> bool {
        self.passed == self.total && self.total > 0
    }
}

impl std::fmt::Display for PassRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.0}%", self.percent())
    }
}

/// Full AIS-31 report in the layout of the paper's Table 5.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct Ais31Report {
    /// T0 disjointness.
    pub t0: bool,
    /// T1 monobit pass rate.
    pub t1: PassRate,
    /// T2 poker pass rate.
    pub t2: PassRate,
    /// T3 runs pass rate.
    pub t3: PassRate,
    /// T4 long-run pass rate.
    pub t4: PassRate,
    /// T5 autocorrelation pass rate.
    pub t5: PassRate,
    /// T6 uniform distribution (both parameterisations).
    pub t6: bool,
    /// T7 multinomial homogeneity.
    pub t7: bool,
    /// T8 entropy statistic and outcome.
    pub t8_statistic: f64,
    /// T8 pass.
    pub t8: bool,
}

impl Ais31Report {
    /// Whether every row of Table 5 shows a pass.
    pub fn all_pass(&self) -> bool {
        self.t0
            && self.t1.all()
            && self.t2.all()
            && self.t3.all()
            && self.t4.all()
            && self.t5.all()
            && self.t6
            && self.t7
            && self.t8
    }
}

/// Runs the full AIS-31 evaluation the way the paper's Table 5 reports
/// it: T0 on the head of the stream, T1–T5 on as many 20 000-bit samples
/// as fit in what follows, and procedure B (T6/T7/T8) on the stream.
///
/// The paper collects 7 200 000 bits per device; that supports T0
/// (3 145 728 bits) plus ~200 T1–T5 samples and the procedure-B tests.
///
/// # Panics
///
/// Panics if the stream is too short for T0 + one sample + T8.
pub fn evaluate(bits: &BitBuffer) -> Ais31Report {
    let t0_bits = T0_WORDS * T0_WORD_BITS;
    let t8_bits = (T8_Q + T8_K) * T8_L;
    assert!(
        bits.len() >= t0_bits + SAMPLE_BITS + t8_bits,
        "AIS-31 evaluation needs at least {} bits",
        t0_bits + SAMPLE_BITS + t8_bits
    );
    let t0 = t0_disjointness(bits);

    let mut t1 = PassRate {
        passed: 0,
        total: 0,
    };
    let mut t2 = t1;
    let mut t3 = t1;
    let mut t4 = t1;
    let mut t5 = t1;
    let mut offset = t0_bits;
    while offset + SAMPLE_BITS <= bits.len() {
        let sample = bits.slice(offset, SAMPLE_BITS);
        for (rate, pass) in [
            (&mut t1, t1_monobit(&sample)),
            (&mut t2, t2_poker(&sample)),
            (&mut t3, t3_runs(&sample)),
            (&mut t4, t4_long_run(&sample)),
            (&mut t5, t5_autocorrelation(&sample)),
        ] {
            rate.total += 1;
            if pass {
                rate.passed += 1;
            }
        }
        offset += SAMPLE_BITS;
    }

    let t6 = t6_uniform(bits, 1, 100_000, 0.025) && t6_uniform(bits, 2, 100_000, 0.02);
    let t7 = t7_homogeneity(bits);
    let t8_statistic = t8_entropy_statistic(bits);
    Ais31Report {
        t0,
        t1,
        t2,
        t3,
        t4,
        t5,
        t6,
        t7,
        t8_statistic,
        t8: t8_statistic > T8_THRESHOLD,
    }
}

/// Procedure A in isolation: T0 on the head of the stream, then T1–T5
/// over consecutive 20 000-bit samples from the remainder.
///
/// # Panics
///
/// Panics if the stream is shorter than T0's demand plus one sample.
pub fn procedure_a(bits: &BitBuffer) -> (bool, [PassRate; 5]) {
    let t0_bits = T0_WORDS * T0_WORD_BITS;
    assert!(
        bits.len() >= t0_bits + SAMPLE_BITS,
        "procedure A needs at least {} bits",
        t0_bits + SAMPLE_BITS
    );
    let t0 = t0_disjointness(bits);
    let mut rates = [PassRate {
        passed: 0,
        total: 0,
    }; 5];
    let mut offset = t0_bits;
    while offset + SAMPLE_BITS <= bits.len() {
        let sample = bits.slice(offset, SAMPLE_BITS);
        let outcomes = [
            t1_monobit(&sample),
            t2_poker(&sample),
            t3_runs(&sample),
            t4_long_run(&sample),
            t5_autocorrelation(&sample),
        ];
        for (rate, pass) in rates.iter_mut().zip(outcomes) {
            rate.total += 1;
            if pass {
                rate.passed += 1;
            }
        }
        offset += SAMPLE_BITS;
    }
    (t0, rates)
}

/// Procedure B in isolation: T6 (both parameterisations), T7, and T8.
///
/// Returns `(t6, t7, t8_statistic)`.
///
/// # Panics
///
/// Panics if the stream is too short for T8.
pub fn procedure_b(bits: &BitBuffer) -> (bool, bool, f64) {
    let t6 = t6_uniform(bits, 1, 100_000, 0.025) && t6_uniform(bits, 2, 100_000, 0.02);
    let t7 = t7_homogeneity(bits);
    let t8 = t8_entropy_statistic(bits);
    (t6, t7, t8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix_bits(n: usize, seed: u64) -> BitBuffer {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) & 1 == 1
            })
            .collect()
    }

    fn sample(seed: u64) -> BitBuffer {
        splitmix_bits(SAMPLE_BITS, seed)
    }

    #[test]
    fn t1_to_t5_pass_on_random_samples() {
        for seed in 0..5 {
            let s = sample(seed);
            assert!(t1_monobit(&s), "seed {seed}");
            assert!(t2_poker(&s), "seed {seed}");
            assert!(t3_runs(&s), "seed {seed}");
            assert!(t4_long_run(&s), "seed {seed}");
            assert!(t5_autocorrelation(&s), "seed {seed}");
        }
    }

    #[test]
    fn t1_fails_on_bias() {
        let s: BitBuffer = (0..SAMPLE_BITS).map(|i| i % 20 != 0).collect();
        assert!(!t1_monobit(&s));
    }

    #[test]
    fn t2_fails_on_pattern() {
        let s: BitBuffer = (0..SAMPLE_BITS).map(|i| (i / 4) % 2 == 0).collect();
        assert!(!t2_poker(&s));
    }

    #[test]
    fn t3_fails_on_alternating() {
        // All runs have length 1: run-count intervals are violated.
        let s: BitBuffer = (0..SAMPLE_BITS).map(|i| i % 2 == 0).collect();
        assert!(!t3_runs(&s));
    }

    #[test]
    fn t4_fails_on_long_run() {
        let mut s = sample(9);
        // Splice a 40-bit run of ones at position 100 by rebuilding.
        let mut rebuilt = BitBuffer::new();
        for i in 0..SAMPLE_BITS {
            rebuilt.push(if (100..140).contains(&i) {
                true
            } else {
                s.bit(i)
            });
        }
        s = rebuilt;
        assert!(!t4_long_run(&s));
    }

    #[test]
    fn t5_fails_on_periodic_signal() {
        // Period-2 square wave: perfect anti-correlation at odd taus.
        let s: BitBuffer = (0..SAMPLE_BITS).map(|i| i % 2 == 0).collect();
        assert!(!t5_autocorrelation(&s));
    }

    #[test]
    fn t0_detects_repeats() {
        // Random data passes.
        let bits = splitmix_bits(T0_WORDS * T0_WORD_BITS, 10);
        assert!(t0_disjointness(&bits));
        // Periodic data has massive repeats.
        let bad: BitBuffer = (0..T0_WORDS * T0_WORD_BITS)
            .map(|i| (i / 3) % 2 == 0)
            .collect();
        assert!(!t0_disjointness(&bad));
    }

    #[test]
    fn t6_uniform_behaviour() {
        let bits = splitmix_bits(250_000, 11);
        assert!(t6_uniform(&bits, 1, 100_000, 0.025));
        assert!(t6_uniform(&bits, 2, 100_000, 0.02));
        let biased: BitBuffer = (0..250_000).map(|i| i % 3 != 0).collect();
        assert!(!t6_uniform(&biased, 1, 100_000, 0.025));
    }

    #[test]
    fn t7_homogeneity_behaviour() {
        let bits = splitmix_bits(400_000, 12);
        assert!(t7_homogeneity(&bits));
        // Distribution shifts between halves.
        let drift: BitBuffer = (0..400_000)
            .map(|i| if i < 200_000 { i % 2 == 0 } else { i % 4 == 0 })
            .collect();
        assert!(!t7_homogeneity(&drift));
    }

    #[test]
    fn t8_entropy_near_eight_for_random_data() {
        let bits = splitmix_bits((T8_Q + T8_K) * T8_L, 13);
        let f = t8_entropy_statistic(&bits);
        assert!(f > T8_THRESHOLD, "f = {f}");
        assert!(f < 8.05, "f = {f}");
        assert!(t8_entropy(&bits));
    }

    #[test]
    fn t8_low_for_structured_data() {
        let bits: BitBuffer = (0..(T8_Q + T8_K) * T8_L)
            .map(|i| (i / 16) % 2 == 0)
            .collect();
        assert!(t8_entropy_statistic(&bits) < 4.0);
    }

    #[test]
    fn full_evaluation_on_random_stream() {
        // 7.2 Mbit, as the paper collects per device.
        let bits = splitmix_bits(7_200_000, 14);
        let report = evaluate(&bits);
        assert!(report.all_pass(), "{report:?}");
        assert!(report.t1.total > 100, "should cover many samples");
        assert_eq!(report.t1.percent(), 100.0);
    }

    #[test]
    fn procedures_in_isolation() {
        let bits = splitmix_bits(4_000_000, 21);
        let (t0, rates) = procedure_a(&bits);
        assert!(t0);
        for r in rates {
            assert!(r.all(), "{r:?}");
            assert!(r.total >= 40);
        }
        let (t6, t7, t8) = procedure_b(&bits);
        assert!(t6 && t7);
        assert!(t8 > T8_THRESHOLD);
    }

    #[test]
    fn pass_rate_formatting() {
        let r = PassRate {
            passed: 202,
            total: 202,
        };
        assert_eq!(r.to_string(), "100%");
        assert!(r.all());
        let r = PassRate {
            passed: 0,
            total: 0,
        };
        assert!(!r.all());
    }
}
