//! Basic bitstream diagnostics: the paper's §4.2–§4.4 tests and the
//! Figure 7 bitstream image.
//!
//! * [`bias_percent`] — the deviation test of Eq. 6;
//! * [`autocorrelation`] — the ACF of Figure 8 (Pearson coefficient at
//!   each lag, with the paper's `|rho| < 0.3` acceptance criterion);
//! * [`RestartTest`] — §4.2: first words after repeated restarts must
//!   all differ;
//! * [`bitmap_pbm`] — Figure 7: renders a bitstream as a PBM image.

use crate::bits::BitBuffer;

/// The paper's Eq. 6 deviation/bias:
/// `Bias = |N1 - N0| / (N1 + N0) * 100%`.
///
/// # Panics
///
/// Panics on an empty sequence.
pub fn bias_percent(bits: &BitBuffer) -> f64 {
    assert!(!bits.is_empty(), "bias needs a non-empty sequence");
    let n1 = bits.ones() as f64;
    let n0 = bits.zeros() as f64;
    100.0 * (n1 - n0).abs() / (n1 + n0)
}

/// Pearson autocorrelation coefficient of the ±1 sequence at `lag`.
///
/// # Panics
///
/// Panics if `lag` is 0 or leaves fewer than 2 overlapping samples.
pub fn autocorrelation(bits: &BitBuffer, lag: usize) -> f64 {
    let n = bits.len();
    assert!(lag > 0, "lag must be positive");
    assert!(n > lag + 1, "sequence too short for lag {lag}");
    let m = n - lag;
    let val = |i: usize| -> f64 {
        if bits.bit(i) {
            1.0
        } else {
            -1.0
        }
    };
    let mean: f64 = (0..n).map(val).sum::<f64>() / n as f64;
    let var: f64 = (0..n).map(|i| (val(i) - mean).powi(2)).sum::<f64>() / n as f64;
    if var == 0.0 {
        return 1.0; // constant sequence is perfectly self-correlated
    }
    let cov: f64 = (0..m)
        .map(|i| (val(i) - mean) * (val(i + lag) - mean))
        .sum::<f64>()
        / m as f64;
    cov / var
}

/// The ACF over lags `1..=max_lag` (Figure 8 uses 1..=100).
pub fn autocorrelation_series(bits: &BitBuffer, max_lag: usize) -> Vec<f64> {
    (1..=max_lag).map(|k| autocorrelation(bits, k)).collect()
}

/// Karl Pearson's independence criterion the paper cites: all
/// autocorrelation coefficients below 0.3 in magnitude.
pub fn passes_pearson_criterion(bits: &BitBuffer, max_lag: usize) -> bool {
    autocorrelation_series(bits, max_lag)
        .iter()
        .all(|&rho| rho.abs() < 0.3)
}

/// §4.2 restart test: collect the first `word_bits` bits from several
/// independent restarts; the TRNG is "unrepeatable" when all words
/// differ.
#[derive(Debug, Clone, Default)]
pub struct RestartTest {
    words: Vec<u64>,
    word_bits: usize,
}

impl RestartTest {
    /// Creates a test collecting `word_bits`-bit restart words (the paper
    /// samples 32 bits six times).
    ///
    /// # Panics
    ///
    /// Panics if `word_bits` is 0 or > 64.
    pub fn new(word_bits: usize) -> Self {
        assert!(word_bits > 0 && word_bits <= 64, "word size must be 1..=64");
        Self {
            words: Vec::new(),
            word_bits,
        }
    }

    /// Records the first bits of one restart.
    ///
    /// # Panics
    ///
    /// Panics if the capture is shorter than the configured word size.
    pub fn record(&mut self, first_bits: &BitBuffer) {
        assert!(
            first_bits.len() >= self.word_bits,
            "restart capture shorter than {} bits",
            self.word_bits
        );
        self.words.push(first_bits.window(0, self.word_bits));
    }

    /// The recorded words, in restart order.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Formats a recorded word like the paper (`0X8E8F7BE6`).
    pub fn format_word(&self, index: usize) -> String {
        format!(
            "0X{:0width$X}",
            self.words[index],
            width = self.word_bits.div_ceil(4)
        )
    }

    /// Whether all recorded restart words are pairwise distinct.
    pub fn all_distinct(&self) -> bool {
        let mut sorted = self.words.clone();
        sorted.sort_unstable();
        sorted.windows(2).all(|w| w[0] != w[1])
    }
}

/// Renders the first `width x height` bits as a PBM (portable bitmap)
/// image — the paper's Figure 7. A `1` bit maps to a black pixel.
///
/// # Panics
///
/// Panics if the buffer holds fewer than `width * height` bits.
pub fn bitmap_pbm(bits: &BitBuffer, width: usize, height: usize) -> String {
    assert!(
        bits.len() >= width * height,
        "need {} bits for a {width}x{height} bitmap",
        width * height
    );
    let mut out = String::with_capacity(width * height * 2 + 32);
    out.push_str(&format!("P1\n{width} {height}\n"));
    for y in 0..height {
        for x in 0..width {
            out.push(if bits.bit(y * width + x) { '1' } else { '0' });
            if x + 1 < width {
                out.push(' ');
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix_bits(n: usize, seed: u64) -> BitBuffer {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) & 1 == 1
            })
            .collect()
    }

    #[test]
    fn bias_of_balanced_and_skewed() {
        let balanced: BitBuffer = (0..10_000).map(|i| i % 2 == 0).collect();
        assert_eq!(bias_percent(&balanced), 0.0);
        let skewed: BitBuffer = (0..10_000).map(|i| i % 4 != 0).collect();
        // 75% ones: |7500-2500|/10000 = 50%.
        assert!((bias_percent(&skewed) - 50.0).abs() < 1e-9);
        // Random data: bias well below 1% (the paper reports ~0.007%).
        let random = splitmix_bits(1_000_000, 5);
        assert!(bias_percent(&random) < 0.5);
    }

    #[test]
    fn acf_of_random_data_is_tiny() {
        let bits = splitmix_bits(1_000_000, 6);
        let series = autocorrelation_series(&bits, 100);
        assert_eq!(series.len(), 100);
        // Figure 8 shows |rho| < 4e-3 at 1 Mbit.
        assert!(series.iter().all(|r| r.abs() < 5e-3), "{series:?}");
        assert!(passes_pearson_criterion(&bits, 100));
    }

    #[test]
    fn acf_detects_periodicity() {
        let bits: BitBuffer = (0..100_000).map(|i| (i / 2) % 2 == 0).collect();
        // Period 4: lag 4 correlation is ~1, lag 2 is ~-1.
        assert!(autocorrelation(&bits, 4) > 0.9);
        assert!(autocorrelation(&bits, 2) < -0.9);
        assert!(!passes_pearson_criterion(&bits, 10));
    }

    #[test]
    fn acf_of_constant_sequence() {
        let bits: BitBuffer = (0..1000).map(|_| true).collect();
        assert_eq!(autocorrelation(&bits, 3), 1.0);
    }

    #[test]
    fn restart_test_distinct_words() {
        let mut rt = RestartTest::new(32);
        for seed in 0..6 {
            rt.record(&splitmix_bits(32, 100 + seed));
        }
        assert_eq!(rt.words().len(), 6);
        assert!(rt.all_distinct());
        assert!(rt.format_word(0).starts_with("0X"));
        assert_eq!(rt.format_word(0).len(), 2 + 8);
    }

    #[test]
    fn restart_test_catches_repeats() {
        let mut rt = RestartTest::new(32);
        let same = splitmix_bits(32, 1);
        rt.record(&same);
        rt.record(&same);
        assert!(!rt.all_distinct());
    }

    #[test]
    fn pbm_structure() {
        let bits = BitBuffer::from_binary_str("1010 0101 1111 0000");
        let pbm = bitmap_pbm(&bits, 4, 4);
        let mut lines = pbm.lines();
        assert_eq!(lines.next(), Some("P1"));
        assert_eq!(lines.next(), Some("4 4"));
        assert_eq!(lines.next(), Some("1 0 1 0"));
        assert_eq!(pbm.lines().count(), 6);
    }

    #[test]
    #[should_panic(expected = "need 16 bits")]
    fn pbm_too_small_panics() {
        let bits = BitBuffer::from_binary_str("1010");
        let _ = bitmap_pbm(&bits, 4, 4);
    }
}
