//! Packed bitstream buffer.
//!
//! All test batteries consume a [`BitBuffer`]: bits packed 64 to a word in
//! push order, with the block/window extraction helpers the NIST tests
//! need. Byte conversion uses MSB-first order within each byte, matching
//! how hardware TRNG captures are conventionally serialised.

/// A growable, packed sequence of bits.
///
/// # Example
///
/// ```
/// use dhtrng_stattests::BitBuffer;
///
/// let mut b = BitBuffer::new();
/// b.push(true);
/// b.push(false);
/// b.push(true);
/// assert_eq!(b.len(), 3);
/// assert_eq!(b.ones(), 2);
/// assert!(b.bit(0) && !b.bit(1) && b.bit(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BitBuffer {
    words: Vec<u64>,
    len: usize,
}

impl BitBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with capacity for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    /// Creates a buffer from a byte slice, MSB-first within each byte.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut b = Self::with_capacity(bytes.len() * 8);
        for &byte in bytes {
            for k in (0..8).rev() {
                b.push((byte >> k) & 1 == 1);
            }
        }
        b
    }

    /// Parses a string of `'0'`/`'1'` characters (whitespace ignored).
    ///
    /// # Panics
    ///
    /// Panics on any character other than `0`, `1`, or ASCII whitespace.
    pub fn from_binary_str(s: &str) -> Self {
        let mut b = Self::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '0' => b.push(false),
                '1' => b.push(true),
                c if c.is_ascii_whitespace() => {}
                c => panic!("invalid bit character {c:?}"),
            }
        }
        b
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        let off = self.len % 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << off;
        }
        self.len += 1;
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// The bit at `i` as 0/1.
    #[inline]
    pub fn bit_u8(&self, i: usize) -> u8 {
        u8::from(self.bit(i))
    }

    /// Count of one-bits.
    pub fn ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Count of zero-bits.
    pub fn zeros(&self) -> usize {
        self.len - self.ones()
    }

    /// Iterator over all bits.
    pub fn iter(&self) -> Iter<'_> {
        Iter { buf: self, pos: 0 }
    }

    /// Extracts bits `[start, start+m)` as a `u64`, first bit in the most
    /// significant position of the result.
    ///
    /// # Panics
    ///
    /// Panics if `m > 64` or the range exceeds the buffer.
    pub fn window(&self, start: usize, m: usize) -> u64 {
        assert!(m <= 64, "window wider than 64 bits");
        assert!(start + m <= self.len, "window out of range");
        let mut v = 0u64;
        for i in 0..m {
            v = (v << 1) | u64::from(self.bit(start + i));
        }
        v
    }

    /// Extracts bits `[start, start+m)` treating the sequence as circular
    /// (wraps to the front), as the Serial and Approximate-Entropy tests
    /// require.
    pub fn window_circular(&self, start: usize, m: usize) -> u64 {
        assert!(m <= 64, "window wider than 64 bits");
        assert!(!self.is_empty(), "empty buffer");
        let mut v = 0u64;
        for i in 0..m {
            v = (v << 1) | u64::from(self.bit((start + i) % self.len));
        }
        v
    }

    /// A sub-range copied into a new buffer.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the buffer.
    pub fn slice(&self, start: usize, len: usize) -> BitBuffer {
        assert!(start + len <= self.len, "slice out of range");
        let mut out = BitBuffer::with_capacity(len);
        for i in 0..len {
            out.push(self.bit(start + i));
        }
        out
    }

    /// Serialises to bytes, MSB-first within each byte; the final partial
    /// byte (if any) is zero-padded on the right.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len.div_ceil(8));
        let mut acc = 0u8;
        let mut k = 0;
        for bit in self.iter() {
            acc = (acc << 1) | u8::from(bit);
            k += 1;
            if k == 8 {
                out.push(acc);
                acc = 0;
                k = 0;
            }
        }
        if k > 0 {
            out.push(acc << (8 - k));
        }
        out
    }

    /// The ±1 representation NIST tests use: `1 -> +1`, `0 -> -1`.
    pub fn to_pm1(&self) -> Vec<f64> {
        self.iter().map(|b| if b { 1.0 } else { -1.0 }).collect()
    }

    /// Extracts `len` bits starting at `start` into little-end-first
    /// packed words (bit `k` of the result's word `k/64` is input bit
    /// `start + k`). Used by word-parallel kernels such as the AIS-31
    /// autocorrelation search.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the buffer.
    pub fn extract_words(&self, start: usize, len: usize) -> Vec<u64> {
        assert!(start + len <= self.len, "extract_words out of range");
        let mut out = vec![0u64; len.div_ceil(64)];
        let word_off = start / 64;
        let bit_off = start % 64;
        for (k, slot) in out.iter_mut().enumerate() {
            let lo = self.words[word_off + k] >> bit_off;
            let hi = if bit_off > 0 && word_off + k + 1 < self.words.len() {
                self.words[word_off + k + 1] << (64 - bit_off)
            } else {
                0
            };
            *slot = lo | hi;
        }
        // Mask the tail beyond `len`.
        let tail = len % 64;
        if tail > 0 {
            let last = out.len() - 1;
            out[last] &= (1u64 << tail) - 1;
        }
        out
    }

    /// Hamming distance between two equal-length ranges of the buffer
    /// (word-parallel XOR + popcount).
    ///
    /// # Panics
    ///
    /// Panics if either range exceeds the buffer.
    pub fn xor_distance(&self, start_a: usize, start_b: usize, len: usize) -> usize {
        let a = self.extract_words(start_a, len);
        let b = self.extract_words(start_b, len);
        a.iter()
            .zip(&b)
            .map(|(&x, &y)| (x ^ y).count_ones() as usize)
            .sum()
    }

    /// Converts to a vector of symbols of `bits_per_symbol` bits each
    /// (truncating any incomplete final symbol).
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_symbol` is 0 or > 32.
    pub fn to_symbols(&self, bits_per_symbol: usize) -> Vec<u32> {
        assert!(
            bits_per_symbol > 0 && bits_per_symbol <= 32,
            "symbols must be 1..=32 bits"
        );
        let n = self.len / bits_per_symbol;
        (0..n)
            .map(|i| self.window(i * bits_per_symbol, bits_per_symbol) as u32)
            .collect()
    }
}

impl FromIterator<bool> for BitBuffer {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut b = BitBuffer::new();
        for bit in iter {
            b.push(bit);
        }
        b
    }
}

impl Extend<bool> for BitBuffer {
    fn extend<T: IntoIterator<Item = bool>>(&mut self, iter: T) {
        for bit in iter {
            self.push(bit);
        }
    }
}

/// Iterator over the bits of a [`BitBuffer`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    buf: &'a BitBuffer,
    pos: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        if self.pos < self.buf.len {
            let b = self.buf.bit(self.pos);
            self.pos += 1;
            Some(b)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.buf.len - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a BitBuffer {
    type Item = bool;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl std::fmt::Display for BitBuffer {
    /// Renders up to the first 64 bits as `0`/`1`, with an ellipsis.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, bit) in self.iter().enumerate() {
            if i == 64 {
                return write!(f, "… ({} bits)", self.len);
            }
            write!(f, "{}", u8::from(bit))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read() {
        let mut b = BitBuffer::new();
        for i in 0..200 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 200);
        for i in 0..200 {
            assert_eq!(b.bit(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(b.ones(), 67);
        assert_eq!(b.zeros(), 133);
    }

    #[test]
    fn byte_round_trip() {
        let bytes = [0xA5u8, 0x01, 0xFF, 0x00, 0x3C];
        let b = BitBuffer::from_bytes(&bytes);
        assert_eq!(b.len(), 40);
        assert_eq!(b.to_bytes(), bytes);
        // MSB first: 0xA5 = 10100101.
        let first8: Vec<u8> = (0..8).map(|i| b.bit_u8(i)).collect();
        assert_eq!(first8, vec![1, 0, 1, 0, 0, 1, 0, 1]);
    }

    #[test]
    fn partial_byte_pads_right() {
        let b = BitBuffer::from_binary_str("101");
        assert_eq!(b.to_bytes(), vec![0b1010_0000]);
    }

    #[test]
    fn binary_str_parsing() {
        let b = BitBuffer::from_binary_str("1100 1001\n0000");
        assert_eq!(b.len(), 12);
        assert_eq!(b.ones(), 4);
    }

    #[test]
    fn windows() {
        let b = BitBuffer::from_binary_str("10110010");
        assert_eq!(b.window(0, 3), 0b101);
        assert_eq!(b.window(2, 4), 0b1100);
        assert_eq!(b.window(0, 8), 0b1011_0010);
        // Circular: last 3 bits + wrap of first bit.
        assert_eq!(b.window_circular(6, 3), 0b101);
    }

    #[test]
    fn slicing() {
        let b = BitBuffer::from_binary_str("111000111000");
        let s = b.slice(3, 6);
        assert_eq!(format!("{s}"), "000111");
    }

    #[test]
    fn symbols() {
        let b = BitBuffer::from_binary_str("0001 0010 0011 01");
        let sym = b.to_symbols(4);
        assert_eq!(sym, vec![1, 2, 3]); // trailing 2 bits truncated
    }

    #[test]
    fn pm1_mapping() {
        let b = BitBuffer::from_binary_str("10");
        assert_eq!(b.to_pm1(), vec![1.0, -1.0]);
    }

    #[test]
    fn collect_and_iter() {
        let b: BitBuffer = (0..100).map(|i| i % 2 == 0).collect();
        assert_eq!(b.iter().filter(|&x| x).count(), 50);
        assert_eq!(b.iter().len(), 100);
    }

    #[test]
    fn display_truncates() {
        let b: BitBuffer = (0..100).map(|_| true).collect();
        let s = format!("{b}");
        assert!(s.contains("(100 bits)"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_bit_panics() {
        let b = BitBuffer::from_binary_str("1");
        let _ = b.bit(1);
    }

    #[test]
    #[should_panic(expected = "invalid bit character")]
    fn bad_char_panics() {
        let _ = BitBuffer::from_binary_str("10a");
    }
}
