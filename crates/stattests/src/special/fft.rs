//! Fast Fourier transform for the SP 800-22 spectral (DFT) test.
//!
//! Two layers: an in-place iterative radix-2 complex FFT for power-of-two
//! lengths, and Bluestein's chirp-z algorithm on top of it for arbitrary
//! lengths, so the spectral test works on any sequence length (the NIST
//! test is defined for arbitrary `n`).

use std::f64::consts::PI;

/// A complex number as a `(re, im)` pair.
pub type Complex = (f64, f64);

#[inline]
fn c_add(a: Complex, b: Complex) -> Complex {
    (a.0 + b.0, a.1 + b.1)
}

#[inline]
fn c_sub(a: Complex, b: Complex) -> Complex {
    (a.0 - b.0, a.1 - b.1)
}

#[inline]
fn c_mul(a: Complex, b: Complex) -> Complex {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

#[inline]
fn c_conj(a: Complex) -> Complex {
    (a.0, -a.1)
}

/// Magnitude of a complex value.
#[inline]
pub fn c_abs(a: Complex) -> f64 {
    a.0.hypot(a.1)
}

/// In-place radix-2 decimation-in-time FFT.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_pow2(data: &mut [Complex]) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "fft_pow2 length must be a power of two"
    );
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * PI / len as f64;
        let wlen = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = (1.0, 0.0);
            for j in 0..len / 2 {
                let u = data[i + j];
                let v = c_mul(data[i + j + len / 2], w);
                data[i + j] = c_add(u, v);
                data[i + j + len / 2] = c_sub(u, v);
                w = c_mul(w, wlen);
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Inverse FFT for power-of-two lengths (normalised by `1/n`).
pub fn ifft_pow2(data: &mut [Complex]) {
    let n = data.len();
    for x in data.iter_mut() {
        *x = c_conj(*x);
    }
    fft_pow2(data);
    let inv = 1.0 / n as f64;
    for x in data.iter_mut() {
        *x = (x.0 * inv, -x.1 * inv);
    }
}

/// Forward DFT of arbitrary length: radix-2 when possible, Bluestein
/// otherwise.
pub fn dft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut data = input.to_vec();
        fft_pow2(&mut data);
        return data;
    }
    bluestein(input)
}

/// Bluestein's algorithm: expresses an arbitrary-length DFT as a
/// convolution, evaluated with power-of-two FFTs.
fn bluestein(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    let m = (2 * n - 1).next_power_of_two();

    // Chirp: w_k = exp(-i pi k^2 / n).
    let chirp: Vec<Complex> = (0..n)
        .map(|k| {
            // k^2 mod 2n keeps the argument small and exact.
            let k2 = (k as u64 * k as u64) % (2 * n as u64);
            let ang = -PI * k2 as f64 / n as f64;
            (ang.cos(), ang.sin())
        })
        .collect();

    let mut a = vec![(0.0, 0.0); m];
    for k in 0..n {
        a[k] = c_mul(input[k], chirp[k]);
    }
    let mut b = vec![(0.0, 0.0); m];
    b[0] = c_conj(chirp[0]);
    for k in 1..n {
        let c = c_conj(chirp[k]);
        b[k] = c;
        b[m - k] = c;
    }

    fft_pow2(&mut a);
    fft_pow2(&mut b);
    for k in 0..m {
        a[k] = c_mul(a[k], b[k]);
    }
    ifft_pow2(&mut a);

    (0..n).map(|k| c_mul(a[k], chirp[k])).collect()
}

/// Naive O(n^2) DFT, used as the test oracle.
pub fn dft_naive(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = (0.0, 0.0);
            for (j, &x) in input.iter().enumerate() {
                let ang = -2.0 * PI * (k as f64) * (j as f64) / n as f64;
                acc = c_add(acc, c_mul(x, (ang.cos(), ang.sin())));
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x.0 - y.0).abs() < tol && (x.1 - y.1).abs() < tol,
                "index {i}: {x:?} vs {y:?}"
            );
        }
    }

    fn real(v: &[f64]) -> Vec<Complex> {
        v.iter().map(|&x| (x, 0.0)).collect()
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![(0.0, 0.0); 8];
        x[0] = (1.0, 0.0);
        fft_pow2(&mut x);
        for &(re, im) in &x {
            assert!((re - 1.0).abs() < 1e-12 && im.abs() < 1e-12);
        }
    }

    #[test]
    fn constant_concentrates_at_dc() {
        let mut x = vec![(1.0, 0.0); 16];
        fft_pow2(&mut x);
        assert!((x[0].0 - 16.0).abs() < 1e-12);
        for &(re, im) in &x[1..] {
            assert!(re.abs() < 1e-10 && im.abs() < 1e-10);
        }
    }

    #[test]
    fn pow2_matches_naive() {
        let input = real(&[1.0, -1.0, 2.5, 0.0, -3.0, 4.0, 0.5, 1.5]);
        let mut fast = input.clone();
        fft_pow2(&mut fast);
        close(&fast, &dft_naive(&input), 1e-10);
    }

    #[test]
    fn bluestein_matches_naive_for_odd_lengths() {
        for n in [3usize, 5, 7, 10, 13, 100, 101] {
            let input: Vec<Complex> = (0..n)
                .map(|i| ((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
                .collect();
            let fast = dft(&input);
            close(&fast, &dft_naive(&input), 1e-8 * n as f64);
        }
    }

    #[test]
    fn inverse_round_trip() {
        let input = real(&[0.5, 1.5, -2.0, 3.0, 0.0, -1.0, 2.0, 4.0]);
        let mut x = input.clone();
        fft_pow2(&mut x);
        ifft_pow2(&mut x);
        close(&x, &input, 1e-12);
    }

    #[test]
    fn parseval_energy_conserved() {
        let input: Vec<Complex> = (0..64).map(|i| ((i as f64).sin(), 0.0)).collect();
        let spec = dft(&input);
        let time_e: f64 = input.iter().map(|&c| c.0 * c.0 + c.1 * c.1).sum();
        let freq_e: f64 = spec.iter().map(|&c| (c.0 * c.0 + c.1 * c.1) / 64.0).sum();
        assert!((time_e - freq_e).abs() < 1e-9);
    }

    #[test]
    fn magnitude_helper() {
        assert!((c_abs((3.0, 4.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn pow2_rejects_other_lengths() {
        let mut x = vec![(0.0, 0.0); 6];
        fft_pow2(&mut x);
    }
}
