//! GF(2) kernels: Berlekamp–Massey and binary matrix rank.
//!
//! * Berlekamp–Massey computes the linear complexity of a bit block — the
//!   statistic of the SP 800-22 Linear Complexity test.
//! * Binary matrix rank over 32×32 matrices is the statistic of the
//!   SP 800-22 Rank test.

/// Computes the linear complexity (length of the shortest LFSR generating
/// the sequence) of `bits` via Berlekamp–Massey over GF(2).
///
/// Words are packed internally so the inner loop runs 64 bits at a time;
/// a 500-bit block (the NIST default) takes microseconds.
pub fn berlekamp_massey(bits: &[bool]) -> usize {
    let n = bits.len();
    if n == 0 {
        return 0;
    }
    let words = n.div_ceil(64) + 1;
    // c = current connection polynomial, b = previous, as bitsets.
    let mut c = vec![0u64; words];
    let mut b = vec![0u64; words];
    c[0] = 1;
    b[0] = 1;
    let mut l = 0usize;
    let mut m: isize = -1;
    let mut t = vec![0u64; words];

    for i in 0..n {
        // Discrepancy d = s_i + sum_{j=1..l} c_j * s_{i-j}  (mod 2).
        let mut d = u8::from(bits[i]);
        for j in 1..=l {
            let cj = (c[j / 64] >> (j % 64)) & 1;
            if cj == 1 && bits[i - j] {
                d ^= 1;
            }
        }
        if d == 1 {
            t.copy_from_slice(&c);
            // c ^= b << (i - m)
            let shift = (i as isize - m) as usize;
            xor_shifted(&mut c, &b, shift);
            if 2 * l <= i {
                l = i + 1 - l;
                m = i as isize;
                b.copy_from_slice(&t);
            }
        }
    }
    l
}

/// `dst ^= src << shift` over bit-packed words.
fn xor_shifted(dst: &mut [u64], src: &[u64], shift: usize) {
    let word_shift = shift / 64;
    let bit_shift = shift % 64;
    if bit_shift == 0 {
        for i in (word_shift..dst.len()).rev() {
            dst[i] ^= src[i - word_shift];
        }
    } else {
        for i in (word_shift..dst.len()).rev() {
            let lo = src[i - word_shift] << bit_shift;
            let hi = if i > word_shift {
                src[i - word_shift - 1] >> (64 - bit_shift)
            } else {
                0
            };
            dst[i] ^= lo | hi;
        }
    }
}

/// Rank of a binary matrix whose rows are the low `cols` bits of each
/// `u64` entry (bit `j` of `rows[i]` is the matrix element `(i, j)`).
///
/// # Panics
///
/// Panics if `cols > 64`.
pub fn binary_rank(rows: &[u64], cols: u32) -> u32 {
    assert!(cols <= 64, "at most 64 columns supported");
    let mut rows = rows.to_vec();
    let mut rank = 0u32;
    for col in 0..cols {
        let mask = 1u64 << col;
        // Find a pivot row at or below `rank`.
        let pivot = (rank as usize..rows.len()).find(|&r| rows[r] & mask != 0);
        if let Some(p) = pivot {
            rows.swap(rank as usize, p);
            let pivot_row = rows[rank as usize];
            for (r, row) in rows.iter_mut().enumerate() {
                if r != rank as usize && *row & mask != 0 {
                    *row ^= pivot_row;
                }
            }
            rank += 1;
            if rank as usize == rows.len() {
                break;
            }
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generates an LFSR sequence with taps given as polynomial exponents.
    fn lfsr(taps: &[usize], init: &[bool], n: usize) -> Vec<bool> {
        let l = init.len();
        let mut s: Vec<bool> = init.to_vec();
        for i in l..n {
            let mut next = false;
            for &t in taps {
                next ^= s[i - t];
            }
            s.push(next);
        }
        s
    }

    #[test]
    fn bm_zero_sequence() {
        assert_eq!(berlekamp_massey(&[false; 32]), 0);
        assert_eq!(berlekamp_massey(&[]), 0);
    }

    #[test]
    fn bm_single_one_at_end_has_full_complexity() {
        // 0^(n-1) 1 has linear complexity n.
        let mut bits = vec![false; 16];
        bits[15] = true;
        assert_eq!(berlekamp_massey(&bits), 16);
    }

    #[test]
    fn bm_alternating_sequence() {
        // 101010... satisfies s_i = s_{i-2}: complexity 2.
        let bits: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        assert_eq!(berlekamp_massey(&bits), 2);
    }

    #[test]
    fn bm_recovers_lfsr_length() {
        // x^5 + x^2 + 1 (maximal-length, period 31).
        let seq = lfsr(&[5, 2], &[true, false, false, true, true], 200);
        assert_eq!(berlekamp_massey(&seq), 5);
        // x^7 + x^1 + 1.
        let seq = lfsr(&[7, 1], &[true, true, false, false, true, false, true], 300);
        assert_eq!(berlekamp_massey(&seq), 7);
    }

    #[test]
    fn bm_nist_example() {
        // SP 800-22 §2.10.4 example: ε = 1101011110001 (n = 13) has
        // linear complexity L = 4 after processing.
        let bits: Vec<bool> = "1101011110001".chars().map(|c| c == '1').collect();
        assert_eq!(berlekamp_massey(&bits), 4);
    }

    #[test]
    fn bm_long_block_is_fast_and_plausible() {
        // Random 5000-bit block: complexity should be close to n/2 (the
        // expected value is n/2 + O(1) with tiny variance). xorshift would
        // be useless here — it is linear over GF(2) with complexity 64 —
        // so use splitmix64 (multiplicative, non-linear).
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let bits: Vec<bool> = (0..5000)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) & 1 == 1
            })
            .collect();
        let l = berlekamp_massey(&bits);
        assert!((l as f64 - 2500.0).abs() < 16.0, "L = {l}");
    }

    #[test]
    fn rank_identity_and_singular() {
        let identity: Vec<u64> = (0..32).map(|i| 1u64 << i).collect();
        assert_eq!(binary_rank(&identity, 32), 32);

        let zero = vec![0u64; 32];
        assert_eq!(binary_rank(&zero, 32), 0);

        // Two identical rows: rank 1.
        assert_eq!(binary_rank(&[0b1011, 0b1011], 4), 1);

        // Row 3 = row 1 xor row 2.
        assert_eq!(binary_rank(&[0b1100, 0b0110, 0b1010], 4), 2);
    }

    #[test]
    fn rank_is_permutation_invariant() {
        let m = [0b1001u64, 0b0110, 0b1111, 0b0001];
        let r1 = binary_rank(&m, 4);
        let m2 = [m[2], m[0], m[3], m[1]];
        assert_eq!(r1, binary_rank(&m2, 4));
    }

    #[test]
    fn random_32x32_matrices_are_usually_full_rank() {
        // P(full rank) ~ 0.2888, P(rank 31) ~ 0.5776 for random matrices.
        let mut full = 0;
        let mut m1 = 0;
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let trials = 2000;
        for _ in 0..trials {
            let rows: Vec<u64> = (0..32).map(|_| next() & 0xFFFF_FFFF).collect();
            match binary_rank(&rows, 32) {
                32 => full += 1,
                31 => m1 += 1,
                _ => {}
            }
        }
        let f_full = f64::from(full) / f64::from(trials);
        let f_m1 = f64::from(m1) / f64::from(trials);
        assert!((f_full - 0.2888).abs() < 0.05, "P(full) = {f_full}");
        assert!((f_m1 - 0.5776).abs() < 0.05, "P(n-1) = {f_m1}");
    }
}
