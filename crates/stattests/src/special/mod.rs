//! Special functions and numerical kernels for the test batteries.
//!
//! Everything the NIST/AIS procedures need and nothing more: log-gamma,
//! regularized incomplete gamma (the `igamc` of the NIST reference code),
//! the complementary error function, normal/chi-square tail probabilities
//! ([`self`]), an FFT supporting arbitrary lengths ([`fft`]), and GF(2)
//! kernels — Berlekamp–Massey and matrix rank ([`gf2`]).

pub mod fft;
pub mod gf2;

/// Natural log of the gamma function (Lanczos approximation, g = 7).
///
/// Accurate to ~1e-13 relative error for `x > 0`.
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients (g = 7, n = 9).
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn igam(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "igam domain: a > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
///
/// This is the `igamc` of the NIST STS reference implementation; nearly
/// every chi-square-based p-value in SP 800-22 is `igamc(dof/2, chi2/2)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn igamc(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "igamc domain: a > 0, x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cf(a, x)
    }
}

/// Series expansion of `P(a, x)`, valid for `x < a + 1`.
fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..1000 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction expansion of `Q(a, x)`, valid for `x >= a + 1`
/// (modified Lentz algorithm).
fn gamma_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..1000 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Complementary error function, via `igamc(1/2, x^2)` (accurate to
/// ~1e-13, far better than rational fits — the p-value tails need it).
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        igamc(0.5, x * x)
    } else {
        2.0 - igamc(0.5, x * x)
    }
}

/// Error function `erf(x) = 1 - erfc(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Standard normal CDF.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal survival function `P(Z > x)`.
pub fn norm_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Chi-square survival function with `dof` degrees of freedom.
///
/// # Panics
///
/// Panics if `dof` is 0 or `x < 0`.
pub fn chi2_sf(x: f64, dof: u32) -> f64 {
    assert!(dof > 0, "dof must be positive");
    igamc(f64::from(dof) / 2.0, x / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Gamma(n) = (n-1)!.
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-11);
        assert!((ln_gamma(11.0) - 3_628_800f64.ln()).abs() < 1e-10);
        // Gamma(1/2) = sqrt(pi).
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn igam_igamc_complement() {
        for &a in &[0.5, 1.0, 2.5, 10.0, 100.0] {
            for &x in &[0.0, 0.1, 1.0, 5.0, 50.0, 200.0] {
                let s = igam(a, x) + igamc(a, x);
                assert!((s - 1.0).abs() < 1e-12, "a={a} x={x}: {s}");
            }
        }
    }

    #[test]
    fn igamc_known_values() {
        // Q(1, x) = exp(-x).
        for &x in &[0.5, 1.0, 3.0, 10.0] {
            assert!((igamc(1.0, x) - (-x).exp()).abs() < 1e-13, "x={x}");
        }
        // Q(0.5, x) = erfc(sqrt(x)).
        let q = igamc(0.5, 1.0);
        assert!((q - 0.157_299_207_1).abs() < 1e-9, "{q}");
    }

    #[test]
    fn erfc_high_precision() {
        // Abramowitz & Stegun reference values.
        assert!((erfc(0.0) - 1.0).abs() < 1e-14);
        assert!((erfc(0.5) - 0.479_500_122_186_953_5).abs() < 1e-12);
        assert!((erfc(1.0) - 0.157_299_207_050_285_13).abs() < 1e-12);
        assert!((erfc(2.0) - 0.004_677_734_981_063_127).abs() < 1e-13);
        assert!((erfc(-1.0) - 1.842_700_792_949_715).abs() < 1e-12);
        assert!((erf(1.0) + erfc(1.0) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn normal_tails() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-14);
        assert!((norm_sf(1.959_963_985) - 0.025).abs() < 1e-9);
        assert!((norm_cdf(-1.0) - 0.158_655_253_9).abs() < 1e-9);
    }

    #[test]
    fn chi2_survival() {
        // chi2_sf(x, 2) = exp(-x/2).
        assert!((chi2_sf(4.0, 2) - (-2f64).exp()).abs() < 1e-12);
        // 95th percentile of chi2(1) is 3.841.
        assert!((chi2_sf(3.841_458_8, 1) - 0.05).abs() < 1e-7);
        // 95th percentile of chi2(9) is 16.919.
        assert!((chi2_sf(16.918_977_6, 9) - 0.05).abs() < 1e-7);
    }

    #[test]
    fn igamc_monotone_in_x() {
        let mut prev = 1.0;
        for i in 0..100 {
            let x = i as f64 * 0.3;
            let q = igamc(3.0, x);
            assert!(q <= prev + 1e-14);
            prev = q;
        }
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }
}
