//! §2.14 Random Excursions and §2.15 Random Excursions Variant tests.
//!
//! Both examine the random walk of cumulative ±1 sums, split into
//! zero-to-zero cycles. They are the two tests the paper reports with a
//! reduced 17/17 proportion: sequences with fewer than 500 cycles are
//! excluded by the spec, so only some of the 30 collected sequences
//! qualify.

use crate::bits::BitBuffer;
use crate::special::{erfc, igamc};

use super::TestResult;

/// Builds the cycle structure of the cumulative-sum walk: returns the list
/// of cycles, each a vector of walk states (excluding the delimiting
/// zeros), plus the total walk for the variant test.
fn walk_cycles(bits: &BitBuffer) -> (Vec<Vec<i32>>, Vec<i32>) {
    let mut walk = Vec::with_capacity(bits.len());
    let mut s = 0i32;
    for b in bits.iter() {
        s += if b { 1 } else { -1 };
        walk.push(s);
    }
    let mut cycles = Vec::new();
    let mut current = Vec::new();
    for &x in &walk {
        if x == 0 {
            cycles.push(std::mem::take(&mut current));
        } else {
            current.push(x);
        }
    }
    // The final partial cycle (if the walk doesn't end at zero) still
    // counts as a cycle per the spec (the walk is conceptually closed
    // with a final zero).
    if !current.is_empty() {
        cycles.push(current);
    }
    (cycles, walk)
}

/// Theoretical probabilities pi_k(x) of k visits to state x within one
/// cycle (SP 800-22 §3.14).
fn pi_k(x: i32, k: usize) -> f64 {
    let ax = f64::from(x.abs());
    match k {
        0 => 1.0 - 1.0 / (2.0 * ax),
        1..=4 => (1.0 / (4.0 * ax * ax)) * (1.0 - 1.0 / (2.0 * ax)).powi(k as i32 - 1),
        _ => (1.0 / (2.0 * ax)) * (1.0 - 1.0 / (2.0 * ax)).powi(4),
    }
}

/// Minimum cycle count for the test to apply (the spec's
/// `max(0.005 sqrt(n), 500)` with the 500 floor dominating at 1 Mbit).
fn min_cycles(n: usize) -> usize {
    ((0.005 * (n as f64).sqrt()).ceil() as usize).max(500)
}

/// §2.14 Random Excursions test: 8 subtests for states ±1..±4.
///
/// Returns an inapplicable result when the walk has too few cycles.
pub fn random_excursions_test(bits: &BitBuffer) -> TestResult {
    let (cycles, _) = walk_cycles(bits);
    let j = cycles.len();
    if j < min_cycles(bits.len()) {
        return TestResult::not_applicable("RandomExcursions");
    }
    let states = [-4, -3, -2, -1, 1, 2, 3, 4];
    let mut p_values = Vec::with_capacity(8);
    for &x in &states {
        // nu[k] = number of cycles with exactly k visits to x (k = 0..5+).
        let mut nu = [0u64; 6];
        for cycle in &cycles {
            let visits = cycle.iter().filter(|&&s| s == x).count();
            nu[visits.min(5)] += 1;
        }
        let jf = j as f64;
        let chi2: f64 = (0..6)
            .map(|k| {
                let e = jf * pi_k(x, k);
                (nu[k] as f64 - e) * (nu[k] as f64 - e) / e
            })
            .sum();
        p_values.push(igamc(5.0 / 2.0, chi2 / 2.0));
    }
    TestResult::multi("RandomExcursions", p_values)
}

/// §2.15 Random Excursions Variant test: 18 subtests for states ±1..±9.
///
/// Returns an inapplicable result when the walk has too few cycles.
pub fn random_excursions_variant_test(bits: &BitBuffer) -> TestResult {
    let (cycles, walk) = walk_cycles(bits);
    let j = cycles.len();
    if j < min_cycles(bits.len()) {
        return TestResult::not_applicable("RandomExcursionsVariant");
    }
    let jf = j as f64;
    let mut p_values = Vec::with_capacity(18);
    for x in (-9..=9).filter(|&x| x != 0) {
        let xi = walk.iter().filter(|&&s| s == x).count() as f64;
        // p = erfc(|xi - J| / sqrt(2 J (4|x| - 2))) — §2.15.4.
        let denom = (2.0 * jf * (4.0 * f64::from(x.abs()) - 2.0)).sqrt();
        p_values.push(erfc((xi - jf).abs() / denom));
    }
    TestResult::multi("RandomExcursionsVariant", p_values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bits(n: usize, seed: u64) -> BitBuffer {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        (0..n)
            .map(|_| {
                // splitmix64: non-linear over GF(2), unlike xorshift.
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) & 1 == 1
            })
            .collect()
    }

    #[test]
    fn nist_worked_example_cycles() {
        // §2.14.4: ε = 0110110101, walk S = -1,0,1,0,1,2,1,2,1,2 →
        // J = 3 cycles: {-1}, {1}, {1,2,1,2,1,2}.
        let bits = BitBuffer::from_binary_str("0110110101");
        let (cycles, _) = walk_cycles(&bits);
        assert_eq!(cycles.len(), 3);
        assert_eq!(cycles[0], vec![-1]);
        assert_eq!(cycles[1], vec![1]);
        assert_eq!(cycles[2], vec![1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn pi_table_matches_spec_for_x1() {
        // §3.14 table: x = 1 -> pi_0 = 0.5, pi_1 = 0.25, pi_2 = 0.125.
        assert!((pi_k(1, 0) - 0.5).abs() < 1e-12);
        assert!((pi_k(1, 1) - 0.25).abs() < 1e-12);
        assert!((pi_k(1, 2) - 0.125).abs() < 1e-12);
        // pi_k sums to 1 for every state.
        for x in 1..=4 {
            let total: f64 = (0..6).map(|k| pi_k(x, k)).sum();
            assert!((total - 1.0).abs() < 1e-9, "x = {x}: {total}");
        }
    }

    #[test]
    fn short_walks_are_inapplicable() {
        let bits = random_bits(1000, 5);
        assert!(!random_excursions_test(&bits).applicable);
        assert!(!random_excursions_variant_test(&bits).applicable);
    }

    #[test]
    fn random_data_qualifies_and_passes() {
        let bits = random_bits(1 << 20, 77);
        let re = random_excursions_test(&bits);
        let rev = random_excursions_variant_test(&bits);
        // A healthy 1 Mbit random walk has ~O(sqrt(n)) cycles, usually
        // enough; if not applicable, try another seed (determinism keeps
        // this stable).
        assert!(re.applicable, "walk had too few cycles");
        assert!(rev.applicable);
        assert_eq!(re.p_values.len(), 8);
        assert_eq!(rev.p_values.len(), 18);
        assert!(re.passes(0.01), "{:?}", re.p_values);
        assert!(rev.passes(0.01), "{:?}", rev.p_values);
    }

    #[test]
    fn biased_walk_fails_or_is_inapplicable() {
        // 52% ones: the walk drifts, cycles become rare.
        let mut state = 123u64;
        let bits: BitBuffer = (0..1_000_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 100) < 52
            })
            .collect();
        let re = random_excursions_test(&bits);
        assert!(
            !re.applicable || !re.passes(0.01),
            "biased walk should not pass cleanly"
        );
    }
}
