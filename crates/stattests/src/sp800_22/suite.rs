//! Suite driver: runs all fifteen tests over a set of sequences and
//! aggregates results the way the paper's Table 3 reports them.

use crate::bits::BitBuffer;
use crate::special::igamc;

use super::{
    approximate_entropy_test, block_frequency_test, cumulative_sums_test, dft_test, frequency_test,
    linear_complexity_test, longest_run_test, non_overlapping_template_test,
    overlapping_template_test, random_excursions_test, random_excursions_variant_test, rank_test,
    runs_test, serial_test, universal_test, TestResult, ALPHA,
};

/// Identifier of one SP 800-22 test, in the paper's Table 3 order.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum TestId {
    Frequency,
    BlockFrequency,
    CumulativeSums,
    Runs,
    LongestRun,
    Rank,
    Fft,
    NonOverlappingTemplate,
    OverlappingTemplate,
    Universal,
    ApproximateEntropy,
    RandomExcursions,
    RandomExcursionsVariant,
    Serial,
    LinearComplexity,
}

/// All fifteen tests in Table 3 order.
pub const ALL_TESTS: [TestId; 15] = [
    TestId::Frequency,
    TestId::BlockFrequency,
    TestId::CumulativeSums,
    TestId::Runs,
    TestId::LongestRun,
    TestId::Rank,
    TestId::Fft,
    TestId::NonOverlappingTemplate,
    TestId::OverlappingTemplate,
    TestId::Universal,
    TestId::ApproximateEntropy,
    TestId::RandomExcursions,
    TestId::RandomExcursionsVariant,
    TestId::Serial,
    TestId::LinearComplexity,
];

impl TestId {
    /// The name as printed in the paper's Table 3.
    pub fn name(self) -> &'static str {
        match self {
            TestId::Frequency => "Frequency",
            TestId::BlockFrequency => "BlockFrequency",
            TestId::CumulativeSums => "CumulativeSums*",
            TestId::Runs => "Runs",
            TestId::LongestRun => "LongestRun",
            TestId::Rank => "Rank",
            TestId::Fft => "FFT",
            TestId::NonOverlappingTemplate => "NonOverlappingTemplate*",
            TestId::OverlappingTemplate => "OverlappingTemplate",
            TestId::Universal => "Universal",
            TestId::ApproximateEntropy => "ApproximateEntropy",
            TestId::RandomExcursions => "RandomExcursions*",
            TestId::RandomExcursionsVariant => "RandomExcursionsVariant*",
            TestId::Serial => "Serial*",
            TestId::LinearComplexity => "LinearComplexity",
        }
    }

    /// Runs this test on one sequence with the NIST defaults for 1 Mbit
    /// inputs (BlockFrequency M=128, ApproximateEntropy m=2, Serial m=16,
    /// LinearComplexity M=500).
    pub fn run(self, bits: &BitBuffer) -> TestResult {
        match self {
            TestId::Frequency => frequency_test(bits),
            TestId::BlockFrequency => block_frequency_test(bits, 128),
            TestId::CumulativeSums => cumulative_sums_test(bits),
            TestId::Runs => runs_test(bits),
            TestId::LongestRun => longest_run_test(bits),
            TestId::Rank => rank_test(bits),
            TestId::Fft => dft_test(bits),
            TestId::NonOverlappingTemplate => non_overlapping_template_test(bits),
            TestId::OverlappingTemplate => overlapping_template_test(bits),
            TestId::Universal => universal_test(bits),
            TestId::ApproximateEntropy => approximate_entropy_test(bits, 2),
            TestId::RandomExcursions => random_excursions_test(bits),
            TestId::RandomExcursionsVariant => random_excursions_variant_test(bits),
            TestId::Serial => serial_test(bits, 16),
            TestId::LinearComplexity => linear_complexity_test(bits, 500),
        }
    }
}

impl std::fmt::Display for TestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Aggregated Table 3 row for one test over many sequences.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteRow {
    /// Which test.
    pub test: TestId,
    /// Cross-sequence uniformity P-value (chi-square over 10 bins of the
    /// pooled subtest p-values) — the "P-value" column of Table 3.
    pub uniformity_p: f64,
    /// Mean of all pooled p-values (informational).
    pub mean_p: f64,
    /// Sequences that passed all subtests.
    pub passed: usize,
    /// Sequences for which the test applied.
    pub applicable: usize,
}

impl SuiteRow {
    /// The "Prop." column of Table 3, e.g. `29/30`.
    pub fn proportion(&self) -> String {
        format!("{}/{}", self.passed, self.applicable)
    }

    /// NIST minimum pass proportion for the given sample size at
    /// alpha = 0.01: `p_hat - 3 sqrt(p_hat (1-p_hat) / s)` with
    /// `p_hat = 0.99`.
    pub fn minimum_pass_rate(&self) -> f64 {
        if self.applicable == 0 {
            return 0.0;
        }
        let p = 1.0 - ALPHA;
        p - 3.0 * (p * (1.0 - p) / self.applicable as f64).sqrt()
    }

    /// Whether the row meets both NIST acceptance criteria: uniformity
    /// P-value >= 0.0001 and pass proportion above the minimum rate.
    pub fn acceptable(&self) -> bool {
        if self.applicable == 0 {
            return false;
        }
        let rate = self.passed as f64 / self.applicable as f64;
        self.uniformity_p >= 0.0001 && rate >= self.minimum_pass_rate()
    }
}

/// Aggregated suite results over a set of sequences.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteReport {
    /// One row per test, Table 3 order.
    pub rows: Vec<SuiteRow>,
    /// Number of input sequences.
    pub sequences: usize,
}

impl SuiteReport {
    /// Whether every row meets the NIST acceptance criteria.
    pub fn all_acceptable(&self) -> bool {
        self.rows.iter().all(SuiteRow::acceptable)
    }

    /// The row for a given test.
    pub fn row(&self, test: TestId) -> Option<&SuiteRow> {
        self.rows.iter().find(|r| r.test == test)
    }
}

/// Uniformity P-value: chi-square of the pooled p-values over 10 equal
/// bins (SP 800-22 §4.2.2).
fn uniformity_p_value(p_values: &[f64]) -> f64 {
    if p_values.is_empty() {
        return 0.0;
    }
    let mut bins = [0u64; 10];
    for &p in p_values {
        let idx = ((p * 10.0).floor() as usize).min(9);
        bins[idx] += 1;
    }
    let expect = p_values.len() as f64 / 10.0;
    let chi2: f64 = bins
        .iter()
        .map(|&c| (c as f64 - expect) * (c as f64 - expect) / expect)
        .sum();
    igamc(9.0 / 2.0, chi2 / 2.0)
}

/// Runs the full suite over `sequences` and aggregates per-test rows.
///
/// Tests that are inapplicable for a sequence (Rank on short inputs,
/// RandomExcursions with few cycles, …) exclude that sequence from their
/// statistics, mirroring the paper's 17/17 RandomExcursions row.
pub fn run_suite(sequences: &[BitBuffer]) -> SuiteReport {
    run_suite_subset(sequences, &ALL_TESTS)
}

/// Runs a subset of the suite (used by benches that budget runtime).
///
/// The tests are independent, so they are spread across the available
/// cores (each test still sees the sequences in order, keeping results
/// bit-identical to a serial run).
pub fn run_suite_subset(sequences: &[BitBuffer], tests: &[TestId]) -> SuiteReport {
    let slots: Vec<std::sync::Mutex<Option<SuiteRow>>> =
        tests.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(tests.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= tests.len() {
                    break;
                }
                let row = run_one_test(sequences, tests[i]);
                *slots[i].lock().expect("suite slot poisoned") = Some(row);
            });
        }
    });
    let rows = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("suite slot poisoned")
                .expect("row computed")
        })
        .collect();
    SuiteReport {
        rows,
        sequences: sequences.len(),
    }
}

/// Aggregates one test over all sequences (one row of Table 3).
fn run_one_test(sequences: &[BitBuffer], test: TestId) -> SuiteRow {
    let rows = [test]
        .iter()
        .map(|&test| {
            let mut pooled = Vec::new();
            // Per-subtest pass counts: NIST tracks each subtest's pass
            // proportion separately (a sequence is not failed outright
            // because one of 148 templates dipped below alpha — at
            // alpha = 0.01 that happens to most sequences by chance).
            let mut subtest_passes: Vec<usize> = Vec::new();
            let mut applicable = 0usize;
            for bits in sequences {
                let r = test.run(bits);
                if !r.applicable {
                    continue;
                }
                applicable += 1;
                if subtest_passes.len() < r.p_values.len() {
                    subtest_passes.resize(r.p_values.len(), 0);
                }
                for (k, &p) in r.p_values.iter().enumerate() {
                    if p >= ALPHA {
                        subtest_passes[k] += 1;
                    }
                }
                pooled.extend_from_slice(&r.p_values);
            }
            let mean_p = if pooled.is_empty() {
                0.0
            } else {
                pooled.iter().sum::<f64>() / pooled.len() as f64
            };
            // The row's "passed" is the mean per-subtest pass count,
            // rounded — for single-statistic tests this is exactly the
            // sequence pass count; for starred tests it matches the
            // paper's single-number summary convention.
            let passed = if subtest_passes.is_empty() {
                0
            } else {
                let mean =
                    subtest_passes.iter().sum::<usize>() as f64 / subtest_passes.len() as f64;
                mean.round() as usize
            };
            SuiteRow {
                test,
                uniformity_p: uniformity_p_value(&pooled),
                mean_p,
                passed,
                applicable,
            }
        })
        .collect::<Vec<SuiteRow>>();
    rows.into_iter().next().expect("one row per test")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bits(n: usize, seed: u64) -> BitBuffer {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        (0..n)
            .map(|_| {
                // splitmix64: non-linear over GF(2), unlike xorshift.
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) & 1 == 1
            })
            .collect()
    }

    #[test]
    fn uniformity_of_uniform_ps() {
        let ps: Vec<f64> = (0..1000).map(|i| (i as f64 + 0.5) / 1000.0).collect();
        assert!(uniformity_p_value(&ps) > 0.99);
    }

    #[test]
    fn uniformity_of_clustered_ps_is_tiny() {
        let ps = vec![0.5; 100];
        assert!(uniformity_p_value(&ps) < 1e-10);
    }

    #[test]
    fn subset_suite_on_random_sequences() {
        let seqs: Vec<BitBuffer> = (0..8).map(|s| random_bits(50_000, 1000 + s)).collect();
        let quick = [
            TestId::Frequency,
            TestId::BlockFrequency,
            TestId::Runs,
            TestId::CumulativeSums,
            TestId::LongestRun,
            TestId::ApproximateEntropy,
        ];
        let report = run_suite_subset(&seqs, &quick);
        assert_eq!(report.rows.len(), quick.len());
        for row in &report.rows {
            assert_eq!(row.applicable, 8, "{}", row.test);
            assert!(
                row.passed >= 7,
                "{}: {} — random data should pass",
                row.test,
                row.proportion()
            );
        }
    }

    #[test]
    fn broken_generator_is_flagged() {
        // Heavily biased sequences must fail the acceptance criteria.
        let mut state = 99u64;
        let seqs: Vec<BitBuffer> = (0..4)
            .map(|_| {
                (0..50_000)
                    .map(|_| {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state % 100 < 60 // 60% ones
                    })
                    .collect()
            })
            .collect();
        let report = run_suite_subset(&seqs, &[TestId::Frequency]);
        assert!(!report.all_acceptable());
        assert_eq!(report.rows[0].passed, 0);
    }

    #[test]
    fn proportion_formatting_and_min_rate() {
        let row = SuiteRow {
            test: TestId::Frequency,
            uniformity_p: 0.5,
            mean_p: 0.5,
            passed: 29,
            applicable: 30,
        };
        assert_eq!(row.proportion(), "29/30");
        // For 30 sequences the NIST minimum rate is ~0.9355.
        assert!((row.minimum_pass_rate() - 0.9355).abs() < 0.001);
        assert!(row.acceptable());
    }

    #[test]
    fn row_lookup() {
        let seqs = [random_bits(2000, 5)];
        let report = run_suite_subset(&seqs, &[TestId::Frequency, TestId::Runs]);
        assert!(report.row(TestId::Runs).is_some());
        assert!(report.row(TestId::Rank).is_none());
    }
}
