//! §2.11 Serial and §2.12 Approximate Entropy tests.
//!
//! Both tests compare the empirical frequencies of overlapping m-bit
//! patterns (with circular wrap-around) at adjacent orders.

use crate::bits::BitBuffer;
use crate::special::igamc;

use super::TestResult;

/// Overlapping circular m-bit pattern counts (2^m entries).
fn pattern_counts(bits: &BitBuffer, m: usize) -> Vec<u64> {
    debug_assert!(m <= 24, "pattern order too large");
    let n = bits.len();
    let mut counts = vec![0u64; 1 << m];
    if m == 0 {
        return counts;
    }
    // Rolling window with wrap-around.
    let mask = (1u64 << m) - 1;
    let mut w = bits.window_circular(0, m);
    counts[w as usize] += 1;
    for i in 1..n {
        let incoming = u64::from(bits.bit((i + m - 1) % n));
        w = ((w << 1) | incoming) & mask;
        counts[w as usize] += 1;
    }
    counts
}

/// psi-squared statistic of §2.11: `(2^m / n) * sum(counts^2) - n`.
fn psi_squared(bits: &BitBuffer, m: usize) -> f64 {
    if m == 0 {
        return 0.0;
    }
    let n = bits.len() as f64;
    let counts = pattern_counts(bits, m);
    let sum_sq: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    (2f64.powi(m as i32) / n) * sum_sq - n
}

/// §2.11 Serial test of order `m` (NIST default m = 16 for 1 Mbit).
/// Returns the two subtest p-values (∇ψ² and ∇²ψ²).
///
/// # Panics
///
/// Panics unless `3 <= m <= 24` and the sequence is non-empty.
pub fn serial_test(bits: &BitBuffer, m: usize) -> TestResult {
    assert!((3..=24).contains(&m), "serial test needs 3 <= m <= 24");
    assert!(!bits.is_empty(), "serial test needs a non-empty sequence");
    let psi_m = psi_squared(bits, m);
    let psi_m1 = psi_squared(bits, m - 1);
    let psi_m2 = psi_squared(bits, m - 2);
    let del1 = psi_m - psi_m1;
    let del2 = psi_m - 2.0 * psi_m1 + psi_m2;
    let p1 = igamc(2f64.powi(m as i32 - 2), del1 / 2.0);
    let p2 = igamc(2f64.powi(m as i32 - 3), del2 / 2.0);
    TestResult::multi("Serial", vec![p1, p2])
}

/// §2.12 Approximate Entropy test of order `m` (NIST default m = 2).
///
/// # Panics
///
/// Panics unless `1 <= m <= 23` and the sequence is non-empty.
pub fn approximate_entropy_test(bits: &BitBuffer, m: usize) -> TestResult {
    assert!(
        (1..=23).contains(&m),
        "approximate entropy needs 1 <= m <= 23"
    );
    let n = bits.len();
    assert!(n > 0, "approximate entropy needs a non-empty sequence");

    let phi = |order: usize| -> f64 {
        let counts = pattern_counts(bits, order);
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let ci = c as f64 / n as f64;
                ci * ci.ln()
            })
            .sum()
    };
    let ap_en = phi(m) - phi(m + 1);
    let chi2 = 2.0 * n as f64 * (std::f64::consts::LN_2 - ap_en);
    let p = igamc(2f64.powi(m as i32 - 1), chi2 / 2.0);
    TestResult::single("ApproximateEntropy", p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bits(n: usize, seed: u64) -> BitBuffer {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        (0..n)
            .map(|_| {
                // splitmix64: non-linear over GF(2), unlike xorshift.
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) & 1 == 1
            })
            .collect()
    }

    #[test]
    fn serial_nist_worked_example() {
        // §2.11.4: ε = 0011011101, m = 3: ∇ψ² = 1.6, ∇²ψ² = 0.8,
        // p1 = 0.808792, p2 = 0.670320.
        let bits = BitBuffer::from_binary_str("0011011101");
        let r = serial_test(&bits, 3);
        assert!((r.p_values[0] - 0.808_792).abs() < 1e-5, "{:?}", r.p_values);
        assert!((r.p_values[1] - 0.670_320).abs() < 1e-5, "{:?}", r.p_values);
    }

    #[test]
    fn approx_entropy_nist_worked_example() {
        // §2.12.4: ε = 0100110101, m = 3: ApEn = 0.502193, chi2 = 4.817771,
        // p = 0.261961.
        let bits = BitBuffer::from_binary_str("0100110101");
        let r = approximate_entropy_test(&bits, 3);
        assert!(
            (r.p_value() - 0.261_961).abs() < 1e-5,
            "p = {}",
            r.p_value()
        );
    }

    #[test]
    fn approx_entropy_nist_pi_example() {
        // §2.12.8: first 100 binary digits of pi, m = 2: p = 0.235301.
        let eps = BitBuffer::from_binary_str(
            "11001001000011111101101010100010001000010110100011\
             00001000110100110001001100011001100010100010111000",
        );
        let r = approximate_entropy_test(&eps, 2);
        assert!(
            (r.p_value() - 0.235_301).abs() < 1e-4,
            "p = {}",
            r.p_value()
        );
    }

    #[test]
    fn pattern_counts_sum_to_n() {
        let bits = random_bits(1000, 5);
        for m in 1..6 {
            let total: u64 = pattern_counts(&bits, m).iter().sum();
            assert_eq!(total, 1000);
        }
    }

    #[test]
    fn random_data_passes_both() {
        let bits = random_bits(1 << 20, 6);
        assert!(serial_test(&bits, 16).passes(0.01));
        assert!(approximate_entropy_test(&bits, 2).passes(0.01));
    }

    #[test]
    fn periodic_data_fails_both() {
        let bits: BitBuffer = (0..100_000).map(|i| i % 4 < 2).collect();
        assert!(!serial_test(&bits, 5).passes(0.01));
        assert!(!approximate_entropy_test(&bits, 2).passes(0.01));
    }
}
