//! §2.9 Maurer's "Universal Statistical" test.

use crate::bits::BitBuffer;
use crate::special::erfc;

use super::TestResult;

/// Expected value of the statistic per block length L (index = L),
/// SP 800-22 Table in §2.9.4 / the reference implementation.
const EXPECTED: [f64; 17] = [
    0.0,
    0.732_649_48,
    1.537_438_3,
    2.401_606_81,
    3.311_224_72,
    4.253_426_59,
    5.217_705_2,
    6.196_250_7,
    7.183_665_6,
    8.176_424_8,
    9.172_324_3,
    10.170_032,
    11.168_765,
    12.168_070,
    13.167_693,
    14.167_488,
    15.167_379,
];

/// Variance of the statistic per block length L (index = L).
const VARIANCE: [f64; 17] = [
    0.0, 0.690, 1.338, 1.901, 2.358, 2.705, 2.954, 3.125, 3.238, 3.311, 3.356, 3.384, 3.401, 3.410,
    3.416, 3.419, 3.421,
];

/// §2.9 Universal test with the spec's automatic parameter selection
/// (`L` from the sequence length, `Q = 10 * 2^L`).
///
/// Returns an inapplicable result when the sequence is shorter than the
/// 387 840-bit minimum.
pub fn universal_test(bits: &BitBuffer) -> TestResult {
    let n = bits.len();
    let l = match n {
        0..=387_839 => return TestResult::not_applicable("Universal"),
        387_840..=904_959 => 6,
        904_960..=2_068_479 => 7,
        2_068_480..=4_654_079 => 8,
        4_654_080..=10_342_399 => 9,
        _ => 10,
    };
    let q = 10 * (1usize << l);
    universal_test_with_params(bits, l, q)
}

/// §2.9 Universal test with explicit `(L, Q)` parameters (the spec's
/// worked example uses `L = 2, Q = 4`).
///
/// # Panics
///
/// Panics if `L` is outside `1..=16` or the sequence has no test blocks
/// after the `Q` initialisation blocks.
pub fn universal_test_with_params(bits: &BitBuffer, l: usize, q: usize) -> TestResult {
    assert!((1..=16).contains(&l), "L must be in 1..=16");
    let n = bits.len();
    let total_blocks = n / l;
    assert!(
        total_blocks > q,
        "sequence too short: {total_blocks} blocks for Q = {q}"
    );
    let k = total_blocks - q;

    // last_seen[pattern] = last block index (1-based) where it occurred.
    let mut last_seen = vec![0usize; 1 << l];
    for i in 1..=q {
        let pat = bits.window((i - 1) * l, l) as usize;
        last_seen[pat] = i;
    }
    let mut sum = 0.0;
    for i in (q + 1)..=(q + k) {
        let pat = bits.window((i - 1) * l, l) as usize;
        sum += ((i - last_seen[pat]) as f64).log2();
        last_seen[pat] = i;
    }
    let fn_stat = sum / k as f64;

    let c =
        0.7 - 0.8 / l as f64 + (4.0 + 32.0 / l as f64) * (k as f64).powf(-3.0 / l as f64) / 15.0;
    let sigma = c * (VARIANCE[l] / k as f64).sqrt();
    let p = erfc(((fn_stat - EXPECTED[l]) / sigma).abs() / std::f64::consts::SQRT_2);
    TestResult::single("Universal", p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bits(n: usize, seed: u64) -> BitBuffer {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        (0..n)
            .map(|_| {
                // splitmix64: non-linear over GF(2), unlike xorshift.
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) & 1 == 1
            })
            .collect()
    }

    #[test]
    fn nist_worked_example() {
        // §2.9.4: ε = 01011010011101010111 with L = 2, Q = 4 gives
        // fn = 1.1949875. The spec's example then quotes p = 0.767189 by
        // using sigma = sqrt(variance) *without* the small-K correction
        // factor c; the production formula (used by the NIST reference
        // code and here) applies c and yields 0.063454.
        let bits = BitBuffer::from_binary_str("01011010011101010111");
        let r = universal_test_with_params(&bits, 2, 4);
        assert!(
            (r.p_value() - 0.063_454).abs() < 1e-4,
            "p = {}",
            r.p_value()
        );
        // Reconstruct the spec's uncorrected figure from fn to guard the
        // statistic itself: |fn - 1.5374383| / (sqrt(2 * 1.338)) -> erfc.
        let fn_stat = 1.194_987_5f64;
        let spec_p = crate::special::erfc(
            ((fn_stat - 1.537_438_3f64) / 1.338f64.sqrt()).abs() / std::f64::consts::SQRT_2,
        );
        assert!((spec_p - 0.767_189).abs() < 1e-4, "spec-style p = {spec_p}");
    }

    #[test]
    fn short_sequence_inapplicable() {
        let bits = random_bits(100_000, 1);
        assert!(!universal_test(&bits).applicable);
    }

    #[test]
    fn megabit_uses_l7_and_passes_on_random_data() {
        let bits = random_bits(1 << 20, 2);
        let r = universal_test(&bits);
        assert!(r.applicable);
        assert!(r.passes(0.01), "p = {}", r.p_value());
    }

    #[test]
    fn periodic_data_fails() {
        // Period 32: every pattern recurs at fixed short distances, so the
        // statistic collapses far below the expected value.
        let bits: BitBuffer = (0..500_000).map(|i| (i / 4) % 2 == 0).collect();
        let r = universal_test(&bits);
        assert!(r.applicable);
        assert!(r.p_value() < 1e-10, "p = {}", r.p_value());
    }

    #[test]
    #[should_panic(expected = "L must be in 1..=16")]
    fn bad_l_panics() {
        let bits = random_bits(1000, 3);
        let _ = universal_test_with_params(&bits, 0, 10);
    }
}
