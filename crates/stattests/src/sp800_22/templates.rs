//! §2.7 Non-overlapping and §2.8 Overlapping Template Matching tests.

use crate::bits::BitBuffer;
use crate::special::igamc;

use super::TestResult;

/// Default template length used by the NIST suite.
pub const TEMPLATE_LEN: usize = 9;
/// Number of blocks for the non-overlapping test.
const N_BLOCKS: usize = 8;

/// Enumerates all aperiodic templates of length `m`, as bit patterns with
/// the first template bit in the most significant of the low `m` bits.
///
/// A template `B` is aperiodic if no proper shift of `B` matches itself:
/// for all `1 <= k < m`, `B[0..m-k] != B[k..m]`. For `m = 9` this yields
/// the 148 templates of the NIST `template9` file.
pub fn aperiodic_templates(m: usize) -> Vec<u64> {
    assert!(
        (2..=16).contains(&m),
        "template length out of supported range"
    );
    let mut out = Vec::new();
    'outer: for t in 0..(1u64 << m) {
        for k in 1..m {
            // Compare B[0..m-k] with B[k..m].
            let top = t >> k; // B[0..m-k] (high bits)
            let mask = (1u64 << (m - k)) - 1;
            if (t & mask) == (top & mask) {
                continue 'outer; // periodic with shift k
            }
        }
        out.push(t);
    }
    out
}

/// §2.7 Non-overlapping Template Matching test over every aperiodic
/// template of length [`TEMPLATE_LEN`] (one subtest per template, as the
/// NIST suite runs it; the paper's starred row averages them).
///
/// The rolling 9-bit window code at every position is precomputed once
/// and shared by all 148 template scans, which keeps megabit inputs fast.
///
/// # Panics
///
/// Panics if the sequence is too short for 8 blocks of meaningful length.
pub fn non_overlapping_template_test(bits: &BitBuffer) -> TestResult {
    let m = TEMPLATE_LEN;
    let n = bits.len();
    let block_len = n / N_BLOCKS;
    assert!(
        block_len >= 2 * m,
        "sequence too short for the non-overlapping template test"
    );
    // codes[i] = the m-bit window starting at i (within scanning range).
    let mask = (1u64 << m) - 1;
    let mut codes = vec![0u16; n - m + 1];
    let mut w = bits.window(0, m);
    codes[0] = w as u16;
    for (i, code) in codes.iter_mut().enumerate().skip(1) {
        w = ((w << 1) | u64::from(bits.bit(i + m - 1))) & mask;
        *code = w as u16;
    }

    let mu = (block_len - m + 1) as f64 / 2f64.powi(m as i32);
    let sigma2 = block_len as f64
        * (1.0 / 2f64.powi(m as i32) - (2.0 * m as f64 - 1.0) / 2f64.powi(2 * m as i32));

    let templates = aperiodic_templates(m);
    let p_values: Vec<f64> = templates
        .iter()
        .map(|&t| {
            let t = t as u16;
            let mut chi2 = 0.0;
            for b in 0..N_BLOCKS {
                let base = b * block_len;
                let mut count = 0u64;
                let mut i = 0usize;
                while i + m <= block_len {
                    if codes[base + i] == t {
                        count += 1;
                        i += m;
                    } else {
                        i += 1;
                    }
                }
                chi2 += (count as f64 - mu) * (count as f64 - mu) / sigma2;
            }
            igamc(N_BLOCKS as f64 / 2.0, chi2 / 2.0)
        })
        .collect();
    TestResult::multi("NonOverlappingTemplate", p_values)
}

/// One template's p-value for the non-overlapping test (kept public for
/// targeted diagnostics; the suite path uses the precomputed-code scan).
pub fn non_overlapping_single(bits: &BitBuffer, template: u64, m: usize) -> f64 {
    let n = bits.len();
    let block_len = n / N_BLOCKS;
    assert!(
        block_len >= 2 * m,
        "sequence too short for the non-overlapping template test"
    );
    let mu = (block_len - m + 1) as f64 / 2f64.powi(m as i32);
    let sigma2 = block_len as f64
        * (1.0 / 2f64.powi(m as i32) - (2.0 * m as f64 - 1.0) / 2f64.powi(2 * m as i32));
    let mut chi2 = 0.0;
    for b in 0..N_BLOCKS {
        let base = b * block_len;
        let mut w = 0u64;
        let mut i = 0usize;
        while i + m <= block_len {
            if bits.window(base + i, m) == template {
                w += 1;
                i += m; // non-overlapping scan restarts after a match
            } else {
                i += 1;
            }
        }
        chi2 += (w as f64 - mu) * (w as f64 - mu) / sigma2;
    }
    igamc(N_BLOCKS as f64 / 2.0, chi2 / 2.0)
}

/// Bin probabilities for the overlapping test with m = 9, M = 1032
/// (SP 800-22 rev. 1a §3.8 corrected values).
const OVERLAP_PI: [f64; 6] = [0.364091, 0.185659, 0.139381, 0.100571, 0.070432, 0.139865];
/// Block length of the overlapping test.
const OVERLAP_M: usize = 1032;

/// §2.8 Overlapping Template Matching test (all-ones template of length
/// 9, blocks of 1032 bits, 5 degrees of freedom).
///
/// Returns an inapplicable result when fewer than 5 blocks fit.
pub fn overlapping_template_test(bits: &BitBuffer) -> TestResult {
    let n = bits.len();
    let blocks = n / OVERLAP_M;
    if blocks < 5 {
        return TestResult::not_applicable("OverlappingTemplate");
    }
    let m = TEMPLATE_LEN;
    let template = (1u64 << m) - 1; // 111111111
    let mut v = [0u64; 6];
    for b in 0..blocks {
        let base = b * OVERLAP_M;
        let mut count = 0usize;
        for i in 0..=(OVERLAP_M - m) {
            if bits.window(base + i, m) == template {
                count += 1;
            }
        }
        v[count.min(5)] += 1;
    }
    let nf = blocks as f64;
    let chi2: f64 = v
        .iter()
        .zip(OVERLAP_PI)
        .map(|(&obs, pi)| {
            let e = nf * pi;
            (obs as f64 - e) * (obs as f64 - e) / e
        })
        .sum();
    TestResult::single("OverlappingTemplate", igamc(5.0 / 2.0, chi2 / 2.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bits(n: usize, seed: u64) -> BitBuffer {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        (0..n)
            .map(|_| {
                // splitmix64: non-linear over GF(2), unlike xorshift.
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) & 1 == 1
            })
            .collect()
    }

    #[test]
    fn template9_count_matches_nist_file() {
        assert_eq!(aperiodic_templates(9).len(), 148);
    }

    #[test]
    fn template2_enumeration() {
        // Length 2: 01 and 10 are aperiodic; 00 and 11 are periodic.
        let t = aperiodic_templates(2);
        assert_eq!(t, vec![0b01, 0b10]);
    }

    #[test]
    fn templates_are_actually_aperiodic() {
        for &t in aperiodic_templates(6).iter() {
            for k in 1..6 {
                let mask = (1u64 << (6 - k)) - 1;
                assert_ne!(t & mask, (t >> k) & mask, "template {t:06b} shift {k}");
            }
        }
    }

    #[test]
    fn nist_nonoverlapping_example() {
        // §2.7.4 worked example: ε = 10100100101110010110, B = 001,
        // N = 2 blocks of 10 bits, p = 0.344154.
        // Our implementation fixes N = 8, so replicate the computation
        // with the internal kernel generalised by hand: use the formula
        // directly to validate mu/sigma arithmetic instead.
        let bits = BitBuffer::from_binary_str("10100100101110010110");
        let m = 3;
        let block_len = 10;
        let mu = (block_len - m + 1) as f64 / 8.0;
        let sigma2 = block_len as f64 * (1.0 / 8.0 - (2.0 * 3.0 - 1.0) / 64.0);
        // Count W in each half with the non-overlapping scan for B=001.
        let count = |start: usize| {
            let mut w = 0;
            let mut i = 0;
            while i + m <= block_len {
                if bits.window(start + i, m) == 0b001 {
                    w += 1;
                    i += m;
                } else {
                    i += 1;
                }
            }
            w
        };
        let (w1, w2) = (count(0), count(10));
        assert_eq!((w1, w2), (2, 1));
        let chi2 = ((w1 as f64 - mu).powi(2) + (w2 as f64 - mu).powi(2)) / sigma2;
        let p = igamc(1.0, chi2 / 2.0);
        assert!((p - 0.344_154).abs() < 1e-4, "p = {p}");
    }

    #[test]
    fn random_data_passes_both_template_tests() {
        let bits = random_bits(1_000_000, 21);
        let non = non_overlapping_template_test(&bits);
        assert_eq!(non.p_values.len(), 148);
        let fails = non.p_values.iter().filter(|&&p| p < 0.01).count();
        // With 148 subtests at alpha = 0.01 a few failures are expected;
        // more than 8 would signal a broken implementation.
        assert!(fails <= 8, "{fails} template subtests failed");

        let over = overlapping_template_test(&bits);
        assert!(over.passes(0.01), "p = {}", over.p_value());
    }

    #[test]
    fn stuck_pattern_fails_nonoverlapping() {
        // Repeating 000000001: one template massively over-represented.
        let bits: BitBuffer = (0..200_000).map(|i| i % 9 == 8).collect();
        let r = non_overlapping_template_test(&bits);
        let min_p = r.p_values.iter().cloned().fold(1.0, f64::min);
        assert!(min_p < 1e-10, "min p = {min_p}");
    }

    #[test]
    fn all_ones_fails_overlapping() {
        let bits: BitBuffer = (0..200_000).map(|_| true).collect();
        let r = overlapping_template_test(&bits);
        assert!(r.p_value() < 1e-10);
    }

    #[test]
    fn short_input_is_inapplicable_for_overlapping() {
        let bits = random_bits(4000, 3);
        assert!(!overlapping_template_test(&bits).applicable);
    }
}
