//! The frequency-family tests: Frequency (monobit), Block Frequency,
//! Runs, Longest Run of Ones, and Cumulative Sums (SP 800-22 §2.1–§2.4,
//! §2.13).

use crate::bits::BitBuffer;
use crate::special::{erfc, igamc, norm_cdf};

use super::TestResult;

/// §2.1 Frequency (monobit) test.
///
/// # Panics
///
/// Panics on an empty sequence.
pub fn frequency_test(bits: &BitBuffer) -> TestResult {
    let n = bits.len();
    assert!(n > 0, "frequency test needs a non-empty sequence");
    let sum = bits.ones() as f64 - bits.zeros() as f64;
    let s_obs = sum.abs() / (n as f64).sqrt();
    let p = erfc(s_obs / std::f64::consts::SQRT_2);
    TestResult::single("Frequency", p)
}

/// §2.2 Block Frequency test with block length `m` (NIST default 128).
///
/// # Panics
///
/// Panics if fewer than one block fits.
pub fn block_frequency_test(bits: &BitBuffer, m: usize) -> TestResult {
    let n = bits.len();
    let blocks = n / m;
    assert!(
        blocks >= 1,
        "block frequency needs at least one {m}-bit block"
    );
    let mut chi2 = 0.0;
    for b in 0..blocks {
        let ones = (0..m).filter(|&i| bits.bit(b * m + i)).count();
        let pi = ones as f64 / m as f64;
        chi2 += (pi - 0.5) * (pi - 0.5);
    }
    chi2 *= 4.0 * m as f64;
    let p = igamc(blocks as f64 / 2.0, chi2 / 2.0);
    TestResult::single("BlockFrequency", p)
}

/// §2.3 Runs test.
pub fn runs_test(bits: &BitBuffer) -> TestResult {
    let n = bits.len();
    assert!(n >= 2, "runs test needs at least two bits");
    let pi = bits.ones() as f64 / n as f64;
    // Prerequisite frequency check from the spec.
    if (pi - 0.5).abs() >= 2.0 / (n as f64).sqrt() {
        return TestResult::single("Runs", 0.0);
    }
    let mut v = 1u64;
    for i in 1..n {
        if bits.bit(i) != bits.bit(i - 1) {
            v += 1;
        }
    }
    let num = (v as f64 - 2.0 * n as f64 * pi * (1.0 - pi)).abs();
    let den = 2.0 * (2.0 * n as f64).sqrt() * pi * (1.0 - pi);
    TestResult::single("Runs", erfc(num / den))
}

/// Parameters of the Longest-Run test for a given sequence length.
struct LongestRunConfig {
    m: usize,
    k: usize,
    bins_lo: u32,
    pi: &'static [f64],
}

fn longest_run_config(n: usize) -> LongestRunConfig {
    if n < 6272 {
        LongestRunConfig {
            m: 8,
            k: 3,
            bins_lo: 1,
            pi: &[0.2148, 0.3672, 0.2305, 0.1875],
        }
    } else if n < 750_000 {
        LongestRunConfig {
            m: 128,
            k: 5,
            bins_lo: 4,
            pi: &[0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124],
        }
    } else {
        LongestRunConfig {
            m: 10_000,
            k: 6,
            bins_lo: 10,
            pi: &[0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727],
        }
    }
}

/// §2.4 Longest Run of Ones in a Block test.
///
/// # Panics
///
/// Panics if the sequence is shorter than the spec minimum (128 bits).
pub fn longest_run_test(bits: &BitBuffer) -> TestResult {
    let n = bits.len();
    assert!(n >= 128, "longest-run test needs at least 128 bits");
    let cfg = longest_run_config(n);
    let blocks = n / cfg.m;
    let mut v = vec![0u64; cfg.k + 1];
    for b in 0..blocks {
        let mut longest = 0usize;
        let mut run = 0usize;
        for i in 0..cfg.m {
            if bits.bit(b * cfg.m + i) {
                run += 1;
                longest = longest.max(run);
            } else {
                run = 0;
            }
        }
        let bin = (longest as i64 - i64::from(cfg.bins_lo)).clamp(0, cfg.k as i64) as usize;
        v[bin] += 1;
    }
    let nf = blocks as f64;
    let chi2: f64 = v
        .iter()
        .zip(cfg.pi)
        .map(|(&obs, &pi)| {
            let e = nf * pi;
            (obs as f64 - e) * (obs as f64 - e) / e
        })
        .sum();
    let p = igamc(cfg.k as f64 / 2.0, chi2 / 2.0);
    TestResult::single("LongestRun", p)
}

/// §2.13 Cumulative Sums test; returns both the forward and backward
/// subtests (the paper's starred row averages them).
pub fn cumulative_sums_test(bits: &BitBuffer) -> TestResult {
    let n = bits.len();
    assert!(n > 0, "cusum test needs a non-empty sequence");
    let p_fwd = cusum_p(bits, false);
    let p_rev = cusum_p(bits, true);
    TestResult::multi("CumulativeSums", vec![p_fwd, p_rev])
}

fn cusum_p(bits: &BitBuffer, reverse: bool) -> f64 {
    let n = bits.len();
    let mut s = 0i64;
    let mut z = 0i64;
    for i in 0..n {
        let idx = if reverse { n - 1 - i } else { i };
        s += if bits.bit(idx) { 1 } else { -1 };
        z = z.max(s.abs());
    }
    if z == 0 {
        return 0.0;
    }
    let n_f = n as f64;
    let z_f = z as f64;
    let sqrt_n = n_f.sqrt();

    let mut sum1 = 0.0;
    let k_lo = ((-(n_f / z_f) + 1.0) / 4.0).ceil() as i64;
    let k_hi = ((n_f / z_f - 1.0) / 4.0).floor() as i64;
    for k in k_lo..=k_hi {
        let k = k as f64;
        sum1 += norm_cdf((4.0 * k + 1.0) * z_f / sqrt_n) - norm_cdf((4.0 * k - 1.0) * z_f / sqrt_n);
    }
    let mut sum2 = 0.0;
    let k_lo = ((-(n_f / z_f) - 3.0) / 4.0).ceil() as i64;
    let k_hi = ((n_f / z_f - 1.0) / 4.0).floor() as i64;
    for k in k_lo..=k_hi {
        let k = k as f64;
        sum2 += norm_cdf((4.0 * k + 3.0) * z_f / sqrt_n) - norm_cdf((4.0 * k + 1.0) * z_f / sqrt_n);
    }
    (1.0 - sum1 + sum2).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SP 800-22 §2.1.8 reference sequence: first 100 binary digits of pi.
    fn pi_100() -> BitBuffer {
        BitBuffer::from_binary_str(
            "11001001000011111101101010100010001000010110100011\
             00001000110100110001001100011001100010100010111000",
        )
    }

    fn random_bits(n: usize, seed: u64) -> BitBuffer {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        (0..n)
            .map(|_| {
                // splitmix64: non-linear over GF(2), unlike xorshift.
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) & 1 == 1
            })
            .collect()
    }

    #[test]
    fn frequency_nist_vectors() {
        // §2.1.4 worked example: ε = 1011010101, p = 0.527089.
        let small = BitBuffer::from_binary_str("1011010101");
        assert!((frequency_test(&small).p_value() - 0.527_089).abs() < 1e-5);
        // §2.1.8: pi digits, p = 0.109599.
        assert!((frequency_test(&pi_100()).p_value() - 0.109_599).abs() < 1e-5);
    }

    #[test]
    fn block_frequency_nist_vectors() {
        // §2.2.4 worked example: ε = 0110011010, M = 3, p = 0.801252.
        let small = BitBuffer::from_binary_str("0110011010");
        assert!((block_frequency_test(&small, 3).p_value() - 0.801_252).abs() < 1e-5);
        // §2.2.8: pi digits, M = 10, p = 0.706438.
        assert!((block_frequency_test(&pi_100(), 10).p_value() - 0.706_438).abs() < 1e-5);
    }

    #[test]
    fn runs_nist_vectors() {
        // §2.3.4 worked example: ε = 1001101011, p = 0.147232.
        let small = BitBuffer::from_binary_str("1001101011");
        assert!((runs_test(&small).p_value() - 0.147_232).abs() < 1e-5);
        // §2.3.8: pi digits, p = 0.500798.
        assert!((runs_test(&pi_100()).p_value() - 0.500_798).abs() < 1e-5);
    }

    #[test]
    fn runs_rejects_biased_sequence_via_prerequisite() {
        let biased: BitBuffer = (0..1000).map(|i| i % 10 != 0).collect();
        assert_eq!(runs_test(&biased).p_value(), 0.0);
    }

    #[test]
    fn longest_run_nist_example() {
        // §2.4.8 example: 128-bit sequence, p = 0.180609.
        let eps = BitBuffer::from_binary_str(
            "11001100000101010110110001001100111000000000001001\
             00110101010001000100111101011010000000110101111100\
             1100111001101101100010110010",
        );
        // 0.180609 in the spec (rounded pi constants); exact arithmetic
        // gives 0.1805980.
        assert!((longest_run_test(&eps).p_value() - 0.180_609).abs() < 2e-4);
    }

    #[test]
    fn cusum_nist_vectors() {
        // §2.13.4 worked example: ε = 1011010111, forward z = 4,
        // p = 0.4116588.
        let small = BitBuffer::from_binary_str("1011010111");
        let r = cumulative_sums_test(&small);
        assert!(
            (r.p_values[0] - 0.411_658_8).abs() < 1e-5,
            "{:?}",
            r.p_values
        );
        // §2.13.8: pi digits, forward 0.219194, reverse 0.114866.
        let r = cumulative_sums_test(&pi_100());
        assert!((r.p_values[0] - 0.219_194).abs() < 1e-5, "{:?}", r.p_values);
        assert!((r.p_values[1] - 0.114_866).abs() < 1e-5, "{:?}", r.p_values);
    }

    #[test]
    fn random_data_passes_all_simple_tests() {
        let bits = random_bits(100_000, 0xDEADBEEF);
        assert!(frequency_test(&bits).passes(0.01));
        assert!(block_frequency_test(&bits, 128).passes(0.01));
        assert!(runs_test(&bits).passes(0.01));
        assert!(longest_run_test(&bits).passes(0.01));
        assert!(cumulative_sums_test(&bits).passes(0.01));
    }

    #[test]
    fn pathological_data_fails() {
        let ones: BitBuffer = (0..10_000).map(|_| true).collect();
        assert!(!frequency_test(&ones).passes(0.01));
        let alternating: BitBuffer = (0..10_000).map(|i| i % 2 == 0).collect();
        // Alternating bits are balanced but have far too many runs.
        assert!(frequency_test(&alternating).passes(0.01));
        assert!(!runs_test(&alternating).passes(0.01));
    }

    #[test]
    fn longest_run_uses_large_config_for_megabit() {
        let bits = random_bits(1_000_000, 7);
        // Should run without panicking and produce a sane p-value.
        let p = longest_run_test(&bits).p_value();
        assert!((0.0..=1.0).contains(&p));
    }
}
