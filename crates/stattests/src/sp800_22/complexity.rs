//! §2.10 Linear Complexity test.

use crate::bits::BitBuffer;
use crate::special::gf2::berlekamp_massey;
use crate::special::igamc;

use super::TestResult;

/// Bin probabilities for the T statistic (§3.10).
const PI: [f64; 7] = [0.010417, 0.03125, 0.125, 0.5, 0.25, 0.0625, 0.020833];

/// §2.10 Linear Complexity test with block length `m` (NIST default 500).
///
/// Returns an inapplicable result when fewer than the recommended minimum
/// of blocks fit (the spec wants `n >= 10^6` for M = 500; we require at
/// least 20 blocks so the chi-square approximation stays sane for the
/// smaller inputs unit tests use).
///
/// # Panics
///
/// Panics unless `500 <= m <= 5000` — the spec's allowed block range.
pub fn linear_complexity_test(bits: &BitBuffer, m: usize) -> TestResult {
    assert!(
        (500..=5000).contains(&m),
        "block length must be in 500..=5000"
    );
    let n = bits.len();
    let blocks = n / m;
    if blocks < 20 {
        return TestResult::not_applicable("LinearComplexity");
    }
    let mf = m as f64;
    let sign = if m % 2 == 0 { 1.0 } else { -1.0 };
    // mu = M/2 + (9 + (-1)^(M+1)) / 36 - (M/3 + 2/9) / 2^M.
    let mu = mf / 2.0 + (9.0 + -sign) / 36.0 - (mf / 3.0 + 2.0 / 9.0) / 2f64.powi(m as i32);

    let mut nu = [0u64; 7];
    let mut block_bits = vec![false; m];
    for b in 0..blocks {
        for (i, slot) in block_bits.iter_mut().enumerate() {
            *slot = bits.bit(b * m + i);
        }
        let l = berlekamp_massey(&block_bits) as f64;
        let t = sign * (l - mu) + 2.0 / 9.0;
        let bin = if t <= -2.5 {
            0
        } else if t <= -1.5 {
            1
        } else if t <= -0.5 {
            2
        } else if t <= 0.5 {
            3
        } else if t <= 1.5 {
            4
        } else if t <= 2.5 {
            5
        } else {
            6
        };
        nu[bin] += 1;
    }
    let nf = blocks as f64;
    let chi2: f64 = nu
        .iter()
        .zip(PI)
        .map(|(&obs, pi)| {
            let e = nf * pi;
            (obs as f64 - e) * (obs as f64 - e) / e
        })
        .sum();
    TestResult::single("LinearComplexity", igamc(3.0, chi2 / 2.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bits(n: usize, seed: u64) -> BitBuffer {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        (0..n)
            .map(|_| {
                // splitmix64: non-linear over GF(2), unlike xorshift.
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) & 1 == 1
            })
            .collect()
    }

    #[test]
    fn short_input_inapplicable() {
        let bits = random_bits(5000, 1);
        assert!(!linear_complexity_test(&bits, 500).applicable);
    }

    #[test]
    fn random_data_passes() {
        let bits = random_bits(200_000, 2);
        let r = linear_complexity_test(&bits, 500);
        assert!(r.applicable);
        assert!(r.passes(0.01), "p = {}", r.p_value());
    }

    #[test]
    fn lfsr_stream_fails() {
        // A short LFSR has tiny linear complexity in every block: all T
        // statistics land far from mu.
        let mut reg = [true, false, false, true, true, false, true];
        let bits: BitBuffer = (0..100_000)
            .map(|_| {
                let out = reg[6];
                let fb = reg[6] ^ reg[0];
                reg.rotate_right(1);
                reg[0] = fb;
                out
            })
            .collect();
        let r = linear_complexity_test(&bits, 500);
        assert!(r.applicable);
        assert!(r.p_value() < 1e-10, "p = {}", r.p_value());
    }

    #[test]
    fn pi_bins_sum_to_one() {
        let total: f64 = PI.iter().sum();
        assert!((total - 1.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "block length")]
    fn tiny_block_panics() {
        let bits = random_bits(10_000, 3);
        let _ = linear_complexity_test(&bits, 100);
    }
}
