//! NIST SP 800-22 (rev. 1a) statistical test suite.
//!
//! All fifteen tests of the paper's Table 3, in the spec's default
//! configuration for 1 Mbit sequences, plus the multi-sequence aggregation
//! NIST (and the paper) report: a cross-sequence **uniformity P-value**
//! (chi-square over ten p-value bins) and a **pass proportion**.
//!
//! Subtest conventions follow the paper's footnote: tests with multiple
//! subtests (CumulativeSums, NonOverlappingTemplate, RandomExcursions,
//! RandomExcursionsVariant, Serial) report the average of the subtest
//! p-values as their headline number.
//!
//! # Example
//!
//! ```
//! use dhtrng_stattests::BitBuffer;
//! use dhtrng_stattests::sp800_22::{frequency_test, runs_test};
//!
//! // The SP 800-22 §2.1.8 reference vector: first 100 bits of pi.
//! let eps = BitBuffer::from_binary_str(
//!     "11001001000011111101101010100010001000010110100011\
//!      00001000110100110001001100011001100010100010111000");
//! assert!((frequency_test(&eps).p_value() - 0.109599).abs() < 1e-5);
//! assert!((runs_test(&eps).p_value() - 0.500798).abs() < 1e-5);
//! ```

mod complexity;
mod dft;
mod entropy;
mod excursions;
mod rank;
mod simple;
mod suite;
mod templates;
mod universal;

pub use complexity::linear_complexity_test;
pub use dft::dft_test;
pub use entropy::{approximate_entropy_test, serial_test};
pub use excursions::{random_excursions_test, random_excursions_variant_test};
pub use rank::rank_test;
pub use simple::{
    block_frequency_test, cumulative_sums_test, frequency_test, longest_run_test, runs_test,
};
pub use suite::{run_suite, run_suite_subset, SuiteReport, SuiteRow, TestId, ALL_TESTS};
pub use templates::{
    aperiodic_templates, non_overlapping_single, non_overlapping_template_test,
    overlapping_template_test, TEMPLATE_LEN,
};
pub use universal::{universal_test, universal_test_with_params};

/// Significance level of the suite (the paper: "P-value exceeding 0.01
/// indicates the sequences are approximately uniformly distributed").
pub const ALPHA: f64 = 0.01;

/// Result of one SP 800-22 test on one sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct TestResult {
    /// Test name as printed in Table 3.
    pub name: &'static str,
    /// Subtest p-values (most tests have exactly one).
    pub p_values: Vec<f64>,
    /// `false` when the test's preconditions are unmet (e.g. Random
    /// Excursions with too few cycles) — the sequence is then excluded
    /// from that test's statistics, as NIST prescribes.
    pub applicable: bool,
}

impl TestResult {
    pub(crate) fn single(name: &'static str, p: f64) -> Self {
        Self {
            name,
            p_values: vec![p],
            applicable: true,
        }
    }

    pub(crate) fn multi(name: &'static str, p_values: Vec<f64>) -> Self {
        Self {
            name,
            p_values,
            applicable: true,
        }
    }

    pub(crate) fn not_applicable(name: &'static str) -> Self {
        Self {
            name,
            p_values: Vec::new(),
            applicable: false,
        }
    }

    /// Headline p-value: the average over subtests (the paper's starred
    /// convention), or the single p-value for single-statistic tests.
    ///
    /// # Panics
    ///
    /// Panics if the test was not applicable.
    pub fn p_value(&self) -> f64 {
        assert!(self.applicable, "{}: not applicable", self.name);
        let n = self.p_values.len();
        assert!(n > 0, "{}: no p-values", self.name);
        self.p_values.iter().sum::<f64>() / n as f64
    }

    /// Whether the sequence passes: every subtest p-value >= `alpha`.
    pub fn passes(&self, alpha: f64) -> bool {
        self.applicable && self.p_values.iter().all(|&p| p >= alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_value_averages_subtests() {
        let r = TestResult::multi("x", vec![0.2, 0.4]);
        assert!((r.p_value() - 0.3).abs() < 1e-12);
        assert!(r.passes(0.01));
        assert!(!r.passes(0.3));
    }

    #[test]
    fn inapplicable_never_passes() {
        let r = TestResult::not_applicable("x");
        assert!(!r.passes(0.01));
    }

    #[test]
    #[should_panic(expected = "not applicable")]
    fn inapplicable_p_value_panics() {
        let _ = TestResult::not_applicable("x").p_value();
    }
}
