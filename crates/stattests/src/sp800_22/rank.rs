//! §2.5 Binary Matrix Rank test.

use crate::bits::BitBuffer;
use crate::special::gf2::binary_rank;
use crate::special::igamc;

use super::TestResult;

/// Matrix dimension used by the spec (32x32).
const M: usize = 32;
/// Asymptotic rank-class probabilities for random 32x32 GF(2) matrices:
/// P(rank = 32), P(rank = 31), P(rank <= 30).
const PI: [f64; 3] = [0.2888, 0.5776, 0.1336];

/// §2.5 Binary Matrix Rank test over 32x32 matrices.
///
/// Returns an inapplicable result when fewer than 38 matrices fit (the
/// spec's minimum for valid chi-square approximation).
pub fn rank_test(bits: &BitBuffer) -> TestResult {
    let n = bits.len();
    let matrices = n / (M * M);
    if matrices < 38 {
        return TestResult::not_applicable("Rank");
    }
    let mut counts = [0u64; 3];
    for k in 0..matrices {
        let base = k * M * M;
        let rows: Vec<u64> = (0..M)
            .map(|r| {
                let mut row = 0u64;
                for c in 0..M {
                    // Bit c of the row: matrix element (r, c).
                    if bits.bit(base + r * M + c) {
                        row |= 1u64 << c;
                    }
                }
                row
            })
            .collect();
        match binary_rank(&rows, M as u32) {
            32 => counts[0] += 1,
            31 => counts[1] += 1,
            _ => counts[2] += 1,
        }
    }
    let nf = matrices as f64;
    let chi2: f64 = counts
        .iter()
        .zip(PI)
        .map(|(&obs, pi)| {
            let e = nf * pi;
            (obs as f64 - e) * (obs as f64 - e) / e
        })
        .sum();
    // 2 degrees of freedom: p = igamc(1, chi2/2) = exp(-chi2/2).
    TestResult::single("Rank", igamc(1.0, chi2 / 2.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bits(n: usize, seed: u64) -> BitBuffer {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        (0..n)
            .map(|_| {
                // splitmix64: non-linear over GF(2), unlike xorshift.
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) & 1 == 1
            })
            .collect()
    }

    #[test]
    fn short_sequences_are_inapplicable() {
        let bits = random_bits(1024 * 37, 1);
        assert!(!rank_test(&bits).applicable);
    }

    #[test]
    fn random_data_passes() {
        let bits = random_bits(200_000, 2);
        let r = rank_test(&bits);
        assert!(r.applicable);
        assert!(r.passes(0.01), "p = {}", r.p_value());
    }

    #[test]
    fn low_rank_structure_fails() {
        // Period-32 sequence: every matrix has identical rows -> rank 1.
        let bits: BitBuffer = (0..200_000).map(|i| (i / 7) % 2 == 0).collect();
        let r = rank_test(&bits);
        assert!(r.applicable);
        assert!(r.p_value() < 1e-6, "p = {}", r.p_value());
    }

    #[test]
    fn p_value_in_unit_interval() {
        for seed in 3..8 {
            let p = rank_test(&random_bits(100_000, seed)).p_value();
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
