//! §2.6 Discrete Fourier Transform (spectral) test.

use crate::bits::BitBuffer;
use crate::special::erfc;
use crate::special::fft::{c_abs, dft};

use super::TestResult;

/// §2.6 Discrete Fourier Transform (spectral) test.
///
/// Detects periodic features via the count of DFT peaks below the 95 %
/// threshold `T = sqrt(n ln(1/0.05))`. Works for any sequence length
/// (power-of-two lengths use the radix-2 path; everything else goes
/// through Bluestein's algorithm).
///
/// # Panics
///
/// Panics if the sequence is shorter than the spec minimum (1000 bits
/// recommended; we require at least 32 to keep the statistic meaningful).
pub fn dft_test(bits: &BitBuffer) -> TestResult {
    let n = bits.len();
    assert!(n >= 32, "spectral test needs at least 32 bits");
    let x: Vec<(f64, f64)> = bits
        .iter()
        .map(|b| (if b { 1.0 } else { -1.0 }, 0.0))
        .collect();
    let spectrum = dft(&x);
    let half = n / 2;
    let t = (n as f64 * (1.0 / 0.05f64).ln()).sqrt();
    let n1 = spectrum[..half].iter().filter(|&&c| c_abs(c) < t).count() as f64;
    let n0 = 0.95 * n as f64 / 2.0;
    // Variance n(0.95)(0.05)/3.8, the Kim-Umeno-Hasegawa correction NIST
    // adopted in STS 2.1.2; the original /4 constant rejects true random
    // data at ~2-4x the nominal alpha.
    let d = (n1 - n0) / (n as f64 * 0.95 * 0.05 / 3.8).sqrt();
    let p = erfc(d.abs() / std::f64::consts::SQRT_2);
    TestResult::single("FFT", p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bits(n: usize, seed: u64) -> BitBuffer {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        (0..n)
            .map(|_| {
                // splitmix64: non-linear over GF(2), unlike xorshift.
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) & 1 == 1
            })
            .collect()
    }

    #[test]
    fn random_data_passes_pow2_and_odd_lengths() {
        for (n, seed) in [(65_536usize, 11u64), (100_000, 12)] {
            let r = dft_test(&random_bits(n, seed));
            assert!(r.passes(0.01), "n = {n}: p = {}", r.p_value());
        }
    }

    #[test]
    fn strongly_periodic_data_fails() {
        // Period-4 square wave: a huge spectral line above the threshold.
        let bits: BitBuffer = (0..65_536).map(|i| (i / 2) % 2 == 0).collect();
        let r = dft_test(&bits);
        assert!(r.p_value() < 1e-4, "p = {}", r.p_value());
    }

    #[test]
    fn pipeline_against_naive_count() {
        // Cross-check N1 computation on a small input against a direct
        // O(n^2) DFT evaluation.
        use crate::special::fft::dft_naive;
        let bits = random_bits(128, 5);
        let x: Vec<(f64, f64)> = bits
            .iter()
            .map(|b| (if b { 1.0 } else { -1.0 }, 0.0))
            .collect();
        let t = (128.0f64 * (1.0 / 0.05f64).ln()).sqrt();
        let naive_n1 = dft_naive(&x)[..64]
            .iter()
            .filter(|&&c| c_abs(c) < t)
            .count();
        // Recompute through the public test path and rebuild N1 from p.
        let p = dft_test(&bits).p_value();
        let n0 = 0.95 * 128.0 / 2.0;
        let sigma = (128.0 * 0.95 * 0.05 / 3.8_f64).sqrt();
        // Invert: |d| = erfc^-1 ... instead just recompute d from naive N1
        // and verify the p-value matches.
        let d = (naive_n1 as f64 - n0) / sigma;
        let p_expected = erfc(d.abs() / std::f64::consts::SQRT_2);
        assert!((p - p_expected).abs() < 1e-9, "{p} vs {p_expected}");
    }

    #[test]
    fn constant_sequence_fails() {
        let bits: BitBuffer = (0..4096).map(|_| true).collect();
        // All energy at DC; every other magnitude is 0 < T, so N1 is the
        // full half-spectrum minus nothing -> d > 0 but small; the real
        // signal is that d is positive at its maximum: N1 = half-1? Verify
        // the test at least runs and yields a valid p.
        let p = dft_test(&bits).p_value();
        assert!((0.0..=1.0).contains(&p));
    }
}
