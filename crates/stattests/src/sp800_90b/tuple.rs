//! §6.3.5 t-Tuple and §6.3.6 Longest Repeated Substring estimates.
//!
//! Both scan overlapping windows of increasing width. Binary windows up
//! to 64 bits are counted exactly through hashed `u64` keys; repeated
//! substrings longer than 64 bits only occur in grossly defective
//! sources, which these estimators already grade near zero entropy, so
//! the width is capped there (documented deviation).

use std::collections::HashMap;

use crate::bits::BitBuffer;

use super::{upper_bound, Estimate};

/// Cutoff for "frequent" tuples (spec: 35 occurrences).
const CUTOFF: u64 = 35;
/// Maximum window width we count exactly.
const MAX_WIDTH: usize = 64;

/// Occurrence counts of all `width`-bit overlapping windows.
fn window_counts(bits: &BitBuffer, width: usize) -> HashMap<u64, u64> {
    let n = bits.len();
    let mut map = HashMap::new();
    if width > n {
        return map;
    }
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let mut w = bits.window(0, width);
    *map.entry(w).or_insert(0) += 1;
    for i in 1..=(n - width) {
        w = ((w << 1) | u64::from(bits.bit(i + width - 1))) & mask;
        *map.entry(w).or_insert(0) += 1;
    }
    map
}

/// §6.3.5 t-Tuple estimate: find the largest `t` whose most common
/// t-tuple still occurs at least 35 times; bound the per-bit probability
/// by `max_i (Q_i / (n - i + 1))^(1/i)` with the usual confidence
/// adjustment.
///
/// # Panics
///
/// Panics if the sequence is shorter than 35 bits.
pub fn t_tuple_estimate(bits: &BitBuffer) -> Estimate {
    let n = bits.len();
    assert!(
        n as u64 >= CUTOFF,
        "t-tuple estimate needs at least 35 bits"
    );
    let mut p_max: f64 = 0.0;
    for width in 1..=MAX_WIDTH.min(n) {
        let counts = window_counts(bits, width);
        let q = counts.values().copied().max().unwrap_or(0);
        if q < CUTOFF {
            break;
        }
        let p_i = (q as f64 / (n - width + 1) as f64).powf(1.0 / width as f64);
        p_max = p_max.max(p_i);
    }
    Estimate::from_p("t-Tuple", upper_bound(p_max, n))
}

/// §6.3.6 Longest Repeated Substring estimate: for widths from the first
/// "infrequent" length up to the longest width with any repeat, bound the
/// collision probability `P_i = sum_j C(c_ij, 2) / C(n - i + 1, 2)` and
/// take the worst `P_i^(1/i)`.
///
/// # Panics
///
/// Panics if the sequence is shorter than 35 bits.
pub fn lrs_estimate(bits: &BitBuffer) -> Estimate {
    let n = bits.len();
    assert!(n as u64 >= CUTOFF, "LRS estimate needs at least 35 bits");

    // u = first width where the most common tuple count drops below 35.
    let mut u = 1usize;
    while u <= MAX_WIDTH.min(n) {
        let q = window_counts(bits, u).values().copied().max().unwrap_or(0);
        if q < CUTOFF {
            break;
        }
        u += 1;
    }
    let u = u.min(MAX_WIDTH);

    let mut p_hat_max: f64 = 0.0;
    let mut any = false;
    for width in u..=MAX_WIDTH.min(n) {
        let counts = window_counts(bits, width);
        let repeats: u128 = counts
            .values()
            .map(|&c| u128::from(c) * u128::from(c.saturating_sub(1)) / 2)
            .sum();
        if repeats == 0 {
            break; // no repeated substring this long: v = width - 1
        }
        any = true;
        let windows = (n - width + 1) as u128;
        let total_pairs = windows * (windows - 1) / 2;
        let p_i = repeats as f64 / total_pairs as f64;
        p_hat_max = p_hat_max.max(p_i.powf(1.0 / width as f64));
    }
    if !any {
        // No repeats at all beyond the frequent widths: the source looks
        // fully random at this resolution.
        return Estimate::from_p("LRS", 0.5);
    }
    Estimate::from_p("LRS", upper_bound(p_hat_max, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sp800_90b::{biased_bits, splitmix_bits};

    #[test]
    fn window_counts_sum_to_window_count() {
        let bits = splitmix_bits(10_000, 41);
        for width in [1usize, 3, 8, 17] {
            let total: u64 = window_counts(&bits, width).values().sum();
            assert_eq!(total as usize, 10_000 - width + 1);
        }
    }

    #[test]
    fn ideal_data_scores_high_on_both() {
        let bits = splitmix_bits(1_000_000, 42);
        let t = t_tuple_estimate(&bits);
        let l = lrs_estimate(&bits);
        // Paper's Table 4: t-Tuple ~ 0.92-0.95, LRS ~ 0.95-0.99.
        assert!(t.h_min > 0.85, "t-tuple h = {}", t.h_min);
        assert!(l.h_min > 0.85, "LRS h = {}", l.h_min);
    }

    #[test]
    fn constant_data_scores_zero() {
        let bits: BitBuffer = (0..10_000).map(|_| true).collect();
        assert!(t_tuple_estimate(&bits).h_min < 0.01);
        assert!(lrs_estimate(&bits).h_min < 0.2);
    }

    #[test]
    fn bias_lowers_t_tuple() {
        let fair = t_tuple_estimate(&splitmix_bits(300_000, 43)).h_min;
        let biased = t_tuple_estimate(&biased_bits(300_000, 43, 70)).h_min;
        assert!(biased < fair, "{biased} !< {fair}");
    }

    #[test]
    fn periodic_data_is_caught_by_lrs() {
        // Period-20 data: enormous repeated substrings.
        let bits: BitBuffer = (0..100_000).map(|i| (i % 20) < 7).collect();
        let l = lrs_estimate(&bits);
        assert!(l.h_min < 0.3, "h = {}", l.h_min);
    }
}
