//! §6.3.2 Collision estimate (binary specialisation).
//!
//! For a binary source a "collision" occurs after 2 samples (both equal)
//! or, failing that, always after 3 (the third sample must repeat one of
//! the first two). The mean collision time is therefore
//!
//! ```text
//! E[T] = 2 (p^2 + q^2) + 3 (1 - p^2 - q^2) = 3 - (p^2 + q^2)
//! ```
//!
//! The estimator measures the mean, lower-bounds it by the usual
//! confidence adjustment, and inverts the formula for `p >= 1/2`:
//! `p = (1 + sqrt(5 - 2 X')) / 2`. An ideal source gives `E[T] = 2.5` and
//! (after the confidence adjustment) `h` slightly above 0.9 — the level
//! the paper's Table 4 Collision row shows.

use crate::bits::BitBuffer;

use super::{Estimate, Z_ALPHA};

/// §6.3.2 Collision estimate.
///
/// # Panics
///
/// Panics if the sequence yields no complete collision observation
/// (fewer than 2 bits).
pub fn collision_estimate(bits: &BitBuffer) -> Estimate {
    let n = bits.len();
    assert!(n >= 2, "collision estimate needs at least two bits");
    let mut times: Vec<f64> = Vec::with_capacity(n / 2);
    let mut i = 0usize;
    while i + 1 < n {
        if bits.bit(i) == bits.bit(i + 1) {
            times.push(2.0);
            i += 2;
        } else if i + 2 < n {
            // Third sample always collides with one of the first two.
            times.push(3.0);
            i += 3;
        } else {
            break;
        }
    }
    let v = times.len();
    assert!(v > 0, "no complete collision observed");
    let mean = times.iter().sum::<f64>() / v as f64;
    let var =
        times.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / (v as f64 - 1.0).max(1.0);
    let x_lower = mean - Z_ALPHA * var.sqrt() / (v as f64).sqrt();

    // Invert E[T] = 3 - (p^2 + q^2) for p in [1/2, 1].
    let p = if x_lower >= 2.5 {
        0.5
    } else {
        0.5 * (1.0 + (5.0 - 2.0 * x_lower).max(0.0).sqrt())
    };
    Estimate::from_p("Collision", p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sp800_90b::{biased_bits, splitmix_bits};

    #[test]
    fn ideal_data_sits_in_the_expected_band() {
        let bits = splitmix_bits(1_000_000, 11);
        let e = collision_estimate(&bits);
        // The paper's Table 4 shows 0.92-0.94 for this estimator on the
        // real DH-TRNG; an ideal simulated source lands in the same band.
        assert!(e.h_min > 0.85 && e.h_min <= 1.0, "h = {}", e.h_min);
    }

    #[test]
    fn constant_data_has_minimal_collision_time() {
        let bits: BitBuffer = (0..10_000).map(|_| false).collect();
        let e = collision_estimate(&bits);
        // All collision times are exactly 2 -> p = 1 -> h = 0.
        assert_eq!(e.h_min, 0.0);
    }

    #[test]
    fn alternating_data_maximises_collision_time() {
        let bits: BitBuffer = (0..10_000).map(|i| i % 2 == 0).collect();
        let e = collision_estimate(&bits);
        // All times are 3 (> 2.5): the estimator saturates at h = 1; the
        // structure is caught by other estimators (Markov, predictors).
        assert!((e.h_min - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bias_reduces_the_estimate() {
        let fair = collision_estimate(&splitmix_bits(500_000, 12)).h_min;
        let biased = collision_estimate(&biased_bits(500_000, 12, 70)).h_min;
        assert!(biased < fair, "{biased} !< {fair}");
        assert!(
            biased < 0.75,
            "70% bias should cut collision entropy: {biased}"
        );
    }

    #[test]
    fn mean_time_statistics_track_theory() {
        // For p = 0.5 the mean collision time is 2.5.
        let bits = splitmix_bits(2_000_000, 13);
        let mut sum = 0.0;
        let mut count = 0.0;
        let mut i = 0;
        while i + 2 < bits.len() {
            if bits.bit(i) == bits.bit(i + 1) {
                sum += 2.0;
                i += 2;
            } else {
                sum += 3.0;
                i += 3;
            }
            count += 1.0;
        }
        let mean: f64 = sum / count;
        assert!((mean - 2.5).abs() < 0.01, "mean = {mean}");
    }
}
