//! NIST SP 800-90B min-entropy estimation.
//!
//! Implements the ten non-IID estimators the paper's Table 4 reports
//! (MCV, Collision, Markov, Compression, t-Tuple, LRS, Multi-MCW, Lag,
//! Multi-MMC, LZ78Y), the shared predictor machinery of §6.3.7–6.3.10,
//! and the IID-track permutation test of §5.1.
//!
//! All estimators are the **binary-source specialisations** of the spec
//! (the DH-TRNG emits one bit per clock): where the spec's general
//! formulas simplify for a two-letter alphabet, the simplified closed
//! forms are used and documented in place.
//!
//! The paper's scalar "min-entropy" numbers (Tables 1-2, Figure 9, and
//! the IID row of §4.1.2) correspond to the most-common-value estimate,
//! exposed as [`min_entropy_mcv`].
//!
//! # Example
//!
//! ```
//! use dhtrng_stattests::BitBuffer;
//! use dhtrng_stattests::sp800_90b::{mcv_estimate, min_entropy_mcv};
//!
//! // A strongly biased source has low min-entropy.
//! let biased: BitBuffer = (0..10_000).map(|i| i % 10 != 0).collect();
//! assert!(min_entropy_mcv(&biased) < 0.2);
//! let e = mcv_estimate(&biased);
//! assert!(e.p_max > 0.88);
//! ```

mod collision;
mod compression;
mod iid;
mod markov;
mod mcv;
mod predictors;
mod restart;
mod tuple;

pub use collision::collision_estimate;
pub use compression::compression_estimate;
pub use iid::{iid_permutation_test, IidReport, IidStatistic};
pub use markov::markov_estimate;
pub use mcv::{mcv_estimate, min_entropy_mcv};
pub use predictors::{lag_estimate, lz78y_estimate, multi_mcw_estimate, multi_mmc_estimate};
pub use restart::{RestartAssessment, RestartMatrix};
pub use tuple::{lrs_estimate, t_tuple_estimate};

use crate::bits::BitBuffer;

/// Upper 99.5 % normal quantile used by every confidence adjustment in
/// the spec (`Z(0.995)`).
pub const Z_ALPHA: f64 = 2.575_829_303_548_901;

/// One estimator's output: the bound on the most likely outcome
/// probability and the derived min-entropy (per bit).
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Estimator name as printed in the paper's Table 4.
    pub name: &'static str,
    /// Probability bound. For most estimators this is the per-bit upper
    /// confidence bound; for Markov it is the probability of the most
    /// likely 128-bit sequence (hence the paper's `4.28E-39`-style value).
    pub p_max: f64,
    /// Min-entropy per bit, clamped to `[0, 1]`.
    pub h_min: f64,
}

impl Estimate {
    pub(crate) fn from_p(name: &'static str, p_max: f64) -> Self {
        let p = p_max.clamp(0.5, 1.0);
        Self {
            name,
            p_max: p,
            h_min: (-p.log2()).clamp(0.0, 1.0),
        }
    }
}

impl std::fmt::Display for Estimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: p-max {:.6e}, h-min {:.6}",
            self.name, self.p_max, self.h_min
        )
    }
}

/// Runs the full non-IID battery (Table 4 order).
pub fn non_iid_battery(bits: &BitBuffer) -> Vec<Estimate> {
    vec![
        mcv_estimate(bits),
        collision_estimate(bits),
        markov_estimate(bits),
        compression_estimate(bits),
        t_tuple_estimate(bits),
        lrs_estimate(bits),
        multi_mcw_estimate(bits),
        lag_estimate(bits),
        multi_mmc_estimate(bits),
        lz78y_estimate(bits),
    ]
}

/// The overall non-IID min-entropy assessment: the minimum over all ten
/// estimators (SP 800-90B §3.1.3).
pub fn non_iid_min_entropy(bits: &BitBuffer) -> f64 {
    non_iid_battery(bits)
        .iter()
        .map(|e| e.h_min)
        .fold(1.0, f64::min)
}

/// Shared upper confidence bound on a proportion (`p_hat` over `n`
/// observations), per the spec's repeated
/// `p + Z * sqrt(p (1-p) / (n-1))` pattern.
pub(crate) fn upper_bound(p_hat: f64, n: usize) -> f64 {
    if n <= 1 {
        return 1.0;
    }
    (p_hat + Z_ALPHA * (p_hat * (1.0 - p_hat) / (n as f64 - 1.0)).sqrt()).min(1.0)
}

#[cfg(test)]
pub(crate) fn splitmix_bits(n: usize, seed: u64) -> BitBuffer {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) & 1 == 1
        })
        .collect()
}

/// Biased splitmix-driven bits for detection tests: `percent_ones` of the
/// bits are 1 on average.
#[cfg(test)]
pub(crate) fn biased_bits(n: usize, seed: u64, percent_ones: u64) -> BitBuffer {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) % 100 < percent_ones
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_clamps_and_derives_h() {
        let e = Estimate::from_p("x", 0.5);
        assert!((e.h_min - 1.0).abs() < 1e-12);
        let e = Estimate::from_p("x", 1.0);
        assert_eq!(e.h_min, 0.0);
        // Below 1/2 is clamped to the binary floor.
        let e = Estimate::from_p("x", 0.3);
        assert!((e.h_min - 1.0).abs() < 1e-12);
    }

    #[test]
    fn upper_bound_shrinks_with_n() {
        let small = upper_bound(0.5, 100);
        let large = upper_bound(0.5, 1_000_000);
        assert!(small > large);
        assert!(large > 0.5);
        assert_eq!(upper_bound(0.5, 1), 1.0);
    }

    #[test]
    fn battery_runs_and_orders_like_table4() {
        let bits = splitmix_bits(40_000, 7);
        let battery = non_iid_battery(&bits);
        let names: Vec<&str> = battery.iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            vec![
                "MCV",
                "Collision",
                "Markov",
                "Compression",
                "t-Tuple",
                "LRS",
                "Multi-MCW",
                "Lag",
                "Multi-MMC",
                "LZ78Y"
            ]
        );
        for e in &battery {
            assert!((0.0..=1.0).contains(&e.h_min), "{e}");
        }
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_traits_are_implemented() {
        fn assert_ser<T: serde::Serialize>() {}
        assert_ser::<Estimate>();
        assert_ser::<crate::sp800_22::SuiteReport>();
        assert_ser::<crate::ais31::Ais31Report>();
        assert_ser::<super::RestartAssessment>();
    }

    #[test]
    fn overall_assessment_is_the_minimum() {
        let bits = splitmix_bits(40_000, 9);
        let battery = non_iid_battery(&bits);
        let min = battery.iter().map(|e| e.h_min).fold(1.0, f64::min);
        assert!((non_iid_min_entropy(&bits) - min).abs() < 1e-12);
    }
}
