//! §6.3.1 Most Common Value estimate.

use crate::bits::BitBuffer;

use super::{upper_bound, Estimate};

/// §6.3.1 Most Common Value estimate: `p_u = p_hat + Z sqrt(p(1-p)/(n-1))`
/// on the mode frequency; `h = -log2(p_u)`.
///
/// # Panics
///
/// Panics on an empty sequence.
pub fn mcv_estimate(bits: &BitBuffer) -> Estimate {
    let n = bits.len();
    assert!(n > 0, "MCV estimate needs a non-empty sequence");
    let ones = bits.ones();
    let mode = ones.max(n - ones);
    let p_hat = mode as f64 / n as f64;
    Estimate::from_p("MCV", upper_bound(p_hat, n))
}

/// The paper's scalar "min-entropy" (Tables 1–2, Figure 9, IID row):
/// the MCV min-entropy per bit.
pub fn min_entropy_mcv(bits: &BitBuffer) -> f64 {
    mcv_estimate(bits).h_min
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sp800_90b::splitmix_bits;

    #[test]
    fn ideal_data_is_near_one() {
        let bits = splitmix_bits(1_000_000, 3);
        let h = min_entropy_mcv(&bits);
        // With 1 Mbit of fair coin flips the CI term costs ~0.004 bits.
        assert!(h > 0.99, "h = {h}");
        assert!(h <= 1.0);
    }

    #[test]
    fn known_bias_maps_to_expected_entropy() {
        // Exactly 60% ones: p_u ~ 0.6012, h ~ -log2 -> 0.734.
        let bits: BitBuffer = (0..100_000).map(|i| i % 5 != 0 || i % 10 == 5).collect();
        let ones = bits.ones() as f64 / bits.len() as f64;
        let e = mcv_estimate(&bits);
        assert!(e.p_max >= ones.max(1.0 - ones));
        assert!(e.p_max < ones.max(1.0 - ones) + 0.01);
    }

    #[test]
    fn constant_sequence_has_zero_entropy() {
        let bits: BitBuffer = (0..1000).map(|_| true).collect();
        let e = mcv_estimate(&bits);
        assert_eq!(e.p_max, 1.0);
        assert_eq!(e.h_min, 0.0);
    }

    #[test]
    fn more_data_tightens_the_bound() {
        let small = min_entropy_mcv(&splitmix_bits(10_000, 4));
        let large = min_entropy_mcv(&splitmix_bits(1_000_000, 4));
        // Larger samples shrink the confidence penalty (both near 1).
        assert!(large > small - 0.01);
    }
}
