//! §6.3.4 Compression estimate (Maurer-style).
//!
//! The sequence is processed as 6-bit blocks; after a 1000-block
//! dictionary warm-up, each block contributes `log2` of its distance to
//! the previous occurrence. The lower-bounded mean of those contributions
//! is inverted through the spec's `G` function by binary search on the
//! most-likely-symbol probability `p`.

use crate::bits::BitBuffer;

use super::{Estimate, Z_ALPHA};

/// Block size in bits (spec: `b = 6`).
const B: usize = 6;
/// Dictionary warm-up length in blocks (spec: `d = 1000`).
const D: usize = 1000;
/// Standard-deviation correction factor for b = 6 (spec §6.3.4 step 5).
const C_FACTOR: f64 = 0.5907;
/// Geometric weights below this are treated as zero.
const TINY: f64 = 1e-18;

/// §6.3.4 Compression estimate.
///
/// # Panics
///
/// Panics if fewer than `d + 2 = 1002` six-bit blocks are available.
pub fn compression_estimate(bits: &BitBuffer) -> Estimate {
    let l = bits.len() / B;
    assert!(
        l >= D + 2,
        "compression estimate needs more than {D} blocks"
    );

    // Dictionary of last-seen indices (1-based block positions).
    let mut dict = [0usize; 1 << B];
    for i in 1..=D {
        let v = bits.window((i - 1) * B, B) as usize;
        dict[v] = i;
    }
    let v_count = l - D;
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for i in (D + 1)..=l {
        let v = bits.window((i - 1) * B, B) as usize;
        let dist = if dict[v] == 0 { i } else { i - dict[v] };
        dict[v] = i;
        let lg = (dist as f64).log2();
        sum += lg;
        sum_sq += lg * lg;
    }
    let mean = sum / v_count as f64;
    let var = (sum_sq / v_count as f64 - mean * mean).max(0.0);
    let sigma = C_FACTOR * var.sqrt();
    let x_lower = mean - Z_ALPHA * sigma / (v_count as f64).sqrt();

    // Binary search p in [2^-6, 1] such that
    //   G(p) + (2^6 - 1) G(q) = x_lower,  q = (1 - p) / (2^6 - 1).
    // The left side decreases in p (a more predictable source has shorter
    // recurrence distances). When even p = 2^-6 cannot reach x_lower the
    // search converges to the full-entropy floor, as the spec prescribes.
    let mut lo = 1.0 / (1 << B) as f64;
    let mut hi = 1.0;
    for _ in 0..60 {
        let p = 0.5 * (lo + hi);
        let q = (1.0 - p) / ((1 << B) as f64 - 1.0);
        let val = g_fn(p, l) + ((1 << B) as f64 - 1.0) * g_fn(q, l);
        if val > x_lower {
            lo = p;
        } else {
            hi = p;
        }
    }
    let p_final = 0.5 * (lo + hi);
    let h = (-(p_final.log2()) / B as f64).clamp(0.0, 1.0);
    Estimate {
        name: "Compression",
        p_max: 2f64.powf(-h),
        h_min: h,
    }
}

/// The spec's `G(z)` function:
/// `G(z) = (1/v) * sum_{t=d+1}^{L} sum_{u=1}^{t} log2(u) F(z, t, u)`
/// with `F(z, t, u) = z^2 (1-z)^{u-1}` for `u < t` and
/// `F(z, t, u) = z (1-z)^{t-1}` for `u = t`.
///
/// Splitting off the `u = t` diagonal leaves
/// `G(z) = (1/v) [ sum_t z (1-z)^{t-1} log2(t) + z^2 sum_t A(t-1) ]`
/// with `A(T) = sum_{u=1}^{T} log2(u) (1-z)^{u-1}`, which saturates once
/// the geometric weight vanishes — so the whole thing is O(L).
fn g_fn(z: f64, l: usize) -> f64 {
    if z <= 0.0 || z >= 1.0 {
        // z = 1: distances are always 1, log2(1) = 0. z = 0: the symbol
        // never occurs, contributing nothing.
        return 0.0;
    }
    let v = (l - D) as f64;
    let one_minus = 1.0 - z;

    // Diagonal term: sum_{t=d+1}^{L} z (1-z)^(t-1) log2(t).
    let mut diag = 0.0;
    let mut w = one_minus.powi(D as i32);
    for t in (D + 1)..=l {
        if w < TINY {
            break;
        }
        diag += z * w * (t as f64).log2();
        w *= one_minus;
    }

    // Inner term: z^2 sum_{t=d+1}^{L} A(t-1).
    // Warm `a` up to A(D).
    let mut a = 0.0;
    let mut w = 1.0; // (1-z)^(u-1) for the u about to be added
    let mut u = 1usize;
    while u <= D && w >= TINY {
        a += (u as f64).log2() * w;
        w *= one_minus;
        u += 1;
    }
    let mut inner = 0.0;
    let mut t = D + 1;
    while t <= l {
        inner += a; // a == A(t-1)
        if w < TINY {
            // A has saturated: every remaining t contributes the same.
            inner += a * (l - t) as f64;
            break;
        }
        // Extend a to A(t) for the next iteration (u == t here unless
        // saturation stopped the warm-up early).
        while u <= t && w >= TINY {
            a += (u as f64).log2() * w;
            w *= one_minus;
            u += 1;
        }
        t += 1;
    }
    (diag + z * z * inner) / v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sp800_90b::{biased_bits, splitmix_bits};

    #[test]
    fn g_is_monotone_decreasing_in_z() {
        let l = 20_000;
        let total = |p: f64| {
            let q = (1.0 - p) / 63.0;
            g_fn(p, l) + 63.0 * g_fn(q, l)
        };
        let mut prev = f64::INFINITY;
        for i in 1..20 {
            let p = (i as f64 / 20.0).max(1.0 / 64.0);
            let v = total(p);
            assert!(v <= prev + 1e-9, "p = {p}: {v} > {prev}");
            prev = v;
        }
    }

    #[test]
    fn g_matches_brute_force_on_small_input() {
        // Brute-force the double sum for a small L and moderate z.
        let l = D + 50;
        for &z in &[0.05f64, 0.3, 0.7] {
            let mut brute = 0.0;
            for t in (D + 1)..=l {
                for u in 1..=t {
                    let f = if u < t {
                        z * z * (1.0 - z).powi(u as i32 - 1)
                    } else {
                        z * (1.0 - z).powi(t as i32 - 1)
                    };
                    brute += (u as f64).log2() * f;
                }
            }
            brute /= (l - D) as f64;
            let fast = g_fn(z, l);
            assert!(
                (fast - brute).abs() < 1e-9,
                "z = {z}: fast {fast} vs brute {brute}"
            );
        }
    }

    #[test]
    fn ideal_data_scores_high() {
        let bits = splitmix_bits(600_000, 31);
        let e = compression_estimate(&bits);
        // The paper's Table 4 Compression row reports h-min = 1.0 (their
        // p-max column shows 0.5): ideal data saturates this estimator.
        assert!(e.h_min > 0.85, "h = {}", e.h_min);
    }

    #[test]
    fn constant_data_scores_zero() {
        let bits: BitBuffer = (0..100_000).map(|_| true).collect();
        let e = compression_estimate(&bits);
        assert!(e.h_min < 0.05, "h = {}", e.h_min);
    }

    #[test]
    fn bias_reduces_compression_entropy() {
        let fair = compression_estimate(&splitmix_bits(400_000, 32)).h_min;
        let biased = compression_estimate(&biased_bits(400_000, 32, 75)).h_min;
        assert!(biased < fair, "{biased} !< {fair}");
    }

    #[test]
    #[should_panic(expected = "compression estimate needs")]
    fn too_short_panics() {
        let bits = splitmix_bits(100, 33);
        let _ = compression_estimate(&bits);
    }
}
