//! §3.1.4 restart testing.
//!
//! SP 800-90B validation requires collecting a matrix of outputs from
//! many device restarts (rows = restarts, columns = sample index after
//! power-up) and checking that neither the rows nor the columns carry
//! less entropy than the sequential estimate — catching sources whose
//! start-up transient is repeatable (the failure mode the paper's §4.2
//! restart experiment probes by hand).

use crate::bits::BitBuffer;
use crate::special::norm_sf;

use super::{markov_estimate, mcv_estimate, Estimate};

/// A restart matrix: `rows` restarts × `cols` bits per restart.
///
/// # Example
///
/// ```
/// use dhtrng_stattests::sp800_90b::RestartMatrix;
/// use dhtrng_stattests::BitBuffer;
///
/// let mut m = RestartMatrix::new(8);
/// for seed in 0..50u64 {
///     // Eight post-restart bits per power-up (toy example).
///     let bits: BitBuffer = (0..8).map(|i| (seed >> (i % 8)) & 1 == 1).collect();
///     m.record(&bits);
/// }
/// assert_eq!(m.restarts(), 50);
/// ```
#[derive(Debug, Clone)]
pub struct RestartMatrix {
    cols: usize,
    rows: Vec<BitBuffer>,
}

/// Result of the restart sanity check.
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct RestartAssessment {
    /// Row-wise (per-restart) estimate: the minimum of the MCV and
    /// Markov estimates, so both bias and repeat-structure register.
    pub row_estimate: Estimate,
    /// Column-wise (across-restart, fixed post-restart index) estimate.
    pub column_estimate: Estimate,
    /// The sequential estimate the matrix is validated against.
    pub sequential_h: f64,
    /// §3.1.4.3 sanity test: the maximum column one-frequency stays
    /// within the binomial envelope of the claimed entropy.
    pub frequency_test_passed: bool,
}

impl RestartAssessment {
    /// §3.1.4.3: validation fails if either directional estimate falls
    /// below half the sequential estimate, or the frequency sanity test
    /// fails.
    pub fn passed(&self) -> bool {
        self.frequency_test_passed
            && self.row_estimate.h_min >= self.sequential_h / 2.0
            && self.column_estimate.h_min >= self.sequential_h / 2.0
    }
}

impl RestartMatrix {
    /// Creates a collector for `cols` bits per restart.
    ///
    /// # Panics
    ///
    /// Panics if `cols == 0`.
    pub fn new(cols: usize) -> Self {
        assert!(cols > 0, "restart rows need at least one bit");
        Self {
            cols,
            rows: Vec::new(),
        }
    }

    /// Records one restart's first `cols` bits.
    ///
    /// # Panics
    ///
    /// Panics if the capture is shorter than `cols`.
    pub fn record(&mut self, first_bits: &BitBuffer) {
        assert!(
            first_bits.len() >= self.cols,
            "restart capture shorter than {} bits",
            self.cols
        );
        self.rows.push(first_bits.slice(0, self.cols));
    }

    /// Number of restarts collected.
    pub fn restarts(&self) -> usize {
        self.rows.len()
    }

    /// Bits per restart.
    pub fn columns(&self) -> usize {
        self.cols
    }

    /// Runs the §3.1.4 assessment against a sequential min-entropy
    /// estimate `sequential_h` (bits/bit).
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 restarts were recorded or
    /// `sequential_h` is outside `[0, 1]`.
    pub fn assess(&self, sequential_h: f64) -> RestartAssessment {
        assert!(self.rows.len() >= 2, "need at least two restarts");
        assert!(
            (0.0..=1.0).contains(&sequential_h),
            "sequential entropy must be in [0,1]"
        );
        // Directional estimates: min(MCV, Markov) — MCV registers bias,
        // Markov registers the repeated-structure failure mode a restart
        // matrix exists to catch.
        let directional = |bits: &BitBuffer| -> Estimate {
            let mcv = mcv_estimate(bits);
            let markov = markov_estimate(bits);
            if markov.h_min < mcv.h_min {
                markov
            } else {
                mcv
            }
        };
        // Row direction: concatenate rows.
        let mut row_bits = BitBuffer::with_capacity(self.rows.len() * self.cols);
        for row in &self.rows {
            row_bits.extend(row.iter());
        }
        let row_estimate = directional(&row_bits);

        // Column direction: read column-major.
        let mut col_bits = BitBuffer::with_capacity(self.rows.len() * self.cols);
        for c in 0..self.cols {
            for row in &self.rows {
                col_bits.push(row.bit(c));
            }
        }
        let column_estimate = directional(&col_bits);

        // Frequency sanity test: in each column, the count of the most
        // common value must not exceed the binomial upper bound implied
        // by the claimed per-bit probability 2^-h, at a family-wise
        // significance of 1% across the columns (Bonferroni).
        let r = self.rows.len() as f64;
        let p_claim = 2f64.powf(-sequential_h);
        let z = z_for_alpha(0.01 / (2.0 * self.cols as f64));
        let bound = (r * p_claim + z * (r * p_claim * (1.0 - p_claim)).sqrt()).min(r);
        let mut frequency_test_passed = true;
        for c in 0..self.cols {
            let ones = self.rows.iter().filter(|row| row.bit(c)).count();
            let mode = ones.max(self.rows.len() - ones) as f64;
            if mode > bound {
                frequency_test_passed = false;
                break;
            }
        }

        RestartAssessment {
            row_estimate,
            column_estimate,
            sequential_h,
            frequency_test_passed,
        }
    }
}

/// Upper-tail normal quantile: the `z` with `P(Z > z) = alpha`, by
/// bisection on the survival function.
fn z_for_alpha(alpha: f64) -> f64 {
    debug_assert!(alpha > 0.0 && alpha < 0.5);
    let mut lo = 0.0f64;
    let mut hi = 10.0f64;
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if norm_sf(mid) > alpha {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sp800_90b::splitmix_bits;

    fn healthy_matrix(restarts: usize, cols: usize) -> RestartMatrix {
        let mut m = RestartMatrix::new(cols);
        for seed in 0..restarts as u64 {
            m.record(&splitmix_bits(cols, 1000 + seed));
        }
        m
    }

    #[test]
    fn healthy_restarts_pass() {
        let m = healthy_matrix(100, 64);
        let a = m.assess(0.98);
        assert!(a.passed(), "{a:?}");
        assert!(a.row_estimate.h_min > 0.9);
        assert!(a.column_estimate.h_min > 0.9);
    }

    #[test]
    fn repeatable_startup_fails_columns() {
        // Every restart produces the same first bits: columns are
        // constant -> column entropy collapses and the frequency test
        // trips.
        let mut m = RestartMatrix::new(64);
        let fixed = splitmix_bits(64, 7);
        for _ in 0..100 {
            m.record(&fixed);
        }
        let a = m.assess(0.98);
        assert!(!a.passed());
        assert!(!a.frequency_test_passed);
        // The column stream is 100-long constant runs: the Markov leg of
        // the directional estimate collapses.
        assert!(a.column_estimate.h_min < 0.1, "{a:?}");
    }

    #[test]
    fn biased_startup_transient_fails_frequency_test() {
        // First 8 bits of every restart are 80% ones (a slow-settling
        // node); the rest is fine.
        let mut m = RestartMatrix::new(64);
        for seed in 0..200u64 {
            let tail = splitmix_bits(56, 3000 + seed);
            let head = splitmix_bits(8, 9000 + seed);
            let bits: BitBuffer = (0..8)
                .map(|i| head.bit(i) || i % 4 != 3) // ~87% ones
                .chain(tail.iter())
                .collect();
            m.record(&bits);
        }
        let a = m.assess(0.98);
        assert!(!a.frequency_test_passed, "{a:?}");
        assert!(!a.passed());
    }

    #[test]
    fn matrix_bookkeeping() {
        let m = healthy_matrix(5, 32);
        assert_eq!(m.restarts(), 5);
        assert_eq!(m.columns(), 32);
    }

    #[test]
    #[should_panic(expected = "at least two restarts")]
    fn single_restart_panics() {
        let m = healthy_matrix(1, 8);
        let _ = m.assess(0.9);
    }
}
