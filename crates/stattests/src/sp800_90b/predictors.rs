//! §6.3.7–§6.3.10 prediction estimators: Multi-MCW, Lag, Multi-MMC and
//! LZ78Y, plus the shared global/local probability machinery.
//!
//! Each estimator simulates a family of sub-predictors walking the
//! sequence; a scoreboard promotes whichever sub-predictor has been right
//! most often. The final bound combines the global accuracy (with
//! confidence adjustment) and a "local" bound derived from the longest
//! run of correct predictions.
//!
//! Binary-source notes: contexts of up to 16 bits are stored in flat
//! tables rather than capped dictionaries (the binary context space is
//! tiny), and prediction ties resolve to the most recent occurrence for
//! MCW and to zero for the Markov-model predictors; both choices are
//! documented deviations that do not affect the estimates at the
//! precision the reproduction uses.

use crate::bits::BitBuffer;

use super::{upper_bound, Estimate};

/// Longest run of `true` in a slice.
fn longest_true_run(v: &[bool]) -> usize {
    let mut best = 0;
    let mut run = 0;
    for &b in v {
        if b {
            run += 1;
            best = best.max(run);
        } else {
            run = 0;
        }
    }
    best
}

/// The spec's local probability bound: the `p` for which the observed
/// longest correct-prediction run (plus one) would be the 99th-percentile
/// outcome over `n` predictions (Feller's recurrence for runs).
fn local_probability(r: usize, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    if r > n {
        return 1.0;
    }
    if r == 0 {
        // Never a single correct prediction; the local bound is vacuous.
        return 0.0;
    }
    // P(no run of length r in n trials), evaluated in logs to survive
    // x^(n+1) for megabit inputs.
    let log_p_no_run = |p: f64| -> f64 {
        let q = 1.0 - p;
        // Smallest real root > 1 of  x = 1 + q p^r x^(r+1).
        let mut x = 1.0f64;
        for _ in 0..64 {
            let nx = 1.0 + q * p.powi(r as i32) * x.powi(r as i32 + 1);
            if !nx.is_finite() || nx > 1.0 / p.max(1e-12) {
                // Iteration escaping towards the large root: the no-run
                // probability is effectively zero here.
                return f64::NEG_INFINITY;
            }
            if (nx - x).abs() < 1e-14 {
                x = nx;
                break;
            }
            x = nx;
        }
        let num = 1.0 - p * x;
        let den = (r as f64 + 1.0 - r as f64 * x) * q;
        if num <= 0.0 || den <= 0.0 {
            return f64::NEG_INFINITY;
        }
        (num / den).ln() - (n as f64 + 1.0) * x.ln()
    };
    let target = 0.99f64.ln();
    // log_p_no_run is decreasing in p: binary search.
    let mut lo = 1e-9;
    let mut hi = 1.0 - 1e-9;
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if log_p_no_run(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Combines the correctness trace of a predictor into an [`Estimate`].
fn predictor_estimate(name: &'static str, correct: &[bool]) -> Estimate {
    let n = correct.len();
    assert!(n > 0, "{name}: predictor made no predictions");
    let c = correct.iter().filter(|&&b| b).count();
    let p_global = c as f64 / n as f64;
    let p_global_u = if c == 0 {
        1.0 - 0.01f64.powf(1.0 / n as f64)
    } else {
        upper_bound(p_global, n)
    };
    let r = longest_true_run(correct) + 1;
    let p_local = local_probability(r, n);
    Estimate::from_p(name, p_global_u.max(p_local))
}

/// §6.3.7 Multi Most-Common-in-Window estimate (windows 63/255/1023/4095).
///
/// # Panics
///
/// Panics if the sequence has 64 bits or fewer.
pub fn multi_mcw_estimate(bits: &BitBuffer) -> Estimate {
    const WINDOWS: [usize; 4] = [63, 255, 1023, 4095];
    let n = bits.len();
    assert!(n > 64, "Multi-MCW needs more than 64 bits");

    let mut ones_in_window = [0usize; 4];
    let mut scoreboard = [0u64; 4];
    let mut winner = 0usize;
    let mut correct = Vec::with_capacity(n - 63);

    for i in 0..n {
        if i >= 63 {
            // Sub-predictions for every active window.
            let mut subs = [false; 4];
            for (k, &w) in WINDOWS.iter().enumerate() {
                if i >= w {
                    let ones = ones_in_window[k];
                    subs[k] = match (2 * ones).cmp(&w) {
                        std::cmp::Ordering::Greater => true,
                        std::cmp::Ordering::Less => false,
                        // Tie: the most recently observed value.
                        std::cmp::Ordering::Equal => bits.bit(i - 1),
                    };
                }
            }
            let actual = bits.bit(i);
            correct.push(subs[winner] == actual && i >= WINDOWS[winner]);
            // Scoreboard update: a sub-predictor takes over only by
            // strictly exceeding the current winner's score.
            for k in 0..4 {
                if i >= WINDOWS[k] && subs[k] == actual {
                    scoreboard[k] += 1;
                    if scoreboard[k] > scoreboard[winner] {
                        winner = k;
                    }
                }
            }
        }
        // Slide the windows.
        for (k, &w) in WINDOWS.iter().enumerate() {
            if bits.bit(i) {
                ones_in_window[k] += 1;
            }
            if i >= w && bits.bit(i - w) {
                ones_in_window[k] -= 1;
            }
        }
    }
    predictor_estimate("Multi-MCW", &correct)
}

/// §6.3.8 Lag predictor estimate (lags 1..=128).
///
/// # Panics
///
/// Panics if the sequence has fewer than 2 bits.
pub fn lag_estimate(bits: &BitBuffer) -> Estimate {
    const D: usize = 128;
    let n = bits.len();
    assert!(n >= 2, "Lag estimate needs at least 2 bits");
    let mut scoreboard = [0u64; D];
    let mut winner = 0usize;
    let mut correct = Vec::with_capacity(n - 1);
    for i in 1..n {
        let actual = bits.bit(i);
        let winner_lag = winner + 1;
        correct.push(i >= winner_lag && bits.bit(i - winner_lag) == actual);
        for d in 1..=D.min(i) {
            if bits.bit(i - d) == actual {
                scoreboard[d - 1] += 1;
                if scoreboard[d - 1] > scoreboard[winner] {
                    winner = d - 1;
                }
            }
        }
    }
    predictor_estimate("Lag", &correct)
}

/// §6.3.9 Multi Markov-Model-with-Counting estimate (orders 1..=16).
///
/// # Panics
///
/// Panics if the sequence has fewer than 3 bits.
pub fn multi_mmc_estimate(bits: &BitBuffer) -> Estimate {
    const D: usize = 16;
    let n = bits.len();
    assert!(n >= 3, "Multi-MMC needs at least 3 bits");
    // Flat per-order context tables: counts[d][ctx][symbol].
    let mut counts: Vec<Vec<[u32; 2]>> = (1..=D).map(|d| vec![[0u32; 2]; 1 << d]).collect();
    let mut scoreboard = [0u64; D];
    let mut winner = 0usize;
    let mut correct = Vec::with_capacity(n - 2);

    // Rolling contexts: ctx[d] = last d bits before position i.
    let mut ctx = [0u32; D + 1];
    let update_ctx = |ctx: &mut [u32; D + 1], bit: bool| {
        for (d, c) in ctx.iter_mut().enumerate().skip(1) {
            let mask = (1u32 << d) - 1;
            *c = ((*c << 1) | u32::from(bit)) & mask;
        }
    };
    update_ctx(&mut ctx, bits.bit(0));
    update_ctx(&mut ctx, bits.bit(1));

    for i in 2..n {
        let actual = bits.bit(i);
        // Sub-predictions.
        let mut subs: [Option<bool>; D] = [None; D];
        for d in 1..=D.min(i) {
            let c = &counts[d - 1][ctx[d] as usize];
            if c[0] == 0 && c[1] == 0 {
                subs[d - 1] = None; // unseen context: no prediction
            } else {
                subs[d - 1] = Some(c[1] > c[0]); // tie resolves to 0
            }
        }
        correct.push(subs[winner] == Some(actual));
        for d in 1..=D.min(i) {
            if subs[d - 1] == Some(actual) {
                scoreboard[d - 1] += 1;
                if scoreboard[d - 1] > scoreboard[winner] {
                    winner = d - 1;
                }
            }
        }
        // Learn the observed transition.
        for d in 1..=D.min(i) {
            counts[d - 1][ctx[d] as usize][usize::from(actual)] += 1;
        }
        update_ctx(&mut ctx, actual);
    }
    predictor_estimate("Multi-MMC", &correct)
}

/// §6.3.10 LZ78Y estimate (suffixes up to 16 bits, 65536-entry cap).
///
/// # Panics
///
/// Panics if the sequence has fewer than 19 bits.
pub fn lz78y_estimate(bits: &BitBuffer) -> Estimate {
    const B: usize = 16;
    const MAX_ENTRIES: usize = 65_536;
    let n = bits.len();
    assert!(n > B + 2, "LZ78Y needs more than {} bits", B + 2);

    // counts[len-1][ctx] = [count0, count1]; an entry "exists" once any
    // count is non-zero (subject to the global cap).
    let mut counts: Vec<Vec<[u32; 2]>> = (1..=B).map(|len| vec![[0u32; 2]; 1 << len]).collect();
    let mut entries = 0usize;
    let mut correct = Vec::with_capacity(n - B - 1);

    let mut ctx = [0u32; B + 1]; // ctx[len] = last `len` bits
    let update_ctx = |ctx: &mut [u32; B + 1], bit: bool| {
        for (len, slot) in ctx.iter_mut().enumerate().skip(1) {
            let mask = (1u32 << len) - 1;
            *slot = ((*slot << 1) | u32::from(bit)) & mask;
        }
    };
    for i in 0..B {
        update_ctx(&mut ctx, bits.bit(i));
    }

    for i in B..n {
        let actual = bits.bit(i);
        if i > B {
            // Predict: over all context lengths present in the dictionary,
            // choose the symbol with the highest count (longest length
            // wins ties between lengths by scan order).
            let mut best_count = 0u32;
            let mut prediction: Option<bool> = None;
            for len in (1..=B).rev() {
                let c = counts[len - 1][ctx[len] as usize];
                if c[0] == 0 && c[1] == 0 {
                    continue;
                }
                let (sym, cnt) = if c[1] > c[0] {
                    (true, c[1])
                } else {
                    (false, c[0])
                };
                if cnt > best_count {
                    best_count = cnt;
                    prediction = Some(sym);
                }
            }
            correct.push(prediction == Some(actual));
        }
        // Learn: add/update every suffix ending just before position i.
        for len in 1..=B {
            let slot = &mut counts[len - 1][ctx[len] as usize];
            let existed = slot[0] != 0 || slot[1] != 0;
            if existed || entries < MAX_ENTRIES {
                if !existed {
                    entries += 1;
                }
                slot[usize::from(actual)] += 1;
            }
        }
        update_ctx(&mut ctx, actual);
    }
    predictor_estimate("LZ78Y", &correct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sp800_90b::{biased_bits, splitmix_bits};

    #[test]
    fn longest_run_helper() {
        assert_eq!(longest_true_run(&[true, true, false, true]), 2);
        assert_eq!(longest_true_run(&[]), 0);
        assert_eq!(longest_true_run(&[false; 5]), 0);
        assert_eq!(longest_true_run(&[true; 5]), 5);
    }

    #[test]
    fn local_probability_behaviour() {
        // Longer observed runs at fixed n imply higher p.
        let p10 = local_probability(10, 10_000);
        let p25 = local_probability(25, 10_000);
        assert!(p25 > p10, "{p25} !> {p10}");
        // For a fair coin over 10k predictions the 99th-percentile run is
        // ~ log2(10000) + 5: r = 18 should imply p in a band around 0.5.
        let p = local_probability(18, 10_000);
        assert!(p > 0.35 && p < 0.7, "p = {p}");
        // Edge cases.
        assert_eq!(local_probability(0, 100), 0.0);
        assert_eq!(local_probability(200, 100), 1.0);
    }

    #[test]
    fn ideal_data_scores_near_one_on_all_predictors() {
        let bits = splitmix_bits(200_000, 51);
        for e in [
            multi_mcw_estimate(&bits),
            lag_estimate(&bits),
            multi_mmc_estimate(&bits),
            lz78y_estimate(&bits),
        ] {
            assert!(e.h_min > 0.9, "{e}");
        }
    }

    #[test]
    fn alternating_data_is_fully_predicted_by_lag() {
        let bits: BitBuffer = (0..50_000).map(|i| i % 2 == 0).collect();
        let e = lag_estimate(&bits);
        assert!(e.h_min < 0.01, "{e}");
        // Multi-MMC also nails a period-2 source.
        let e = multi_mmc_estimate(&bits);
        assert!(e.h_min < 0.01, "{e}");
        // And LZ78Y.
        let e = lz78y_estimate(&bits);
        assert!(e.h_min < 0.01, "{e}");
    }

    #[test]
    fn biased_data_is_predicted_by_mcw() {
        let bits = biased_bits(200_000, 52, 80);
        let e = multi_mcw_estimate(&bits);
        // 80% ones: global accuracy ~0.8 -> h ~ 0.32.
        assert!(e.h_min < 0.45, "{e}");
        assert!(e.h_min > 0.15, "{e}");
    }

    #[test]
    fn period_three_source_detected_by_mmc() {
        let bits: BitBuffer = (0..60_000).map(|i| i % 3 == 0).collect();
        let e = multi_mmc_estimate(&bits);
        assert!(e.h_min < 0.05, "{e}");
    }
}
