//! §5.1 IID-track permutation testing.
//!
//! Shuffles the sequence many times and checks that no test statistic of
//! the original ranks in the extreme tails of the shuffled distribution.
//! Eleven statistics from the spec are implemented; for binary data the
//! directional/periodicity/covariance statistics operate on the 8-bit
//! block-sum conversion the spec prescribes. The spec's bzip2 compression
//! statistic is replaced by an LZ78 dictionary-size statistic (no
//! external compressor dependency); it serves the same role — detecting
//! gross structure — and is documented as a deviation in `DESIGN.md`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bits::BitBuffer;

/// The test statistics of SP 800-90B §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum IidStatistic {
    Excursion,
    NumDirectionalRuns,
    LenDirectionalRuns,
    NumIncreasesDecreases,
    NumRunsMedian,
    LenRunsMedian,
    AvgCollision,
    MaxCollision,
    Periodicity(u32),
    Covariance(u32),
    Compression,
}

impl std::fmt::Display for IidStatistic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IidStatistic::Periodicity(p) => write!(f, "Periodicity(lag {p})"),
            IidStatistic::Covariance(p) => write!(f, "Covariance(lag {p})"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// Lags used by the periodicity/covariance statistics.
const LAGS: [u32; 5] = [1, 2, 8, 16, 32];

/// Result for one statistic.
#[derive(Debug, Clone, PartialEq)]
pub struct StatisticOutcome {
    /// Which statistic.
    pub statistic: IidStatistic,
    /// Value on the original (unshuffled) sequence.
    pub original: f64,
    /// Number of permutations with a strictly greater value.
    pub greater: usize,
    /// Number of permutations with an equal value.
    pub equal: usize,
}

impl StatisticOutcome {
    /// Extreme-rank check: fails when the original sits in the far tails
    /// of the permutation distribution (spec thresholds scaled to the
    /// permutation count; the spec's 10 000-permutation run uses 5).
    pub fn passes(&self, permutations: usize) -> bool {
        let margin = ((permutations as f64 * 0.0005).ceil() as usize).max(1);
        let low_ok = self.greater + self.equal > margin;
        let high_ok = self.greater < permutations - margin;
        low_ok && high_ok
    }
}

/// Aggregate result of the permutation test.
#[derive(Debug, Clone, PartialEq)]
pub struct IidReport {
    /// Per-statistic outcomes.
    pub outcomes: Vec<StatisticOutcome>,
    /// Number of permutations performed.
    pub permutations: usize,
}

impl IidReport {
    /// Whether the IID hypothesis survives every statistic.
    pub fn is_iid(&self) -> bool {
        self.outcomes.iter().all(|o| o.passes(self.permutations))
    }

    /// The outcomes that failed.
    pub fn failures(&self) -> Vec<&StatisticOutcome> {
        self.outcomes
            .iter()
            .filter(|o| !o.passes(self.permutations))
            .collect()
    }
}

/// 8-bit block-sum conversion for binary inputs (§5.1, "conversion I").
fn convert_blocks(symbols: &[u8]) -> Vec<u8> {
    symbols.chunks_exact(8).map(|c| c.iter().sum()).collect()
}

fn excursion(symbols: &[u8]) -> f64 {
    let n = symbols.len() as f64;
    let mean = symbols.iter().map(|&s| f64::from(s)).sum::<f64>() / n;
    let mut acc = 0.0;
    let mut max = 0.0f64;
    for &s in symbols {
        acc += f64::from(s) - mean;
        max = max.max(acc.abs());
    }
    max
}

/// (number of directional runs, longest, max(increases, decreases)).
fn directional_stats(conv: &[u8]) -> (f64, f64, f64) {
    if conv.len() < 2 {
        return (0.0, 0.0, 0.0);
    }
    let dirs: Vec<bool> = conv.windows(2).map(|w| w[1] >= w[0]).collect();
    let mut runs = 1u64;
    let mut longest = 1u64;
    let mut current = 1u64;
    for i in 1..dirs.len() {
        if dirs[i] == dirs[i - 1] {
            current += 1;
            longest = longest.max(current);
        } else {
            runs += 1;
            current = 1;
        }
    }
    let ups = dirs.iter().filter(|&&d| d).count() as u64;
    let downs = dirs.len() as u64 - ups;
    (runs as f64, longest as f64, ups.max(downs) as f64)
}

/// (number of runs, longest run) of values relative to the median
/// (for binary symbols the median is 0.5, so runs of equal bits).
fn median_run_stats(symbols: &[u8]) -> (f64, f64) {
    if symbols.is_empty() {
        return (0.0, 0.0);
    }
    let above: Vec<bool> = symbols.iter().map(|&s| s >= 1).collect();
    let mut runs = 1u64;
    let mut longest = 1u64;
    let mut current = 1u64;
    for i in 1..above.len() {
        if above[i] == above[i - 1] {
            current += 1;
            longest = longest.max(current);
        } else {
            runs += 1;
            current = 1;
        }
    }
    (runs as f64, longest as f64)
}

/// (average, maximum) collision search times over the binary symbols.
fn collision_stats(symbols: &[u8]) -> (f64, f64) {
    let mut times = Vec::new();
    let mut i = 0usize;
    let n = symbols.len();
    while i + 1 < n {
        if symbols[i] == symbols[i + 1] {
            times.push(2u64);
            i += 2;
        } else if i + 2 < n {
            times.push(3);
            i += 3;
        } else {
            break;
        }
    }
    if times.is_empty() {
        return (0.0, 0.0);
    }
    let sum: u64 = times.iter().sum();
    (
        sum as f64 / times.len() as f64,
        *times.iter().max().unwrap() as f64,
    )
}

fn periodicity(conv: &[u8], lag: u32) -> f64 {
    let lag = lag as usize;
    if conv.len() <= lag {
        return 0.0;
    }
    (0..conv.len() - lag)
        .filter(|&i| conv[i] == conv[i + lag])
        .count() as f64
}

fn covariance(conv: &[u8], lag: u32) -> f64 {
    let lag = lag as usize;
    if conv.len() <= lag {
        return 0.0;
    }
    (0..conv.len() - lag)
        .map(|i| f64::from(conv[i]) * f64::from(conv[i + lag]))
        .sum()
}

/// LZ78 dictionary-size statistic standing in for the spec's bzip2
/// compressed length: parses the sequence into distinct phrases; fewer
/// phrases means more structure.
fn lz78_phrases(symbols: &[u8]) -> f64 {
    use std::collections::HashMap;
    // Dictionary maps (prefix id, symbol) -> phrase id.
    let mut dict: HashMap<(u32, u8), u32> = HashMap::new();
    let mut next_id = 1u32;
    let mut current = 0u32;
    let mut phrases = 0u64;
    for &s in symbols {
        match dict.get(&(current, s)) {
            Some(&id) => current = id,
            None => {
                dict.insert((current, s), next_id);
                next_id = next_id.wrapping_add(1);
                current = 0;
                phrases += 1;
            }
        }
    }
    phrases as f64
}

/// All statistics for one symbol arrangement.
fn all_statistics(symbols: &[u8]) -> Vec<(IidStatistic, f64)> {
    let conv = convert_blocks(symbols);
    let (dir_runs, dir_len, incdec) = directional_stats(&conv);
    let (med_runs, med_len) = median_run_stats(symbols);
    let (avg_col, max_col) = collision_stats(symbols);
    let mut out = vec![
        (IidStatistic::Excursion, excursion(symbols)),
        (IidStatistic::NumDirectionalRuns, dir_runs),
        (IidStatistic::LenDirectionalRuns, dir_len),
        (IidStatistic::NumIncreasesDecreases, incdec),
        (IidStatistic::NumRunsMedian, med_runs),
        (IidStatistic::LenRunsMedian, med_len),
        (IidStatistic::AvgCollision, avg_col),
        (IidStatistic::MaxCollision, max_col),
    ];
    for lag in LAGS {
        out.push((IidStatistic::Periodicity(lag), periodicity(&conv, lag)));
    }
    for lag in LAGS {
        out.push((IidStatistic::Covariance(lag), covariance(&conv, lag)));
    }
    out.push((IidStatistic::Compression, lz78_phrases(symbols)));
    out
}

/// §5.1 permutation test.
///
/// `permutations` controls runtime: the spec prescribes 10 000;
/// the experiment harness defaults to 250, which already detects the
/// failure modes the DH-TRNG evaluation cares about.
///
/// # Panics
///
/// Panics if the sequence is shorter than 64 bits or `permutations == 0`.
pub fn iid_permutation_test(bits: &BitBuffer, permutations: usize, seed: u64) -> IidReport {
    assert!(bits.len() >= 64, "IID test needs at least 64 bits");
    assert!(permutations > 0, "need at least one permutation");
    let mut symbols: Vec<u8> = bits.iter().map(u8::from).collect();
    let originals = all_statistics(&symbols);

    let mut greater = vec![0usize; originals.len()];
    let mut equal = vec![0usize; originals.len()];
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..permutations {
        // Fisher-Yates shuffle.
        for i in (1..symbols.len()).rev() {
            let j = rng.gen_range(0..=i);
            symbols.swap(i, j);
        }
        for (k, (_, value)) in all_statistics(&symbols).iter().enumerate() {
            let orig = originals[k].1;
            if *value > orig {
                greater[k] += 1;
            } else if (*value - orig).abs() < 1e-12 {
                equal[k] += 1;
            }
        }
    }
    let outcomes = originals
        .into_iter()
        .enumerate()
        .map(|(k, (statistic, original))| StatisticOutcome {
            statistic,
            original,
            greater: greater[k],
            equal: equal[k],
        })
        .collect();
    IidReport {
        outcomes,
        permutations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sp800_90b::splitmix_bits;

    #[test]
    fn iid_data_passes() {
        // Seed picked so every statistic ranks mid-distribution under the
        // permutation test (the extreme-rank margin at 100 permutations
        // gives each of the ~19 statistics a ~2% tail probability, so an
        // arbitrary fixed stream can land on the boundary by luck).
        let bits = splitmix_bits(4096, 65);
        let report = iid_permutation_test(&bits, 100, 7);
        assert!(report.is_iid(), "failures: {:?}", report.failures());
    }

    #[test]
    fn oscillating_data_fails() {
        // Strong period-2 structure survives in covariance/periodicity
        // and run statistics; shuffling destroys it.
        let bits: BitBuffer = (0..4096).map(|i| i % 2 == 0).collect();
        let report = iid_permutation_test(&bits, 100, 8);
        assert!(!report.is_iid());
    }

    #[test]
    fn drifting_data_fails_excursion() {
        // First half mostly zeros, second half mostly ones: a huge
        // excursion that shuffling flattens.
        let bits: BitBuffer = (0..4096)
            .map(|i| if i < 2048 { i % 8 == 0 } else { i % 8 != 0 })
            .collect();
        let report = iid_permutation_test(&bits, 100, 9);
        assert!(!report.is_iid());
        let failed: Vec<String> = report
            .failures()
            .iter()
            .map(|o| o.statistic.to_string())
            .collect();
        assert!(
            failed.iter().any(|s| s == "Excursion"),
            "expected excursion failure, got {failed:?}"
        );
    }

    #[test]
    fn statistics_are_shuffle_invariant_in_count() {
        let bits = splitmix_bits(2048, 62);
        let symbols: Vec<u8> = bits.iter().map(u8::from).collect();
        assert_eq!(all_statistics(&symbols).len(), 9 + 2 * LAGS.len());
    }

    #[test]
    fn lz78_detects_structure() {
        let random: Vec<u8> = splitmix_bits(4096, 63).iter().map(u8::from).collect();
        let periodic: Vec<u8> = (0..4096u32).map(|i| u8::from(i % 2 == 0)).collect();
        assert!(lz78_phrases(&periodic) < lz78_phrases(&random));
    }

    #[test]
    fn outcome_pass_logic() {
        let o = StatisticOutcome {
            statistic: IidStatistic::Excursion,
            original: 1.0,
            greater: 50,
            equal: 0,
        };
        assert!(o.passes(100));
        let low = StatisticOutcome {
            statistic: IidStatistic::Excursion,
            original: 1.0,
            greater: 0,
            equal: 0,
        };
        assert!(!low.passes(100));
        let high = StatisticOutcome {
            statistic: IidStatistic::Excursion,
            original: 1.0,
            greater: 100,
            equal: 0,
        };
        assert!(!high.passes(100));
    }
}
