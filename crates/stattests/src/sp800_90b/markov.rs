//! §6.3.3 Markov estimate (binary).
//!
//! Builds the first-order transition matrix, then finds the most likely
//! 128-step sequence by dynamic programming. The reported `p_max` is that
//! sequence's probability — which is why the paper's Table 4 shows values
//! like `4.28E-39` — and `h = min(-log2(p_max)/128, 1)` per bit.

use crate::bits::BitBuffer;

use super::Estimate;

/// Chain length prescribed by the spec.
const CHAIN_LEN: u32 = 128;

/// §6.3.3 Markov estimate.
///
/// # Panics
///
/// Panics if the sequence has fewer than two bits.
pub fn markov_estimate(bits: &BitBuffer) -> Estimate {
    let n = bits.len();
    assert!(n >= 2, "Markov estimate needs at least two bits");

    // Initial probabilities.
    let ones = bits.ones() as f64;
    let p1 = ones / n as f64;
    let p0 = 1.0 - p1;

    // Transition counts.
    let mut c = [[0u64; 2]; 2];
    for i in 0..n - 1 {
        c[usize::from(bits.bit(i))][usize::from(bits.bit(i + 1))] += 1;
    }
    let t = |from: usize, to: usize| -> f64 {
        let row = c[from][0] + c[from][1];
        if row == 0 {
            // Unobserved state: the spec treats its transitions as free
            // (probability 1 upper bound).
            1.0
        } else {
            c[from][to] as f64 / row as f64
        }
    };

    // DP over log-probabilities of the most likely 128-step sequence.
    let safe_log = |p: f64| -> f64 {
        if p <= 0.0 {
            f64::NEG_INFINITY
        } else {
            p.log2()
        }
    };
    let mut best = [safe_log(p0), safe_log(p1)];
    for _ in 1..CHAIN_LEN {
        let next0 = (best[0] + safe_log(t(0, 0))).max(best[1] + safe_log(t(1, 0)));
        let next1 = (best[0] + safe_log(t(0, 1))).max(best[1] + safe_log(t(1, 1)));
        best = [next0, next1];
    }
    let log_p_max = best[0].max(best[1]);
    let p_max = 2f64.powf(log_p_max);
    let h = (-log_p_max / f64::from(CHAIN_LEN)).clamp(0.0, 1.0);
    Estimate {
        name: "Markov",
        p_max,
        h_min: h,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sp800_90b::{biased_bits, splitmix_bits};

    #[test]
    fn ideal_data_p_max_is_astronomically_small() {
        let bits = splitmix_bits(1_000_000, 21);
        let e = markov_estimate(&bits);
        // ~2^-128 ~ 2.9e-39: the paper's Table 4 shows 4.28E-39.
        assert!(e.p_max < 1e-37, "p_max = {:e}", e.p_max);
        assert!(e.p_max > 1e-41, "p_max = {:e}", e.p_max);
        assert!(e.h_min > 0.99, "h = {}", e.h_min);
    }

    #[test]
    fn constant_data_has_zero_entropy() {
        let bits: BitBuffer = (0..10_000).map(|_| true).collect();
        let e = markov_estimate(&bits);
        assert!((e.p_max - 1.0).abs() < 1e-9);
        assert_eq!(e.h_min, 0.0);
    }

    #[test]
    fn alternating_data_is_fully_predictable() {
        // 0101...: transitions are deterministic, so the best chain has
        // probability ~= initial probability ~ 0.5 -> h ~ 1/128 * 1 bit.
        let bits: BitBuffer = (0..10_000).map(|i| i % 2 == 0).collect();
        let e = markov_estimate(&bits);
        assert!(e.h_min < 0.01, "h = {}", e.h_min);
    }

    #[test]
    fn bias_lowers_markov_entropy() {
        let fair = markov_estimate(&splitmix_bits(500_000, 22)).h_min;
        let biased = markov_estimate(&biased_bits(500_000, 22, 65)).h_min;
        assert!(biased < fair);
    }

    #[test]
    fn sticky_source_detected() {
        // Markov chain with strong persistence: P(same) = 0.8.
        let mut state = 77u64;
        let mut prev = false;
        let bits: BitBuffer = (0..200_000)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                let flip = (z ^ (z >> 31)) % 100 < 20;
                prev = prev != flip;
                prev
            })
            .collect();
        let e = markov_estimate(&bits);
        // Best chain stays in the sticky state: h ~ -log2(0.8) = 0.32.
        assert!(e.h_min < 0.45, "h = {}", e.h_min);
        assert!(e.h_min > 0.2, "h = {}", e.h_min);
    }
}
