//! Online health tests (SP 800-90B §4.4).
//!
//! A deployed TRNG must detect catastrophic entropy-source failure at
//! runtime. This module implements the two mandatory continuous tests —
//! the Repetition Count Test (RCT) and the Adaptive Proportion Test
//! (APT) — sized for a binary source with the paper's entropy level
//! (H ≈ 0.99/bit), plus a monitor that folds them over a bit stream.

/// Outcome of feeding a bit to the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthStatus {
    /// All tests nominal.
    Ok,
    /// The Repetition Count Test tripped (a value repeated too long).
    RepetitionFailure,
    /// The Adaptive Proportion Test tripped (a value dominated a window).
    ProportionFailure,
}

/// Continuous health monitor: RCT + APT over a binary stream.
///
/// Cutoffs follow SP 800-90B §4.4 with `alpha = 2^-30` and
/// `H = 0.99` bits/sample:
///
/// * RCT cutoff `C = 1 + ceil(30 / H) = 32`;
/// * APT window `W = 1024`, cutoff from the binomial tail at
///   `p = 2^-H`: 624.
///
/// # Example
///
/// ```
/// use dhtrng_core::{HealthMonitor, HealthStatus};
///
/// let mut hm = HealthMonitor::new();
/// // A healthy alternating-ish stream never trips the monitor.
/// for i in 0..10_000 {
///     assert_eq!(hm.feed(i % 2 == 0), HealthStatus::Ok);
/// }
/// // A stuck-at source trips the repetition count test.
/// let status = (0..100).map(|_| hm.feed(true)).find(|s| *s != HealthStatus::Ok);
/// assert_eq!(status, Some(HealthStatus::RepetitionFailure));
/// ```
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    rct_cutoff: u32,
    apt_window: u32,
    apt_cutoff: u32,
    // RCT state.
    last: Option<bool>,
    run: u32,
    // APT state.
    window_pos: u32,
    reference: bool,
    matches: u32,
    // Statistics.
    bits_seen: u64,
    failures: u64,
}

impl HealthMonitor {
    /// Monitor with the default cutoffs (H = 0.99, alpha = 2^-30).
    pub fn new() -> Self {
        Self::with_cutoffs(32, 1024, 624)
    }

    /// Monitor with explicit cutoffs.
    ///
    /// # Panics
    ///
    /// Panics if any cutoff is zero or `apt_cutoff > apt_window`.
    pub fn with_cutoffs(rct_cutoff: u32, apt_window: u32, apt_cutoff: u32) -> Self {
        assert!(rct_cutoff > 1, "RCT cutoff must exceed 1");
        assert!(
            apt_window > 0 && apt_cutoff > 0,
            "APT parameters must be positive"
        );
        assert!(
            apt_cutoff <= apt_window,
            "APT cutoff cannot exceed the window"
        );
        Self {
            rct_cutoff,
            apt_window,
            apt_cutoff,
            last: None,
            run: 0,
            window_pos: 0,
            reference: false,
            matches: 0,
            bits_seen: 0,
            failures: 0,
        }
    }

    /// Feeds one bit; returns the health status after this bit.
    pub fn feed(&mut self, bit: bool) -> HealthStatus {
        self.bits_seen += 1;

        // Repetition Count Test.
        if self.last == Some(bit) {
            self.run += 1;
        } else {
            self.last = Some(bit);
            self.run = 1;
        }
        if self.run >= self.rct_cutoff {
            self.failures += 1;
            self.run = 1; // re-arm after reporting
            return HealthStatus::RepetitionFailure;
        }

        // Adaptive Proportion Test.
        if self.window_pos == 0 {
            self.reference = bit;
            self.matches = 1;
            self.window_pos = 1;
        } else {
            if bit == self.reference {
                self.matches += 1;
            }
            self.window_pos += 1;
            if self.matches >= self.apt_cutoff {
                self.failures += 1;
                self.window_pos = 0;
                return HealthStatus::ProportionFailure;
            }
            if self.window_pos == self.apt_window {
                self.window_pos = 0;
            }
        }
        HealthStatus::Ok
    }

    /// Total bits observed.
    pub fn bits_seen(&self) -> u64 {
        self.bits_seen
    }

    /// Total failures reported.
    pub fn failures(&self) -> u64 {
        self.failures
    }
}

impl Default for HealthMonitor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtrng_noise::NoiseRng;

    #[test]
    fn healthy_stream_never_trips() {
        let mut hm = HealthMonitor::new();
        let mut rng = NoiseRng::seed_from_u64(1);
        for _ in 0..1_000_000 {
            assert_eq!(hm.feed(rng.bernoulli(0.5)), HealthStatus::Ok);
        }
        assert_eq!(hm.failures(), 0);
        assert_eq!(hm.bits_seen(), 1_000_000);
    }

    #[test]
    fn stuck_source_trips_rct_quickly() {
        let mut hm = HealthMonitor::new();
        let mut tripped_at = None;
        for i in 0..100 {
            if hm.feed(true) == HealthStatus::RepetitionFailure {
                tripped_at = Some(i);
                break;
            }
        }
        assert_eq!(tripped_at, Some(31), "RCT cutoff 32 trips on the 32nd bit");
    }

    #[test]
    fn heavily_biased_source_trips_apt() {
        let mut hm = HealthMonitor::new();
        let mut rng = NoiseRng::seed_from_u64(2);
        let mut tripped = false;
        for _ in 0..100_000 {
            // 75% ones: the APT window of 1024 expects ~768 matches when
            // the reference is 1 — far over the 624 cutoff.
            match hm.feed(rng.bernoulli(0.75)) {
                HealthStatus::ProportionFailure => {
                    tripped = true;
                    break;
                }
                HealthStatus::RepetitionFailure => {}
                HealthStatus::Ok => {}
            }
        }
        assert!(tripped, "APT must catch a 75%-biased source");
    }

    #[test]
    fn mild_bias_passes() {
        // 51% ones stays under both cutoffs essentially always.
        let mut hm = HealthMonitor::new();
        let mut rng = NoiseRng::seed_from_u64(3);
        let mut failures = 0;
        for _ in 0..500_000 {
            if hm.feed(rng.bernoulli(0.51)) != HealthStatus::Ok {
                failures += 1;
            }
        }
        assert_eq!(failures, 0);
    }

    #[test]
    #[should_panic(expected = "APT cutoff cannot exceed")]
    fn invalid_cutoffs_panic() {
        let _ = HealthMonitor::with_cutoffs(32, 100, 200);
    }
}
