//! A Hash-DRBG-style deterministic output stage over the workspace's
//! [`NoiseRng`] math — the last box of the SP 800-90C chain
//! (source → health tests → conditioner → **DRBG**).
//!
//! A production entropy service does not hand raw source bits to
//! consumers: it seeds a deterministic generator from the conditioned
//! pool and re-keys it on a policy. This module supplies that stage in
//! two layers:
//!
//! * [`HashDrbg`] — the pure state machine: instantiate from seed
//!   material, generate 64-byte blocks, refuse to generate past the
//!   configured reseed interval, fold fresh seed material into the
//!   chaining value on [`reseed`](HashDrbg::reseed);
//! * [`Drbg`] — the adaptor mounting a [`HashDrbg`] on any [`Trng`]
//!   entropy source, harvesting seed material automatically and
//!   exposing the whole thing as a `Trng` (so the batched
//!   [`next_bits`](Trng::next_bits)/[`fill_bytes`](Trng::fill_bytes)
//!   consumers work unchanged).
//!
//! **Scope.** This is a *behavioural model* of the 90A construction,
//! not a certified implementation: the derivation function is a 64-bit
//! FNV-1a chain rather than SHA-2, and the output generator is the
//! workspace's [`NoiseRng`] (so that the DRBG tier's streams stay
//! seeded-reproducible like every other tier). The state-machine shape
//! — instantiate / generate-with-interval / reseed / prediction
//! resistance — follows the spec, which is what the pipeline and its
//! tests exercise.
//!
//! # Determinism
//!
//! Output is produced in fixed [`BLOCK_BYTES`] blocks, so the stream
//! for a given seed schedule is identical however consumers slice
//! their reads — pinned by `tests/conditioning.rs` alongside the raw
//! tier's batching pins. With
//! [`prediction_resistance`](DrbgConfig::prediction_resistance) the
//! machine reseeds before *every* block, folding fresh source entropy
//! in continuously (and costing one seed harvest per 512 output bits).
//!
//! # Example
//!
//! ```
//! use dhtrng_core::drbg::{Drbg, DrbgConfig};
//! use dhtrng_core::{DhTrng, Trng};
//!
//! let source = DhTrng::builder().seed(5).build();
//! let mut drbg = Drbg::new(source, DrbgConfig::default());
//! let mut key = [0u8; 32];
//! drbg.fill_bytes(&mut key);
//! assert_ne!(key, [0u8; 32]);
//! assert_eq!(drbg.reseeds(), 0); // well under the default 1 Mbit interval
//! ```

use std::fmt;

use dhtrng_noise::NoiseRng;
use rand::RngCore;

use crate::trng::Trng;

/// Bytes per generated block: the granularity at which [`HashDrbg`]
/// produces output and checks its reseed interval. A multiple of 8 so
/// block-aligned generation is chunking-stable on every `RngCore`.
pub const BLOCK_BYTES: usize = 64;

/// Output bits per generated block.
const BLOCK_BITS: u64 = BLOCK_BYTES as u64 * 8;

/// Policy knobs for the DRBG output stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrbgConfig {
    /// Output bits generated between reseeds. Clamped up to one block
    /// (512 bits) at instantiation; the default re-keys every mebibit.
    pub reseed_interval_bits: u64,
    /// Seed material harvested from the entropy source per
    /// instantiate/reseed, in bytes. The default (48 bytes = 384 bits)
    /// mirrors the 90A Hash-DRBG seed-length order of magnitude.
    pub seed_bytes: usize,
    /// Reseed before **every** output block, folding fresh entropy in
    /// continuously (90A prediction resistance). The reseed interval
    /// becomes irrelevant.
    pub prediction_resistance: bool,
}

impl Default for DrbgConfig {
    fn default() -> Self {
        Self {
            reseed_interval_bits: 1 << 20,
            seed_bytes: 48,
            prediction_resistance: false,
        }
    }
}

impl DrbgConfig {
    /// Output bits per seed-material bit at the configured policy — the
    /// entropy amplification of the DRBG stage (1.0 under prediction
    /// resistance would mean no amplification; the default policy
    /// yields `2^20 / 384 ≈ 2731x`).
    pub fn expansion_factor(&self) -> f64 {
        let seed_bits = (self.seed_bytes as u64 * 8).max(1) as f64;
        if self.prediction_resistance {
            BLOCK_BITS as f64 / seed_bits
        } else {
            self.reseed_interval_bits.max(BLOCK_BITS) as f64 / seed_bits
        }
    }
}

/// Error returned by [`HashDrbg::generate`] when the reseed interval is
/// exhausted: the caller must [`reseed`](HashDrbg::reseed) first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReseedRequired;

impl fmt::Display for ReseedRequired {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DRBG reseed interval exhausted; reseed before generating"
        )
    }
}

impl std::error::Error for ReseedRequired {}

/// The Hash-DRBG-style state machine: a chaining value derived from
/// seed material keys a [`NoiseRng`] working state; output is produced
/// in [`BLOCK_BYTES`] blocks until the reseed interval is exhausted.
///
/// The machine never touches an entropy source itself — callers hand it
/// seed material (the [`Drbg`] adaptor and the stream pipeline's
/// `DrbgPool` do the harvesting), which keeps the state machine
/// testable in isolation.
#[derive(Debug, Clone)]
pub struct HashDrbg {
    config: DrbgConfig,
    /// Chaining value `V`: every reseed folds the previous value and
    /// the fresh material together, so state never resets to a
    /// material-only function.
    chain: u64,
    rng: NoiseRng,
    bits_since_reseed: u64,
    reseeds: u64,
}

impl HashDrbg {
    /// Instantiates from seed material.
    ///
    /// `config.reseed_interval_bits` is clamped up to one block so a
    /// single [`generate`](Self::generate) call is always possible
    /// between reseeds.
    ///
    /// # Panics
    ///
    /// Panics if `seed_material` is empty or `config.seed_bytes == 0`.
    pub fn instantiate(seed_material: &[u8], mut config: DrbgConfig) -> Self {
        assert!(!seed_material.is_empty(), "seed material must be non-empty");
        assert!(config.seed_bytes > 0, "seed_bytes must be positive");
        config.reseed_interval_bits = config.reseed_interval_bits.max(BLOCK_BITS);
        let chain = hash_df(DF_INSTANTIATE, &[seed_material]);
        Self {
            config,
            chain,
            rng: NoiseRng::seed_from_u64(chain),
            bits_since_reseed: 0,
            reseeds: 0,
        }
    }

    /// Folds fresh seed material into the chaining value and re-keys
    /// the working state.
    ///
    /// # Panics
    ///
    /// Panics if `seed_material` is empty.
    pub fn reseed(&mut self, seed_material: &[u8]) {
        assert!(!seed_material.is_empty(), "seed material must be non-empty");
        self.chain = hash_df(DF_RESEED, &[&self.chain.to_be_bytes(), seed_material]);
        self.rng = NoiseRng::seed_from_u64(self.chain);
        self.bits_since_reseed = 0;
        self.reseeds += 1;
    }

    /// Whether the next block would exceed the reseed interval (always
    /// true between blocks under prediction resistance).
    pub fn needs_reseed(&self) -> bool {
        self.config.prediction_resistance && self.bits_since_reseed > 0
            || self.bits_since_reseed + BLOCK_BITS > self.config.reseed_interval_bits
    }

    /// Generates the next [`BLOCK_BYTES`]-byte output block.
    ///
    /// # Errors
    ///
    /// [`ReseedRequired`] when the interval is exhausted (or, under
    /// prediction resistance, when a block was already produced since
    /// the last reseed); the state is untouched in that case.
    pub fn generate(&mut self, block: &mut [u8; BLOCK_BYTES]) -> Result<(), ReseedRequired> {
        if self.needs_reseed() {
            return Err(ReseedRequired);
        }
        self.rng.fill_bytes(block);
        self.bits_since_reseed += BLOCK_BITS;
        Ok(())
    }

    /// Reseeds performed since instantiation.
    pub fn reseeds(&self) -> u64 {
        self.reseeds
    }

    /// Output bits generated since the last reseed (or instantiation).
    pub fn bits_since_reseed(&self) -> u64 {
        self.bits_since_reseed
    }

    /// The policy this machine was instantiated with (interval already
    /// clamped).
    pub fn config(&self) -> &DrbgConfig {
        &self.config
    }
}

/// Domain-separation tags for the derivation function.
const DF_INSTANTIATE: u8 = 0x01;
const DF_RESEED: u8 = 0x02;

/// The model's derivation function: a 64-bit FNV-1a chain over a domain
/// tag and the material parts. Stands in for the 90A `Hash_df` (see the
/// module docs for scope).
fn hash_df(domain: u8, parts: &[&[u8]]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    h ^= u64::from(domain);
    h = h.wrapping_mul(PRIME);
    for part in parts {
        // Length-prefix each part so (["ab","c"]) and (["a","bc"])
        // derive different values.
        for &b in (part.len() as u64).to_be_bytes().iter().chain(part.iter()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// A DRBG mounted on a [`Trng`] entropy source: seed material is
/// harvested from the source at instantiation and at every reseed
/// boundary, and the output stream is exposed as a `Trng` itself — the
/// single-instance form of the pipeline's `drbg` tier.
///
/// All output routes through one internal block buffer, so the per-bit
/// ([`next_bit`](Trng::next_bit)) and batched
/// ([`next_bits`](Trng::next_bits)/[`fill_bytes`](Trng::fill_bytes))
/// paths walk the identical stream — the same guarantee the raw tier's
/// `BlockKernel` provides, pinned by `tests/conditioning.rs`.
#[derive(Debug, Clone)]
pub struct Drbg<S> {
    source: S,
    drbg: HashDrbg,
    block: [u8; BLOCK_BYTES],
    /// Bit cursor into `block`; `BLOCK_BITS` means exhausted.
    cursor_bits: usize,
    /// Persistent seed-material buffer, reused across reseeds so the
    /// steady-state harvest path performs no heap allocation.
    material: Vec<u8>,
}

impl<S: Trng> Drbg<S> {
    /// Instantiates over `source`, harvesting `config.seed_bytes` of
    /// seed material from it immediately.
    ///
    /// # Panics
    ///
    /// Panics if `config.seed_bytes == 0`.
    pub fn new(mut source: S, config: DrbgConfig) -> Self {
        let mut material = vec![0u8; config.seed_bytes.max(1)];
        source.fill_bytes(&mut material);
        let drbg = HashDrbg::instantiate(&material, config);
        Self {
            source,
            drbg,
            block: [0u8; BLOCK_BYTES],
            cursor_bits: BLOCK_BITS as usize,
            material,
        }
    }

    /// Reseeds performed so far (instantiation not counted).
    pub fn reseeds(&self) -> u64 {
        self.drbg.reseeds()
    }

    /// The policy in force.
    pub fn config(&self) -> &DrbgConfig {
        self.drbg.config()
    }

    /// The entropy source behind the DRBG.
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Unwraps the entropy source, discarding the DRBG state.
    pub fn into_source(self) -> S {
        self.source
    }

    /// Produces the next block into the internal buffer, harvesting and
    /// folding in seed material first when the policy requires it.
    fn refill(&mut self) {
        if self.drbg.needs_reseed() {
            // Harvest into the persistent buffer: reseeds are free of
            // heap traffic after instantiation.
            self.material.resize(self.drbg.config().seed_bytes, 0);
            self.source.fill_bytes(&mut self.material);
            self.drbg.reseed(&self.material);
        }
        self.drbg
            .generate(&mut self.block)
            .expect("reseed just satisfied the interval");
        self.cursor_bits = 0;
    }
}

impl<S: Trng> Trng for Drbg<S> {
    fn next_bit(&mut self) -> bool {
        if self.cursor_bits == BLOCK_BITS as usize {
            self.refill();
        }
        let byte = self.block[self.cursor_bits / 8];
        let bit = (byte >> (7 - self.cursor_bits % 8)) & 1 == 1;
        self.cursor_bits += 1;
        bit
    }

    fn fill_bytes(&mut self, buf: &mut [u8]) {
        if self.cursor_bits % 8 != 0 {
            // Mid-byte cursor (only after an unaligned next_bits call).
            // Stream continuity pins every subsequent output byte to
            // the same sub-byte offset — realigning would skip bits —
            // so the whole fill runs through the per-bit path.
            for slot in buf.iter_mut() {
                *slot = self.next_bits(8) as u8;
            }
            return;
        }
        let mut written = 0;
        while written < buf.len() {
            if self.cursor_bits == BLOCK_BITS as usize {
                self.refill();
            }
            let cursor = self.cursor_bits / 8;
            let take = (buf.len() - written).min(BLOCK_BYTES - cursor);
            buf[written..written + take].copy_from_slice(&self.block[cursor..cursor + take]);
            self.cursor_bits += take * 8;
            written += take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trng::DhTrng;

    fn counter_material(n: usize, offset: u8) -> Vec<u8> {
        (0..n).map(|i| (i as u8).wrapping_add(offset)).collect()
    }

    #[test]
    fn instantiate_is_deterministic_in_the_material() {
        let mut a = HashDrbg::instantiate(&counter_material(48, 0), DrbgConfig::default());
        let mut b = HashDrbg::instantiate(&counter_material(48, 0), DrbgConfig::default());
        let mut c = HashDrbg::instantiate(&counter_material(48, 1), DrbgConfig::default());
        let (mut ba, mut bb, mut bc) = ([0u8; BLOCK_BYTES], [0u8; BLOCK_BYTES], [0u8; BLOCK_BYTES]);
        a.generate(&mut ba).unwrap();
        b.generate(&mut bb).unwrap();
        c.generate(&mut bc).unwrap();
        assert_eq!(ba, bb);
        assert_ne!(ba, bc);
    }

    #[test]
    fn interval_is_enforced_and_reseed_restores() {
        let config = DrbgConfig {
            reseed_interval_bits: 1024, // two blocks
            ..DrbgConfig::default()
        };
        let mut drbg = HashDrbg::instantiate(&counter_material(48, 0), config);
        let mut block = [0u8; BLOCK_BYTES];
        drbg.generate(&mut block).unwrap();
        drbg.generate(&mut block).unwrap();
        assert!(drbg.needs_reseed());
        assert_eq!(drbg.generate(&mut block), Err(ReseedRequired));
        drbg.reseed(&counter_material(48, 9));
        assert_eq!(drbg.reseeds(), 1);
        assert_eq!(drbg.bits_since_reseed(), 0);
        drbg.generate(&mut block).unwrap();
    }

    #[test]
    fn reseed_chains_previous_state() {
        // Same fresh material, different prior history -> different
        // post-reseed streams (the chaining value matters).
        let mut a = HashDrbg::instantiate(&counter_material(48, 0), DrbgConfig::default());
        let mut b = HashDrbg::instantiate(&counter_material(48, 1), DrbgConfig::default());
        a.reseed(&counter_material(48, 7));
        b.reseed(&counter_material(48, 7));
        let (mut ba, mut bb) = ([0u8; BLOCK_BYTES], [0u8; BLOCK_BYTES]);
        a.generate(&mut ba).unwrap();
        b.generate(&mut bb).unwrap();
        assert_ne!(ba, bb);
    }

    #[test]
    fn tiny_interval_is_clamped_to_one_block() {
        let config = DrbgConfig {
            reseed_interval_bits: 1,
            ..DrbgConfig::default()
        };
        let mut drbg = HashDrbg::instantiate(&[1, 2, 3], config);
        let mut block = [0u8; BLOCK_BYTES];
        drbg.generate(&mut block).unwrap();
        assert!(drbg.needs_reseed());
        assert_eq!(drbg.config().reseed_interval_bits, BLOCK_BITS);
    }

    #[test]
    fn prediction_resistance_demands_reseed_every_block() {
        let config = DrbgConfig {
            prediction_resistance: true,
            ..DrbgConfig::default()
        };
        let mut drbg = HashDrbg::instantiate(&counter_material(48, 0), config);
        let mut block = [0u8; BLOCK_BYTES];
        drbg.generate(&mut block).unwrap();
        assert_eq!(drbg.generate(&mut block), Err(ReseedRequired));
        drbg.reseed(&counter_material(48, 1));
        drbg.generate(&mut block).unwrap();
    }

    #[test]
    fn adaptor_reseeds_on_policy_and_streams_deterministically() {
        let config = DrbgConfig {
            reseed_interval_bits: 1024,
            seed_bytes: 16,
            prediction_resistance: false,
        };
        let make = || Drbg::new(DhTrng::builder().seed(77).build(), config);
        let mut a = make();
        let mut buf_a = vec![0u8; 1024];
        a.fill_bytes(&mut buf_a); // 8192 bits -> 8 intervals
        assert_eq!(a.reseeds(), 7, "one reseed per 1024-bit interval");
        // Determinism across runs, whatever the read slicing.
        let mut b = make();
        let mut buf_b = Vec::new();
        for size in [1usize, 63, 64, 500, 396] {
            let mut piece = vec![0u8; size];
            b.fill_bytes(&mut piece);
            buf_b.extend_from_slice(&piece);
        }
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    fn adaptor_bit_and_byte_paths_agree() {
        let config = DrbgConfig::default();
        let mut bits = Drbg::new(DhTrng::builder().seed(5).build(), config);
        let mut bytes = Drbg::new(DhTrng::builder().seed(5).build(), config);
        let reference: Vec<bool> = (0..256).map(|_| bits.next_bit()).collect();
        let mut buf = [0u8; 32];
        bytes.fill_bytes(&mut buf);
        let rebuilt: Vec<bool> = buf
            .iter()
            .flat_map(|&b| (0..8).rev().map(move |i| (b >> i) & 1 == 1))
            .collect();
        assert_eq!(reference, rebuilt);
    }

    #[test]
    fn prediction_resistance_consumes_source_per_block() {
        let config = DrbgConfig {
            prediction_resistance: true,
            seed_bytes: 8,
            ..DrbgConfig::default()
        };
        let mut drbg = Drbg::new(DhTrng::builder().seed(3).build(), config);
        let mut buf = vec![0u8; 4 * BLOCK_BYTES];
        drbg.fill_bytes(&mut buf);
        // Block 1 rides the instantiate material; blocks 2..4 reseed.
        assert_eq!(drbg.reseeds(), 3);
        assert!((drbg.config().expansion_factor() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn expansion_factor_matches_policy() {
        let default = DrbgConfig::default();
        assert!((default.expansion_factor() - (1 << 20) as f64 / 384.0).abs() < 1e-9);
    }

    #[test]
    fn hash_df_separates_domains_and_part_boundaries() {
        assert_ne!(hash_df(1, &[b"abc"]), hash_df(2, &[b"abc"]));
        assert_ne!(hash_df(1, &[b"ab", b"c"]), hash_df(1, &[b"a", b"bc"]));
    }

    #[test]
    #[should_panic(expected = "seed material")]
    fn empty_material_panics() {
        let _ = HashDrbg::instantiate(&[], DrbgConfig::default());
    }
}
