//! Multi-instance scaling — the paper's outlook of "substantial amounts
//! of encrypted data" served by replicating the 8-slice core.
//!
//! DH-TRNG's area-energy efficiency makes replication the natural path
//! past one instance's 620–670 Mbps: `k` instances emit `k` bits per
//! sampling clock with linear resource/power cost and (simulated)
//! independent noise per instance. [`DhTrngArray`] models that, keeping
//! the platform accounting (resources, slices, power, efficiency)
//! consistent with the single-instance models.

use dhtrng_fpga::{efficiency_metric, PowerBreakdown, ResourceReport};

use crate::trng::{DhTrng, DhTrngConfig, Trng};

/// A bank of `k` independent DH-TRNG instances producing `k` bits per
/// sampling-clock cycle (round-robin through [`Trng::next_bit`], or one
/// bit per instance per clock through [`DhTrngArray::clock_word`] — not
/// to be confused with [`Trng::next_word`], which is 64 round-robin
/// cycles of the bank).
///
/// # Example
///
/// ```
/// use dhtrng_core::{DhTrngArray, DhTrngConfig};
///
/// let mut bank = DhTrngArray::new(DhTrngConfig::default(), 8, 42);
/// let word = bank.clock_word();
/// assert!(word < 256); // 8 instances -> 8-bit words
/// assert!(bank.throughput_mbps() > 4000.0); // ~8 x 620 Mbps
/// ```
#[derive(Debug, Clone)]
pub struct DhTrngArray {
    instances: Vec<DhTrng>,
    cursor: usize,
}

impl DhTrngArray {
    /// Builds `k` instances from a shared configuration; instance `i`
    /// gets an independent noise seed derived from `seed` and `i`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or greater than 64 (words are returned in a
    /// `u64`).
    pub fn new(config: DhTrngConfig, k: usize, seed: u64) -> Self {
        assert!((1..=64).contains(&k), "array size must be 1..=64");
        let instances = (0..k)
            .map(|i| {
                let mut cfg = config.clone();
                cfg.seed = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64);
                DhTrng::new(cfg)
            })
            .collect();
        Self {
            instances,
            cursor: 0,
        }
    }

    /// Number of instances.
    pub fn width(&self) -> usize {
        self.instances.len()
    }

    /// One bit from every instance, packed little-endian (instance 0 in
    /// bit 0) — the per-clock output word of the bank.
    pub fn clock_word(&mut self) -> u64 {
        let mut word = 0u64;
        for (i, t) in self.instances.iter_mut().enumerate() {
            word |= u64::from(t.next_bit()) << i;
        }
        word
    }

    /// Aggregate throughput: `k` bits per sampling clock.
    pub fn throughput_mbps(&self) -> f64 {
        self.instances.iter().map(DhTrng::throughput_mbps).sum()
    }

    /// Aggregate cell resources (k x the single instance).
    pub fn resources(&self) -> ResourceReport {
        self.instances.iter().map(DhTrng::resources).sum()
    }

    /// Aggregate slice count.
    pub fn slices(&self) -> u32 {
        self.instances.iter().map(DhTrng::slices).sum()
    }

    /// Aggregate power: instance dynamic power scales linearly; the
    /// design-attributable static power is shared fabric overhead and is
    /// counted once.
    pub fn power(&self) -> PowerBreakdown {
        let per = self.instances[0].power();
        PowerBreakdown {
            static_w: per.static_w,
            dynamic_w: per.dynamic_w * self.instances.len() as f64,
        }
    }

    /// Bank-level `Throughput / (Slices x Power)`. Note this *decreases*
    /// roughly as `1/k` under replication (slices and power both scale
    /// with `k`): the paper's metric rewards per-core efficiency, which
    /// is exactly why a better core beats replicating a worse one.
    pub fn efficiency(&self) -> f64 {
        efficiency_metric(
            self.throughput_mbps(),
            self.slices(),
            self.power().total_w(),
        )
    }

    /// Energy efficiency in Mbps per watt — the figure that *improves*
    /// with replication while the shared static power amortises.
    pub fn throughput_per_watt(&self) -> f64 {
        self.throughput_mbps() / self.power().total_w()
    }

    /// Restarts every instance (power-cycle of the whole bank).
    pub fn restart(&mut self) {
        for t in &mut self.instances {
            t.restart();
        }
    }
}

impl Trng for DhTrngArray {
    /// Round-robins across the instances, so a bit-serial consumer sees
    /// the full bank rate.
    fn next_bit(&mut self) -> bool {
        let bit = self.instances[self.cursor].next_bit();
        self.cursor = (self.cursor + 1) % self.instances.len();
        bit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(k: usize) -> DhTrngArray {
        DhTrngArray::new(DhTrngConfig::default(), k, 99)
    }

    #[test]
    fn scaling_is_linear_in_width() {
        let one = bank(1);
        let eight = bank(8);
        assert_eq!(eight.width(), 8);
        assert!((eight.throughput_mbps() / one.throughput_mbps() - 8.0).abs() < 1e-9);
        assert_eq!(eight.slices(), 8 * one.slices());
        assert_eq!(eight.resources().luts, 8 * one.resources().luts);
    }

    #[test]
    fn energy_efficiency_improves_as_static_power_amortises() {
        let one = bank(1);
        let eight = bank(8);
        assert!(
            eight.throughput_per_watt() > one.throughput_per_watt(),
            "{} !> {}",
            eight.throughput_per_watt(),
            one.throughput_per_watt()
        );
        // The paper's slice-weighted metric, by contrast, rewards the
        // single core: replication divides it by ~k.
        assert!(eight.efficiency() < one.efficiency());
    }

    #[test]
    fn instances_are_independent() {
        let mut b = bank(2);
        // Deinterleave the round-robin stream back into two lanes.
        let bits = b.collect_bits(2048);
        let lane0: Vec<bool> = bits.iter().step_by(2).copied().collect();
        let lane1: Vec<bool> = bits.iter().skip(1).step_by(2).copied().collect();
        assert_ne!(lane0, lane1);
        let agree = lane0.iter().zip(&lane1).filter(|(a, b)| a == b).count();
        let frac = agree as f64 / lane0.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "lane agreement = {frac}");
    }

    #[test]
    fn words_are_balanced_per_lane() {
        let mut b = bank(8);
        let n = 20_000;
        let mut lane_ones = [0u32; 8];
        for _ in 0..n {
            let w = b.clock_word();
            for (lane, count) in lane_ones.iter_mut().enumerate() {
                *count += ((w >> lane) & 1) as u32;
            }
        }
        for (lane, &ones) in lane_ones.iter().enumerate() {
            let frac = f64::from(ones) / n as f64;
            assert!((frac - 0.5).abs() < 0.02, "lane {lane}: {frac}");
        }
    }

    #[test]
    fn restart_renews_every_lane() {
        let mut b = bank(4);
        let before = b.clock_word();
        b.restart();
        let after = b.clock_word();
        // 4-bit words collide with probability 1/16; draw a few to be sure.
        let mut differs = before != after;
        for _ in 0..4 {
            differs |= b.clock_word() != before;
        }
        assert!(differs);
    }

    #[test]
    #[should_panic(expected = "array size")]
    fn oversized_bank_panics() {
        let _ = bank(65);
    }
}
