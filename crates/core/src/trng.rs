//! The behavioural DH-TRNG generator and its builder.
//!
//! [`DhTrng`] is the fast cycle-accurate model: each call to
//! [`Trng::next_bit`] advances one sampling-clock cycle of the
//! architecture. Per cycle it follows the paper's Eq. 5 structure —
//! with probability `P_rand` (computed from the jitter, subthreshold-lock
//! and metastability physics of all 12 rings at the configured device,
//! clock and PVT corner) the sample captures a fresh random event;
//! otherwise it returns the deterministic XOR of the free-running ring
//! beat patterns. A small systematic sampler asymmetry (calibrated
//! against the paper's Table 4 silicon numbers, growing toward PVT
//! corners per the Figure 9 sweep) supplies the realistic residual bias.

use dhtrng_fpga::packer::{pack_design, Region};
use dhtrng_fpga::{
    efficiency_metric, ActivityProfile, Device, Placement, PowerBreakdown, PowerModel,
    ResourceReport, TimingModel,
};
use dhtrng_noise::jitter::JitterModel;
use dhtrng_noise::metastability::{MetastabilityModel, SubthresholdLock};
use dhtrng_noise::pvt::PvtCorner;
use dhtrng_noise::NoiseRng;
use dhtrng_sim::Netlist;

use crate::architecture::{dh_trng_netlist, NetlistPorts};
use crate::batch::BlockKernel;
use crate::model::{
    eq5_randomness_coverage, BeatOscillator, GroupCalibration, RingKind, RingPhysics,
};

/// A generator of true-random bits (one bit per architecture clock).
///
/// Implemented by [`DhTrng`], [`HybridUnitGroup`], and every baseline
/// architecture in `dhtrng-baselines`.
///
/// # Batched generation
///
/// [`next_bit`](Self::next_bit) is the per-cycle primitive; everything
/// else routes through the block-oriented [`next_bits`](Self::next_bits)
/// / [`next_word`](Self::next_word) path, so an implementation that
/// overrides `next_bits` (and, for long buffers,
/// [`fill_bytes`](Self::fill_bytes)) with a hoisted-state kernel — see
/// [`batch::BlockKernel`](crate::batch::BlockKernel) — accelerates every
/// consumer for free. Whatever the path, the bit stream is identical:
/// bit `k` of the generator is bit `k` of the generator, however it is
/// packed.
pub trait Trng {
    /// Produces the next output bit.
    fn next_bit(&mut self) -> bool;

    /// Produces the next `n` bits (`1..=64` clock cycles), oldest bit
    /// first: the first cycle lands in bit `n - 1`, the newest in bit 0.
    ///
    /// The default loops over [`next_bit`](Self::next_bit); batched
    /// implementations override it.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n <= 64`.
    fn next_bits(&mut self, n: u32) -> u64 {
        crate::batch::pack_bits(n, || self.next_bit())
    }

    /// Produces the next 64-cycle word, oldest bit in the MSB.
    fn next_word(&mut self) -> u64 {
        self.next_bits(64)
    }

    /// Produces the next byte (eight clock cycles, MSB first).
    fn next_byte(&mut self) -> u8 {
        self.next_bits(8) as u8
    }

    /// Fills a byte buffer with fresh random bytes, eight bytes per
    /// [`next_word`](Self::next_word) call.
    fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in chunks.by_ref() {
            chunk.copy_from_slice(&self.next_word().to_be_bytes());
        }
        for slot in chunks.into_remainder() {
            *slot = self.next_byte();
        }
    }

    /// Collects `n` bits into a vector, routed through
    /// [`fill_bytes`](Self::fill_bytes) so batched implementations pay
    /// one block setup per call, not per word.
    fn collect_bits(&mut self, n: usize) -> Vec<bool> {
        let mut bytes = vec![0u8; n / 8];
        self.fill_bytes(&mut bytes);
        let mut bits = Vec::with_capacity(n);
        for byte in bytes {
            bits.extend((0..8).rev().map(|i| (byte >> i) & 1 == 1));
        }
        let tail = (n % 8) as u32;
        if tail > 0 {
            let word = self.next_bits(tail);
            bits.extend((0..tail).rev().map(|i| (word >> i) & 1 == 1));
        }
        bits
    }
}

/// Configuration of a [`DhTrng`] instance.
#[derive(Debug, Clone)]
pub struct DhTrngConfig {
    /// Target device (delays, power constants, process).
    pub device: Device,
    /// Operating corner.
    pub corner: PvtCorner,
    /// Noise seed (reproducibility of the simulated physics).
    pub seed: u64,
    /// Coupling strategy enabled (paper §3.2, Fig. 4a).
    pub coupling: bool,
    /// Feedback strategy enabled (paper §3.2, Fig. 4b).
    pub feedback: bool,
    /// Sampling clock in Hz; `None` uses the device's maximum (the
    /// paper's 670 MHz on Virtex-6 / 620 MHz on Artix-7).
    pub sampling_hz: Option<f64>,
}

impl Default for DhTrngConfig {
    fn default() -> Self {
        Self {
            device: Device::artix7(),
            corner: PvtCorner::nominal(),
            seed: 0,
            coupling: true,
            feedback: true,
            sampling_hz: None,
        }
    }
}

/// Builder for [`DhTrng`].
///
/// # Example
///
/// ```
/// use dhtrng_core::DhTrng;
/// use dhtrng_fpga::Device;
/// use dhtrng_noise::PvtCorner;
///
/// let trng = DhTrng::builder()
///     .device(Device::virtex6())
///     .corner(PvtCorner::new(80.0, 1.2))
///     .seed(7)
///     .build();
/// assert!(trng.throughput_mbps() > 400.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DhTrngBuilder {
    config: DhTrngConfig,
}

impl DhTrngBuilder {
    /// Target device.
    #[must_use]
    pub fn device(mut self, device: Device) -> Self {
        self.config.device = device;
        self
    }

    /// Operating corner.
    #[must_use]
    pub fn corner(mut self, corner: PvtCorner) -> Self {
        self.config.corner = corner;
        self
    }

    /// Noise seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Enables/disables the coupling strategy (ablation).
    #[must_use]
    pub fn coupling(mut self, on: bool) -> Self {
        self.config.coupling = on;
        self
    }

    /// Enables/disables the feedback strategy (ablation).
    #[must_use]
    pub fn feedback(mut self, on: bool) -> Self {
        self.config.feedback = on;
        self
    }

    /// Overrides the sampling clock (Hz).
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not strictly positive.
    #[must_use]
    pub fn sampling_hz(mut self, hz: f64) -> Self {
        assert!(hz > 0.0, "sampling clock must be positive");
        self.config.sampling_hz = Some(hz);
        self
    }

    /// Builds the generator.
    pub fn build(self) -> DhTrng {
        DhTrng::new(self.config)
    }
}

/// Feedback phase-kick strength (fraction of a beat period).
const FEEDBACK_KICK: f64 = 0.3;
/// Per-ring feedback kick multipliers: fixed incommensurate fractions
/// (golden-ratio schedule) keeping the per-ring kicks mutually
/// decorrelated. Index `i` is ring `i` of the 12-ring bank.
fn feedback_kick_multipliers() -> [f64; 12] {
    let mut mults = [0.0; 12];
    for (i, slot) in mults.iter_mut().enumerate() {
        *slot = (0.3 + 0.618_034 * (i as f64 + 1.0)).fract();
    }
    mults
}
/// Additive bias penalties for the ablations (residual structure when a
/// reinforcement strategy is disabled). No silicon data exists for these
/// (the paper always runs both strategies); the values are chosen so the
/// ablations are clearly visible to the estimators without being
/// catastrophic.
const NO_COUPLING_BIAS_ADD: f64 = 7.5e-4;
const NO_FEEDBACK_BIAS_ADD: f64 = 4.0e-4;
/// PVT-corner asymmetry to sampler-bias coupling (calibrated so the
/// Figure 9 worst corner lands near h = 0.973).
const ASYMMETRY_BIAS_GAIN: f64 = 0.30;

/// Residual sampler bias at the nominal corner, per device process —
/// calibrated against the paper's §4.3 deviation test (Eq. 6 bias of
/// 0.0075 % on Virtex-6 and 0.0069 % on Artix-7, i.e. |p - 1/2| of
/// 3.75e-5 / 3.45e-5; Table 4's MCV p-max of ~0.5014 is then almost
/// entirely the 1 Mbit estimator confidence floor, as on the silicon).
fn nominal_bias(device: &Device) -> f64 {
    match device.process.nm {
        45 => 3.75e-5,
        28 => 3.45e-5,
        // Unknown process: between the two measured devices.
        _ => 3.6e-5,
    }
}

/// The DH-TRNG behavioural generator. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct DhTrng {
    config: DhTrngConfig,
    rng: NoiseRng,
    beats: Vec<BeatOscillator>,
    p_rand: f64,
    bias: f64,
    sampling_hz: f64,
    ring_periods: RingPeriods,
    restarts: u64,
}

/// Nominal ring periods at the built corner (seconds).
#[derive(Debug, Clone, Copy)]
struct RingPeriods {
    ro1: f64,
    ro2: f64,
    central: f64,
}

impl DhTrng {
    /// Starts building a generator.
    pub fn builder() -> DhTrngBuilder {
        DhTrngBuilder::default()
    }

    /// Creates a generator from an explicit configuration.
    pub fn new(config: DhTrngConfig) -> Self {
        let factors = config.device.process.factors(config.corner);
        let stage = config.device.stage_delay_s() * factors.delay;
        let mux = config.device.net_delay_s * factors.delay;
        let periods = RingPeriods {
            ro1: 6.0 * stage,         // 3-stage ring
            ro2: 2.0 * (stage + mux), // inverter + MUX loop
            central: 10.0 * stage,    // through-coupling ring
        };
        let sampling_hz = config
            .sampling_hz
            .unwrap_or_else(|| TimingModel::max_frequency_hz(&config.device, 2, config.corner));
        let t_sample = 1.0 / sampling_hz;

        // Eq. 5 coverage over the 12 rings at this corner.
        let meta = MetastabilityModel::fpga_dff().scaled(factors.metastability);
        let lock = SubthresholdLock::dh_trng_nominal();
        let ring = |kind: RingKind, period: f64| RingPhysics {
            kind,
            period,
            jitter: JitterModel::fpga_ring_oscillator(period).scaled(factors.jitter),
            meta,
            lock,
        };
        let central_kind = if config.coupling {
            RingKind::CentralRing
        } else {
            RingKind::JitterRing
        };
        let mut coverages = Vec::with_capacity(12);
        for _cell in 0..2 {
            for _unit in 0..2 {
                coverages.push(ring(RingKind::JitterRing, periods.ro1).coverage(t_sample));
                coverages.push(ring(RingKind::HybridRing, periods.ro2).coverage(t_sample));
            }
            for _central in 0..2 {
                coverages.push(ring(central_kind, periods.central).coverage(t_sample));
            }
        }
        let p_rand = eq5_randomness_coverage(&coverages);

        // Residual sampler bias: nominal calibration, scaled up by the
        // ablations and by the PVT asymmetry.
        let mut bias = nominal_bias(&config.device) + ASYMMETRY_BIAS_GAIN * factors.asymmetry;
        if !config.coupling {
            bias += NO_COUPLING_BIAS_ADD;
        }
        if !config.feedback {
            bias += NO_FEEDBACK_BIAS_ADD;
        }

        let mut trng = Self {
            config,
            rng: NoiseRng::seed_from_u64(0),
            beats: Vec::new(),
            p_rand,
            bias,
            sampling_hz,
            ring_periods: periods,
            restarts: 0,
        };
        trng.power_up(0);
        trng
    }

    /// (Re-)derives the power-up state for restart number `restart`.
    fn power_up(&mut self, restart: u64) {
        let mut rng = NoiseRng::seed_from_u64(self.config.seed);
        let mut rng = rng.fork(&format!("restart-{restart}"));
        let t_sample = 1.0 / self.sampling_hz;
        let periods = [
            self.ring_periods.ro1,
            self.ring_periods.ro2,
            self.ring_periods.central,
        ];
        self.beats = (0..12)
            .map(|i| {
                let base = periods[i % 3];
                // Manufacturing mismatch: each ring instance deviates a
                // little, which is what makes the beat increments
                // incommensurate across rings.
                let mismatch = 1.0 + 0.02 * (rng.uniform() - 0.5);
                let increment = (t_sample / (base * mismatch)).rem_euclid(1.0);
                BeatOscillator::new(rng.uniform(), increment, 0.5)
            })
            .collect();
        self.rng = rng;
        self.restarts = restart;
    }

    /// Models a power-cycle: fresh metastable power-up state, as in the
    /// paper's §4.2 restart test. The noise seed is preserved but the
    /// startup conditions differ per restart.
    pub fn restart(&mut self) {
        self.power_up(self.restarts + 1);
    }

    /// Number of restarts performed.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// The configuration this generator was built with.
    pub fn config(&self) -> &DhTrngConfig {
        &self.config
    }

    /// Per-sample randomness coverage (the paper's Eq. 5 `P_rand`) at the
    /// built corner and clock.
    pub fn randomness_coverage(&self) -> f64 {
        self.p_rand
    }

    /// Residual sampler bias of the model at this corner.
    pub fn residual_bias(&self) -> f64 {
        self.bias
    }

    /// The sampling clock in Hz.
    pub fn sampling_hz(&self) -> f64 {
        self.sampling_hz
    }

    /// Throughput in Mbps (one bit per cycle).
    pub fn throughput_mbps(&self) -> f64 {
        self.sampling_hz / 1e6
    }

    /// Cell-level resource usage (the paper's 23 LUTs + 4 MUXes + 14
    /// DFFs).
    pub fn resources(&self) -> ResourceReport {
        let (nl, _) = self.netlist();
        let r = nl.resources();
        ResourceReport::new(r.luts, r.muxes, r.dffs)
    }

    /// Packed slice count under the paper's typed-placement constraints
    /// (8 slices).
    pub fn slices(&self) -> u32 {
        pack_design(
            &Region::dh_trng_reference(),
            self.config.device.slice_spec(),
        )
        .total_slices
    }

    /// The compact square placement of Fig. 5(b), anchored at `origin`.
    pub fn placement(&self, origin: (u32, u32)) -> Placement {
        Placement::compact_square(&[("entropy", 5), ("sampling", 2), ("feedback", 1)], origin)
    }

    /// Power at the built corner, from the device's calibrated CV²f
    /// model over the architecture's switching activity.
    pub fn power(&self) -> PowerBreakdown {
        let mut activity = ActivityProfile::new();
        // 4 RO1 rings x 3 nodes, toggling twice per period.
        activity.add(12, 2.0 / self.ring_periods.ro1);
        // 4 RO2 rings x 2 nodes.
        activity.add(8, 2.0 / self.ring_periods.ro2);
        // 4 central XOR nodes switch at edge-ring activity rates.
        activity.add(4, 2.0 / self.ring_periods.ro1);
        // Sampling array: 14 DFFs + 3 LUTs at the sampling clock (output
        // toggles about half the time -> one transition per cycle).
        activity.add(17, self.sampling_hz);
        PowerModel::power(&self.config.device, &activity, self.config.corner)
    }

    /// The paper's headline metric `Throughput / (Slices x Power)`.
    pub fn efficiency(&self) -> f64 {
        efficiency_metric(
            self.throughput_mbps(),
            self.slices(),
            self.power().total_w(),
        )
    }

    /// Emits the gate-level netlist of this configuration (for the
    /// event-driven simulator).
    pub fn netlist(&self) -> (Netlist, NetlistPorts) {
        dh_trng_netlist(&self.config.device)
    }

    /// Builds the batched block kernel over the current generator state
    /// (always succeeds for the 12-ring bank; `None` only if the bank
    /// ever outgrew the kernel capacity).
    fn kernel(&self) -> Option<BlockKernel> {
        let mults = feedback_kick_multipliers();
        let feedback = self.config.feedback.then_some((FEEDBACK_KICK, &mults[..]));
        BlockKernel::new(&self.beats, self.p_rand, self.bias, feedback)
    }

    /// Suspends the generator into a [`Lane`](crate::slice::Lane)
    /// snapshot for the bit-sliced kernel: beat bank, calibrated
    /// probabilities, feedback strategy, and the exact noise-stream
    /// position. A [`SlicedKernel`](crate::slice::SlicedKernel) lane
    /// loaded from this continues the generator's output stream
    /// bit-identically.
    pub fn slice_lane(&self) -> crate::slice::Lane {
        let feedback = self
            .config
            .feedback
            .then(|| (FEEDBACK_KICK, feedback_kick_multipliers().to_vec()));
        crate::slice::Lane::new(
            self.beats.clone(),
            self.p_rand,
            self.bias,
            feedback,
            self.rng.state(),
        )
    }
}

impl Default for DhTrng {
    fn default() -> Self {
        Self::builder().build()
    }
}

impl Trng for DhTrng {
    fn next_bit(&mut self) -> bool {
        // Free-running rings advance every cycle regardless of whether
        // the sample captures a random event.
        let mut beat_xor = false;
        for beat in &mut self.beats {
            beat_xor ^= beat.step();
        }
        let mut bit = if self.rng.bernoulli(self.p_rand) {
            // Eq. 5 event: jitter-window hit, subthreshold lock, or
            // metastable capture somewhere among the 12 rings.
            self.rng.bernoulli(0.5)
        } else {
            beat_xor
        };
        // Systematic sampler asymmetry (threshold mismatch): a small
        // probability of mis-capturing a 0 as a 1.
        if !bit && self.rng.bernoulli(2.0 * self.bias) {
            bit = true;
        }
        // Feedback strategy: the output re-randomises the ring phases.
        // One noise draw per cycle, spread over the rings with fixed
        // incommensurate multipliers (cheap, and the per-ring kicks stay
        // mutually decorrelated).
        if self.config.feedback && bit {
            let kick = FEEDBACK_KICK * self.rng.uniform();
            let mults = feedback_kick_multipliers();
            for (beat, &mult) in self.beats.iter_mut().zip(&mults) {
                beat.kick(kick * mult);
            }
        }
        bit
    }

    fn next_bits(&mut self, n: u32) -> u64 {
        match self.kernel() {
            Some(mut kernel) => {
                let word = kernel.next_bits(&mut self.rng, n);
                kernel.write_back(&mut self.beats);
                word
            }
            None => per_bit_fallback(self, n),
        }
    }

    fn fill_bytes(&mut self, buf: &mut [u8]) {
        // Block fast path: one kernel build per buffer, not per word.
        let Some(mut kernel) = self.kernel() else {
            fill_bytes_fallback(self, buf);
            return;
        };
        kernel.fill_bytes(&mut self.rng, buf);
        kernel.write_back(&mut self.beats);
    }
}

/// Per-bit `next_bits` for generators whose beat bank exceeds the
/// kernel capacity (never the in-tree ones; correctness backstop).
fn per_bit_fallback<T: Trng + ?Sized>(trng: &mut T, n: u32) -> u64 {
    crate::batch::pack_bits(n, || trng.next_bit())
}

/// Per-bit `fill_bytes` companion to [`per_bit_fallback`].
fn fill_bytes_fallback<T: Trng + ?Sized>(trng: &mut T, buf: &mut [u8]) {
    for slot in buf {
        *slot = per_bit_fallback(trng, 8) as u8;
    }
}

/// [`rand::RngCore`] integration: a DH-TRNG can drive anything in the
/// `rand` ecosystem (shuffles, distributions, other generators' seeds).
impl rand::RngCore for DhTrng {
    fn next_u32(&mut self) -> u32 {
        // One kernel build for the whole word (same stream as four
        // MSB-first bytes).
        self.next_bits(32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        Trng::next_word(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        Trng::fill_bytes(self, dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        Trng::fill_bytes(self, dest);
        Ok(())
    }
}

/// An XOR-combined group of `n` entropy sources at the paper's 100 MHz
/// characterisation clock — the generator behind Table 2 (and, through
/// `dhtrng-baselines`, Table 1).
///
/// Uses the [`GroupCalibration`] fits: residual bias `b0 * rho^n` and
/// Eq. 5 coverage `1 - (1 - r)^n`.
#[derive(Debug, Clone)]
pub struct HybridUnitGroup {
    calibration: GroupCalibration,
    n: u32,
    p_rand: f64,
    bias: f64,
    beats: Vec<BeatOscillator>,
    rng: NoiseRng,
}

impl HybridUnitGroup {
    /// A group of `n` dynamic hybrid entropy units (Table 2, row 1).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn hybrid(n: u32, seed: u64) -> Self {
        Self::from_calibration(GroupCalibration::hybrid_units(), n, seed)
    }

    /// A group of `n` 9-stage ring oscillators (Table 2, row 2).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn nine_stage_ro(n: u32, seed: u64) -> Self {
        Self::from_calibration(GroupCalibration::nine_stage_ros(), n, seed)
    }

    /// A group from an explicit calibration.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn from_calibration(calibration: GroupCalibration, n: u32, seed: u64) -> Self {
        assert!(n > 0, "a source group needs at least one source");
        let mut rng = NoiseRng::seed_from_u64(seed);
        let beats = (0..n)
            .map(|_| {
                // 9-stage-ish rings at a 100 MHz sampling clock: the beat
                // increment is the fractional clock/ring ratio.
                let period = 6.2e-9 * (1.0 + 0.03 * (rng.uniform() - 0.5));
                BeatOscillator::new(rng.uniform(), (10.0e-9 / period).rem_euclid(1.0), 0.5)
            })
            .collect();
        Self {
            calibration,
            n,
            p_rand: calibration.p_rand(n),
            bias: calibration.bias(n),
            beats,
            rng,
        }
    }

    /// Number of XORed sources.
    pub fn sources(&self) -> u32 {
        self.n
    }

    /// The group's Eq. 5 coverage.
    pub fn randomness_coverage(&self) -> f64 {
        self.p_rand
    }

    /// The group's calibrated residual bias.
    pub fn residual_bias(&self) -> f64 {
        self.bias
    }

    /// The calibration behind this group.
    pub fn calibration(&self) -> GroupCalibration {
        self.calibration
    }
}

impl Trng for HybridUnitGroup {
    fn next_bit(&mut self) -> bool {
        let mut beat_xor = false;
        for beat in &mut self.beats {
            beat_xor ^= beat.step();
        }
        let mut bit = if self.rng.bernoulli(self.p_rand) {
            self.rng.bernoulli(0.5)
        } else {
            beat_xor
        };
        if !bit && self.rng.bernoulli(2.0 * self.bias) {
            bit = true;
        }
        bit
    }

    fn next_bits(&mut self, n: u32) -> u64 {
        match BlockKernel::new(&self.beats, self.p_rand, self.bias, None) {
            Some(mut kernel) => {
                let word = kernel.next_bits(&mut self.rng, n);
                kernel.write_back(&mut self.beats);
                word
            }
            None => per_bit_fallback(self, n),
        }
    }

    fn fill_bytes(&mut self, buf: &mut [u8]) {
        let Some(mut kernel) = BlockKernel::new(&self.beats, self.p_rand, self.bias, None) else {
            fill_bytes_fallback(self, buf);
            return;
        };
        kernel.fill_bytes(&mut self.rng, buf);
        kernel.write_back(&mut self.beats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ones_fraction(trng: &mut dyn Trng, n: usize) -> f64 {
        (0..n).filter(|_| trng.next_bit()).count() as f64 / n as f64
    }

    #[test]
    fn default_config_matches_paper_operating_point() {
        let trng = DhTrng::default();
        assert!((trng.throughput_mbps() - 620.0).abs() < 15.0);
        let r = trng.resources();
        assert_eq!((r.luts, r.muxes, r.dffs), (23, 4, 14));
        assert_eq!(trng.slices(), 8);
        let p = trng.power().total_w();
        assert!((p - 0.068).abs() < 0.005, "A7 power = {p}");
        let eff = trng.efficiency();
        assert!(eff > 1000.0, "efficiency = {eff}");
    }

    #[test]
    fn virtex6_operating_point() {
        let trng = DhTrng::builder().device(Device::virtex6()).build();
        assert!((trng.throughput_mbps() - 670.0).abs() < 15.0);
        let p = trng.power().total_w();
        assert!((p - 0.126).abs() < 0.008, "V6 power = {p}");
    }

    #[test]
    fn output_is_roughly_balanced() {
        let mut trng = DhTrng::builder().seed(1).build();
        let frac = ones_fraction(&mut trng, 200_000);
        assert!((frac - 0.5).abs() < 0.01, "ones fraction = {frac}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = DhTrng::builder().seed(9).build();
        let mut b = DhTrng::builder().seed(9).build();
        assert_eq!(a.collect_bits(1000), b.collect_bits(1000));
        let mut c = DhTrng::builder().seed(10).build();
        assert_ne!(a.collect_bits(1000), c.collect_bits(1000));
    }

    #[test]
    fn restart_changes_first_word_like_paper_section_4_2() {
        let mut trng = DhTrng::builder().seed(5).build();
        let mut words = Vec::new();
        for _ in 0..6 {
            let bits = trng.collect_bits(32);
            let word = bits.iter().fold(0u32, |w, &b| (w << 1) | u32::from(b));
            words.push(word);
            trng.restart();
        }
        assert_eq!(trng.restarts(), 6);
        let mut sorted = words.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6, "all restart words distinct: {words:08X?}");
    }

    #[test]
    fn coverage_is_high_at_nominal_corner() {
        let trng = DhTrng::default();
        let p = trng.randomness_coverage();
        assert!(p > 0.6 && p <= 1.0, "Eq.5 coverage = {p}");
    }

    #[test]
    fn ablations_increase_bias_and_reduce_coverage() {
        let full = DhTrng::builder().seed(1).build();
        let no_coupling = DhTrng::builder().seed(1).coupling(false).build();
        let no_feedback = DhTrng::builder().seed(1).feedback(false).build();
        assert!(no_coupling.residual_bias() > full.residual_bias());
        assert!(no_feedback.residual_bias() > full.residual_bias());
        assert!(no_coupling.randomness_coverage() < full.randomness_coverage());
    }

    #[test]
    fn corner_conditions_raise_bias() {
        let nominal = DhTrng::builder().seed(1).build();
        let corner = DhTrng::builder()
            .seed(1)
            .corner(PvtCorner::new(-20.0, 0.8))
            .build();
        assert!(corner.residual_bias() > nominal.residual_bias());
    }

    #[test]
    fn slower_sampling_increases_coverage() {
        let fast = DhTrng::builder().seed(1).build();
        let slow = DhTrng::builder().seed(1).sampling_hz(100.0e6).build();
        assert!(slow.randomness_coverage() > fast.randomness_coverage());
        assert!((slow.throughput_mbps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn trait_helpers_work() {
        let mut trng = DhTrng::builder().seed(2).build();
        let mut buf = [0u8; 64];
        trng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let bits = trng.collect_bits(12);
        assert_eq!(bits.len(), 12);
    }

    #[test]
    fn unit_group_bias_ordering_matches_table2() {
        // The hybrid group must beat the 9-stage RO group at every XOR
        // order, and both must improve with more sources.
        for n in 9..=18 {
            let dh = HybridUnitGroup::hybrid(n, 1);
            let ro = HybridUnitGroup::nine_stage_ro(n, 1);
            assert!(dh.residual_bias() < ro.residual_bias(), "n = {n}");
        }
        let small = HybridUnitGroup::hybrid(9, 1);
        let large = HybridUnitGroup::hybrid(18, 1);
        assert!(large.residual_bias() < small.residual_bias());
        assert!(large.randomness_coverage() > small.randomness_coverage());
    }

    #[test]
    fn unit_group_generates_balanced_bits() {
        let mut g = HybridUnitGroup::hybrid(12, 3);
        let frac = ones_fraction(&mut g, 100_000);
        assert!((frac - 0.5).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn empty_group_panics() {
        let _ = HybridUnitGroup::hybrid(0, 1);
    }

    /// Collects `n` bits strictly through the per-bit reference path.
    fn reference_bits<T: Trng>(trng: &mut T, n: usize) -> Vec<bool> {
        (0..n).map(|_| trng.next_bit()).collect()
    }

    #[test]
    fn batched_word_path_is_bit_identical_to_next_bit() {
        // Feedback on and off exercise both kernel branches.
        for feedback in [true, false] {
            let mut per_bit = DhTrng::builder().seed(21).feedback(feedback).build();
            let mut batched = per_bit.clone();
            let reference = reference_bits(&mut per_bit, 256);
            let mut bits = Vec::new();
            for _ in 0..4 {
                let word = Trng::next_word(&mut batched);
                bits.extend((0..64).rev().map(|i| (word >> i) & 1 == 1));
            }
            assert_eq!(bits, reference, "feedback = {feedback}");
            // Both generators keep agreeing afterwards: the kernel left
            // the beat bank and the noise stream in the same state.
            assert_eq!(
                reference_bits(&mut per_bit, 64),
                reference_bits(&mut batched, 64)
            );
        }
    }

    #[test]
    fn batched_fill_bytes_matches_per_bit_bytes() {
        let mut per_bit = DhTrng::builder().seed(33).build();
        let mut batched = per_bit.clone();
        // 1035 is deliberately not a multiple of 8: the word chunks and
        // the byte tail both run.
        let reference: Vec<u8> = (0..1035)
            .map(|_| {
                let mut byte = 0u8;
                for _ in 0..8 {
                    byte = (byte << 1) | u8::from(per_bit.next_bit());
                }
                byte
            })
            .collect();
        let mut buf = vec![0u8; 1035];
        batched.fill_bytes(&mut buf);
        assert_eq!(buf, reference);
    }

    #[test]
    fn batched_collect_bits_matches_per_bit() {
        let mut per_bit = DhTrng::builder().seed(44).build();
        let mut batched = per_bit.clone();
        // 1000 exercises the 64-bit chunks and the 40-bit tail.
        assert_eq!(
            batched.collect_bits(1000),
            reference_bits(&mut per_bit, 1000)
        );
    }

    #[test]
    fn unit_group_batched_paths_match_per_bit() {
        for group in [
            HybridUnitGroup::hybrid(12, 7),
            HybridUnitGroup::nine_stage_ro(18, 8),
        ] {
            let mut per_bit = group.clone();
            let mut batched = group;
            let reference = reference_bits(&mut per_bit, 500);
            assert_eq!(batched.collect_bits(500), reference);
        }
    }

    #[test]
    fn next_bits_boundary_sizes() {
        let mut a = DhTrng::builder().seed(55).build();
        let mut b = a.clone();
        let one = a.next_bits(1);
        assert_eq!(one & !1, 0, "a single bit fits in bit 0");
        assert_eq!(one == 1, b.next_bit());
        let word = a.next_bits(64);
        let reference = reference_bits(&mut b, 64)
            .iter()
            .fold(0u64, |w, &bit| (w << 1) | u64::from(bit));
        assert_eq!(word, reference);
    }

    #[test]
    #[should_panic(expected = "next_bits takes 1..=64")]
    fn next_bits_rejects_oversized_requests() {
        let _ = DhTrng::builder().seed(1).build().next_bits(65);
    }

    #[test]
    fn rng_core_integration() {
        use rand::Rng;
        let mut trng = DhTrng::builder().seed(3).build();
        // Drive a rand-ecosystem API end to end.
        let die: u8 = trng.gen_range(1..=6);
        assert!((1..=6).contains(&die));
        let mut buf = [0u8; 16];
        rand::RngCore::fill_bytes(&mut trng, &mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        // Word paths agree with the bit path.
        let mut a = DhTrng::builder().seed(8).build();
        let mut b = DhTrng::builder().seed(8).build();
        let w = rand::RngCore::next_u32(&mut a);
        let bits = b.collect_bits(32);
        let rebuilt = bits.iter().fold(0u32, |acc, &x| (acc << 1) | u32::from(x));
        assert_eq!(w, rebuilt);
    }
}
