//! Post-processing stages — implemented to *demonstrate the paper's
//! headline that DH-TRNG needs none of them*.
//!
//! A weak entropy source ships with a corrector that trades throughput
//! for quality (Fig. 1(a)'s optional last stage). The three classics are
//! here: Von Neumann debiasing, XOR decimation, and LFSR whitening.
//! `examples/` and the ablation tests use them to show that (a) a biased
//! source is rescued at a large throughput cost, and (b) running them on
//! DH-TRNG output costs throughput while leaving the (already maximal)
//! entropy unchanged — which is why the paper's design omits the stage.
//!
//! The wrappers here are thin shells over the composable machines in
//! [`conditioning`](crate::conditioning) — one implementation serves
//! both this demonstration role and the production conditioning tier of
//! the streaming pipeline. Use [`Conditioned`] directly to mount any
//! [`Conditioner`](crate::conditioning::Conditioner) (including the
//! compressing [`CrcWhitener`](crate::conditioning::CrcWhitener)) on
//! any source.

use crate::conditioning::{Conditioned, LfsrConditioner, VonNeumannConditioner, XorFold};
use crate::trng::Trng;

/// Von Neumann corrector: consumes bit pairs, emits the second bit of
/// an unequal pair, discards `00`/`11`. Removes all bias from an
/// independent source at the cost of a 4x+ throughput reduction.
#[derive(Debug, Clone)]
pub struct VonNeumann<T> {
    inner: Conditioned<T, VonNeumannConditioner>,
}

impl<T: Trng> VonNeumann<T> {
    /// Wraps a source.
    pub fn new(inner: T) -> Self {
        Self {
            inner: Conditioned::new(inner, VonNeumannConditioner::new()),
        }
    }

    /// Raw bits consumed so far.
    pub fn consumed(&self) -> u64 {
        self.inner.consumed()
    }

    /// Corrected bits emitted so far.
    pub fn emitted(&self) -> u64 {
        self.inner.emitted()
    }

    /// Measured throughput cost: raw bits consumed per output bit
    /// (4.0 for an unbiased independent source, worse when biased).
    pub fn cost(&self) -> f64 {
        self.inner.measured_ratio()
    }

    /// Unwraps the inner source (see
    /// [`Conditioned::into_inner`] for the word-granularity caveat).
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: Trng> Trng for VonNeumann<T> {
    fn next_bit(&mut self) -> bool {
        self.inner.next_bit()
    }
}

/// XOR decimator: each output bit is the XOR of `factor` raw bits.
/// Reduces bias by the piling-up lemma (paper Eq. 4) at a linear
/// throughput cost.
#[derive(Debug, Clone)]
pub struct XorDecimator<T> {
    inner: Conditioned<T, XorFold>,
}

impl<T: Trng> XorDecimator<T> {
    /// Wraps a source with the given decimation factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn new(inner: T, factor: u32) -> Self {
        Self {
            inner: Conditioned::new(inner, XorFold::new(factor)),
        }
    }

    /// The decimation factor (= raw bits per output bit).
    pub fn factor(&self) -> u32 {
        self.inner.conditioner().factor()
    }

    /// Unwraps the inner source (see
    /// [`Conditioned::into_inner`] for the word-granularity caveat).
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: Trng> Trng for XorDecimator<T> {
    fn next_bit(&mut self) -> bool {
        self.inner.next_bit()
    }
}

/// LFSR whitener: raw bits are XORed into a Fibonacci LFSR
/// (x^16 + x^14 + x^13 + x^11 + 1); the output is the register's tap.
/// Spreads local structure without reducing rate — but also without
/// adding entropy (a purely cosmetic stage, which is why the statistical
/// batteries in this workspace are run on *raw* output only).
#[derive(Debug, Clone)]
pub struct LfsrWhitener<T> {
    inner: Conditioned<T, LfsrConditioner>,
}

impl<T: Trng> LfsrWhitener<T> {
    /// Wraps a source (non-zero initial register).
    pub fn new(inner: T) -> Self {
        Self {
            inner: Conditioned::new(inner, LfsrConditioner::new()),
        }
    }

    /// Unwraps the inner source (see
    /// [`Conditioned::into_inner`] for the word-granularity caveat).
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: Trng> Trng for LfsrWhitener<T> {
    fn next_bit(&mut self) -> bool {
        self.inner.next_bit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtrng_noise::NoiseRng;

    /// A tunable biased source for the tests.
    struct Biased {
        rng: NoiseRng,
        p_one: f64,
    }

    impl Trng for Biased {
        fn next_bit(&mut self) -> bool {
            self.rng.bernoulli(self.p_one)
        }
    }

    fn biased(p: f64, seed: u64) -> Biased {
        Biased {
            rng: NoiseRng::seed_from_u64(seed),
            p_one: p,
        }
    }

    fn ones_fraction<T: Trng>(t: &mut T, n: usize) -> f64 {
        (0..n).filter(|_| t.next_bit()).count() as f64 / n as f64
    }

    #[test]
    fn von_neumann_removes_bias_completely() {
        let mut vn = VonNeumann::new(biased(0.7, 1));
        let frac = ones_fraction(&mut vn, 100_000);
        assert!((frac - 0.5).abs() < 0.006, "frac = {frac}");
    }

    #[test]
    fn von_neumann_cost_matches_theory() {
        // For p = 0.7: P(accept pair) = 2pq = 0.42 -> cost = 2/0.42 = 4.76.
        let mut vn = VonNeumann::new(biased(0.7, 2));
        let _ = ones_fraction(&mut vn, 50_000);
        assert!((vn.cost() - 4.76).abs() < 0.15, "cost = {}", vn.cost());
        // Unbiased source: cost -> 4.0.
        let mut vn = VonNeumann::new(biased(0.5, 3));
        let _ = ones_fraction(&mut vn, 50_000);
        assert!((vn.cost() - 4.0).abs() < 0.1, "cost = {}", vn.cost());
    }

    #[test]
    fn xor_decimation_follows_piling_up() {
        // bias 0.2 (p = 0.7); after XOR-4 the bias is 2^3 * 0.2^4 = 0.0128.
        let mut x4 = XorDecimator::new(biased(0.7, 4), 4);
        let frac = ones_fraction(&mut x4, 400_000);
        let bias = (frac - 0.5).abs();
        assert!((bias - 0.0128).abs() < 0.004, "bias = {bias}");
    }

    #[test]
    fn lfsr_whitener_balances_structured_input() {
        // A heavily periodic source looks balanced after whitening (but
        // carries no more entropy than before, hence "cosmetic").
        struct Period6(u64);
        impl Trng for Period6 {
            fn next_bit(&mut self) -> bool {
                self.0 += 1;
                (self.0 / 3) % 2 == 0
            }
        }
        let mut w = LfsrWhitener::new(Period6(0));
        let frac = ones_fraction(&mut w, 100_000);
        assert!((frac - 0.5).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn whitener_preserves_source_entropy_injection() {
        // Two whiteners over different random streams diverge; over
        // identical streams they agree (the raw bits drive the state).
        let mut a = LfsrWhitener::new(biased(0.5, 7));
        let mut b = LfsrWhitener::new(biased(0.5, 7));
        let mut c = LfsrWhitener::new(biased(0.5, 8));
        let seq_a = a.collect_bits(128);
        let seq_b = b.collect_bits(128);
        let seq_c = c.collect_bits(128);
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn dh_trng_gains_nothing_from_post_processing() {
        // The paper's point: DH-TRNG output is already balanced, so the
        // corrector only costs throughput.
        use crate::trng::DhTrng;
        let mut raw = DhTrng::builder().seed(9).build();
        let raw_frac = ones_fraction(&mut raw, 200_000);
        let mut vn = VonNeumann::new(DhTrng::builder().seed(9).build());
        let vn_frac = ones_fraction(&mut vn, 50_000);
        assert!((raw_frac - 0.5).abs() < 0.005);
        assert!((vn_frac - 0.5).abs() < 0.007);
        // ... but the corrector burned 4x the raw bits.
        assert!(vn.cost() > 3.8);
    }

    #[test]
    #[should_panic(expected = "decimation factor")]
    fn zero_factor_panics() {
        let _ = XorDecimator::new(biased(0.5, 1), 0);
    }
}
