//! Stage-graph primitives: block-oriented **source** and **transform**
//! stages over borrowed buffers.
//!
//! The batched fast path ([`batch::BlockKernel`](crate::batch::BlockKernel))
//! made *generation* block-oriented; this module generalises that shape
//! into a small vocabulary the whole output chain is built from, so the
//! post-processing layers stop re-buffering between themselves:
//!
//! * [`BitBlock`] — a borrowed byte buffer plus a valid-bit length: the
//!   unit of work every stage operates on. Blocks are *views* over
//!   caller-owned storage (in production, the streaming engine's
//!   recycled chunk pool), so moving data through a stage graph never
//!   allocates;
//! * [`BlockSource`] — the generation stage: fills a block with the
//!   next bits of a stream. Implemented for **every** [`Trng`] (the
//!   blanket impl routes through the batched
//!   [`fill_bytes`](Trng::fill_bytes) path), so [`DhTrng`](crate::DhTrng),
//!   [`HybridUnitGroup`](crate::HybridUnitGroup), and all the Table 6
//!   baselines in `dhtrng-baselines` are sources as-is;
//! * [`Stage`] — the transform stage: consumes a block's valid bits and
//!   overwrites the block's prefix with its output, **in place**. The
//!   canonical implementation is [`ConditionerStage`], which runs any
//!   [`Conditioner`] over whole blocks instead of pulling bits one
//!   ledger entry at a time.
//!
//! The DRBG output stage is deliberately *not* a [`Stage`]: it is an
//! expander, not a transformer — it consumes seed material only at
//! reseed boundaries and generates output from internal state between
//! them. It participates in the graph as a block *pump* over borrowed
//! buffers instead (see `dhtrng-stream::pipeline::DrbgPool` and
//! [`Drbg`](crate::drbg::Drbg), both of which reuse one persistent seed
//! buffer across reseeds).
//!
//! # In-place safety
//!
//! A [`Stage`] writes output over the same bytes it reads. This is
//! sound because a [`Conditioner`] emits at most one bit per bit pushed
//! (compression ratio ≥ 1), so after `k` input bytes are consumed at
//! most `8k + 7` output bits exist (the 7 from partial-byte state
//! carried in from the previous block) — strictly fewer than `k + 1`
//! completed output bytes. [`ConditionerStage`] exploits this by
//! copying the input out in small stack staging chunks and letting the
//! conditioner's block path write straight back over the block: the
//! write cursor can never pass the end of the staged (already copied)
//! region, so no delay line or double buffer is needed and the whole
//! block is conditioned 8 raw bits per table lookup.
//!
//! # Example
//!
//! ```
//! use dhtrng_core::kernel::{BitBlock, BlockSource, ConditionerStage, Stage};
//! use dhtrng_core::conditioning::CrcWhitener;
//! use dhtrng_core::DhTrng;
//!
//! let mut source = DhTrng::builder().seed(7).build();
//! let mut stage = ConditionerStage::new(CrcWhitener::new(2));
//! let mut buf = [0u8; 1024];
//!
//! // Generate a block, then condition it in place: no intermediate
//! // buffer, no allocation.
//! let mut block = BitBlock::empty(&mut buf);
//! source.fill_block(&mut block);
//! stage.process(&mut block);
//! assert_eq!(block.bits(), 4096); // 8192 raw bits at 2:1
//! assert_eq!(stage.measured_ratio(), 2.0);
//! ```

use crate::conditioning::{BitSink, Conditioner};
use crate::trng::Trng;

/// A borrowed byte buffer with a valid-bit length — the unit of work
/// the stage graph passes between stages.
///
/// Bits are packed MSB-first within each byte (bit `i` of the block is
/// bit `7 - i % 8` of byte `i / 8`), the packing every [`Trng`] path
/// produces. The backing storage is caller-owned: in the streaming
/// engine it is a recycled pool chunk, in tests a stack array.
#[derive(Debug)]
pub struct BitBlock<'a> {
    bytes: &'a mut [u8],
    bits: usize,
}

impl<'a> BitBlock<'a> {
    /// A block whose entire backing store holds valid bits (a freshly
    /// generated chunk).
    pub fn full(bytes: &'a mut [u8]) -> Self {
        let bits = bytes.len() * 8;
        Self { bytes, bits }
    }

    /// A block with no valid bits yet (a buffer waiting to be filled).
    pub fn empty(bytes: &'a mut [u8]) -> Self {
        Self { bytes, bits: 0 }
    }

    /// Number of valid bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Number of *whole* valid bytes (a trailing partial byte, if any,
    /// is excluded).
    pub fn whole_bytes(&self) -> usize {
        self.bits / 8
    }

    /// Capacity of the backing store, in bits.
    pub fn capacity_bits(&self) -> usize {
        self.bytes.len() * 8
    }

    /// The valid whole-byte prefix.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..self.whole_bytes()]
    }

    /// Reads valid bit `i` (MSB-first within bytes).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.bits()`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.bits, "bit {i} out of range ({} valid)", self.bits);
        (self.bytes[i / 8] >> (7 - i % 8)) & 1 == 1
    }

    /// The whole backing store, for stages that read and rewrite it.
    /// The valid length is *not* adjusted; pair with
    /// [`set_valid_bits`](Self::set_valid_bits).
    pub fn backing_mut(&mut self) -> &mut [u8] {
        self.bytes
    }

    /// Declares the first `bits` bits of the backing store valid.
    ///
    /// # Panics
    ///
    /// Panics if `bits` exceeds the backing capacity.
    pub fn set_valid_bits(&mut self, bits: usize) {
        assert!(
            bits <= self.capacity_bits(),
            "{bits} bits exceed the {}-bit capacity",
            self.capacity_bits()
        );
        self.bits = bits;
    }
}

/// A generation stage: fills a [`BitBlock`] with the next bits of a
/// stream.
///
/// This is the stage-graph face of [`batch::BlockKernel`](crate::batch::BlockKernel):
/// the blanket impl makes every [`Trng`] a source, and because the
/// in-tree generators override [`Trng::fill_bytes`] with hoisted-state
/// kernels, filling a block through this trait pays one kernel setup
/// per block. The bit stream is identical to every other `Trng` path.
pub trait BlockSource {
    /// Fills the block's backing store to capacity with the next bits
    /// of the stream and marks it full.
    fn fill_block(&mut self, block: &mut BitBlock<'_>);
}

impl<T: Trng + ?Sized> BlockSource for T {
    fn fill_block(&mut self, block: &mut BitBlock<'_>) {
        self.fill_bytes(block.backing_mut());
        let bits = block.capacity_bits();
        block.set_valid_bits(bits);
    }
}

/// A transform stage: consumes a block's valid bits and overwrites the
/// block's prefix with its output, in place.
///
/// Stages are pure state machines over the bit stream — splitting a
/// stream across differently-sized blocks never changes the
/// concatenated output (partial-byte state carries across calls inside
/// the stage).
pub trait Stage {
    /// Consumes every valid bit of `block` and rewrites the block so
    /// its valid prefix is this stage's output for those bits.
    fn process(&mut self, block: &mut BitBlock<'_>);

    /// Expected input bits per output bit (`>= 1.0`).
    fn expected_ratio(&self) -> f64;
}

/// A [`Conditioner`] mounted as a block [`Stage`], with consumed /
/// emitted throughput ledgers.
///
/// Each [`process`](Stage::process) call feeds the block's valid bits
/// through the machine and packs the emissions back into the block's
/// prefix (whole bytes only; up to 7 pending output bits are carried to
/// the next call, exactly like the bit-serial adaptors). The conditioned
/// stream is bit-identical to pushing the same raw bits one at a time.
#[derive(Debug, Clone)]
pub struct ConditionerStage<C> {
    conditioner: C,
    /// Partial output byte under construction (MSB first).
    acc: u8,
    acc_len: u32,
    consumed: u64,
    emitted: u64,
}

impl<C: Conditioner> ConditionerStage<C> {
    /// Mounts `conditioner` as a block stage.
    pub fn new(conditioner: C) -> Self {
        Self {
            conditioner,
            acc: 0,
            acc_len: 0,
            consumed: 0,
            emitted: 0,
        }
    }

    /// Raw bits fed to the conditioner so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Conditioned bits emitted so far (including any still pending in
    /// the partial output byte).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Measured raw-bits-per-output-bit (infinite before the first
    /// emission).
    pub fn measured_ratio(&self) -> f64 {
        if self.emitted == 0 {
            f64::INFINITY
        } else {
            self.consumed as f64 / self.emitted as f64
        }
    }

    /// The mounted conditioner.
    pub fn conditioner(&self) -> &C {
        &self.conditioner
    }
}

/// Staging-chunk size for in-place block conditioning: input bytes are
/// copied out in chunks this large before the conditioner's block path
/// writes its output back over the same region.
const STAGE_STAGING: usize = 64;

impl<C: Conditioner> Stage for ConditionerStage<C> {
    fn process(&mut self, block: &mut BitBlock<'_>) {
        let in_bits = block.bits();
        let whole = in_bits / 8;
        let bytes = block.backing_mut();
        // Grab the trailing partial byte (if any) before the output
        // cursor can reach it: the ≤ 7 tail bits are fed serially
        // after the whole-byte block path below.
        let tail_byte = if in_bits % 8 != 0 { bytes[whole] } else { 0 };
        // In-place block conditioning through a stack staging copy:
        // each chunk of input bytes is copied out, then the
        // conditioner's block fast path (table-driven for the in-tree
        // machines, bit-serial fallback otherwise) reads the copy and
        // packs its emissions straight back into the block via a
        // resumed [`BitSink`]. Compression ratio ≥ 1 plus the ≤ 7-bit
        // carry keep the completed-output-byte count at or below the
        // consumed-input-byte count, so the write cursor never passes
        // the staged region's end — the delay line the old per-bit
        // loop needed is subsumed by the staging copy.
        let mut staging = [0u8; STAGE_STAGING];
        let mut written = 0usize;
        let mut pushed = 0u64;
        let mut pos = 0usize;
        while pos < whole {
            let n = (whole - pos).min(STAGE_STAGING);
            staging[..n].copy_from_slice(&bytes[pos..pos + n]);
            let mut sink = BitSink::from_parts(bytes, written, self.acc, self.acc_len);
            self.conditioner.condition_block(&staging[..n], &mut sink);
            pushed += sink.bits_pushed();
            let (w, acc, acc_len) = sink.into_parts();
            written = w;
            self.acc = acc;
            self.acc_len = acc_len;
            pos += n;
        }
        if in_bits % 8 != 0 {
            let mut sink = BitSink::from_parts(bytes, written, self.acc, self.acc_len);
            for i in 0..in_bits % 8 {
                if let Some(bit) = self.conditioner.push((tail_byte >> (7 - i)) & 1 == 1) {
                    sink.push_bit(bit);
                }
            }
            pushed += sink.bits_pushed();
            let (w, acc, acc_len) = sink.into_parts();
            written = w;
            self.acc = acc;
            self.acc_len = acc_len;
        }
        self.consumed += in_bits as u64;
        self.emitted += pushed;
        block.set_valid_bits(written * 8);
    }

    fn expected_ratio(&self) -> f64 {
        self.conditioner.expected_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conditioning::{CrcWhitener, VonNeumannConditioner, XorFold};
    use crate::trng::DhTrng;
    use dhtrng_noise::NoiseRng;
    use rand::RngCore;

    #[test]
    fn bit_block_views_and_lengths() {
        let mut buf = [0b1010_0000u8, 0xFF];
        let block = BitBlock::full(&mut buf);
        assert_eq!(block.bits(), 16);
        assert_eq!(block.whole_bytes(), 2);
        assert!(block.bit(0));
        assert!(!block.bit(1));
        assert!(block.bit(8));

        let mut buf = [0u8; 4];
        let mut block = BitBlock::empty(&mut buf);
        assert_eq!(block.bits(), 0);
        assert_eq!(block.capacity_bits(), 32);
        block.set_valid_bits(12);
        assert_eq!(block.whole_bytes(), 1);
        assert_eq!(block.as_bytes().len(), 1);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn oversized_valid_length_panics() {
        let mut buf = [0u8; 2];
        BitBlock::empty(&mut buf).set_valid_bits(17);
    }

    #[test]
    fn block_source_matches_fill_bytes_for_every_trng() {
        // The blanket impl must walk exactly the batched byte stream.
        let mut direct = DhTrng::builder().seed(11).build();
        let mut reference = vec![0u8; 100];
        Trng::fill_bytes(&mut direct, &mut reference);

        let mut source = DhTrng::builder().seed(11).build();
        let mut buf = vec![0u8; 100];
        let mut block = BitBlock::empty(&mut buf);
        source.fill_block(&mut block);
        assert_eq!(block.bits(), 800);
        assert_eq!(block.as_bytes(), &reference[..]);
    }

    /// Reference: the raw bytes pushed bit-serially, packed into whole
    /// output bytes (partial tail dropped) — what the bit-at-a-time
    /// adaptors compute.
    fn reference_condition<C: Conditioner>(cond: &mut C, raw: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        let (mut acc, mut acc_len) = (0u8, 0u32);
        for &byte in raw {
            for i in (0..8).rev() {
                if let Some(bit) = cond.push((byte >> i) & 1 == 1) {
                    acc = (acc << 1) | u8::from(bit);
                    acc_len += 1;
                    if acc_len == 8 {
                        out.push(acc);
                        acc = 0;
                        acc_len = 0;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn conditioner_stage_is_bit_identical_to_bit_serial_pushes() {
        let mut rng = NoiseRng::seed_from_u64(5);
        // Ratio 1 exercises the delay line at full pressure (1:1 output
        // with carried bits); the others exercise compression. Odd block
        // sizes force partial-byte carries across blocks.
        for ratio in [1u32, 2, 3, 64] {
            let raws: Vec<Vec<u8>> = [7usize, 64, 13, 128, 1, 33]
                .iter()
                .map(|&len| (0..len).map(|_| rng.next_u64() as u8).collect())
                .collect();
            let concatenated: Vec<u8> = raws.iter().flatten().copied().collect();
            let reference = reference_condition(&mut CrcWhitener::new(ratio), &concatenated);

            let mut stage = ConditionerStage::new(CrcWhitener::new(ratio));
            let mut got = Vec::new();
            for mut raw in raws {
                let mut block = BitBlock::full(&mut raw);
                stage.process(&mut block);
                got.extend_from_slice(block.as_bytes());
            }
            assert_eq!(got, reference, "ratio = {ratio}");
        }
    }

    #[test]
    fn variable_rate_stage_matches_von_neumann_reference() {
        let mut rng = NoiseRng::seed_from_u64(9);
        let raws: Vec<Vec<u8>> = [64usize, 5, 96, 31]
            .iter()
            .map(|&len| (0..len).map(|_| rng.next_u64() as u8).collect())
            .collect();
        let concatenated: Vec<u8> = raws.iter().flatten().copied().collect();
        let reference = reference_condition(&mut VonNeumannConditioner::new(), &concatenated);

        let mut stage = ConditionerStage::new(VonNeumannConditioner::new());
        let mut got = Vec::new();
        for mut raw in raws {
            let mut block = BitBlock::full(&mut raw);
            stage.process(&mut block);
            got.extend_from_slice(block.as_bytes());
        }
        assert_eq!(got, reference);
        assert!(stage.measured_ratio() > 3.0, "VN costs ~4x unbiased");
    }

    #[test]
    fn stage_ledgers_track_consumption() {
        let mut stage = ConditionerStage::new(XorFold::new(4));
        let mut raw = [0xA7u8; 100];
        let mut block = BitBlock::full(&mut raw);
        stage.process(&mut block);
        assert_eq!(stage.consumed(), 800);
        assert_eq!(stage.emitted(), 200);
        assert_eq!(stage.measured_ratio(), 4.0);
        assert_eq!(stage.expected_ratio(), 4.0);
        assert_eq!(block.bits(), 200); // 25 whole bytes, no pending tail
        assert_eq!(stage.conditioner().factor(), 4);
    }

    #[test]
    fn empty_block_is_a_no_op() {
        let mut stage = ConditionerStage::new(CrcWhitener::new(2));
        let mut buf = [0u8; 8];
        let mut block = BitBlock::empty(&mut buf);
        stage.process(&mut block);
        assert_eq!(block.bits(), 0);
        assert_eq!(stage.consumed(), 0);
        assert!(stage.measured_ratio().is_infinite());
    }
}
