//! Block-generation kernel behind the batched [`Trng`](crate::Trng)
//! fast paths.
//!
//! The per-bit reference paths ([`Trng::next_bit`](crate::Trng::next_bit))
//! pay costs every cycle that are in fact invariant across a whole block:
//!
//! * `rem_euclid` (an `fmod` libcall) in every beat-oscillator step and
//!   feedback kick, although the operands always lie in `[0, 2)` where a
//!   compare-and-subtract is exact;
//! * the Bernoulli probability clamp and int→float conversion, although
//!   the acceptance thresholds are fixed at build time
//!   ([`NoiseRng::bernoulli_threshold`]);
//! * the feedback kick multipliers, recomputed from scratch per kick;
//! * the `Vec<BeatOscillator>` indirection of the beat bank.
//!
//! [`BlockKernel`] hoists all of that out of the inner loop once per
//! block, then generates up to 64 cycles per call into a packed word.
//! The kernel is **bit-exact**: for the same starting state and the same
//! [`NoiseRng`], it produces exactly the stream the per-bit reference
//! produces (every arithmetic step is provably the same f64 computation;
//! the equivalence is additionally pinned by tests here, in `trng.rs`,
//! and in the workspace-level `tests/batching.rs`).

use dhtrng_noise::NoiseRng;

use crate::model::BeatOscillator;

/// Largest beat bank a [`BlockKernel`] accepts. Callers with more
/// oscillators fall back to the per-bit reference path (none of the
/// in-tree generators come close: DH-TRNG has 12 rings, the Table 2
/// groups at most 18).
pub const MAX_BEATS: usize = 32;

/// Why a [`BlockKernel`] could not be built over a beat bank.
///
/// Historically [`BlockKernel::new`] reported this as a bare `None`,
/// which every caller silently turned into the per-bit fallback path —
/// so a mis-sized bank degraded throughput ~7x without a word. The
/// typed surface ([`BlockKernel::try_new`]) names the violated limit;
/// `new` keeps the `Option` shape for the fallback-style callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelError {
    /// The beat bank exceeds the kernel's fixed capacity
    /// ([`MAX_BEATS`]); the caller must use its per-bit path.
    TooManyBeats {
        /// Oscillators in the offered bank.
        got: usize,
        /// The kernel capacity ([`MAX_BEATS`]).
        max: usize,
    },
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooManyBeats { got, max } => write!(
                f,
                "beat bank of {got} oscillators exceeds the block-kernel \
                 capacity of {max}; use the per-bit path"
            ),
        }
    }
}

impl std::error::Error for KernelError {}

/// Packs `n` (1..=64) cycles of `cycle` into a word, oldest bit first —
/// the packing every `Trng::next_bits` implementation must produce.
///
/// For generators whose per-cycle body has no hoistable state (e.g. the
/// Gaussian-sampling baselines), the batched override is this loop over
/// the same `cycle` function `next_bit` calls — one definition of the
/// physics, so the two paths cannot drift apart.
///
/// # Panics
///
/// Panics unless `1 <= n <= 64`.
#[inline]
pub fn pack_bits(n: u32, mut cycle: impl FnMut() -> bool) -> u64 {
    assert!((1..=64).contains(&n), "next_bits takes 1..=64, got {n}");
    let mut word = 0u64;
    for _ in 0..n {
        word = (word << 1) | u64::from(cycle());
    }
    word
}

/// A hoisted-state generator for one block of Eq. 5-shaped cycles.
///
/// Covers every generator in the workspace that follows the calibrated
/// stochastic structure — per cycle: XOR the free-running beat
/// oscillators, capture a fresh random event with probability `p_rand`,
/// apply the systematic sampler bias, and (DH-TRNG only) kick the ring
/// phases through the feedback line when the output bit is 1.
///
/// Usage: build from the generator's state, call
/// [`next_word`](Self::next_word) / [`next_bits`](Self::next_bits) as
/// often as needed, then [`write_back`](Self::write_back) the advanced
/// phases. The `NoiseRng` is borrowed per call, so its state stays in
/// the owning generator throughout.
#[derive(Debug, Clone)]
pub struct BlockKernel {
    beats: usize,
    phases: [f64; MAX_BEATS],
    increments: [f64; MAX_BEATS],
    duties: [f64; MAX_BEATS],
    /// Feedback kick multipliers; `kick_scale == 0.0` disables feedback
    /// (an enabled feedback line always has a positive scale).
    kick_mults: [f64; MAX_BEATS],
    kick_scale: f64,
    p_rand_threshold: u64,
    half_threshold: u64,
    bias_threshold: u64,
}

impl BlockKernel {
    /// Builds a kernel over the generator's beat bank and calibrated
    /// probabilities.
    ///
    /// `feedback` carries the kick scale and per-beat multipliers of the
    /// feedback strategy (`None` for generators without a feedback
    /// line). Returns `None` when the beat bank exceeds [`MAX_BEATS`],
    /// in which case the caller must use its per-bit path — see
    /// [`try_new`](Self::try_new) for the typed version of the same
    /// rejection.
    ///
    /// # Panics
    ///
    /// Panics if `feedback` multipliers don't match the beat count.
    pub fn new(
        beats: &[BeatOscillator],
        p_rand: f64,
        bias: f64,
        feedback: Option<(f64, &[f64])>,
    ) -> Option<Self> {
        Self::try_new(beats, p_rand, bias, feedback).ok()
    }

    /// [`new`](Self::new) with a typed rejection: callers that have no
    /// per-bit fallback (the bit-sliced kernel, configuration
    /// validators) get a [`KernelError`] naming the violated limit
    /// instead of a silent `None`.
    ///
    /// # Errors
    ///
    /// [`KernelError::TooManyBeats`] when the bank exceeds
    /// [`MAX_BEATS`].
    ///
    /// # Panics
    ///
    /// Panics if `feedback` multipliers don't match the beat count.
    pub fn try_new(
        beats: &[BeatOscillator],
        p_rand: f64,
        bias: f64,
        feedback: Option<(f64, &[f64])>,
    ) -> Result<Self, KernelError> {
        if beats.len() > MAX_BEATS {
            return Err(KernelError::TooManyBeats {
                got: beats.len(),
                max: MAX_BEATS,
            });
        }
        let mut kernel = Self {
            beats: beats.len(),
            phases: [0.0; MAX_BEATS],
            increments: [0.0; MAX_BEATS],
            duties: [0.0; MAX_BEATS],
            kick_mults: [0.0; MAX_BEATS],
            kick_scale: 0.0,
            p_rand_threshold: NoiseRng::bernoulli_threshold(p_rand),
            half_threshold: NoiseRng::bernoulli_threshold(0.5),
            // The reference path draws bernoulli(2 * bias).
            bias_threshold: NoiseRng::bernoulli_threshold(2.0 * bias),
        };
        for (i, beat) in beats.iter().enumerate() {
            kernel.phases[i] = beat.phase();
            kernel.increments[i] = beat.increment();
            kernel.duties[i] = beat.duty();
        }
        if let Some((scale, mults)) = feedback {
            assert_eq!(
                mults.len(),
                beats.len(),
                "one kick multiplier per beat oscillator"
            );
            kernel.kick_mults[..mults.len()].copy_from_slice(mults);
            kernel.kick_scale = scale;
        }
        Ok(kernel)
    }

    /// One cycle of the Eq. 5 structure — the same draws, in the same
    /// order, as the per-bit reference paths.
    #[inline]
    fn cycle(&mut self, rng: &mut NoiseRng) -> bool {
        // Free-running beats advance every cycle. Phase and increment
        // both lie in [0, 1), so the wrapped sum lies in [0, 2) and the
        // compare-and-subtract equals `rem_euclid(1.0)` exactly.
        let mut beat_xor = false;
        for i in 0..self.beats {
            let mut phase = self.phases[i] + self.increments[i];
            if phase >= 1.0 {
                phase -= 1.0;
            }
            self.phases[i] = phase;
            beat_xor ^= phase < self.duties[i];
        }
        let mut bit = if rng.bernoulli_fast(self.p_rand_threshold) {
            rng.bernoulli_fast(self.half_threshold)
        } else {
            beat_xor
        };
        if !bit && rng.bernoulli_fast(self.bias_threshold) {
            bit = true;
        }
        if bit && self.kick_scale != 0.0 {
            // Feedback: one uniform draw spread over the rings. Kick
            // amounts stay below the scale (< 1), so the same
            // compare-and-subtract wrap applies.
            let kick = self.kick_scale * rng.uniform();
            for i in 0..self.beats {
                let mut phase = self.phases[i] + kick * self.kick_mults[i];
                if phase >= 1.0 {
                    phase -= 1.0;
                }
                self.phases[i] = phase;
            }
        }
        bit
    }

    /// Generates `n` cycles (1..=64), oldest bit first: the first cycle
    /// lands in bit `n - 1`, the newest in bit 0 — the packing a
    /// `next_bit` fold produces.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n <= 64`.
    #[inline]
    pub fn next_bits(&mut self, rng: &mut NoiseRng, n: u32) -> u64 {
        assert!((1..=64).contains(&n), "next_bits takes 1..=64, got {n}");
        let mut word = 0u64;
        for _ in 0..n {
            word = (word << 1) | u64::from(self.cycle(rng));
        }
        word
    }

    /// Generates a full 64-cycle word (oldest cycle in the MSB).
    #[inline]
    pub fn next_word(&mut self, rng: &mut NoiseRng) -> u64 {
        self.next_bits(rng, 64)
    }

    /// Fills `buf` through the kernel — eight bytes per word, then an
    /// 8-cycle chunk per tail byte. The block body behind every batched
    /// `Trng::fill_bytes`; callers build one kernel per buffer and
    /// [`write_back`](Self::write_back) once at the end.
    pub fn fill_bytes(&mut self, rng: &mut NoiseRng, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in chunks.by_ref() {
            chunk.copy_from_slice(&self.next_word(rng).to_be_bytes());
        }
        for slot in chunks.into_remainder() {
            *slot = self.next_bits(rng, 8) as u8;
        }
    }

    /// Writes the advanced phases back into the generator's beat bank.
    ///
    /// # Panics
    ///
    /// Panics if `beats` is not the bank the kernel was built from
    /// (length mismatch).
    pub fn write_back(&self, beats: &mut [BeatOscillator]) {
        assert_eq!(beats.len(), self.beats, "write_back to a different bank");
        for (beat, &phase) in beats.iter_mut().zip(&self.phases) {
            beat.set_phase(phase);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(seed: u64, n: usize) -> Vec<BeatOscillator> {
        let mut rng = NoiseRng::seed_from_u64(seed);
        (0..n)
            .map(|_| BeatOscillator::new(rng.uniform(), rng.uniform(), 0.5))
            .collect()
    }

    /// Per-bit reference for the kernel's cycle structure.
    fn reference_bit(
        beats: &mut [BeatOscillator],
        rng: &mut NoiseRng,
        p_rand: f64,
        bias: f64,
        feedback: Option<(f64, &[f64])>,
    ) -> bool {
        let mut beat_xor = false;
        for beat in beats.iter_mut() {
            beat_xor ^= beat.step();
        }
        let mut bit = if rng.bernoulli(p_rand) {
            rng.bernoulli(0.5)
        } else {
            beat_xor
        };
        if !bit && rng.bernoulli(2.0 * bias) {
            bit = true;
        }
        if bit {
            if let Some((scale, mults)) = feedback {
                let kick = scale * rng.uniform();
                for (beat, &m) in beats.iter_mut().zip(mults) {
                    beat.kick(kick * m);
                }
            }
        }
        bit
    }

    #[test]
    fn kernel_matches_reference_with_and_without_feedback() {
        let mults = [0.37, 0.81, 0.12, 0.64, 0.29, 0.93, 0.55];
        for feedback in [None, Some((0.3, &mults[..]))] {
            let mut ref_beats = bank(5, 7);
            let mut kernel_beats = ref_beats.clone();
            let mut ref_rng = NoiseRng::seed_from_u64(9);
            let mut kernel_rng = NoiseRng::seed_from_u64(9);
            let (p_rand, bias) = (0.73, 2.1e-4);

            let mut kernel =
                BlockKernel::new(&kernel_beats, p_rand, bias, feedback).expect("7 <= MAX_BEATS");
            let mut kernel_bits = Vec::new();
            for _ in 0..8 {
                let word = kernel.next_word(&mut kernel_rng);
                kernel_bits.extend((0..64).rev().map(|i| (word >> i) & 1 == 1));
            }
            kernel.write_back(&mut kernel_beats);

            let ref_bits: Vec<bool> = (0..512)
                .map(|_| reference_bit(&mut ref_beats, &mut ref_rng, p_rand, bias, feedback))
                .collect();

            assert_eq!(kernel_bits, ref_bits, "feedback = {}", feedback.is_some());
            // The written-back bank continues in lockstep with the
            // reference bank.
            for (a, b) in ref_beats.iter().zip(&kernel_beats) {
                assert_eq!(a.phase(), b.phase());
            }
        }
    }

    #[test]
    fn partial_words_pack_oldest_first() {
        let beats = bank(11, 3);
        let mut rng_a = NoiseRng::seed_from_u64(4);
        let mut rng_b = NoiseRng::seed_from_u64(4);
        let mut a = BlockKernel::new(&beats, 0.6, 1e-4, None).unwrap();
        let mut b = BlockKernel::new(&beats, 0.6, 1e-4, None).unwrap();
        let bits: Vec<bool> = (0..12).map(|_| a.cycle(&mut rng_a)).collect();
        let word = b.next_bits(&mut rng_b, 12);
        let unpacked: Vec<bool> = (0..12).rev().map(|i| (word >> i) & 1 == 1).collect();
        assert_eq!(bits, unpacked);
    }

    #[test]
    fn oversized_bank_is_rejected() {
        let beats = bank(1, MAX_BEATS + 1);
        assert!(BlockKernel::new(&beats, 0.5, 0.0, None).is_none());
        let beats = bank(1, MAX_BEATS);
        assert!(BlockKernel::new(&beats, 0.5, 0.0, None).is_some());
    }

    #[test]
    fn oversized_bank_reports_a_typed_error() {
        let beats = bank(1, MAX_BEATS + 3);
        let err = BlockKernel::try_new(&beats, 0.5, 0.0, None).unwrap_err();
        assert_eq!(
            err,
            KernelError::TooManyBeats {
                got: MAX_BEATS + 3,
                max: MAX_BEATS,
            }
        );
        // The message names both the offered size and the limit, so a
        // misconfigured caller sees the actual numbers, not just `None`.
        let message = err.to_string();
        assert!(message.contains("35"), "{message}");
        assert!(message.contains("32"), "{message}");
        // At the boundary the typed path accepts exactly like `new`.
        let beats = bank(1, MAX_BEATS);
        assert!(BlockKernel::try_new(&beats, 0.5, 0.0, None).is_ok());
    }

    #[test]
    #[should_panic(expected = "next_bits takes 1..=64")]
    fn zero_bits_panics() {
        let beats = bank(2, 2);
        let mut rng = NoiseRng::seed_from_u64(1);
        let mut kernel = BlockKernel::new(&beats, 0.5, 0.0, None).unwrap();
        let _ = kernel.next_bits(&mut rng, 0);
    }
}
